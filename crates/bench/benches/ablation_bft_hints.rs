//! **Ablation — deferred BFT computation via hints (Section 4.3).**
//!
//! "The BFT computations have to be carefully scheduled in order to avoid
//! slowing down the dissemination phase. ... during the dissemination phase
//! we only compute the BFT on a few nodes for which LState and NState
//! stabilize first. Those nodes send the resulting diameter estimation as a
//! hint to their neighbors during subsequent rounds."
//!
//! With hints disabled, every node computes its own BFT height on its
//! critical path as soon as its view stabilizes, serializing the O(n)
//! uncached computation into the round schedule; with hints, most nodes
//! adopt the propagated bound for free. This bench measures the
//! dissemination-phase duration both ways.

use flash_bench::{banner, Stopwatch};
use flash_core::{run_fault_experiment, ExperimentConfig, RecoveryConfig};
use flash_machine::{FaultSpec, MachineParams};
use flash_net::NodeId;

fn dissemination_ms(n: usize, hints: bool, seed: u64) -> f64 {
    let mut params = MachineParams::table_5_1();
    params.n_nodes = n;
    let recovery = RecoveryConfig {
        bft_hints: hints,
        ..Default::default()
    };
    let mut cfg = ExperimentConfig::new(params, seed);
    cfg.recovery = recovery;
    cfg.fill_ops = 100;
    cfg.total_ops = 2_000;
    let out = run_fault_experiment(&cfg, FaultSpec::Node(NodeId(1)));
    assert!(out.passed(), "n={n} hints={hints}: {}", out.validation);
    let p = out.recovery.phases;
    (p.p1_2().unwrap() - p.p1().unwrap()).as_millis_f64()
}

fn main() {
    banner(
        "Ablation: deferred BFT computation (dissemination hints)",
        "Teodosiu et al., ISCA'97, Section 4.3 (BFT scheduling optimization)",
    );
    let sw = Stopwatch::start();
    println!(
        "{:>6} {:>18} {:>18} {:>10}",
        "nodes", "P2 no hints [ms]", "P2 hints [ms]", "saved"
    );
    for &n in &[16usize, 32, 64, 128] {
        let without = dissemination_ms(n, false, 41);
        let with = dissemination_ms(n, true, 41);
        println!(
            "{n:>6} {without:>18.3} {with:>18.3} {:>9.2}%",
            100.0 * (without - with) / without.max(1e-9)
        );
    }
    println!("\nthe saving is the per-node BFT cost removed from the round critical path");
    println!(
        "on every node that receives a hint before stabilizing.   [{:.1}s host]",
        sw.secs()
    );
}
