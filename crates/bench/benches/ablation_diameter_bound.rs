//! **Ablation — tighter diameter estimation (Section 4.3 / citation [1]).**
//!
//! "As a simple approximation to the diameter, all nodes ... compute the
//! height h of the BFT rooted at [a chosen node] and terminate the
//! dissemination algorithm after 2h rounds (2h is an upper bound to the
//! diameter). Still better approximations to the diameter can be computed
//! in linear time, as shown in [Aingworth, Chekuri, Motwani]."
//!
//! The deterministic root (lowest live id) sits in a mesh corner, so `2h`
//! is nearly twice the diameter. The center-based double-sweep bound
//! (`RecoveryConfig::center_diameter_bound`) terminates dissemination in
//! close to diameter-many rounds; this bench measures the saved P2 time.

use flash_bench::{banner, ResultSheet, Stopwatch};
use flash_core::{run_fault_experiment, ExperimentConfig, RecoveryConfig};
use flash_machine::{FaultSpec, MachineParams};
use flash_net::NodeId;

fn p2_ms(n: usize, center: bool, seed: u64) -> f64 {
    let mut params = MachineParams::table_5_1();
    params.n_nodes = n;
    let recovery = RecoveryConfig {
        center_diameter_bound: center,
        ..Default::default()
    };
    let mut cfg = ExperimentConfig::new(params, seed);
    cfg.recovery = recovery;
    cfg.fill_ops = 100;
    cfg.total_ops = 2_000;
    let out = run_fault_experiment(&cfg, FaultSpec::Node(NodeId(1)));
    assert!(out.passed(), "n={n} center={center}: {}", out.validation);
    let p = out.recovery.phases;
    (p.p1_2().unwrap() - p.p1().unwrap()).as_millis_f64()
}

fn main() {
    banner(
        "Ablation: tighter diameter bound for dissemination termination",
        "Teodosiu et al., ISCA'97, Section 4.3 + citation [1]",
    );
    let sw = Stopwatch::start();
    let mut sheet = ResultSheet::new(
        "ablation_diameter_bound",
        "Section 4.3 / [1]",
        &["p2_2h_ms", "p2_center_ms"],
    );
    println!(
        "{:>6} {:>16} {:>18} {:>10}",
        "nodes", "P2 2h-bound [ms]", "P2 center-bound [ms]", "saved"
    );
    for &n in &[16usize, 32, 64, 128] {
        let plain = p2_ms(n, false, 61);
        let center = p2_ms(n, true, 61);
        sheet.push(format!("nodes={n}"), &[plain, center]);
        println!(
            "{n:>6} {plain:>16.3} {center:>18.3} {:>9.1}%",
            100.0 * (plain - center) / plain
        );
    }
    println!("\nthe corner-rooted 2h bound runs nearly 2x the diameter in rounds;");
    println!(
        "a near-central estimate halves the dissemination phase.   [{:.1}s host]",
        sw.secs()
    );
    sheet.write();
}
