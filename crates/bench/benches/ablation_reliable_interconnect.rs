//! **Ablation — HAL-style reliable interconnect (Section 6.3).**
//!
//! "The HAL multiprocessor provides an efficient hardware implementation of
//! an end-to-end reliable protocol for coherence traffic. ... With a
//! reliable interconnect, the cache flush step could be eliminated, but the
//! directories would still have to be scanned."
//!
//! This bench compares P4 (coherence-protocol recovery) with the paper's
//! flush-and-reset against the HAL variant's prune-without-flush, across
//! L2 sizes — the flush is the L2-proportional term, so the reliable
//! variant's P4 is flat in cache size.

use flash_bench::{banner, ResultSheet, Stopwatch};
use flash_core::{run_fault_experiment, ExperimentConfig, RecoveryConfig};
use flash_machine::{FaultSpec, MachineParams};
use flash_net::NodeId;

fn p4_ms(l2_mb: f64, reliable: bool, seed: u64) -> f64 {
    let mut params = MachineParams::table_5_1();
    params.n_nodes = 4;
    params.l2_mb = l2_mb;
    params.mem_mb_per_node = 4;
    let recovery = RecoveryConfig {
        reliable_interconnect: reliable,
        ..Default::default()
    };
    let mut cfg = ExperimentConfig::new(params, seed);
    cfg.recovery = recovery;
    cfg.fill_ops = 200;
    cfg.total_ops = 1_500;
    let out = run_fault_experiment(&cfg, FaultSpec::Node(NodeId(1)));
    assert!(
        out.passed(),
        "l2={l2_mb} reliable={reliable}: {}",
        out.validation
    );
    out.recovery.p4_time().unwrap().as_millis_f64()
}

fn main() {
    banner(
        "Ablation: HAL-style reliable interconnect (no cache flush)",
        "Teodosiu et al., ISCA'97, Section 6.3",
    );
    let sw = Stopwatch::start();
    let mut sheet = ResultSheet::new(
        "ablation_reliable_interconnect",
        "Section 6.3",
        &["p4_flush_ms", "p4_prune_ms"],
    );
    println!(
        "{:>10} {:>16} {:>16} {:>10}",
        "L2 [MB]", "P4 flush [ms]", "P4 prune [ms]", "saved"
    );
    for &l2 in &[0.5f64, 1.0, 2.0, 4.0] {
        let flush = p4_ms(l2, false, 55);
        let prune = p4_ms(l2, true, 55);
        sheet.push(format!("l2_mb={l2}"), &[flush, prune]);
        println!(
            "{l2:>10.1} {flush:>16.3} {prune:>16.3} {:>9.1}%",
            100.0 * (flush - prune) / flush
        );
    }
    println!("\nthe flush term (linear in L2 size) disappears; only the directory");
    println!(
        "scan (linear in memory per node) remains.   [{:.1}s host]",
        sw.secs()
    );
    sheet.write();
}
