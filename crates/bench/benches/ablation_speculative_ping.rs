//! **Ablation — speculative pings (Section 4.2).**
//!
//! "As an optimization to speed up recovery triggering, nodes speculatively
//! send ping packets to their immediate neighbors before performing the cwn
//! exploration. We have found that in FLASH this heuristic can lead to a
//! fivefold increase in the speed at which recovery is triggered."
//!
//! This bench measures the trigger-wave latency (time from the first
//! trigger until every live node has entered recovery) with and without
//! speculative pings, across machine sizes. Without speculation, the wave
//! advances only after each node's processor has been dropped into the
//! recovery code and started exploring.

use flash_bench::{banner, Stopwatch};
use flash_core::{build_machine, RecoveryConfig};
use flash_machine::{FaultSpec, Idle, MachineParams};
use flash_net::NodeId;
use flash_sim::{SimDuration, SimTime};

/// Wave latency isolated from independent detection: one node receives a
/// false-alarm trigger on an otherwise idle machine, so every other node
/// can only learn about the recovery through the ping wave.
fn wave_ms(n: usize, speculative: bool, seed: u64) -> f64 {
    let mut params = MachineParams::table_5_1();
    params.n_nodes = n;
    let recovery = RecoveryConfig {
        speculative_pings: speculative,
        ..Default::default()
    };
    let mut m = build_machine(params, recovery, |_| Box::new(Idle), seed);
    m.start();
    m.schedule_fault(SimTime::from_nanos(1_000), FaultSpec::FalseAlarm(NodeId(0)));
    m.run_for(SimDuration::from_secs(2));
    let report = &m.ext().report;
    assert!(
        report.completed(),
        "n={n} speculative={speculative}: {report:?}"
    );
    report
        .trigger_wave_time()
        .expect("wave completed")
        .as_millis_f64()
}

fn main() {
    banner(
        "Ablation: speculative pings",
        "Teodosiu et al., ISCA'97, Section 4.2 (~5x faster recovery triggering)",
    );
    let sw = Stopwatch::start();
    println!(
        "{:>6} {:>16} {:>16} {:>10}",
        "nodes", "wave w/o [ms]", "wave with [ms]", "speedup"
    );
    for &n in &[8usize, 16, 32, 64, 128] {
        let without = wave_ms(n, false, 31);
        let with = wave_ms(n, true, 31);
        println!(
            "{n:>6} {without:>16.3} {with:>16.3} {:>9.2}x",
            without / with.max(1e-9)
        );
    }
    println!("\npaper: ~5x faster triggering with speculative pings.");
    println!("note: our speedup is larger because the model lets MAGIC forward");
    println!("speculative pings before the processor finishes dropping into the");
    println!("recovery code (drop-in ~0.5 ms dominates the non-speculative wave);");
    println!("the qualitative claim — the wave no longer serializes on per-node");
    println!("recovery entry — reproduces.   [{:.1}s host]", sw.secs());
}
