//! **Ablation — ownership upgrades.**
//!
//! A FLASH-class protocol refinement this reproduction implements: a store
//! hitting a held shared copy requests *ownership only* (1 flit each way)
//! instead of dropping the copy and refetching the full line (9-flit data
//! reply). This bench measures the remote store-to-shared latency and the
//! interconnect data traffic with upgrades on and off.

use flash_bench::{banner, ResultSheet, Stopwatch};
use flash_coherence::LineAddr;
use flash_core::{build_machine, RecoveryConfig};
use flash_machine::{MachineParams, ProcOp, Script, Workload};
use flash_net::NodeId;
#[allow(unused_imports)]
use flash_sim::SimDuration;
use flash_sim::SimTime;

/// Runs `writes` sequential stores to held shared copies and returns the
/// average per-store latency (simulated ns) and total packets delivered.
fn upgrade_latency(enabled: bool, writes: u64) -> (f64, u64) {
    let run = |with_writes: bool| -> (u64, u64) {
        let mut params = MachineParams::table_5_1();
        params.n_nodes = 4;
        params.upgrades_enabled = enabled;
        let mk = move |n: NodeId| -> Box<dyn Workload> {
            if n == NodeId(1) {
                let mut ops: Vec<ProcOp> = (0..writes)
                    .map(|i| ProcOp::Read(LineAddr(100 + i)))
                    .collect();
                if with_writes {
                    ops.extend((0..writes).map(|i| ProcOp::Write(LineAddr(100 + i))));
                }
                Box::new(Script::new(ops))
            } else {
                Box::new(Script::new([]))
            }
        };
        let mut m = build_machine(params, RecoveryConfig::default(), mk, 3);
        m.start();
        m.run_until(SimTime::MAX);
        (
            m.now().as_nanos(),
            m.st().fabric.counters().get("packets_delivered"),
        )
    };
    let (t_reads, _) = run(false);
    let (t_all, pkts) = run(true);
    (((t_all - t_reads) as f64) / writes as f64, pkts)
}

fn main() {
    banner(
        "Ablation: ownership upgrades for stores to shared copies",
        "protocol refinement (FLASH-family protocols); not a paper figure",
    );
    let sw = Stopwatch::start();
    let ops = 2_000;
    let (full_lat, full_pkts) = upgrade_latency(false, ops);
    let (up_lat, up_pkts) = upgrade_latency(true, ops);
    let mut sheet = ResultSheet::new(
        "ablation_upgrade",
        "protocol refinement",
        &["avg_store_latency_ns", "packets_delivered"],
    );
    sheet.push("full_refetch", &[full_lat, full_pkts as f64]);
    sheet.push("upgrade", &[up_lat, up_pkts as f64]);
    println!("store-to-shared avg latency, full refetch: {full_lat:>8.0} ns");
    println!("store-to-shared avg latency, upgrade:      {up_lat:>8.0} ns");
    println!("packets delivered, full refetch:              {full_pkts:>8}");
    println!("packets delivered, upgrade:                   {up_pkts:>8}");
    println!("\nupgrades cut the data transfer out of the upgrade path (9-flit reply ->");
    println!("1-flit ack).   [{:.1}s host]", sw.secs());
    assert!(up_lat <= full_lat, "upgrades must not slow stores down");
    sheet.write();
}
