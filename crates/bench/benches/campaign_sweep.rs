//! **Chaos campaign sweep.**
//!
//! Goes beyond the paper's Table 5.3 single-fault validation: a randomized
//! multi-fault campaign over 8–16 node machines, mixing steady-state faults
//! with faults armed mid-recovery (on entry to each phase P1–P4) and during
//! the Hive OS recovery pass, with the full invariant stack checked after
//! every run. The sweep then demonstrates failure triage by re-running a
//! slice of the campaign with the MAGIC firewall disabled — the deliberately
//! seeded bug — and shrinking each caught violation to a minimal schedule.
//!
//! Run counts scale with `FLASH_RUNS` (default 200; set lower for a quick
//! pass). Post-mortem JSON for sabotage failures lands under
//! `target/campaign/`.

use flash_bench::{banner, runs_from_env, ResultSheet, Stopwatch};
use flash_campaign::{
    campaign_dir, run_campaign, triage, CampaignConfig, CampaignReport, GeneratorConfig,
};

fn campaign(runs: u64, workers: usize, firewall: bool) -> CampaignReport {
    run_campaign(&CampaignConfig {
        master_seed: 1,
        runs,
        workers,
        generator: GeneratorConfig {
            hive_chance: 0.15,
            firewall_enabled: firewall,
            ..GeneratorConfig::default()
        },
        ..CampaignConfig::default()
    })
}

fn gray_campaign(runs: u64, workers: usize) -> CampaignReport {
    run_campaign(&CampaignConfig {
        master_seed: 1,
        runs,
        workers,
        generator: GeneratorConfig {
            hive_chance: 0.15,
            gray_chance: 0.45,
            ..GeneratorConfig::default()
        },
        ..CampaignConfig::default()
    })
}

fn kv_campaign(runs: u64, workers: usize) -> CampaignReport {
    run_campaign(&CampaignConfig {
        master_seed: 1,
        runs,
        workers,
        generator: GeneratorConfig {
            kv_chance: 1.0,
            gray_chance: 0.45,
            max_nodes: 8,
            ..GeneratorConfig::default()
        },
        ..CampaignConfig::default()
    })
}

fn main() {
    banner(
        "Chaos campaign: randomized multi-fault injection + invariant stack",
        "Teodosiu et al., ISCA'97, Sections 4.1/5.3 generalized to fault schedules",
    );
    let runs = runs_from_env(200);
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let sw = Stopwatch::start();
    let mut sheet = ResultSheet::new(
        "campaign_sweep",
        "Sections 4.1/5.3 (randomized generalization)",
        &["runs", "violations", "host_s"],
    );

    // Phase 1: the clean campaign, once single-threaded and once across all
    // available workers (identical outcomes by construction).
    let seq = campaign(runs, 1, true);
    let par = campaign(runs, workers, true);
    assert_eq!(
        seq.total_violations(),
        par.total_violations(),
        "campaign outcome must not depend on worker count"
    );
    println!(
        "{:<34} {:>8} {:>12} {:>10}",
        "campaign", "runs", "violations", "host [s]"
    );
    println!(
        "{:<34} {:>8} {:>12} {:>10.2}",
        "firewall on, 1 worker",
        runs,
        seq.total_violations(),
        seq.host_secs
    );
    println!(
        "{:<34} {:>8} {:>12} {:>10.2}",
        format!("firewall on, {workers} workers"),
        runs,
        par.total_violations(),
        par.host_secs
    );
    println!(
        "  speedup {:.2}x on {} hardware thread(s); mid-recovery fault coverage: \
         P1={} P2={} P3={} P4={}, during OS recovery: {}",
        seq.host_secs / par.host_secs.max(1e-9),
        workers,
        par.phase_hits[0],
        par.phase_hits[1],
        par.phase_hits[2],
        par.phase_hits[3],
        par.os_recovery_hits
    );
    assert_eq!(
        par.total_violations(),
        0,
        "clean campaign must hold every invariant; failing seeds: {:?}",
        par.failures().map(|f| f.schedule.seed).collect::<Vec<_>>()
    );
    if runs >= 100 {
        assert!(
            par.phase_hits.iter().all(|&h| h > 0),
            "campaign must land at least one fault during each phase P1-P4: {:?}",
            par.phase_hits
        );
    }
    sheet.push(
        "firewall_on_seq",
        &[runs as f64, seq.total_violations() as f64, seq.host_secs],
    );
    sheet.push(
        "firewall_on_par",
        &[runs as f64, par.total_violations() as f64, par.host_secs],
    );

    // Phase 1b: the gray-failure mix (fail-slow nodes, degraded memory,
    // lossy links, pool failures blended into the fail-stop schedule) —
    // the containment story must hold, and stay worker-count-independent,
    // when faults degrade instead of stopping.
    let gray = gray_campaign(runs, workers);
    println!(
        "{:<34} {:>8} {:>12} {:>10.2}",
        format!("gray mix, {workers} workers"),
        runs,
        gray.total_violations(),
        gray.host_secs
    );
    assert_eq!(
        gray.total_violations(),
        0,
        "gray-failure campaign must hold every invariant; failing seeds: {:?}",
        gray.failures().map(|f| f.schedule.seed).collect::<Vec<_>>()
    );
    sheet.push(
        "gray_mix",
        &[runs as f64, gray.total_violations() as f64, gray.host_secs],
    );

    // Phase 1c: the KV serving mix — every run hosts the replicated
    // hive-kv workload, so the serving invariants (no replicated data lost
    // while a replica's cell is live, unaffected chunks keep their SLO)
    // join the stack while faults strike mid-traffic.
    let kv = kv_campaign(runs, workers);
    println!(
        "{:<34} {:>8} {:>12} {:>10.2}",
        format!("kv serving mix, {workers} workers"),
        runs,
        kv.total_violations(),
        kv.host_secs
    );
    assert_eq!(
        kv.total_violations(),
        0,
        "kv serving campaign must hold every invariant; failing seeds: {:?}",
        kv.failures().map(|f| f.schedule.seed).collect::<Vec<_>>()
    );
    let served: u64 = kv
        .records
        .iter()
        .filter_map(|r| r.kv.as_ref())
        .map(|s| s.ok)
        .sum();
    println!("  {served} requests served successfully through the fault mix");
    assert!(served > 0, "the kv mix must actually serve traffic");
    sheet.push(
        "kv_serving_mix",
        &[runs as f64, kv.total_violations() as f64, kv.host_secs],
    );

    // Phase 2: the seeded bug. Disable the firewall and let the campaign
    // catch the dying master's wild write, then triage: replay from seed,
    // shrink to a minimal schedule, dump a JSON post-mortem.
    let sab_runs = (runs / 10).clamp(5, 20);
    let sab = campaign(sab_runs, workers, false);
    let failures: Vec<_> = sab.failures().collect();
    println!(
        "\nsabotage (firewall disabled): {} of {sab_runs} runs violated an invariant",
        failures.len()
    );
    assert!(
        !failures.is_empty(),
        "the disabled firewall must be caught by the invariant stack"
    );
    sheet.push(
        "firewall_off",
        &[
            sab_runs as f64,
            sab.total_violations() as f64,
            sab.host_secs,
        ],
    );
    for failure in failures.iter().take(3) {
        let t = triage(failure, Some(&campaign_dir()));
        assert!(t.reproduced, "seed replay must reproduce the violation");
        println!(
            "  seed {}: {} -> {} events after {} probe runs; {}; post-mortem {}",
            failure.schedule.seed,
            failure.schedule.events.len(),
            t.shrunk.events.len(),
            t.probe_runs,
            t.shrunk_record
                .violations
                .first()
                .map_or("?".to_string(), |v| v.invariant.to_string()),
            t.dump_path
                .as_deref()
                .map_or("(not written)".to_string(), |p| p.display().to_string())
        );
    }
    println!("\ncampaign sweep done.   [{:.1}s host]", sw.secs());
    sheet.write();
}
