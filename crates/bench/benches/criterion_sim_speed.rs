//! **Host-side simulator throughput.**
//!
//! Not a paper result: wall-clock benchmarks of the simulator itself, so
//! regressions in the reproduction's performance are visible. The suite
//! covers the three layers of the event hot path:
//!
//! * `queue_push_pop/*` — the [`flash_sim::EventQueue`] alone, under the
//!   near-horizon pattern typical of a running machine (small deltas, bursts
//!   of same-instant events) and under a far-horizon pattern (large deltas
//!   that exercise the overflow path);
//! * `fabric_hop/*` — a standalone [`flash_net::Fabric`] pushed through a
//!   sustained ping-of-packets workload, table-routed and source-routed;
//! * `normal_mode_*` / `full_fault_recovery_cycle/*` — the full machine in
//!   normal operation and across one complete fault-recovery cycle.
//!
//! Every case reports events/sec and ns/event derived from the best run.
//!
//! Uses a self-contained min-of-N timing harness (the workspace carries no
//! external benchmarking dependency); `FLASH_RUNS` scales the sample count.
//!
//! Environment knobs:
//!
//! * `FLASH_RUNS=N` — samples per case (default 10; CI quick mode uses 3);
//! * `FLASH_BENCH_JSON=path` — additionally write the results as JSON;
//! * `FLASH_BENCH_CHECK=path` — compare the run against a committed
//!   `BENCH_sim_speed.json` baseline and exit non-zero if any shared case
//!   regressed by more than 20% in events/sec.

use flash_bench::runs_from_env;
use flash_core::{build_machine, ExperimentConfig, RecoveryConfig};
use flash_machine::{FaultSpec, MachineParams, RandomFill};
use flash_net::{DeliveryNote, Fabric, Lane, Mesh2D, NetEv, NetParams, NodeId, Packet, RouterId};
use flash_sim::{DetRng, Engine, RunOutcome, Scheduler, SimDuration, SimTime, World};
use std::time::Instant;

/// Events "processed" per queue-microbench op: one push plus one pop.
const QUEUE_OPS: u64 = 200_000;

/// Drives the event queue the way a running machine does: a fixed population
/// of pending events, each pop scheduling a successor a short delta ahead,
/// with periodic same-instant bursts. Returns the number of push+pop events.
fn queue_churn(max_delta: u64) -> u64 {
    let mut q = flash_sim::EventQueue::new();
    let mut rng = DetRng::new(0xBEEF);
    for i in 0..64u64 {
        q.push(SimTime::from_nanos(i), i);
    }
    let mut ops = 0u64;
    while ops < QUEUE_OPS {
        let (t, ev) = q.pop().expect("queue population never drains");
        ops += 2;
        let delta = 1 + rng.below(max_delta);
        q.push(t + SimDuration::from_nanos(delta), ev);
        if ev % 17 == 0 {
            // A burst of same-instant events, as a node fanning out
            // zero-delay follow-ups does.
            for k in 0..4 {
                q.push(t + SimDuration::from_nanos(delta), 1000 + k);
                ops += 1;
            }
            for _ in 0..4 {
                q.pop();
                ops += 1;
            }
        }
    }
    ops
}

/// A minimal world that owns a fabric and keeps `in_flight` packets moving
/// from node 0 to the far corner of a mesh, re-injecting on every delivery.
struct FabricWorld {
    fab: Fabric<u64>,
    source_hops: Option<Vec<RouterId>>,
    delivered: u64,
    target: u64,
    out: Vec<(SimDuration, NetEv)>,
    notes: Vec<DeliveryNote>,
    // The tracing-disabled path: the committed events/sec floors assume
    // observability costs nothing when off.
    obs: flash_obs::Recorder,
}

impl FabricWorld {
    fn make_packet(&self) -> Packet<u64> {
        let dst = NodeId(15);
        match &self.source_hops {
            None => Packet::table_routed(NodeId(0), dst, Lane::Request, 9, self.delivered),
            Some(hops) => Packet::source_routed(
                NodeId(0),
                dst,
                hops.clone(),
                Lane::Recovery0,
                9,
                self.delivered,
            ),
        }
    }

    /// Injects one packet from node 0, collecting kick-off events into `evs`.
    fn inject(&mut self, now: SimTime, evs: &mut Vec<(SimDuration, NetEv)>) {
        let pkt = self.make_packet();
        let _ = self.fab.try_send(NodeId(0), pkt, now, evs, &mut self.obs);
    }
}

impl World for FabricWorld {
    type Ev = NetEv;
    fn dispatch(&mut self, ev: NetEv, sched: &mut Scheduler<'_, NetEv>) {
        let mut out = std::mem::take(&mut self.out);
        let mut notes = std::mem::take(&mut self.notes);
        out.clear();
        notes.clear();
        self.fab
            .handle(ev, sched.now(), &mut out, &mut notes, &mut self.obs);
        for (d, e) in out.drain(..) {
            sched.after(d, e);
        }
        self.out = out;
        for note in notes.drain(..) {
            let _ = self.fab.pop_input(note.node, note.lane);
            self.delivered += 1;
            if self.delivered >= self.target {
                sched.request_stop();
            } else {
                let mut evs = std::mem::take(&mut self.out);
                self.inject(sched.now(), &mut evs);
                for (d, e) in evs.drain(..) {
                    sched.after(d, e);
                }
                self.out = evs;
            }
        }
        self.notes = notes;
    }
}

/// Runs `deliveries` packets across a 4x4 mesh; returns engine events.
fn fabric_events(source_routed: bool, deliveries: u64) -> u64 {
    let fab: Fabric<u64> = Fabric::new(&Mesh2D::new(4, 4), NetParams::default());
    // Node i attaches to router i; walk row 0 then column 3 to reach n15.
    let source_hops = source_routed.then(|| {
        [1u16, 2, 3, 7, 11, 15]
            .iter()
            .map(|&r| RouterId(r))
            .collect()
    });
    let mut world = FabricWorld {
        fab,
        source_hops,
        delivered: 0,
        target: deliveries,
        out: Vec::new(),
        notes: Vec::new(),
        obs: flash_obs::Recorder::disabled(),
    };
    let mut engine: Engine<NetEv> = Engine::new();
    let mut evs = Vec::new();
    for _ in 0..4 {
        world.inject(SimTime::ZERO, &mut evs);
    }
    for (d, e) in evs {
        engine.schedule_at(SimTime::ZERO + d, e);
    }
    let outcome = engine.run(&mut world, SimTime::MAX);
    assert!(
        outcome == RunOutcome::Stopped || outcome == RunOutcome::Drained,
        "fabric bench ended unexpectedly: {outcome:?}"
    );
    assert!(world.delivered >= deliveries);
    engine.events_processed()
}

fn normal_mode_events(firewall: bool) -> u64 {
    let mut params = MachineParams::table_5_1();
    params.magic.firewall_enabled = firewall;
    let layout = params.layout();
    let prot = params.protected_lines;
    let mut m = build_machine(
        params,
        RecoveryConfig::default(),
        move |_| Box::new(RandomFill::valid_system_range(2_000, 0.5, layout, prot)),
        5,
    );
    m.start();
    m.run_until(SimTime::MAX);
    m.events_processed()
}

/// One full fault-recovery cycle (the Section 5.2 methodology inlined so the
/// engine's event count is observable); returns engine events processed.
fn recovery_cycle_events() -> u64 {
    let cfg = {
        let mut c = ExperimentConfig::new(MachineParams::table_5_1(), 9);
        c.fill_ops = 500;
        c.total_ops = 1_500;
        c
    };
    let layout = cfg.params.layout();
    let protected = cfg.params.protected_lines;
    let (total_ops, write_fraction) = (cfg.total_ops, cfg.write_fraction);
    let mut m = build_machine(
        cfg.params,
        cfg.recovery,
        move |_| {
            Box::new(RandomFill::valid_system_range(
                total_ops,
                write_fraction,
                layout,
                protected,
            ))
        },
        cfg.seed,
    );
    m.set_event_budget(2_000_000_000);
    m.start();
    let slice = SimDuration::from_micros(20);
    loop {
        let outcome = m.run_for(slice);
        let filled = m
            .st()
            .nodes
            .iter()
            .all(|n| n.workload.progress() >= cfg.fill_ops);
        if filled || outcome == RunOutcome::Drained {
            break;
        }
    }
    let inject_at = m.now() + SimDuration::from_nanos(1);
    m.schedule_fault(inject_at, FaultSpec::Node(NodeId(3)));
    let outcome = m.run_until(m.now() + SimDuration::from_secs(20));
    assert_eq!(outcome, RunOutcome::Drained, "recovery cycle did not drain");
    assert!(m.st().validate().passed(), "oracle validation failed");
    m.events_processed()
}

/// One measured benchmark case.
struct Case {
    name: String,
    events: u64,
    best: f64,
    median: f64,
    worst: f64,
}

impl Case {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.best.max(1e-9)
    }
    fn ns_per_event(&self) -> f64 {
        self.best.max(1e-9) * 1e9 / self.events.max(1) as f64
    }
}

/// Times `f` over `samples` runs; reports best / median / worst host time
/// plus events/sec and ns/event derived from the best run.
fn bench<F: FnMut() -> u64>(name: &str, samples: u64, mut f: F) -> Case {
    let mut times: Vec<(f64, u64)> = Vec::new();
    for _ in 0..samples.max(1) {
        let t = Instant::now();
        let events = f();
        times.push((t.elapsed().as_secs_f64(), events));
    }
    times.sort_by(|a, b| a.0.total_cmp(&b.0));
    let (best, events) = times[0];
    let case = Case {
        name: name.to_string(),
        events,
        best,
        median: times[times.len() / 2].0,
        worst: times[times.len() - 1].0,
    };
    println!(
        "{name:<44} best {best:>9.4}s  median {median:>9.4}s  worst {worst:>9.4}s  \
         ({eps:.0} events/s, {nspe:.1} ns/event)",
        best = case.best,
        median = case.median,
        worst = case.worst,
        eps = case.events_per_sec(),
        nspe = case.ns_per_event(),
    );
    case
}

/// Writes the results as JSON (no external deps; one case object per line so
/// the regression checker can parse the file line-wise).
fn emit_json(path: &str, samples: u64, cases: &[Case]) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"flash-bench/sim-speed/v1\",\n");
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let sep = if i + 1 == cases.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"events\": {}, \"best_s\": {:.6}, \
             \"median_s\": {:.6}, \"worst_s\": {:.6}, \"events_per_sec\": {:.0}, \
             \"ns_per_event\": {:.2}}}{}\n",
            c.name,
            c.events,
            c.best,
            c.median,
            c.worst,
            c.events_per_sec(),
            c.ns_per_event(),
            sep,
        ));
    }
    s.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, s) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("results written to {path}");
    }
}

/// Parses `"name": "x"` / `"events_per_sec": N` pairs from a baseline file.
/// The last occurrence of each name wins, so a file with both `before` and
/// `after` sections checks against the `after` (current) numbers.
///
/// A case line may carry an explicit `"floor_events_per_sec"` which takes
/// precedence as the reference: committed measurements are quiet-host bests,
/// while CI runners vary widely in absolute speed, so the committed floor is
/// derated to what any healthy run should clear.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::new();
    for line in text.lines() {
        let Some(name) = extract_str(line, "\"name\":") else {
            continue;
        };
        let Some(eps) = extract_num(line, "\"floor_events_per_sec\":")
            .or_else(|| extract_num(line, "\"events_per_sec\":"))
        else {
            continue;
        };
        if let Some(slot) = out.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = eps;
        } else {
            out.push((name, eps));
        }
    }
    out
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let rest = &line[line.find(key)? + key.len()..];
    let start = rest.find('"')? + 1;
    let end = start + rest[start..].find('"')?;
    Some(rest[start..end].to_string())
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let rest = line[line.find(key)? + key.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares the run against a committed baseline; returns the number of
/// cases that regressed more than 20% in events/sec.
fn check_against_baseline(path: &str, cases: &[Case]) -> usize {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read baseline {path}: {e}");
            return 1;
        }
    };
    let baseline = parse_baseline(&text);
    let mut regressions = 0;
    for c in cases {
        let Some((_, base_eps)) = baseline.iter().find(|(n, _)| *n == c.name) else {
            println!("check {:<41} no baseline entry, skipped", c.name);
            continue;
        };
        let eps = c.events_per_sec();
        let ratio = eps / base_eps.max(1e-9);
        let verdict = if ratio < 0.8 {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "check {name:<41} {eps:.0} vs baseline {base_eps:.0} events/s ({ratio:.2}x) {verdict}",
            name = c.name,
        );
    }
    regressions
}

fn main() {
    let samples = runs_from_env(10);
    println!("simulator host-side throughput ({samples} samples per case)");
    let mut cases = Vec::new();
    cases.push(bench("queue_push_pop/near_horizon_200k", samples, || {
        queue_churn(64)
    }));
    cases.push(bench("queue_push_pop/far_horizon_200k", samples, || {
        queue_churn(1_000_000)
    }));
    cases.push(bench("fabric_hop/mesh4x4_table", samples, || {
        fabric_events(false, 20_000)
    }));
    cases.push(bench("fabric_hop/mesh4x4_source", samples, || {
        fabric_events(true, 20_000)
    }));
    for firewall in [false, true] {
        cases.push(bench(
            &format!("normal_mode_16k_ops/firewall={firewall}"),
            samples,
            || normal_mode_events(firewall),
        ));
    }
    cases.push(bench(
        "full_fault_recovery_cycle/node_failure_8",
        samples,
        recovery_cycle_events,
    ));

    if let Ok(path) = std::env::var("FLASH_BENCH_JSON") {
        emit_json(&path, samples, &cases);
    }
    if let Ok(path) = std::env::var("FLASH_BENCH_CHECK") {
        let regressions = check_against_baseline(&path, &cases);
        if regressions > 0 {
            eprintln!("{regressions} case(s) regressed >20% vs {path}");
            std::process::exit(1);
        }
        println!("regression check passed (>20% tolerance) vs {path}");
    }
}
