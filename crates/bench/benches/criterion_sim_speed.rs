//! **Host-side simulator throughput.**
//!
//! Not a paper result: wall-clock benchmarks of the simulator itself, so
//! regressions in the reproduction's performance are visible. Measures
//! normal-mode simulation throughput (with the containment features on and
//! off — they should cost nothing at the host level either) and the
//! latency of one full fault-recovery cycle.
//!
//! Uses a self-contained min-of-N timing harness (the workspace carries no
//! external benchmarking dependency); `FLASH_RUNS` scales the sample count.

use flash_bench::runs_from_env;
use flash_core::{build_machine, run_fault_experiment, ExperimentConfig, RecoveryConfig};
use flash_machine::{FaultSpec, MachineParams, RandomFill};
use flash_net::NodeId;
use flash_sim::SimTime;
use std::time::Instant;

fn normal_mode_events(firewall: bool) -> u64 {
    let mut params = MachineParams::table_5_1();
    params.magic.firewall_enabled = firewall;
    let layout = params.layout();
    let prot = params.protected_lines;
    let mut m = build_machine(
        params,
        RecoveryConfig::default(),
        move |_| Box::new(RandomFill::valid_system_range(2_000, 0.5, layout, prot)),
        5,
    );
    m.start();
    m.run_until(SimTime::MAX);
    m.events_processed()
}

/// Times `f` over `samples` runs; reports best / median / worst host time
/// plus the events-per-second throughput derived from the returned event
/// count of the best run.
fn bench<F: FnMut() -> u64>(name: &str, samples: u64, mut f: F) {
    let mut times: Vec<(f64, u64)> = Vec::new();
    for _ in 0..samples.max(1) {
        let t = Instant::now();
        let events = f();
        times.push((t.elapsed().as_secs_f64(), events));
    }
    times.sort_by(|a, b| a.0.total_cmp(&b.0));
    let (best, events) = times[0];
    let median = times[times.len() / 2].0;
    let worst = times[times.len() - 1].0;
    println!(
        "{name:<44} best {best:>9.4}s  median {median:>9.4}s  worst {worst:>9.4}s  \
         ({:.0} events/s)",
        events as f64 / best.max(1e-9)
    );
}

fn main() {
    let samples = runs_from_env(10);
    println!("simulator host-side throughput ({samples} samples per case)");
    for firewall in [false, true] {
        bench(
            &format!("normal_mode_16k_ops/firewall={firewall}"),
            samples,
            || normal_mode_events(firewall),
        );
    }
    bench("full_fault_recovery_cycle/node_failure_8", samples, || {
        let mut cfg = ExperimentConfig::new(MachineParams::table_5_1(), 9);
        cfg.fill_ops = 500;
        cfg.total_ops = 1_500;
        let out = run_fault_experiment(&cfg, FaultSpec::Node(NodeId(3)));
        assert!(out.passed());
        out.end_time.as_nanos()
    });
}
