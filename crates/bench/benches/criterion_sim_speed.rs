//! **Host-side simulator throughput (Criterion).**
//!
//! Not a paper result: wall-clock benchmarks of the simulator itself, so
//! regressions in the reproduction's performance are visible. Measures
//! normal-mode simulation throughput (with the containment features on and
//! off — they should cost nothing at the host level either) and the
//! latency of one full fault-recovery cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flash_core::{build_machine, run_fault_experiment, ExperimentConfig, RecoveryConfig};
use flash_machine::{FaultSpec, MachineParams, RandomFill};
use flash_net::NodeId;
use flash_sim::SimTime;

fn normal_mode_events(firewall: bool) -> u64 {
    let mut params = MachineParams::table_5_1();
    params.magic.firewall_enabled = firewall;
    let layout = params.layout();
    let prot = params.protected_lines;
    let mut m = build_machine(
        params,
        RecoveryConfig::default(),
        move |_| Box::new(RandomFill::valid_system_range(2_000, 0.5, layout, prot)),
        5,
    );
    m.start();
    m.run_until(SimTime::MAX);
    m.events_processed()
}

fn bench_normal_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("normal_mode_16k_ops");
    group.sample_size(10);
    for firewall in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("firewall", firewall),
            &firewall,
            |b, &fw| b.iter(|| normal_mode_events(fw)),
        );
    }
    group.finish();
}

fn bench_recovery_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_fault_recovery_cycle");
    group.sample_size(10);
    group.bench_function("node_failure_8_nodes", |b| {
        b.iter(|| {
            let mut cfg = ExperimentConfig::new(MachineParams::table_5_1(), 9);
            cfg.fill_ops = 500;
            cfg.total_ops = 1_500;
            let out = run_fault_experiment(&cfg, FaultSpec::Node(NodeId(3)));
            assert!(out.passed());
            out.end_time
        })
    });
    group.finish();
}

criterion_group!(benches, bench_normal_mode, bench_recovery_cycle);
criterion_main!(benches);
