//! **Figure 5.5 — Total hardware recovery times.**
//!
//! Recovery time versus machine size on a mesh (1 MB memory/node, 1 MB L2),
//! broken into the cumulative phase series P1, P1–2, P1–3 and total, plus
//! the hypercube comparison for the dissemination phase: the paper notes P2
//! "scales better (both asymptotically and for a moderate number of nodes)
//! on the fat hypercube topology than on the mesh ... since its running
//! time is proportional to the diameter of the interconnect".
//!
//! Set `FLASH_BIG=1` to extend the sweep past the paper's 128-node ceiling
//! to 512 and 1024 nodes on the sharded executor (8 regions), re-checking
//! that the dissemination phase still dominates total recovery time at
//! sizes the paper could not simulate.

use flash_bench::{banner, ResultSheet, Stopwatch};
use flash_core::{run_fault_experiment, run_fault_experiment_sharded, ExperimentConfig};
use flash_machine::{FaultSpec, MachineParams, ShardPlan, TopologyKind};
use flash_net::NodeId;

fn recovery_times(n: usize, topology: TopologyKind, seed: u64) -> [f64; 4] {
    recovery_times_planned(n, topology, seed, None, 3_000)
}

fn recovery_times_planned(
    n: usize,
    topology: TopologyKind,
    seed: u64,
    plan: Option<ShardPlan>,
    total_ops: u64,
) -> [f64; 4] {
    let mut params = MachineParams::table_5_1();
    params.n_nodes = n;
    params.topology = topology;
    params.mem_mb_per_node = 1;
    params.l2_mb = 1.0;
    let mut cfg = ExperimentConfig::new(params, seed);
    cfg.fill_ops = 100;
    cfg.total_ops = total_ops;
    let fault = FaultSpec::Node(NodeId(1));
    let out = match plan {
        Some(p) => run_fault_experiment_sharded(&cfg, fault, p),
        None => run_fault_experiment(&cfg, fault),
    };
    assert!(out.passed(), "n={n} {topology:?}: {}", out.validation);
    let p = out.recovery.phases;
    [
        p.p1().unwrap().as_millis_f64(),
        p.p1_2().unwrap().as_millis_f64(),
        p.p1_3().unwrap().as_millis_f64(),
        p.total().unwrap().as_millis_f64(),
    ]
}

fn main() {
    banner(
        "Figure 5.5: total hardware recovery times",
        "Teodosiu et al., ISCA'97, Fig 5.5 (2-128 nodes, 1 MB/node, 1 MB L2)",
    );
    let sw = Stopwatch::start();
    println!("mesh topology (as simulated in the paper):");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "nodes", "P1 [ms]", "P1,2 [ms]", "P1,2,3 [ms]", "total [ms]"
    );
    let sizes = [2usize, 4, 8, 16, 32, 64, 128];
    let mut sheet = ResultSheet::new(
        "fig_5_5_recovery_scaling",
        "Figure 5.5",
        &["p1_ms", "p12_ms", "p123_ms", "total_ms"],
    );
    let mut mesh_p2 = Vec::new();
    for &n in &sizes {
        let t = recovery_times(n, TopologyKind::Mesh2D, 7);
        mesh_p2.push(t[1] - t[0]);
        sheet.push(format!("mesh/nodes={n}"), &t);
        println!(
            "{n:>6} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            t[0], t[1], t[2], t[3]
        );
    }

    println!("\nhypercube topology (FLASH's real interconnect family):");
    println!(
        "{:>6} {:>12} {:>12} {:>14}",
        "nodes", "P2 mesh[ms]", "P2 cube[ms]", "dissem speedup"
    );
    for (i, &n) in sizes.iter().enumerate() {
        if !n.is_power_of_two() {
            continue;
        }
        let t = recovery_times(n, TopologyKind::Hypercube, 7);
        sheet.push(format!("hypercube/nodes={n}"), &t);
        let cube_p2 = t[1] - t[0];
        println!(
            "{n:>6} {:>12.3} {:>12.3} {:>13.2}x",
            mesh_p2[i],
            cube_p2,
            mesh_p2[i] / cube_p2.max(1e-9)
        );
    }
    // Past the paper's ceiling: 512 and 1024 nodes on the sharded
    // executor. The claim under test is qualitative — dissemination (P2)
    // still dominates total recovery as the mesh diameter grows.
    if std::env::var("FLASH_BIG").is_ok_and(|v| v == "1") {
        let workers = std::thread::available_parallelism().map_or(1, |m| m.get().min(8));
        println!("\nbeyond the paper (sharded executor, 8 regions, {workers} workers):");
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>12} {:>9}",
            "nodes", "P1 [ms]", "P1,2 [ms]", "P1,2,3 [ms]", "total [ms]", "P2/total"
        );
        // The big arms run 600 total ops instead of 3000: the phase times
        // under test are workload-light (detection + the recovery rounds),
        // while post-fault check traffic scales with nodes*ops and at 512+
        // nodes turns the drain into a 100M+-event retry storm that can
        // even tip a mid-storm watchdog restart — a valid execution, but
        // tens of minutes of single-host wall for no additional signal.
        for &n in &[512usize, 1024] {
            let t = recovery_times_planned(
                n,
                TopologyKind::Mesh2D,
                7,
                Some(ShardPlan::new(8, workers)),
                600,
            );
            let p2_share = (t[1] - t[0]) / t[3];
            sheet.push(format!("mesh-sharded/nodes={n}"), &t);
            println!(
                "{n:>6} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>8.0}%",
                t[0],
                t[1],
                t[2],
                t[3],
                p2_share * 100.0
            );
        }
    }

    println!("\npaper shape: total ~150-200 ms at 128 nodes, dominated by the dissemination");
    println!(
        "phase; P1 roughly constant; hypercube dissemination faster.   [{:.1}s host]",
        sw.secs()
    );
    sheet.write();
}
