//! **Figure 5.6 — Cache coherence protocol recovery times.**
//!
//! The last phase (P4) of hardware recovery: the cache-flush/writeback step
//! (WB) scales linearly with the second-level cache size, and the
//! directory-reset step with the amount of memory per node. Paper
//! configurations: L2 sweep at 4 nodes / 4 MB per node; memory sweep at 4
//! nodes / 1 MB L2.

use flash_bench::{banner, ResultSheet, Stopwatch};
use flash_core::{run_fault_experiment, ExperimentConfig};
use flash_machine::{FaultSpec, MachineParams};
use flash_net::NodeId;

fn p4_times(l2_mb: f64, mem_mb: u64, seed: u64) -> (f64, f64) {
    let mut params = MachineParams::table_5_1();
    params.n_nodes = 4;
    params.l2_mb = l2_mb;
    params.mem_mb_per_node = mem_mb;
    let mut cfg = ExperimentConfig::new(params, seed);
    cfg.fill_ops = 200;
    cfg.total_ops = 2_000;
    let out = run_fault_experiment(&cfg, FaultSpec::Node(NodeId(1)));
    assert!(out.passed(), "l2={l2_mb} mem={mem_mb}: {}", out.validation);
    (
        out.recovery.writeback_time().unwrap().as_millis_f64(),
        out.recovery.p4_time().unwrap().as_millis_f64(),
    )
}

fn main() {
    banner(
        "Figure 5.6: cache coherence protocol recovery times",
        "Teodosiu et al., ISCA'97, Fig 5.6 (WB linear in L2; reset linear in memory)",
    );
    let sw = Stopwatch::start();

    println!("left graph: L2 size sweep (4 nodes, 4 MB/node):");
    println!("{:>10} {:>12} {:>12}", "L2 [MB]", "WB [ms]", "P4 [ms]");
    let mut sheet = ResultSheet::new("fig_5_6_p4_scaling", "Figure 5.6", &["wb_ms", "p4_ms"]);
    let mut wb_per_mb = Vec::new();
    for &l2 in &[0.5f64, 1.0, 2.0, 4.0] {
        let (wb, p4) = p4_times(l2, 4, 11);
        wb_per_mb.push(wb / l2);
        sheet.push(format!("l2_mb={l2}"), &[wb, p4]);
        println!("{l2:>10.1} {wb:>12.3} {p4:>12.3}");
    }
    let spread = wb_per_mb.iter().cloned().fold(f64::MIN, f64::max)
        / wb_per_mb.iter().cloned().fold(f64::MAX, f64::min);
    println!("WB-per-MB spread across the sweep: {spread:.3}x (1.0 = perfectly linear)");

    println!("\nright graph: memory-per-node sweep (4 nodes, 1 MB L2):");
    println!(
        "{:>10} {:>12} {:>12} {:>14}",
        "mem [MB]", "WB [ms]", "P4 [ms]", "scan [ms]"
    );
    let mut scan_per_mb = Vec::new();
    for &mem in &[1u64, 8, 16, 32, 64] {
        let (wb, p4) = p4_times(1.0, mem, 12);
        let scan = p4 - wb;
        scan_per_mb.push(scan / mem as f64);
        sheet.push(format!("mem_mb={mem}"), &[wb, p4]);
        println!("{mem:>10} {wb:>12.3} {p4:>12.3} {scan:>14.3}");
    }

    println!("\npaper shape: both components linear — flush ~1.2us/line of L2, directory");
    println!(
        "scan ~75ns/line of node memory (calibrated constants).   [{:.1}s host]",
        sw.secs()
    );
    assert!(spread < 1.6, "WB must scale roughly linearly with L2 size");
    sheet.write();
}
