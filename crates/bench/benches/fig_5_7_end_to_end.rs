//! **Figure 5.7 — End-to-end recovery times.**
//!
//! The duration user processes stay suspended after a hardware fault:
//! hardware recovery (HW) plus Hive's operating-system recovery (HW+OS),
//! for 2–16 nodes with one Hive cell per node and 16 MB per node (1 MB L2).
//! The paper notes OS recovery scales with the number of *cells* (not
//! nodes), so large machines running several nodes per cell recover faster
//! than this one-cell-per-node curve suggests.

use flash_bench::{banner, ResultSheet, Stopwatch};
use flash_core::RecoveryConfig;
use flash_hive::{run_parallel_make, HiveConfig};
use flash_machine::{FaultSpec, MachineParams};
use flash_net::NodeId;

fn main() {
    banner(
        "Figure 5.7: end-to-end recovery times",
        "Teodosiu et al., ISCA'97, Fig 5.7 (1 cell/node, 16 MB/node, 1 MB L2)",
    );
    let sw = Stopwatch::start();
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "nodes", "HW [ms]", "OS [ms]", "HW+OS [ms]"
    );
    let mut sheet = ResultSheet::new(
        "fig_5_7_end_to_end",
        "Figure 5.7",
        &["hw_ms", "os_ms", "total_ms"],
    );
    for &n in &[2usize, 4, 8, 16] {
        let mut params = MachineParams::table_5_1();
        params.n_nodes = n;
        params.mem_mb_per_node = 16;
        params.l2_mb = 1.0;
        let hive = HiveConfig {
            n_cells: n,
            files_per_task: 3,
            blocks_per_file: 48,
            out_blocks: 24,
            compute_ns: 40_000,
            ..HiveConfig::default()
        };
        let out = run_parallel_make(
            params,
            &hive,
            RecoveryConfig::default(),
            Some(FaultSpec::Node(NodeId(1))),
            77,
        );
        assert!(
            out.finished && out.unaffected_all_completed(),
            "n={n}: {:?}",
            out.compiles
        );
        let hw = out
            .recovery
            .phases
            .total()
            .expect("recovery ran")
            .as_millis_f64();
        let os = out.os_time.as_millis_f64();
        sheet.push(format!("nodes={n}"), &[hw, os, hw + os]);
        println!("{n:>6} {hw:>12.3} {os:>12.3} {:>12.3}", hw + os);
    }
    println!("\npaper shape: tens to ~200 ms, OS part growing with the cell count and");
    println!(
        "dominating at larger configurations.   [{:.1}s host]",
        sw.secs()
    );
    sheet.write();
}
