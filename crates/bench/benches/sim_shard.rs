//! **Sharded executor vs. serial engine on one recovery cycle.**
//!
//! Runs the 128-node fig-5.5-style recovery cycle (fill, node-fault
//! injection, four-phase recovery, post-recovery drain to quiescence)
//! once on the serial engine and once per worker count on the sharded
//! executor at 8 regions, asserts that every sharded run's trace hash is
//! bit-identical across worker counts (the W-invariance contract), and
//! reports wall-clock ratios. The committed numbers live in
//! `BENCH_sim_shard.json`.
//!
//! Environment knobs:
//!
//! * `FLASH_SHARD_OPS=N` — per-node workload length (default 3000; the
//!   CI smoke run uses a small value to exercise the path and the
//!   determinism assertion, not the speedup);
//! * `FLASH_BENCH_JSON=path` — additionally write the results as JSON;
//! * `FLASH_BENCH_CHECK=path` — compare against the committed
//!   `BENCH_sim_shard.json` and exit non-zero on a regression. The
//!   1-worker overhead ceiling and the determinism assertion gate on
//!   every host; the 8-worker speedup floor only gates when the host
//!   actually has 8 hardware threads to parallelize over.

use flash_bench::{banner, Stopwatch};
use flash_core::{run_fault_experiment, run_fault_experiment_sharded, ExperimentConfig};
use flash_machine::{FaultSpec, MachineParams, ShardPlan};
use flash_net::NodeId;

const REGIONS: usize = 8;
const WORKERS: [usize; 4] = [1, 2, 4, 8];

struct Arm {
    name: String,
    secs: f64,
    hash: u64,
    passed: bool,
}

fn config() -> ExperimentConfig {
    let mut params = MachineParams::table_5_1();
    params.n_nodes = 128;
    params.mem_mb_per_node = 1;
    params.l2_mb = 1.0;
    let mut cfg = ExperimentConfig::new(params, 7);
    cfg.fill_ops = 100;
    cfg.total_ops = std::env::var("FLASH_SHARD_OPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3_000);
    cfg
}

fn emit_json(path: &str, cfg: &ExperimentConfig, arms: &[Arm], parallelism: usize) {
    let serial = &arms[0];
    let mut s = String::from("{\n  \"schema\": \"flash-bench/sim-shard/v1\",\n");
    s.push_str(&format!(
        "  \"total_ops\": {},\n  \"regions\": {REGIONS},\n  \"available_parallelism\": {parallelism},\n  \"arms\": [\n",
        cfg.total_ops
    ));
    for (i, a) in arms.iter().enumerate() {
        let sep = if i + 1 == arms.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"secs\": {:.4}, \"speedup_vs_serial\": {:.3}, \"hash\": \"{:#018x}\"}}{}\n",
            a.name,
            a.secs,
            serial.secs / a.secs,
            a.hash,
            sep,
        ));
    }
    s.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, s) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("results written to {path}");
    }
}

/// Pulls a named numeric field out of the committed baseline, line-wise
/// (same idiom as the sim-speed and sweep-fork checkers).
fn extract_num(text: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    for line in text.lines() {
        let Some(k) = line.find(&tag) else { continue };
        let rest = line[k + tag.len()..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.'))
            .unwrap_or(rest.len());
        if let Ok(v) = rest[..end].parse() {
            return Some(v);
        }
    }
    None
}

fn check_floors(path: &str, arms: &[Arm], parallelism: usize) -> usize {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read baseline {path}: {e}");
            return 1;
        }
    };
    let serial = &arms[0];
    let mut regressions = 0;

    // The 1-worker arm measures pure discretization overhead (windows,
    // unfold/fold) with no parallelism in play, so it gates on any host.
    if let Some(ceiling) = extract_num(&text, "ceiling_overhead_1w") {
        let w1 = arms
            .iter()
            .find(|a| a.name == "sharded_8r_1w")
            .expect("1-worker arm always runs");
        let ratio = w1.secs / serial.secs;
        let verdict = if ratio > ceiling {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!("check sharded_8r_1w overhead {ratio:.2}x vs ceiling {ceiling:.2}x {verdict}");
    }

    // The 8-worker floor needs 8 hardware threads to mean anything; on a
    // smaller host the threads time-share one core and the "speedup" only
    // measures barrier thrash.
    if let Some(floor) = extract_num(&text, "floor_speedup_8w") {
        if parallelism >= 8 {
            let w8 = arms
                .iter()
                .find(|a| a.name == "sharded_8r_8w")
                .expect("8-worker arm always runs");
            let speedup = serial.secs / w8.secs;
            let verdict = if speedup < floor {
                regressions += 1;
                "REGRESSED"
            } else {
                "ok"
            };
            println!("check sharded_8r_8w speedup {speedup:.2}x vs floor {floor:.2}x {verdict}");
        } else {
            println!(
                "check sharded_8r_8w speedup skipped (host parallelism {parallelism} < 8, floor {floor:.2}x not meaningful)"
            );
        }
    }
    regressions
}

fn main() {
    banner(
        "sim_shard: sharded executor vs. serial engine, 128-node recovery cycle",
        "intra-run parallelism with the bit-identical W-invariance contract",
    );
    let cfg = config();
    let fault = || FaultSpec::Node(NodeId(1));
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sw = Stopwatch::start();

    let t = Stopwatch::start();
    let out = run_fault_experiment(&cfg, fault());
    let mut arms = vec![Arm {
        name: "serial".into(),
        secs: t.secs(),
        hash: out.trace_hash,
        passed: out.passed(),
    }];
    for w in WORKERS {
        let t = Stopwatch::start();
        let out = run_fault_experiment_sharded(&cfg, fault(), ShardPlan::new(REGIONS, w));
        arms.push(Arm {
            name: format!("sharded_{REGIONS}r_{w}w"),
            secs: t.secs(),
            hash: out.trace_hash,
            passed: out.passed(),
        });
    }

    println!(
        "\n{:<16} {:>9} {:>9} {:>20}",
        "arm", "secs", "vs serial", "trace hash"
    );
    let serial_secs = arms[0].secs;
    for a in &arms {
        println!(
            "{:<16} {:>8.2}s {:>8.2}x {:>#20x}",
            a.name,
            a.secs,
            serial_secs / a.secs,
            a.hash
        );
    }
    println!(
        "[{:.1}s host total, available parallelism {}]",
        sw.secs(),
        parallelism
    );

    // W-invariance: every sharded arm must produce the same trace,
    // bit for bit, regardless of worker count.
    let sharded_hash = arms[1].hash;
    let mismatches = arms[1..]
        .iter()
        .filter(|a| {
            if a.hash != sharded_hash {
                eprintln!("DETERMINISM MISMATCH {}: {:#x}", a.name, a.hash);
            }
            a.hash != sharded_hash
        })
        .count();
    assert!(
        arms.iter().all(|a| a.passed),
        "every arm must complete recovery and validate"
    );

    if let Ok(path) = std::env::var("FLASH_BENCH_JSON") {
        emit_json(&path, &cfg, &arms, parallelism);
    }
    assert_eq!(
        mismatches, 0,
        "sharded trace hashes must be identical across worker counts"
    );
    if let Ok(path) = std::env::var("FLASH_BENCH_CHECK") {
        let regressions = check_floors(&path, &arms, parallelism);
        if regressions > 0 {
            eprintln!("{regressions} check(s) regressed vs {path}");
            std::process::exit(1);
        }
        println!("floor check passed vs {path}");
    }
}
