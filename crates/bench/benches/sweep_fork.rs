//! **Checkpoint/fork sweep vs. from-scratch — the speedup evidence.**
//!
//! Runs the Table 5.3 (validation) and Table 5.4 (end-to-end) sweeps twice
//! at equal N — once through the checkpoint/fork engine, once from scratch
//! with identical seeds — asserts every forked run's trace hash is
//! bit-identical to its from-scratch twin, and reports the wall-clock
//! speedup. The committed numbers live in `BENCH_sweep_fork.json`.
//!
//! Environment knobs:
//!
//! * `FLASH_RUNS=N` — runs per fault type on each side (default 64; the
//!   speedup is prelude-amortization, so tiny N underreports it — the CI
//!   smoke run at `FLASH_RUNS=5` exercises the path and the determinism
//!   assertion, not the speedup);
//! * `FLASH_BENCH_JSON=path` — additionally write the results as JSON;
//! * `FLASH_BENCH_CHECK=path` — compare against the committed
//!   `BENCH_sweep_fork.json` and exit non-zero if either sweep falls below
//!   its derated `floor_speedup`.

use flash_bench::{
    banner, runs_from_env, table_5_3_experiment, table_5_4_hive, time_fault_sweep,
    time_parallel_make_sweep, Stopwatch, SweepConfig, SweepTiming, DEFAULT_MAKE_STAGES,
};
use flash_core::{FaultKind, RecoveryConfig};
use flash_machine::MachineParams;

struct Arm {
    name: &'static str,
    timing: SweepTiming,
    mismatches: usize,
}

fn check_hashes<O>(
    forked: &[flash_bench::SweepRun<O>],
    scratch: &[flash_bench::SweepRun<O>],
    hash: impl Fn(&O) -> u64,
) -> usize {
    assert_eq!(forked.len(), scratch.len(), "unequal N between arms");
    forked
        .iter()
        .zip(scratch)
        .filter(|(f, s)| {
            let differ = hash(&f.outcome) != hash(&s.outcome);
            if differ {
                eprintln!(
                    "DETERMINISM MISMATCH {:?} run {} stage {}%",
                    f.kind, f.run, f.stage_pct
                );
            }
            differ
        })
        .count()
}

fn emit_json(path: &str, runs: u64, arms: &[Arm]) {
    let mut s = String::from("{\n  \"schema\": \"flash-bench/sweep-fork/v1\",\n");
    s.push_str(&format!("  \"runs_per_kind\": {runs},\n  \"sweeps\": [\n"));
    for (i, a) in arms.iter().enumerate() {
        let sep = if i + 1 == arms.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"runs\": {}, \"forked_s\": {:.4}, \
             \"scratch_s\": {:.4}, \"speedup\": {:.3}, \"hash_mismatches\": {}}}{}\n",
            a.name,
            a.timing.runs,
            a.timing.forked_secs,
            a.timing.scratch_secs,
            a.timing.speedup(),
            a.mismatches,
            sep,
        ));
    }
    s.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, s) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("results written to {path}");
    }
}

/// Pulls `"name": ... "floor_speedup": x` pairs out of the committed
/// baseline (same line-wise idiom as the sim-speed bench checker).
fn parse_floors(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(nk) = line.find("\"name\":") else {
            continue;
        };
        let rest = &line[nk + 7..];
        let Some(start) = rest.find('"') else {
            continue;
        };
        let Some(end) = rest[start + 1..].find('"') else {
            continue;
        };
        let name = rest[start + 1..start + 1 + end].to_string();
        let Some(fk) = line.find("\"floor_speedup\":") else {
            continue;
        };
        let rest = line[fk + 16..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.'))
            .unwrap_or(rest.len());
        if let Ok(v) = rest[..end].parse() {
            out.push((name, v));
        }
    }
    out
}

fn check_floors(path: &str, arms: &[Arm]) -> usize {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read baseline {path}: {e}");
            return 1;
        }
    };
    let floors = parse_floors(&text);
    let mut regressions = 0;
    for a in arms {
        let Some((_, floor)) = floors.iter().find(|(n, _)| n == a.name) else {
            println!("check {:<28} no floor_speedup entry, skipped", a.name);
            continue;
        };
        let s = a.timing.speedup();
        let verdict = if s < *floor {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "check {:<28} {s:.2}x vs floor {floor:.2}x {verdict}",
            a.name
        );
    }
    regressions
}

fn main() {
    banner(
        "sweep_fork: checkpoint/fork sweep vs. from-scratch at equal N",
        "engine behind Tables 5.3/5.4 at paper-scale run counts",
    );
    let runs = runs_from_env(64);
    let mut cfg = SweepConfig::new(runs as usize);
    cfg.forks_per_checkpoint = 8;
    let sw = Stopwatch::start();

    // Arm 1: the Table 5.3 validation sweep, all five fault types.
    let (forked, scratch, timing) = time_fault_sweep(&cfg, &FaultKind::ALL, table_5_3_experiment);
    let mismatches = check_hashes(&forked, &scratch, |o| o.trace_hash);
    let validation = Arm {
        name: "validation_table_5_3",
        timing,
        mismatches,
    };

    // Arm 2: the Table 5.4 end-to-end sweep over the injection ladder.
    let kinds = [
        FaultKind::Node,
        FaultKind::Router,
        FaultKind::Link,
        FaultKind::InfiniteLoop,
    ];
    let (forked, scratch, timing) = time_parallel_make_sweep(
        &cfg,
        &kinds,
        DEFAULT_MAKE_STAGES,
        MachineParams::table_5_1(),
        &table_5_4_hive(),
        RecoveryConfig::default(),
    );
    let mismatches = check_hashes(&forked, &scratch, |o| o.trace_hash);
    let end_to_end = Arm {
        name: "end_to_end_table_5_4",
        timing,
        mismatches,
    };

    let arms = [validation, end_to_end];
    println!(
        "\n{:<28} {:>6} {:>10} {:>10} {:>9}",
        "sweep", "runs", "forked", "scratch", "speedup"
    );
    let mut total_mismatches = 0;
    for a in &arms {
        total_mismatches += a.mismatches;
        println!(
            "{:<28} {:>6} {:>9.2}s {:>9.2}s {:>8.2}x",
            a.name,
            a.timing.runs,
            a.timing.forked_secs,
            a.timing.scratch_secs,
            a.timing.speedup()
        );
    }
    println!("[{:.1}s host total]", sw.secs());

    if let Ok(path) = std::env::var("FLASH_BENCH_JSON") {
        emit_json(&path, runs, &arms);
    }
    assert_eq!(
        total_mismatches, 0,
        "every forked run must hash identically to its from-scratch twin"
    );
    if let Ok(path) = std::env::var("FLASH_BENCH_CHECK") {
        let regressions = check_floors(&path, &arms);
        if regressions > 0 {
            eprintln!("{regressions} sweep(s) below their committed floor_speedup in {path}");
            std::process::exit(1);
        }
        println!("speedup floor check passed vs {path}");
    }
}
