//! **Table 5.3 — Validation experiments.**
//!
//! The paper ran 200 stand-alone validation experiments per fault type on
//! the 8-node configuration of Table 5.1 and observed 0 failures: after
//! recovery, every accessible line held correct data and no more lines were
//! marked incoherent than necessary. This bench regenerates the table.
//!
//! Run counts scale with `FLASH_RUNS` (default 200 per type, as in the
//! paper; set lower for a quick pass).

use flash_bench::{banner, runs_from_env, Stopwatch};
use flash_core::{random_fault, run_fault_experiment, ExperimentConfig, FaultKind};
use flash_machine::MachineParams;
use flash_sim::DetRng;
use std::sync::Mutex;

fn run_type(kind: FaultKind, runs: u64, threads: usize) -> (u64, u64) {
    let failures = Mutex::new(0u64);
    let next = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let seed = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if seed >= runs {
                    return;
                }
                let params = MachineParams::table_5_1();
                let mut rng = DetRng::new(seed.wrapping_mul(0x9E3779B9) ^ kind as u64);
                let fault = random_fault(kind, params.n_nodes, &mut rng);
                let mut cfg = ExperimentConfig::new(params, seed);
                cfg.fill_ops = 1_500; // fill at least half the (1 MB) caches'
                cfg.total_ops = 4_000; // worth of touched lines, then keep running
                let out = run_fault_experiment(&cfg, fault.clone());
                if !out.passed() {
                    let mut f = failures.lock().expect("no poisoned lock");
                    *f += 1;
                    eprintln!(
                        "FAILURE {kind:?} seed {seed} {fault:?}: {} (recovery completed: {})",
                        out.validation,
                        out.recovery.completed()
                    );
                }
            });
        }
    });
    (runs, failures.into_inner().expect("no poisoned lock"))
}

fn main() {
    banner(
        "Table 5.3: validation experiments",
        "Teodosiu et al., ISCA'97, Table 5.3 (200 runs per fault type, 0 failures)",
    );
    let runs = runs_from_env(200);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let sw = Stopwatch::start();
    println!(
        "{:<38} {:>14} {:>22}",
        "Injected fault type", "# of", "# of failed"
    );
    println!("{:<38} {:>14} {:>22}", "", "experiments", "experiments");
    let rows = [
        (FaultKind::Node, "Node failure"),
        (FaultKind::Router, "Router failure"),
        (FaultKind::Link, "Link failure"),
        (FaultKind::InfiniteLoop, "Infinite loop in MAGIC handler"),
        (FaultKind::FalseAlarm, "Recovery triggered by false alarm"),
    ];
    let mut total_failed = 0;
    for (kind, label) in rows {
        let (n, failed) = run_type(kind, runs, threads);
        total_failed += failed;
        println!("{label:<38} {n:>14} {failed:>22}");
    }
    println!(
        "\npaper: 0 failed / 1000; measured: {total_failed} failed / {} ({:.1}s host)",
        runs * 5,
        sw.secs()
    );
    assert_eq!(total_failed, 0, "validation must be failure-free");
}
