//! **Table 5.3 — Validation experiments.**
//!
//! The paper ran 200 stand-alone validation experiments per fault type on
//! the 8-node configuration of Table 5.1 and observed 0 failures: after
//! recovery, every accessible line held correct data and no more lines were
//! marked incoherent than necessary. This bench regenerates the table.
//!
//! Runs go through the checkpoint/fork sweep engine: each fill seed's
//! cache-fill prelude executes once and every fault type forks its runs
//! from the warm snapshot, so the paper's 1000-run sweep costs a fraction
//! of the from-scratch wall clock (the `sweep_fork` bench measures the
//! speedup; fork determinism is asserted in `tests/checkpoint_fork.rs`).
//!
//! Run counts scale with `FLASH_RUNS` (default 200 per type, as in the
//! paper; set lower for a quick pass).

use flash_bench::{
    banner, runs_from_env, sweep_fault_experiments, table_5_3_experiment, ResultSheet, Stopwatch,
    SweepConfig,
};
use flash_core::FaultKind;

fn main() {
    banner(
        "Table 5.3: validation experiments",
        "Teodosiu et al., ISCA'97, Table 5.3 (200 runs per fault type, 0 failures)",
    );
    let runs = runs_from_env(200);
    let cfg = SweepConfig::new(runs as usize);
    let sw = Stopwatch::start();
    let rows = [
        (FaultKind::Node, "Node failure"),
        (FaultKind::Router, "Router failure"),
        (FaultKind::Link, "Link failure"),
        (FaultKind::InfiniteLoop, "Infinite loop in MAGIC handler"),
        (FaultKind::FalseAlarm, "Recovery triggered by false alarm"),
    ];
    let kinds: Vec<FaultKind> = rows.iter().map(|&(k, _)| k).collect();
    let results = sweep_fault_experiments(&cfg, &kinds, table_5_3_experiment);

    println!(
        "{:<38} {:>14} {:>22}",
        "Injected fault type", "# of", "# of failed"
    );
    println!("{:<38} {:>14} {:>22}", "", "experiments", "experiments");
    let mut sheet = ResultSheet::new(
        "table_5_3_validation",
        "Table 5.3",
        &["experiments", "failed"],
    );
    let mut total_failed = 0u64;
    for (kind, label) in rows {
        let mut n = 0u64;
        let mut failed = 0u64;
        for r in results.iter().filter(|r| r.kind as u64 == kind as u64) {
            n += 1;
            if !r.outcome.passed() {
                failed += 1;
                eprintln!(
                    "FAILURE {kind:?} fill_seed {} run {}: {} (recovery completed: {})",
                    r.fill_seed,
                    r.run,
                    r.outcome.validation,
                    r.outcome.recovery.completed()
                );
            }
        }
        total_failed += failed;
        println!("{label:<38} {n:>14} {failed:>22}");
        sheet.push(label, &[n as f64, failed as f64]);
    }
    println!(
        "\npaper: 0 failed / 1000; measured: {total_failed} failed / {} ({:.1}s host, checkpoint/fork sweep)",
        runs * 5,
        sw.secs()
    );
    sheet.write();
    assert_eq!(total_failed, 0, "validation must be failure-free");
}
