//! **Table 5.4 — End-to-end recovery experiments.**
//!
//! The paper injected the four hardware fault types into an 8-cell Hive
//! system running a parallel make and checked the compiles not affected by
//! the fault: 91.6 % of runs finished them correctly, with all failures
//! attributed to operating-system bugs around incoherent lines rather than
//! incorrect hardware recovery.
//!
//! Our Hive *model* does not reproduce IRIX's bugs, so the expected success
//! rate here is 100 %; the row structure matches the paper's table.
//! `FLASH_RUNS` scales the per-type run count (paper: 215–394 per type).

use flash_bench::{banner, runs_from_env, Stopwatch};
use flash_core::{random_fault, FaultKind, RecoveryConfig};
use flash_hive::{run_parallel_make, HiveConfig};
use flash_machine::MachineParams;
use flash_sim::DetRng;
use std::sync::Mutex;

fn run_type(kind: FaultKind, runs: u64, threads: usize) -> (u64, u64) {
    let failures = Mutex::new(0u64);
    let next = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let seed = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if seed >= runs {
                    return;
                }
                let params = MachineParams::table_5_1();
                let hive = HiveConfig {
                    files_per_task: 3,
                    blocks_per_file: 48,
                    out_blocks: 24,
                    compute_ns: 40_000,
                    ..HiveConfig::default()
                };
                let mut rng = DetRng::new(seed.wrapping_mul(0xB5297A4D) ^ kind as u64);
                let fault = random_fault(kind, params.n_nodes, &mut rng);
                let out = run_parallel_make(
                    params,
                    &hive,
                    RecoveryConfig::default(),
                    Some(fault.clone()),
                    seed,
                );
                if !(out.finished && out.unaffected_all_completed()) {
                    let mut f = failures.lock().expect("no poisoned lock");
                    *f += 1;
                    eprintln!(
                        "FAILURE {kind:?} seed {seed} {fault:?}: finished={} compiles={:?}",
                        out.finished, out.compiles
                    );
                }
            });
        }
    });
    (runs, failures.into_inner().expect("no poisoned lock"))
}

fn main() {
    banner(
        "Table 5.4: end-to-end recovery experiments",
        "Teodosiu et al., ISCA'97, Table 5.4 (1187 runs, 99 failed — all OS bugs)",
    );
    let runs = runs_from_env(50);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let sw = Stopwatch::start();
    println!(
        "{:<38} {:>14} {:>22}",
        "Injected fault type", "# of", "# of failed"
    );
    println!("{:<38} {:>14} {:>22}", "", "experiments", "experiments");
    let rows = [
        (FaultKind::Node, "Node failure"),
        (FaultKind::Router, "Router failure"),
        (FaultKind::Link, "Link failure"),
        (FaultKind::InfiniteLoop, "Infinite loop in MAGIC handler"),
    ];
    let mut total = 0;
    let mut total_failed = 0;
    for (kind, label) in rows {
        let (n, failed) = run_type(kind, runs, threads);
        total += n;
        total_failed += failed;
        println!("{label:<38} {n:>14} {failed:>22}");
    }
    println!("{:<38} {total:>14} {total_failed:>22}", "Total");
    let pct = 100.0 * (total - total_failed) as f64 / total as f64;
    println!("\npaper: 91.6% of unaffected compiles finished (failures were IRIX/Hive bugs);");
    println!(
        "measured: {pct:.1}% (our OS model has no such bugs)   [{:.1}s host]",
        sw.secs()
    );
    assert_eq!(
        total_failed, 0,
        "hardware recovery must never fail the unaffected compiles"
    );
}
