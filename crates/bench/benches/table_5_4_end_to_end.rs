//! **Table 5.4 — End-to-end recovery experiments.**
//!
//! The paper injected the four hardware fault types into an 8-cell Hive
//! system running a parallel make — at random times while the benchmark was
//! running — and checked the compiles not affected by the fault: 91.6 % of
//! runs finished them correctly, with all failures attributed to
//! operating-system bugs around incoherent lines rather than incorrect
//! hardware recovery.
//!
//! Our Hive *model* does not reproduce IRIX's bugs, so the expected success
//! rate here is 100 %; the row structure matches the paper's table,
//! including the paper's own per-type run counts (310/215/268/394). Those
//! counts are affordable because runs go through the checkpoint/fork sweep
//! engine: each group boots the make once, warms it up the
//! [`DEFAULT_MAKE_STAGES`] injection ladder, and forks every per-fault run
//! from the rung's snapshot (the `sweep_fork` bench measures the speedup
//! over from-scratch; determinism is asserted in
//! `tests/checkpoint_fork.rs`).
//!
//! `FLASH_RUNS`, when set, overrides the per-type run count uniformly.

use flash_bench::{
    banner, runs_from_lookup, sweep_parallel_make, table_5_4_hive, ResultSheet, Stopwatch,
    SweepConfig, DEFAULT_MAKE_STAGES, TABLE_5_4_RUNS,
};
use flash_core::RecoveryConfig;
use flash_machine::MachineParams;

fn main() {
    banner(
        "Table 5.4: end-to-end recovery experiments",
        "Teodosiu et al., ISCA'97, Table 5.4 (1187 runs, 99 failed — all OS bugs)",
    );
    let params = MachineParams::table_5_1();
    let hive = table_5_4_hive();
    let labels = [
        "Node failure",
        "Router failure",
        "Link failure",
        "Infinite loop in MAGIC handler",
    ];
    let sw = Stopwatch::start();
    println!(
        "{:<38} {:>14} {:>22}",
        "Injected fault type", "# of", "# of failed"
    );
    println!("{:<38} {:>14} {:>22}", "", "experiments", "experiments");
    let mut sheet = ResultSheet::new(
        "table_5_4_end_to_end",
        "Table 5.4",
        &["experiments", "failed"],
    );
    let mut total = 0u64;
    let mut total_failed = 0u64;
    for ((kind, paper_n), label) in TABLE_5_4_RUNS.into_iter().zip(labels) {
        // One sweep per fault type so each type runs at the paper's own N.
        let runs = runs_from_lookup(paper_n, |k| std::env::var(k).ok());
        let cfg = SweepConfig::new(runs as usize);
        let results = sweep_parallel_make(
            &cfg,
            &[kind],
            DEFAULT_MAKE_STAGES,
            params,
            &hive,
            RecoveryConfig::default(),
        );
        let mut failed = 0u64;
        for r in &results {
            if !(r.outcome.finished && r.outcome.unaffected_all_completed()) {
                failed += 1;
                eprintln!(
                    "FAILURE {kind:?} fill_seed {} run {} stage {}%: finished={} compiles={:?}",
                    r.fill_seed, r.run, r.stage_pct, r.outcome.finished, r.outcome.compiles
                );
            }
        }
        let n = results.len() as u64;
        total += n;
        total_failed += failed;
        println!("{label:<38} {n:>14} {failed:>22}");
        sheet.push(label, &[n as f64, failed as f64]);
    }
    println!("{:<38} {total:>14} {total_failed:>22}", "Total");
    sheet.push("Total", &[total as f64, total_failed as f64]);
    let pct = 100.0 * (total - total_failed) as f64 / total.max(1) as f64;
    println!("\npaper: 91.6% of unaffected compiles finished (failures were IRIX/Hive bugs);");
    println!(
        "measured: {pct:.1}% (our OS model has no such bugs)   [{:.1}s host, checkpoint/fork sweep]",
        sw.secs()
    );
    sheet.write();
    assert_eq!(
        total_failed, 0,
        "hardware recovery must never fail the unaffected compiles"
    );
}
