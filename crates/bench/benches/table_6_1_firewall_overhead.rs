//! **Section 6.2 / Table 6.1 — the cost of the containment features.**
//!
//! All containment features except the firewall live in dedicated logic or
//! unused protocol-processor instruction slots and add zero handler
//! occupancy; the firewall's ACL check is executed by the handlers that
//! service inter-cell writes. The paper's detailed simulations put the
//! average increase in inter-cell write miss latency below 7 % of the
//! fastest inter-node write miss; this bench measures the same quantity on
//! our model (simulated time, not host time).

use flash_bench::{banner, runs_from_env, Stopwatch};
use flash_coherence::{LineAddr, NodeSet};
use flash_core::{build_machine, RecoveryConfig};
use flash_machine::{MachineParams, ProcOp, Script, Workload};
use flash_net::NodeId;
use flash_sim::SimTime;

/// Average latency of one inter-cell write miss, in simulated nanoseconds.
fn write_miss_latency_ns(firewall_enabled: bool, writes: u64) -> f64 {
    let mut params = MachineParams::table_5_1();
    params.n_nodes = 4;
    params.magic.firewall_enabled = firewall_enabled;
    let mk = move |n: NodeId| -> Box<dyn Workload> {
        if n == NodeId(1) {
            // Distinct lines homed on node 0: every store is a remote
            // (inter-cell) write miss.
            Box::new(Script::new(
                (0..writes).map(|i| ProcOp::Write(LineAddr(100 + i))),
            ))
        } else {
            Box::new(Script::new([]))
        }
    };
    let mut m = build_machine(params, RecoveryConfig::default(), mk, 3);
    // Hive-style ACL: node 0's pages writable by nodes 0 and 1, so the
    // check executes and passes.
    {
        let st = m.st_mut();
        let pages = st.layout.lines_per_node() / 32;
        let acl: NodeSet = [NodeId(0), NodeId(1)].into_iter().collect();
        for p in 0..pages {
            st.nodes[0]
                .firewall
                .restrict(flash_coherence::PageAddr(p), acl);
        }
    }
    m.start();
    let t0 = m.now();
    m.run_until(SimTime::MAX);
    let elapsed = m.now().since(t0).as_nanos();
    elapsed as f64 / writes as f64
}

fn main() {
    banner(
        "Table 6.1 / Section 6.2: firewall overhead on inter-cell writes",
        "Teodosiu et al., ISCA'97, Section 6.2 (< 7% of an inter-node write miss)",
    );
    let writes = runs_from_env(2_000);
    let sw = Stopwatch::start();
    let off = write_miss_latency_ns(false, writes);
    let on = write_miss_latency_ns(true, writes);
    let overhead = on - off;
    let pct = 100.0 * overhead / off;
    println!("inter-cell write miss latency, firewall off: {off:>9.1} ns");
    println!("inter-cell write miss latency, firewall on:  {on:>9.1} ns");
    println!("firewall ACL check overhead:                 {overhead:>9.1} ns ({pct:.2}%)");
    println!();
    println!("zero-cost features (dedicated logic / free instruction slots):");
    println!("  node map, truncated-message dispatch, vector remap, range check,");
    println!("  memory-operation timeouts, NAK counters, incoherent-line checks");
    println!(
        "\npaper: < 7% increase; measured: {pct:.2}%.   [{:.1}s host]",
        sw.secs()
    );
    assert!(overhead >= 0.0, "firewall can only add latency");
    assert!(
        pct < 7.0,
        "firewall overhead must stay under the paper's 7% bound"
    );
}
