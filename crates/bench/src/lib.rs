//! # flash-bench — the paper's evaluation, regenerated
//!
//! One benchmark target per table and figure of the paper's Section 5 (plus
//! the Section 6.2 firewall-overhead claim and two ablations of design
//! choices). The figure/table targets are `harness = false` binaries that
//! run simulated experiments and print the same rows/series the paper
//! reports — in *simulated* time; `criterion_sim_speed` measures host-side
//! simulator throughput with a self-contained min-of-N timing harness.
//!
//! | target | reproduces |
//! |---|---|
//! | `table_5_3_validation` | Table 5.3 (validation experiments) |
//! | `table_5_4_end_to_end` | Table 5.4 (end-to-end recovery) |
//! | `fig_5_5_recovery_scaling` | Figure 5.5 (recovery time vs. nodes) |
//! | `fig_5_6_p4_scaling` | Figure 5.6 (P4 vs. L2 / memory size) |
//! | `fig_5_7_end_to_end` | Figure 5.7 (HW+OS suspension time) |
//! | `table_6_1_firewall_overhead` | §6.2 firewall cost (< 7 %) |
//! | `ablation_speculative_ping` | §4.2 trigger-wave speedup |
//! | `ablation_bft_hints` | §4.3 deferred-BFT hint scheduling |
//!
//! Run everything with `cargo bench -p flash-bench`; each target accepts a
//! `FLASH_RUNS` environment variable to scale the run counts.

mod results;

pub use results::{results_dir, ResultSheet, Row};

use std::time::Instant;

/// Reads a run-count override from `FLASH_RUNS`, defaulting to `default`.
pub fn runs_from_env(default: u64) -> u64 {
    runs_from_lookup(default, |k| std::env::var(k).ok())
}

/// [`runs_from_env`] with an injectable environment lookup, so tests can
/// exercise the parsing without mutating real process environment (which
/// is unsound with Rust's parallel test runner and made the env test
/// flaky).
pub fn runs_from_lookup(default: u64, lookup: impl Fn(&str) -> Option<String>) -> u64 {
    lookup("FLASH_RUNS")
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// A tiny stopwatch for host-side progress reporting.
#[derive(Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Elapsed host seconds.
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Prints the standard bench banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("reproduces: {paper_ref}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_parses() {
        // Injectable lookup: no process-env mutation, so this cannot race
        // with other tests (std::env::set_var/remove_var are process-global).
        assert_eq!(runs_from_lookup(7, |_| None), 7);
        assert_eq!(runs_from_lookup(7, |_| Some("12".into())), 12);
        assert_eq!(runs_from_lookup(7, |_| Some("junk".into())), 7);
        assert_eq!(runs_from_lookup(7, |_| Some("".into())), 7);
    }

    #[test]
    fn stopwatch_advances() {
        let sw = Stopwatch::start();
        assert!(sw.secs() >= 0.0);
    }
}
