//! # flash-bench — the paper's evaluation, regenerated
//!
//! One benchmark target per table and figure of the paper's Section 5 (plus
//! the Section 6.2 firewall-overhead claim and two ablations of design
//! choices). The figure/table targets are `harness = false` binaries that
//! run simulated experiments and print the same rows/series the paper
//! reports — in *simulated* time; `criterion_sim_speed` measures host-side
//! simulator throughput with a self-contained min-of-N timing harness.
//!
//! | target | reproduces |
//! |---|---|
//! | `table_5_3_validation` | Table 5.3 (validation experiments) |
//! | `table_5_4_end_to_end` | Table 5.4 (end-to-end recovery) |
//! | `fig_5_5_recovery_scaling` | Figure 5.5 (recovery time vs. nodes) |
//! | `fig_5_6_p4_scaling` | Figure 5.6 (P4 vs. L2 / memory size) |
//! | `fig_5_7_end_to_end` | Figure 5.7 (HW+OS suspension time) |
//! | `table_6_1_firewall_overhead` | §6.2 firewall cost (< 7 %) |
//! | `ablation_speculative_ping` | §4.2 trigger-wave speedup |
//! | `ablation_bft_hints` | §4.3 deferred-BFT hint scheduling |
//!
//! Run everything with `cargo bench -p flash-bench`; each target accepts a
//! `FLASH_RUNS` environment variable to scale the run counts.

mod results;
pub mod sweep;

pub use results::{
    mark_fault_classes, results_dir, run_fault_classes, ClassTally, ResultSheet, Row, VerdictSheet,
    FAULT_CLASSES,
};
pub use sweep::{
    fault_rng_seed, run_checkpoint_groups, sweep_fault_experiments, sweep_parallel_make,
    time_fault_sweep, time_parallel_make_sweep, SweepConfig, SweepRun, SweepTiming,
    DEFAULT_MAKE_STAGES,
};

use flash_core::{ExperimentConfig, FaultKind};
use flash_hive::HiveConfig;
use flash_machine::MachineParams;
use std::time::Instant;

/// The Table 5.3 validation experiment configuration for one fill seed:
/// the Table 5.1 machine with the caches filled deep (the paper fills the
/// caches with valid data before injecting) and enough post-fill operations
/// left to exercise recovery under load. Shared by the table bench, the
/// `sweep_fork` comparison bench and the fork-determinism tests.
pub fn table_5_3_experiment(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(MachineParams::table_5_1(), seed);
    cfg.fill_ops = 3_000;
    cfg.total_ops = 4_000;
    cfg
}

/// The Table 5.4 parallel-make workload: 12 files per client cell — an
/// 84-file compile tree across the 7 client cells. The paper's benchmark (a
/// pmake compile job) ran orders of magnitude longer than the ~100 ms
/// recovery it absorbed; a longer make keeps that proportion honest, which
/// is also what the checkpoint/fork engine amortizes.
pub fn table_5_4_hive() -> HiveConfig {
    HiveConfig {
        files_per_task: 12,
        ..HiveConfig::default()
    }
}

/// The paper's per-fault-type run counts for Table 5.4 (1187 total).
pub const TABLE_5_4_RUNS: [(FaultKind, u64); 4] = [
    (FaultKind::Node, 310),
    (FaultKind::Router, 215),
    (FaultKind::Link, 268),
    (FaultKind::InfiniteLoop, 394),
];

/// Reads a run-count override from `FLASH_RUNS`, defaulting to `default`.
pub fn runs_from_env(default: u64) -> u64 {
    runs_from_lookup(default, |k| std::env::var(k).ok())
}

/// [`runs_from_env`] with an injectable environment lookup, so tests can
/// exercise the parsing without mutating real process environment (which
/// is unsound with Rust's parallel test runner and made the env test
/// flaky).
pub fn runs_from_lookup(default: u64, lookup: impl Fn(&str) -> Option<String>) -> u64 {
    lookup("FLASH_RUNS")
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// A tiny stopwatch for host-side progress reporting.
#[derive(Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Elapsed host seconds.
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Prints the standard bench banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("reproduces: {paper_ref}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_parses() {
        // Injectable lookup: no process-env mutation, so this cannot race
        // with other tests (std::env::set_var/remove_var are process-global).
        assert_eq!(runs_from_lookup(7, |_| None), 7);
        assert_eq!(runs_from_lookup(7, |_| Some("12".into())), 12);
        assert_eq!(runs_from_lookup(7, |_| Some("junk".into())), 7);
        assert_eq!(runs_from_lookup(7, |_| Some("".into())), 7);
    }

    #[test]
    fn stopwatch_advances() {
        let sw = Stopwatch::start();
        assert!(sw.secs() >= 0.0);
    }
}
