//! Machine-readable benchmark results.
//!
//! Every figure/table bench writes its rows as JSON next to its console
//! output so results can be plotted or diffed across runs. Files land in
//! `target/bench-results/<bench>.json`.
//!
//! Also home to the per-fault-class campaign tally shared by the
//! `gray_campaign` and `kv_slo` examples: both report campaign outcomes as
//! one row per fault class, so the class partitioning, verdict counting,
//! and table rendering live here rather than being copied per example.

use flash_campaign::{RunRecord, Verdict};
use flash_machine::FaultSpec;
use flash_obs::{json_escape_str, latency_summary};
use flash_sim::{LatencyHistogram, SimDuration};
use std::io::Write;
use std::path::PathBuf;

/// One benchmark's result sheet: named rows of named numeric columns.
#[derive(Clone, Debug)]
pub struct ResultSheet {
    /// Bench target name.
    pub bench: String,
    /// The paper artifact reproduced (e.g. `"Figure 5.5"`).
    pub reproduces: String,
    /// Column names, in order.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
}

/// One row of a [`ResultSheet`].
#[derive(Clone, Debug)]
pub struct Row {
    /// Row label (e.g. `"nodes=128"` or `"Node failure"`).
    pub label: String,
    /// Values, matching the sheet's column order.
    pub values: Vec<f64>,
}

impl ResultSheet {
    /// Creates an empty sheet.
    pub fn new(bench: impl Into<String>, reproduces: impl Into<String>, columns: &[&str]) -> Self {
        ResultSheet {
            bench: bench.into(),
            reproduces: reproduces.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push(&mut self, label: impl Into<String>, values: &[f64]) {
        assert_eq!(values.len(), self.columns.len(), "row/column mismatch");
        self.rows.push(Row {
            label: label.into(),
            values: values.to_vec(),
        });
    }

    /// Serializes the sheet as pretty JSON.
    pub fn to_json(&self) -> String {
        // Hand-rolled writer: the workspace deliberately avoids serde_json;
        // the structure is flat enough to emit directly. Strings go through
        // `flash_obs::json_escape_str` — Rust's `{:?}` formatting emits
        // `\u{…}` escapes, which no JSON parser accepts.
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"bench\": \"{}\",\n",
            json_escape_str(&self.bench)
        ));
        out.push_str(&format!(
            "  \"reproduces\": \"{}\",\n",
            json_escape_str(&self.reproduces)
        ));
        out.push_str(&format!(
            "  \"columns\": [{}],\n",
            self.columns
                .iter()
                .map(|c| format!("\"{}\"", json_escape_str(c)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let vals = row
                .values
                .iter()
                .map(|v| {
                    if v.is_finite() {
                        format!("{v}")
                    } else {
                        "null".to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"values\": [{vals}]}}",
                json_escape_str(&row.label)
            ));
            out.push_str(if i + 1 == self.rows.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the sheet to `target/bench-results/<bench>.json`, creating
    /// the directory as needed. Prints the path on success; IO problems are
    /// reported but non-fatal (benches still print their tables).
    pub fn write(&self) {
        let dir = results_dir();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{}.json", self.bench));
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(self.to_json().as_bytes()))
        {
            Ok(()) => println!("[results written to {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

/// The fault classes of the per-class result sheets, in row order. A run
/// is tallied in every class that appears anywhere in its schedule
/// (multi-faults included), so each row answers "when this class was
/// present, what happened?".
pub const FAULT_CLASSES: [&str; 5] = [
    "fail_stop",
    "fail_slow",
    "degraded_memory",
    "lossy_link",
    "pool_failure",
];

/// Marks which of the [`FAULT_CLASSES`] a fault belongs to (multi-faults
/// recurse and can mark several).
pub fn mark_fault_classes(f: &FaultSpec, present: &mut [bool; FAULT_CLASSES.len()]) {
    match f {
        FaultSpec::FailSlow(..) => present[1] = true,
        FaultSpec::DegradedMemory(..) => present[2] = true,
        FaultSpec::LossyLink(..) => present[3] = true,
        FaultSpec::PoolFailure { .. } => present[4] = true,
        FaultSpec::Multi(list) => {
            for m in list {
                mark_fault_classes(m, present);
            }
        }
        _ => present[0] = true,
    }
}

/// Which [`FAULT_CLASSES`] appear anywhere in a run's schedule.
pub fn run_fault_classes(r: &RunRecord) -> [bool; FAULT_CLASSES.len()] {
    let mut present = [false; FAULT_CLASSES.len()];
    for e in &r.schedule.events {
        mark_fault_classes(&e.fault, &mut present);
    }
    present
}

/// Verdict, violation, and detection-latency counts for one fault class.
#[derive(Default)]
pub struct ClassTally {
    /// Runs in which the class appeared.
    pub runs: u64,
    /// Runs judged [`Verdict::Contained`].
    pub contained: u64,
    /// Runs judged [`Verdict::DetectedRecovered`].
    pub detected: u64,
    /// Runs judged [`Verdict::SurvivedDegraded`].
    pub survived: u64,
    /// Total invariant violations across the class's runs.
    pub violations: u64,
    /// Detection latencies of the class's runs that detected their fault.
    pub detect: LatencyHistogram,
}

impl ClassTally {
    /// Folds one run into the tally.
    pub fn tally(&mut self, r: &RunRecord) {
        self.runs += 1;
        match r.verdict {
            Verdict::Contained => self.contained += 1,
            Verdict::DetectedRecovered => self.detected += 1,
            Verdict::SurvivedDegraded => self.survived += 1,
        }
        self.violations += r.violations.len() as u64;
        if let Some(ns) = r.detect_latency_ns {
            self.detect.record(SimDuration::from_nanos(ns));
        }
    }
}

/// The per-fault-class verdict sheet: one [`ClassTally`] per
/// [`FAULT_CLASSES`] entry plus an all-runs aggregate.
#[derive(Default)]
pub struct VerdictSheet {
    /// Per-class tallies, matching [`FAULT_CLASSES`] order.
    pub classes: [ClassTally; FAULT_CLASSES.len()],
    /// Every run, regardless of class.
    pub overall: ClassTally,
}

impl VerdictSheet {
    /// Creates an empty sheet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one run into the overall tally and into every class present
    /// in its schedule.
    pub fn tally(&mut self, r: &RunRecord) {
        self.overall.tally(r);
        for (i, p) in run_fault_classes(r).iter().enumerate() {
            if *p {
                self.classes[i].tally(r);
            }
        }
    }

    /// Renders the verdict table (header plus one row per fault class).
    pub fn verdict_table(&self) -> String {
        let mut out = format!(
            "{:<16} {:>5} {:>10} {:>19} {:>18} {:>11}\n",
            "fault class",
            "runs",
            "contained",
            "detected-recovered",
            "survived-degraded",
            "violations"
        );
        for (name, row) in FAULT_CLASSES.iter().zip(&self.classes) {
            out.push_str(&format!(
                "{name:<16} {:>5} {:>10} {:>19} {:>18} {:>11}\n",
                row.runs, row.contained, row.detected, row.survived, row.violations
            ));
        }
        out
    }

    /// Renders the detection-latency summaries: the all-runs histogram
    /// followed by one per fault class.
    pub fn detection_summary(&self) -> String {
        let mut out = latency_summary("detection latency (all runs)", &self.overall.detect);
        for (name, row) in FAULT_CLASSES.iter().zip(&self.classes) {
            out.push_str(&latency_summary(
                &format!("detection latency ({name})"),
                &row.detect,
            ));
        }
        out
    }
}

/// The directory bench results land in: the *workspace* target directory
/// (benches run with the package directory as cwd, so a relative path
/// would land inside `crates/bench`).
pub fn results_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("CARGO_TARGET_DIR") {
        // Cargo resolves a relative CARGO_TARGET_DIR against the workspace
        // root, not the process cwd (which is the package directory under
        // `cargo bench`) — do the same, or results drift into crates/bench.
        return resolve_target_dir(PathBuf::from(dir)).join("bench-results");
    }
    // The bench executable lives in <workspace>/target/release/deps/...;
    // derive the target directory from our own path.
    if let Ok(exe) = std::env::current_exe() {
        for anc in exe.ancestors() {
            if anc.file_name().and_then(|n| n.to_str()) == Some("target") {
                return anc.join("bench-results");
            }
        }
    }
    workspace_root().join("target").join("bench-results")
}

/// Resolves a (possibly relative) target-directory path against the
/// workspace root, mirroring cargo's own interpretation of
/// `CARGO_TARGET_DIR`.
fn resolve_target_dir(dir: PathBuf) -> PathBuf {
    if dir.is_absolute() {
        dir
    } else {
        workspace_root().join(dir)
    }
}

/// The workspace root: two levels above this crate's manifest
/// (`<workspace>/crates/bench`).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheet_roundtrip_structure() {
        let mut s = ResultSheet::new("fig_x", "Figure X", &["a", "b"]);
        s.push("row1", &[1.0, 2.5]);
        s.push("row2", &[3.0, f64::NAN]);
        let json = s.to_json();
        assert!(json.contains("\"bench\": \"fig_x\""));
        assert!(json.contains("\"columns\": [\"a\", \"b\"]"));
        assert!(json.contains("[1, 2.5]"));
        assert!(json.contains("null"), "non-finite values become null");
    }

    #[test]
    #[should_panic(expected = "row/column mismatch")]
    fn mismatched_row_panics() {
        let mut s = ResultSheet::new("x", "y", &["a"]);
        s.push("r", &[1.0, 2.0]);
    }

    /// Non-ASCII and control characters must serialize as valid JSON —
    /// Rust's `{:?}` would emit `\u{e9}`-style escapes no parser accepts.
    #[test]
    fn non_ascii_labels_emit_valid_json() {
        let mut s = ResultSheet::new("tête", "Ta\tble 5.4 — «é»", &["μs", "naïve"]);
        s.push("nœud\n№1", &[1.0, 2.0]);
        let json = s.to_json();
        assert!(!json.contains("\\u{"), "Rust-style escapes leaked: {json}");
        // Non-ASCII passes through raw (valid JSON is UTF-8); control
        // characters use standard short escapes.
        assert!(json.contains("\"bench\": \"tête\""));
        assert!(json.contains("Ta\\tble 5.4 — «é»"));
        assert!(json.contains("\"columns\": [\"μs\", \"naïve\"]"));
        assert!(json.contains("\"nœud\\n№1\""));
    }

    #[test]
    fn relative_target_dir_resolves_against_workspace_root() {
        let resolved = resolve_target_dir(PathBuf::from("custom-target"));
        assert!(resolved.is_absolute());
        assert_eq!(resolved, workspace_root().join("custom-target"));
        assert!(
            !resolved.to_str().unwrap().contains("crates"),
            "must not resolve relative to the bench package dir: {resolved:?}"
        );
        let abs = PathBuf::from("/tmp/abs-target");
        assert_eq!(resolve_target_dir(abs.clone()), abs);
    }

    #[test]
    fn workspace_root_is_manifest_grandparent() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").exists(), "{root:?}");
        assert!(root.join("crates").is_dir(), "{root:?}");
    }
}
