//! The warm-state checkpoint/fork sweep engine.
//!
//! The paper's statistical sweeps (Tables 5.3 and 5.4) run hundreds of
//! fault-injection experiments per fault type, and every one of them
//! re-executes an identical warm-up prelude — the cache fill of Section 5.2
//! or the parallel-make boot + ramp of Section 5.3 — before anything
//! actually differs between runs. The sweep engine runs that prelude once
//! per fill seed, snapshots the whole machine with
//! [`flash_machine::Machine::checkpoint`], and forks every per-fault run
//! from the snapshot: all fault types × several fault draws share one
//! prelude, so paper-scale run counts cost a fraction of the from-scratch
//! wall clock.
//!
//! ## Seed discipline
//!
//! A sweep is a pure function of `(machine config, runs_per_kind,
//! forks_per_checkpoint)`. Run `r` of a fault kind maps to checkpoint group
//! `g = r / K` and fork slot `j = r % K` (`K` = forks per kind per
//! checkpoint): the machine (and its fill workloads) is seeded with `g`,
//! and the fault is drawn from a [`DetRng`] seeded with
//! [`fault_rng_seed`]`(g, kind, j)`. A from-scratch run with the same
//! machine seed and fault spec is therefore exactly reproducible without
//! the engine — which is how fork determinism is asserted: the forked run's
//! [`flash_obs::Recorder::merged_hash`] must equal the from-scratch run's.
//!
//! ## Determinism of aggregation
//!
//! Groups are claimed by worker threads through an atomic counter, but each
//! group writes its results into its own pre-allocated slot, and the final
//! flattening orders runs by `(kind, run index)` — so the output is
//! bit-identical whatever the worker count or OS scheduling.

use crate::Stopwatch;
use flash_core::{
    finish_fault_experiment, prepare_fault_experiment, random_fault, ExperimentConfig,
    ExperimentOutcome, FaultKind, RecoveryConfig,
};
use flash_hive::{
    finish_parallel_make, prepare_parallel_make, EndToEndOutcome, HiveConfig, PreparedMake,
};
use flash_machine::MachineParams;
use flash_sim::DetRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Shape of a checkpoint/fork sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Completed runs per fault kind (the paper's per-type N).
    pub runs_per_kind: usize,
    /// Fault draws per kind taken from one checkpoint (`K`). Each
    /// checkpoint serves `kinds × K` forks; larger values amortize the
    /// prelude further at the cost of fill-seed diversity.
    pub forks_per_checkpoint: usize,
    /// Worker threads. `1` is fully sequential (and the aggregated output
    /// is identical for any value).
    pub workers: usize,
}

impl SweepConfig {
    /// A sweep of `runs_per_kind` runs with the default amortization
    /// (`K = 8`) and one worker per available CPU.
    pub fn new(runs_per_kind: usize) -> Self {
        SweepConfig {
            runs_per_kind,
            forks_per_checkpoint: 8,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Number of checkpoint groups needed: `ceil(runs_per_kind / K)`.
    pub fn n_groups(&self) -> usize {
        self.runs_per_kind
            .div_ceil(self.forks_per_checkpoint.max(1))
    }
}

/// One completed sweep run.
#[derive(Clone, Debug)]
pub struct SweepRun<O> {
    /// The fault kind injected.
    pub kind: FaultKind,
    /// Run index within the kind (`0..runs_per_kind`).
    pub run: usize,
    /// The machine/fill seed of the checkpoint group this run forked from.
    pub fill_seed: u64,
    /// Injection point as a percentage of compile progress, for end-to-end
    /// sweeps over a stage ladder; `0` when the fault is injected directly
    /// after the fill prelude (validation sweeps).
    pub stage_pct: u32,
    /// The experiment outcome.
    pub outcome: O,
}

/// The per-run fault-draw seed: a pure function of (checkpoint group,
/// fault kind, fork slot), so any sweep run can be reproduced from scratch.
pub fn fault_rng_seed(fill_seed: u64, kind: FaultKind, fork: u64) -> u64 {
    (fill_seed.wrapping_mul(0x9E37_79B9) ^ kind as u64)
        .wrapping_add(fork.wrapping_mul(0x517C_C1B7_2722_0A95))
}

/// Runs `n_groups` checkpoint groups across `workers` threads: each worker
/// claims a group index, builds that group's warm state once with
/// `prepare`, produces all of the group's runs with `run_group`, and
/// deposits them at the group's own slot. The concatenation over group
/// order is therefore deterministic regardless of worker count.
pub fn run_checkpoint_groups<C, R, P, F>(
    workers: usize,
    n_groups: usize,
    prepare: P,
    run_group: F,
) -> Vec<Vec<R>>
where
    // No `C: Send`: a group's warm state is built and consumed by the same
    // worker thread (machines hold `Box<dyn Workload>`, which is not Send).
    R: Send,
    P: Fn(usize) -> C + Sync,
    F: Fn(usize, C) -> Vec<R> + Sync,
{
    let slots: Vec<Mutex<Option<Vec<R>>>> = (0..n_groups).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers.max(1).min(n_groups.max(1)) {
            s.spawn(|| loop {
                let g = next.fetch_add(1, Ordering::Relaxed);
                if g >= n_groups {
                    break;
                }
                let ckpt = prepare(g);
                let out = run_group(g, ckpt);
                *slots[g].lock().expect("sweep result lock poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("sweep result lock poisoned")
                .expect("group completed")
        })
        .collect()
}

/// Flattens per-group results (each holding `kinds × K` runs in `(kind,
/// fork)` order) into per-kind runs ordered by run index, trimmed to
/// `runs_per_kind`.
fn aggregate<O>(
    groups: Vec<Vec<SweepRun<O>>>,
    kinds: &[FaultKind],
    cfg: &SweepConfig,
) -> Vec<SweepRun<O>> {
    let mut flat: Vec<SweepRun<O>> = groups.into_iter().flatten().collect();
    // Order by (kind position, run index); drop the overshoot of the last
    // group so each kind has exactly `runs_per_kind` runs.
    let pos = |k: FaultKind| {
        kinds
            .iter()
            .position(|&x| x as u64 == k as u64)
            .expect("sweep runs only carry fault kinds from the configured kind list")
    };
    flat.sort_by_key(|r| (pos(r.kind), r.run));
    flat.retain(|r| r.run < cfg.runs_per_kind);
    flat
}

/// Sweeps the Section 5.2 validation experiment (Table 5.3 methodology):
/// one cache-fill prelude per checkpoint group, then `kinds × K` forked
/// fault runs per group.
///
/// `make_cfg` maps a fill seed to the experiment configuration (it must set
/// `cfg.seed` to the given seed for the seed discipline to hold).
pub fn sweep_fault_experiments(
    cfg: &SweepConfig,
    kinds: &[FaultKind],
    make_cfg: impl Fn(u64) -> ExperimentConfig + Sync,
) -> Vec<SweepRun<ExperimentOutcome>> {
    let k = cfg.forks_per_checkpoint.max(1);
    let groups = run_checkpoint_groups(
        cfg.workers,
        cfg.n_groups(),
        |g| {
            let ecfg = make_cfg(g as u64);
            (ecfg, prepare_fault_experiment(&ecfg).checkpoint())
        },
        |g, (ecfg, ckpt)| {
            let mut out = Vec::with_capacity(kinds.len() * k);
            for &kind in kinds {
                for j in 0..k {
                    let run = g * k + j;
                    if run >= cfg.runs_per_kind {
                        continue;
                    }
                    let mut rng = DetRng::new(fault_rng_seed(g as u64, kind, j as u64));
                    let fault = random_fault(kind, ecfg.params.n_nodes, &mut rng);
                    out.push(SweepRun {
                        kind,
                        run,
                        fill_seed: g as u64,
                        stage_pct: 0,
                        outcome: finish_fault_experiment(ckpt.fork(), fault),
                    });
                }
            }
            out
        },
    );
    aggregate(groups, kinds, cfg)
}

/// The paper's Section 5.3 injection points, stratified: faults were
/// injected "at random times while the benchmark was running"; a sweep
/// samples that over a ladder of compile-progress points. Deeper rungs
/// share a longer prelude, which is where most of the fork speedup of the
/// end-to-end sweep comes from.
pub const DEFAULT_MAKE_STAGES: &[u32] = &[30, 50, 70, 90];

/// Sweeps the Section 5.3 end-to-end experiment (Table 5.4 methodology).
///
/// Each checkpoint group boots the parallel make once, then warms it up a
/// ladder of progress `stages` (percent of compile operations, ascending —
/// see [`DEFAULT_MAKE_STAGES`]); at each rung, every fault kind forks `K`
/// runs that inject right at that rung. Run `r` of a kind maps to group
/// `g = r / (S·K)`, rung `s = (r / K) % S` and fork slot `j = r % K`, with
/// the fault drawn from [`fault_rng_seed`]`(g, kind, s·K + j)` — so any
/// run is reproducible from scratch as `prepare → warm_to_percent(stages[s])
/// → finish` with machine seed `g`.
pub fn sweep_parallel_make(
    cfg: &SweepConfig,
    kinds: &[FaultKind],
    stages: &[u32],
    params: MachineParams,
    hive: &HiveConfig,
    recovery: RecoveryConfig,
) -> Vec<SweepRun<EndToEndOutcome>> {
    let k = cfg.forks_per_checkpoint.max(1);
    let stages = if stages.is_empty() { &[30] } else { stages };
    let per_group = k * stages.len();
    let n_groups = cfg.runs_per_kind.div_ceil(per_group);
    let groups = run_checkpoint_groups(
        cfg.workers,
        n_groups,
        |g| prepare_parallel_make(params, hive, recovery, g as u64),
        |g, mut prep: PreparedMake| {
            let mut out = Vec::with_capacity(kinds.len() * per_group);
            for (s, &pct) in stages.iter().enumerate() {
                // Climbing the ladder rung by rung is trace-identical to a
                // single warm to this rung (warm_to_percent is an
                // idempotent continuation).
                prep.warm_to_percent(pct);
                for &kind in kinds {
                    for j in 0..k {
                        let run = g * per_group + s * k + j;
                        if run >= cfg.runs_per_kind {
                            continue;
                        }
                        let mut rng =
                            DetRng::new(fault_rng_seed(g as u64, kind, (s * k + j) as u64));
                        let fault = random_fault(kind, params.n_nodes, &mut rng);
                        out.push(SweepRun {
                            kind,
                            run,
                            fill_seed: g as u64,
                            stage_pct: pct,
                            outcome: finish_parallel_make(prep.fork(), Some(fault)),
                        });
                    }
                }
            }
            out
        },
    );
    aggregate(groups, kinds, cfg)
}

/// Host-side wall-clock comparison of the forked sweep against the
/// from-scratch equivalent at equal N — the speedup evidence recorded in
/// `BENCH_sweep_fork.json`.
#[derive(Clone, Copy, Debug)]
pub struct SweepTiming {
    /// Total runs completed on each side.
    pub runs: usize,
    /// Host seconds for the checkpoint/fork sweep.
    pub forked_secs: f64,
    /// Host seconds for the same runs executed from scratch.
    pub scratch_secs: f64,
}

impl SweepTiming {
    /// Wall-clock speedup of forking over from-scratch.
    pub fn speedup(&self) -> f64 {
        self.scratch_secs / self.forked_secs.max(1e-12)
    }
}

/// Times [`sweep_fault_experiments`] against the equivalent from-scratch
/// loop (same seeds, same faults, same outcomes), returning both result
/// sets and the timing. Used by the `sweep_fork` bench and the CI smoke
/// job.
pub fn time_fault_sweep(
    cfg: &SweepConfig,
    kinds: &[FaultKind],
    make_cfg: impl Fn(u64) -> ExperimentConfig + Sync,
) -> (
    Vec<SweepRun<ExperimentOutcome>>,
    Vec<SweepRun<ExperimentOutcome>>,
    SweepTiming,
) {
    let sw = Stopwatch::start();
    let forked = sweep_fault_experiments(cfg, kinds, &make_cfg);
    let forked_secs = sw.secs();

    let k = cfg.forks_per_checkpoint.max(1);
    let sw = Stopwatch::start();
    let groups = run_checkpoint_groups(
        cfg.workers,
        cfg.n_groups(),
        |g| make_cfg(g as u64),
        |g, ecfg| {
            let mut out = Vec::with_capacity(kinds.len() * k);
            for &kind in kinds {
                for j in 0..k {
                    let run = g * k + j;
                    if run >= cfg.runs_per_kind {
                        continue;
                    }
                    let mut rng = DetRng::new(fault_rng_seed(g as u64, kind, j as u64));
                    let fault = random_fault(kind, ecfg.params.n_nodes, &mut rng);
                    out.push(SweepRun {
                        kind,
                        run,
                        fill_seed: g as u64,
                        stage_pct: 0,
                        outcome: flash_core::run_fault_experiment(&ecfg, fault),
                    });
                }
            }
            out
        },
    );
    let scratch = aggregate(groups, kinds, cfg);
    let scratch_secs = sw.secs();

    let timing = SweepTiming {
        runs: forked.len(),
        forked_secs,
        scratch_secs,
    };
    (forked, scratch, timing)
}

/// Times [`sweep_parallel_make`] against the equivalent from-scratch loop:
/// each scratch run boots its own machine, warms it to the run's injection
/// rung and finishes — same seeds, same faults, same outcomes. Returns
/// both result sets and the timing.
pub fn time_parallel_make_sweep(
    cfg: &SweepConfig,
    kinds: &[FaultKind],
    stages: &[u32],
    params: MachineParams,
    hive: &HiveConfig,
    recovery: RecoveryConfig,
) -> (
    Vec<SweepRun<EndToEndOutcome>>,
    Vec<SweepRun<EndToEndOutcome>>,
    SweepTiming,
) {
    let sw = Stopwatch::start();
    let forked = sweep_parallel_make(cfg, kinds, stages, params, hive, recovery);
    let forked_secs = sw.secs();

    let k = cfg.forks_per_checkpoint.max(1);
    let stages = if stages.is_empty() { &[30] } else { stages };
    let per_group = k * stages.len();
    let n_groups = cfg.runs_per_kind.div_ceil(per_group);
    let sw = Stopwatch::start();
    let groups = run_checkpoint_groups(
        cfg.workers,
        n_groups,
        |g| g,
        |g, _| {
            let mut out = Vec::with_capacity(kinds.len() * per_group);
            for (s, &pct) in stages.iter().enumerate() {
                for &kind in kinds {
                    for j in 0..k {
                        let run = g * per_group + s * k + j;
                        if run >= cfg.runs_per_kind {
                            continue;
                        }
                        let mut rng =
                            DetRng::new(fault_rng_seed(g as u64, kind, (s * k + j) as u64));
                        let fault = random_fault(kind, params.n_nodes, &mut rng);
                        let mut prep = prepare_parallel_make(params, hive, recovery, g as u64);
                        prep.warm_to_percent(pct);
                        out.push(SweepRun {
                            kind,
                            run,
                            fill_seed: g as u64,
                            stage_pct: pct,
                            outcome: finish_parallel_make(prep, Some(fault)),
                        });
                    }
                }
            }
            out
        },
    );
    let scratch = aggregate(groups, kinds, cfg);
    let scratch_secs = sw.secs();

    let timing = SweepTiming {
        runs: forked.len(),
        forked_secs,
        scratch_secs,
    };
    (forked, scratch, timing)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(seed: u64) -> ExperimentConfig {
        let mut params = MachineParams::table_5_1();
        params.n_nodes = 8;
        let mut cfg = ExperimentConfig::new(params, seed);
        cfg.fill_ops = 60;
        cfg.total_ops = 160;
        cfg
    }

    #[test]
    fn group_math() {
        let mut c = SweepConfig::new(20);
        c.forks_per_checkpoint = 8;
        assert_eq!(c.n_groups(), 3);
        c.forks_per_checkpoint = 5;
        assert_eq!(c.n_groups(), 4);
        c.runs_per_kind = 1;
        assert_eq!(c.n_groups(), 1);
    }

    #[test]
    fn checkpoint_groups_are_deterministically_indexed() {
        for workers in [1, 4] {
            let out = run_checkpoint_groups(workers, 5, |g| g * 10, |g, c| vec![(g, c)]);
            assert_eq!(out.len(), 5);
            for (g, v) in out.iter().enumerate() {
                assert_eq!(v, &vec![(g, g * 10)]);
            }
        }
    }

    /// The sweep yields exactly `runs_per_kind` runs per kind, ordered by
    /// `(kind, run)`, and the aggregation is worker-count independent.
    #[test]
    fn sweep_shape_and_worker_independence() {
        let kinds = [FaultKind::Node, FaultKind::FalseAlarm];
        let mut cfg = SweepConfig::new(3);
        cfg.forks_per_checkpoint = 2;
        cfg.workers = 1;
        let a = sweep_fault_experiments(&cfg, &kinds, tiny_cfg);
        cfg.workers = 4;
        let b = sweep_fault_experiments(&cfg, &kinds, tiny_cfg);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.kind as u64, y.kind as u64);
            assert_eq!(x.run, y.run);
            assert_eq!(x.fill_seed, y.fill_seed);
            assert_eq!(x.outcome.trace_hash, y.outcome.trace_hash, "{:?}", x.kind);
        }
        // Per-kind run indices are exactly 0..runs_per_kind.
        for &kind in &kinds {
            let runs: Vec<usize> = a
                .iter()
                .filter(|r| r.kind as u64 == kind as u64)
                .map(|r| r.run)
                .collect();
            assert_eq!(runs, vec![0, 1, 2]);
        }
    }

    /// Forked runs hash identically to from-scratch runs with the same
    /// seeds — the engine-level fork-determinism check (the per-fault-type
    /// integration test lives in `tests/checkpoint_fork.rs`).
    #[test]
    fn forked_matches_scratch_at_equal_seeds() {
        let kinds = [FaultKind::Node];
        let mut cfg = SweepConfig::new(2);
        cfg.forks_per_checkpoint = 2;
        cfg.workers = 1;
        let (forked, scratch, timing) = time_fault_sweep(&cfg, &kinds, tiny_cfg);
        assert_eq!(forked.len(), scratch.len());
        for (f, s) in forked.iter().zip(&scratch) {
            assert_eq!(f.outcome.trace_hash, s.outcome.trace_hash);
            assert_eq!(f.outcome.end_time, s.outcome.end_time);
            assert_eq!(f.outcome.bus_errors, s.outcome.bus_errors);
        }
        assert_eq!(timing.runs, 2);
        assert!(timing.speedup() > 0.0);
    }

    /// Staged end-to-end forks hash identically to from-scratch runs that
    /// boot their own machine and warm straight to the same rung — the
    /// checkpoint-ladder determinism check.
    #[test]
    fn staged_make_forks_match_scratch() {
        let mut params = MachineParams::table_5_1();
        params.n_nodes = 4;
        let hive = flash_hive::HiveConfig {
            n_cells: 4,
            files_per_task: 2,
            blocks_per_file: 8,
            out_blocks: 4,
            compute_ns: 10_000,
            ..flash_hive::HiveConfig::default()
        };
        let kinds = [FaultKind::Node, FaultKind::Link];
        let mut cfg = SweepConfig::new(4);
        cfg.forks_per_checkpoint = 2;
        cfg.workers = 1;
        let stages = [30, 70];
        let (forked, scratch, timing) = time_parallel_make_sweep(
            &cfg,
            &kinds,
            &stages,
            params,
            &hive,
            RecoveryConfig::default(),
        );
        assert_eq!(forked.len(), kinds.len() * 4);
        assert_eq!(forked.len(), scratch.len());
        // Both ladder rungs appear, and every forked run is bit-identical
        // to its from-scratch twin.
        assert!(forked.iter().any(|r| r.stage_pct == 30));
        assert!(forked.iter().any(|r| r.stage_pct == 70));
        for (f, s) in forked.iter().zip(&scratch) {
            assert_eq!(f.run, s.run);
            assert_eq!(f.stage_pct, s.stage_pct);
            assert_eq!(
                f.outcome.trace_hash, s.outcome.trace_hash,
                "{:?} run {} stage {}%",
                f.kind, f.run, f.stage_pct
            );
        }
        assert_eq!(timing.runs, forked.len());
        // Worker-count independence for the staged sweep.
        cfg.workers = 4;
        let b = sweep_parallel_make(
            &cfg,
            &kinds,
            &stages,
            params,
            &hive,
            RecoveryConfig::default(),
        );
        for (x, y) in forked.iter().zip(&b) {
            assert_eq!(x.outcome.trace_hash, y.outcome.trace_hash);
        }
    }
}
