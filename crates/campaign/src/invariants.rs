//! The invariant stack: machine-level safety properties checked after every
//! campaign run.
//!
//! Each check inspects the final machine state (and the oracle) and reports
//! zero or more [`Violation`]s. The stack deliberately over-approximates
//! what the paper's Table 5.3 validation checks: besides oracle-bounded
//! incoherence and silent corruption it also verifies the recovered
//! interconnect (connectivity + deadlock freedom), the directory (no dirty
//! ownership stranded on failed nodes), version monotonicity against the
//! oracle, Hive's exactly-once RPC accounting, and the internal consistency
//! of the recovery report.

use flash_core::FcMachine;
use flash_core::RecMsg;
use flash_hive::{CompileTask, TaskState};
use flash_machine::{FaultSpec, MachineState};
use flash_net::{NodeId, RouterId, UGraph};

/// One invariant violation found by the stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable invariant name (used by triage and the JSON dump).
    pub invariant: &'static str,
    /// Human-readable description of the violation.
    pub details: String,
}

impl Violation {
    fn new(invariant: &'static str, details: impl Into<String>) -> Self {
        Violation {
            invariant,
            details: details.into(),
        }
    }
}

/// What gray faults actually *fired* during a run, distilled from the armed
/// fault list (never-armed phase events are excluded — they did not happen).
/// The gray-specific invariants key off these facts so they only apply to
/// runs whose failure mix makes their guarantee unconditional.
#[derive(Clone, Debug, Default)]
pub struct GrayFacts {
    /// Nodes hit by a `FailSlow` fault.
    pub fail_slow: Vec<NodeId>,
    /// Nodes hit by a `DegradedMemory` fault.
    pub degraded: Vec<NodeId>,
    /// Number of `LossyLink` faults.
    pub lossy_links: usize,
    /// Whether a fail-stop `Link` fault fired (can legitimately strand
    /// traffic until recovery reroutes, so it weakens gray liveness claims).
    pub link_faults: bool,
    /// Whether any fired fault doomed at least one node.
    pub doomed_any: bool,
}

impl GrayFacts {
    /// Distills the facts from the list of faults that fired.
    pub fn from_faults(faults: &[FaultSpec]) -> GrayFacts {
        fn walk(f: &FaultSpec, g: &mut GrayFacts) {
            match f {
                FaultSpec::FailSlow(n, _) => g.fail_slow.push(*n),
                FaultSpec::DegradedMemory(n, _, _) => g.degraded.push(*n),
                FaultSpec::LossyLink(..) => g.lossy_links += 1,
                FaultSpec::Link(..) => g.link_faults = true,
                FaultSpec::Multi(list) => {
                    for m in list {
                        walk(m, g);
                    }
                }
                _ => {}
            }
        }
        let mut g = GrayFacts::default();
        for f in faults {
            walk(f, &mut g);
            g.doomed_any |= !f.doomed_nodes().is_empty();
        }
        g
    }

    /// Whether any gray fault fired at all.
    pub fn any(&self) -> bool {
        !self.fail_slow.is_empty() || !self.degraded.is_empty() || self.lossy_links > 0
    }
}

/// Facts about the run the invariant stack needs to decide which checks
/// apply.
#[derive(Clone, Debug)]
pub struct RunContext {
    /// Whether the run drained within its simulated-time budget.
    pub finished: bool,
    /// Whether a node-dooming fault fired. Detection is then guaranteed —
    /// by live traffic, a fail-fast assertion, or the machine's heartbeat
    /// audit — so recovery *must* have triggered.
    pub detectable_fault_fired: bool,
    /// Whether the schedule targeted the Hive end-to-end harness.
    pub hive: bool,
    /// Per-processor operation count a finished machine-mode run implies
    /// (the fail-slow progress floor); `0` disables the floor.
    pub required_progress: u64,
    /// The gray faults that fired.
    pub gray: GrayFacts,
}

/// Runs the full invariant stack against the machine's final state.
pub fn check_all(m: &FcMachine, ctx: &RunContext) -> Vec<Violation> {
    let mut v = Vec::new();
    check_oracle(m, &mut v);
    check_report(m, ctx, &mut v);
    let recovered = m.ext().report.completed() && !m.ext().report.machine_halted;
    if recovered {
        check_routing(m.st(), &mut v);
        if ctx.finished {
            check_ownership(m.st(), &mut v);
        }
    }
    if ctx.finished {
        check_versions(m.st(), &mut v);
    }
    if ctx.hive {
        check_rpc(m, ctx, &mut v);
    }
    check_gray(m, ctx, &mut v);
    v
}

/// Gray-failure guarantees. Each sub-check only applies when the fired
/// fault mix leaves the guarantee unconditional (no doomed nodes, no other
/// gray class muddying the waters), so a violation is a genuine bug:
///
/// * **fail-slow progress floor** — a slow-but-correct node must still
///   complete its workload in a finished run, and a pure fail-slow run must
///   not fail to finish;
/// * **degraded-memory no-wrong-data** — extra latency and transient NAKs
///   must never surface as incoherent or corrupted lines;
/// * **lossy-link liveness** — dropped packets must end in eventual
///   completion (timeout/NAK retry delivers) or eventual detection.
fn check_gray(m: &FcMachine, ctx: &RunContext, out: &mut Vec<Violation>) {
    let g = &ctx.gray;
    if !g.any() {
        return;
    }
    let st = m.st();
    let report = &m.ext().report;
    let halted = report.machine_halted;
    let pure = !g.doomed_any && g.lossy_links == 0 && !g.link_faults;

    if !g.fail_slow.is_empty() {
        if ctx.finished && !halted && ctx.required_progress > 0 {
            for &n in &g.fail_slow {
                let node = &st.nodes[n.index()];
                if st.failed_nodes.contains(n) || !node.is_alive() {
                    continue;
                }
                let progress = node.workload.progress();
                if progress < ctx.required_progress {
                    out.push(Violation::new(
                        "failslow-progress-floor",
                        format!(
                            "fail-slow node {:?} finished at {progress}/{} ops",
                            n, ctx.required_progress
                        ),
                    ));
                }
            }
        }
        if pure
            && g.degraded.is_empty()
            && !ctx.finished
            && !halted
            && report.phases.triggered_at.is_none()
        {
            out.push(Violation::new(
                "failslow-progress-floor",
                "a pure fail-slow run neither finished nor triggered recovery".to_string(),
            ));
        }
    }

    if !g.degraded.is_empty() && pure && ctx.finished && !halted {
        let v = st.validate();
        if v.marked_incoherent > 0 || !v.corrupted.is_empty() {
            out.push(Violation::new(
                "degraded-no-wrong-data",
                format!(
                    "degraded memory surfaced as wrong data: {} incoherent, {} corrupted",
                    v.marked_incoherent,
                    v.corrupted.len()
                ),
            ));
        }
    }

    if g.lossy_links > 0 && !ctx.finished && !halted && report.phases.triggered_at.is_none() {
        out.push(Violation::new(
            "lossy-liveness",
            "lossy link dropped packets and the run neither completed nor detected anything"
                .to_string(),
        ));
    }
}

/// Oracle-bounded incoherence and no silent corruption (the Table 5.3
/// checks, split into two invariants for triage).
fn check_oracle(m: &FcMachine, out: &mut Vec<Violation>) {
    let report = m.st().validate();
    if !report.overmarked.is_empty() {
        out.push(Violation::new(
            "oracle-incoherence",
            format!(
                "{} lines over-marked incoherent (first: {:?})",
                report.overmarked.len(),
                &report.overmarked[..report.overmarked.len().min(4)]
            ),
        ));
    }
    if !report.corrupted.is_empty() {
        out.push(Violation::new(
            "oracle-corruption",
            format!(
                "{} lines silently corrupted (first: {:?})",
                report.corrupted.len(),
                &report.corrupted[..report.corrupted.len().min(4)]
            ),
        ));
    }
}

/// Builds the graph of live routers and live links.
fn live_graph(st: &MachineState<RecMsg>) -> (UGraph, Vec<bool>) {
    let design = st.fabric.design_graph();
    let n = design.len();
    let alive: Vec<bool> = (0..n)
        .map(|r| st.fabric.router_alive(RouterId(r as u16)))
        .collect();
    let mut live = UGraph::new(n);
    for a in 0..n as u16 {
        for &b in design.neighbors(a) {
            if a < b
                && alive[a as usize]
                && alive[b as usize]
                && st.fabric.link_alive_between(RouterId(a), RouterId(b))
            {
                live.add_edge(a, b);
            }
        }
    }
    (live, alive)
}

/// Survivor routing: within the largest surviving component, every pair of
/// live nodes must have a route, and the installed up*/down* tables must be
/// free of channel-dependency cycles (deadlock freedom, Section 4.4).
fn check_routing(st: &MachineState<RecMsg>, out: &mut Vec<Violation>) {
    let (live, alive) = live_graph(st);
    let survivors: Vec<u16> = (0..st.num_nodes() as u16)
        .filter(|&i| !st.failed_nodes.contains(NodeId(i)) && alive[i as usize])
        .collect();
    if survivors.is_empty() {
        return;
    }
    // Largest connected component of the live graph, by member count.
    let mut best: Vec<u16> = Vec::new();
    let mut seen = vec![false; live.len()];
    for &s in &survivors {
        if seen[s as usize] {
            continue;
        }
        let dist = live.bfs_distances(s, &alive);
        let comp: Vec<u16> = survivors
            .iter()
            .copied()
            .filter(|&t| dist[t as usize] != u32::MAX)
            .collect();
        for &t in &comp {
            seen[t as usize] = true;
        }
        if comp.len() > best.len() {
            best = comp;
        }
    }
    let tables = st.fabric.tables();
    for &a in &best {
        for &b in &best {
            if a != b && tables.route_length(RouterId(a), RouterId(b)).is_none() {
                out.push(Violation::new(
                    "routing-connectivity",
                    format!("no route between surviving nodes {a} and {b}"),
                ));
            }
        }
    }
    if !flash_net::channel_dependencies_acyclic(tables, st.fabric.design_graph(), &alive) {
        out.push(Violation::new(
            "routing-acyclicity",
            "recovered routing tables contain a channel-dependency cycle".to_string(),
        ));
    }
}

/// No stranded dirty ownership: after a completed recovery and a drained
/// run, no live directory entry may still name a failed node as exclusive
/// owner, and no entry may remain locked.
fn check_ownership(st: &MachineState<RecMsg>, out: &mut Vec<Violation>) {
    for node in &st.nodes {
        if st.failed_nodes.contains(node.id) {
            continue;
        }
        for (line, state) in node.dir.iter_states() {
            if let flash_coherence::DirState::Exclusive(owner) = state {
                if st.failed_nodes.contains(owner) {
                    out.push(Violation::new(
                        "stranded-ownership",
                        format!("line {line:?} still owned exclusively by failed node {owner:?}"),
                    ));
                }
            } else if state.is_locked() {
                out.push(Violation::new(
                    "stranded-ownership",
                    format!("line {line:?} still locked at quiescence: {state:?}"),
                ));
            }
        }
    }
}

/// Version monotonicity: no memory image or cached copy may hold a version
/// *newer* than the oracle's expected version — a version from the future
/// means a write reached the line outside the coherence protocol (e.g. a
/// wild write the firewall should have blocked).
fn check_versions(st: &MachineState<RecMsg>, out: &mut Vec<Violation>) {
    for node in &st.nodes {
        if st.failed_nodes.contains(node.id) {
            continue;
        }
        for (line, _) in node.dir.iter_states() {
            let mem = node.dir.mem_version(line);
            let expected = st.oracle.expected_version(line);
            if mem > expected {
                out.push(Violation::new(
                    "version-monotonicity",
                    format!(
                        "line {line:?} memory at {mem:?}, ahead of oracle {expected:?} \
                         (write outside the coherence protocol)"
                    ),
                ));
            }
        }
        for l in node.cache.iter() {
            let expected = st.oracle.expected_version(l.addr);
            if l.version > expected {
                out.push(Violation::new(
                    "version-monotonicity",
                    format!(
                        "node {:?} caches line {:?} at {:?}, ahead of oracle {expected:?}",
                        node.id, l.addr, l.version
                    ),
                ));
            }
        }
    }
}

/// Exactly-once RPC accounting (hive mode): every surviving compile task's
/// audit must balance, and completed tasks must have exactly the expected
/// number of acknowledged RPCs — no lost and no duplicated open/close.
fn check_rpc(m: &FcMachine, ctx: &RunContext, out: &mut Vec<Violation>) {
    let st = m.st();
    for node in &st.nodes {
        if st.failed_nodes.contains(node.id) {
            continue;
        }
        let Some(task) = node
            .workload
            .as_any()
            .and_then(|a| a.downcast_ref::<CompileTask>())
        else {
            continue;
        };
        let audit = task.rpc_audit();
        let slack = u64::from(!ctx.finished);
        if !audit.balanced(slack) {
            out.push(Violation::new(
                "rpc-exactly-once",
                format!("node {:?}: unbalanced RPC audit {audit:?}", node.id),
            ));
        }
        if task.state() == TaskState::Completed && audit.completed != audit.expected {
            out.push(Violation::new(
                "rpc-exactly-once",
                format!(
                    "node {:?}: completed task acknowledged {} RPCs, expected {}",
                    node.id, audit.completed, audit.expected
                ),
            ));
        }
    }
}

/// Recovery-report completeness: a detectable fault must have triggered
/// recovery; a triggered recovery on a drained, non-halted machine must
/// have completed; a completed report must be internally consistent
/// (ordered phase times, a resumed survivor, a complete trigger wave).
fn check_report(m: &FcMachine, ctx: &RunContext, out: &mut Vec<Violation>) {
    let report = &m.ext().report;
    if !ctx.finished || report.machine_halted {
        return;
    }
    if ctx.detectable_fault_fired && report.phases.triggered_at.is_none() {
        out.push(Violation::new(
            "report-completeness",
            "a node-dooming fault fired under live traffic but recovery never triggered"
                .to_string(),
        ));
        return;
    }
    if report.phases.triggered_at.is_some() && !report.completed() {
        out.push(Violation::new(
            "report-completeness",
            format!(
                "recovery triggered but did not complete: {:?} (restarts={})",
                report.phases, report.restarts
            ),
        ));
        return;
    }
    if report.completed() {
        let p = &report.phases;
        let seq = [p.triggered_at, p.p1_done, p.p2_done, p.p3_done, p.p4_done];
        if seq.windows(2).any(|w| w[0] > w[1]) {
            out.push(Violation::new(
                "report-completeness",
                format!("phase completion times out of order: {p:?}"),
            ));
        }
        if report.nodes_resumed == 0 {
            out.push(Violation::new(
                "report-completeness",
                "recovery completed but no node resumed".to_string(),
            ));
        }
        if report.wave_complete_at.is_none() {
            out.push(Violation::new(
                "report-completeness",
                "recovery completed without a complete trigger wave".to_string(),
            ));
        }
        if report.p4_started_at.is_none()
            || report.p4_started_at > p.p4_done
            || report.flush_done_at.is_none() && !m.ext().cfg.reliable_interconnect
        {
            out.push(Violation::new(
                "report-completeness",
                format!(
                    "inconsistent P4 accounting: started={:?} flush_done={:?} done={:?}",
                    report.p4_started_at, report.flush_done_at, p.p4_done
                ),
            ));
        }
    }
}
