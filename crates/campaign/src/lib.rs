//! # flash-campaign — randomized multi-fault chaos campaigns
//!
//! The paper validates its recovery algorithm with single-fault experiments
//! (Table 5.3) and a handful of end-to-end runs (Table 5.4). This crate
//! turns that methodology into a *chaos campaign engine* that searches the
//! fault space much more aggressively:
//!
//! * **Seeded schedule generation** ([`generate`]): every run's fault
//!   schedule — fault types (including [`FaultSpec::Multi`] combinations),
//!   victims, multiplicity and timing — derives deterministically from one
//!   seed. Faults can be armed *mid-recovery* on entry to each phase P1–P4
//!   (via the recovery extension's machine-wide phase-entry times) and
//!   during the Hive OS recovery pass.
//! * **An invariant stack** ([`check_all`]) run after every schedule:
//!   oracle-bounded incoherence and no silent corruption, survivor routing
//!   connectivity and channel-dependency acyclicity, no dirty ownership
//!   stranded on failed nodes, version monotonicity against the oracle,
//!   Hive's exactly-once RPC accounting, and recovery-report completeness.
//! * **A parallel campaign runner** ([`run_campaign`]): runs fan out across
//!   worker threads through a shared work counter; per-run seeds are pure
//!   functions of the master seed and run index, so the campaign's outcome
//!   is identical whatever the worker count.
//! * **Failure triage** ([`triage`]): replay any failure from its seed,
//!   shrink the schedule greedily (drop events, advance injection points,
//!   split multi-faults) while the violation persists, and dump a JSON
//!   post-mortem — violations, original and minimal schedules, and the
//!   machine's trace buffer — under `target/campaign/`.
//!
//! # Examples
//!
//! Run a small campaign and triage any failures:
//!
//! ```no_run
//! use flash_campaign::{run_campaign, triage, campaign_dir, CampaignConfig};
//!
//! let report = run_campaign(&CampaignConfig {
//!     runs: 50,
//!     workers: 4,
//!     ..CampaignConfig::default()
//! });
//! assert_eq!(report.total_violations(), 0);
//! for failure in report.failures() {
//!     let t = triage(failure, Some(&campaign_dir()));
//!     println!("shrunk to {} events: {:?}", t.shrunk.events.len(), t.dump_path);
//! }
//! ```
//!
//! [`FaultSpec::Multi`]: flash_machine::FaultSpec::Multi

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod invariants;
mod runner;
mod schedule;
mod triage;

pub use invariants::{check_all, GrayFacts, RunContext, Violation};
pub use runner::{
    per_run_seed, run_campaign, run_schedule, run_schedule_sharded, CampaignConfig, CampaignReport,
    RunRecord, Verdict,
};
pub use schedule::{generate, json_escape, FaultEvent, GeneratorConfig, InjectAt, Mode, Schedule};
pub use triage::{campaign_dir, post_mortem_json, shrink, triage, TriageReport};

#[cfg(test)]
mod tests {
    use super::*;
    use flash_machine::FaultSpec;
    use flash_net::NodeId;

    fn tiny_schedule(seed: u64, firewall: bool, events: Vec<FaultEvent>) -> Schedule {
        Schedule {
            seed,
            n_nodes: 8,
            mode: Mode::Machine,
            fill_ops: 120,
            total_ops: 350,
            firewall_enabled: firewall,
            events,
        }
    }

    #[test]
    fn clean_single_fault_schedule_passes_the_stack() {
        let s = tiny_schedule(
            7,
            true,
            vec![FaultEvent {
                at: InjectAt::Steady { offset_ns: 100 },
                fault: FaultSpec::Node(NodeId(3)),
            }],
        );
        let r = run_schedule(&s);
        assert!(r.finished, "run must drain");
        assert!(r.passed(), "violations: {:?}", r.violations);
        assert!(r.restarts == 0, "single fault needs no restart");
    }

    #[test]
    fn phase_armed_fault_fires_and_recovers() {
        let s = tiny_schedule(
            11,
            true,
            vec![
                FaultEvent {
                    at: InjectAt::Steady { offset_ns: 0 },
                    fault: FaultSpec::Node(NodeId(2)),
                },
                FaultEvent {
                    at: InjectAt::PhaseEntry {
                        phase: 2,
                        delay_ns: 500,
                    },
                    fault: FaultSpec::Node(NodeId(5)),
                },
            ],
        );
        let r = run_schedule(&s);
        assert_eq!(r.phase_hits, [0, 1, 0, 0], "P2 fault must have fired");
        assert!(r.passed(), "violations: {:?}", r.violations);
        assert!(
            r.restarts >= 1,
            "a mid-recovery fault must restart the algorithm"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let s = tiny_schedule(
            13,
            true,
            vec![FaultEvent {
                at: InjectAt::Steady { offset_ns: 50 },
                fault: FaultSpec::InfiniteLoop(NodeId(4)),
            }],
        );
        let a = run_schedule(&s);
        let b = run_schedule(&s);
        assert_eq!(a.end_time_ns, b.end_time_ns);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.restarts, b.restarts);
    }

    #[test]
    fn disabled_firewall_is_caught_replayed_and_shrunk() {
        // The deliberately seeded bug: with the firewall off, the dying
        // master's wild write lands in node 0's protected memory.
        let s = tiny_schedule(
            17,
            false,
            vec![
                FaultEvent {
                    at: InjectAt::Steady { offset_ns: 200 },
                    fault: FaultSpec::Node(NodeId(1)),
                },
                FaultEvent {
                    at: InjectAt::PhaseEntry {
                        phase: 3,
                        delay_ns: 1_000,
                    },
                    fault: FaultSpec::FalseAlarm(NodeId(6)),
                },
            ],
        );
        let r = run_schedule(&s);
        assert!(!r.passed(), "the wild write must violate an invariant");
        assert!(
            r.violations.iter().any(
                |v| v.invariant == "oracle-corruption" || v.invariant == "version-monotonicity"
            ),
            "got: {:?}",
            r.violations
        );
        assert!(!r.trace.is_empty(), "failures must capture the trace");

        let t = triage(&r, None);
        assert!(t.reproduced, "seed replay must reproduce the violation");
        assert!(
            t.shrunk.events.len() <= 2,
            "shrunk to {} events",
            t.shrunk.events.len()
        );
        assert!(!t.shrunk_record.passed());
        let json = post_mortem_json(&t);
        assert!(json.contains("\"reproduced\": true"), "{json}");
        assert!(json.contains("shrunk_schedule"), "{json}");
    }

    #[test]
    fn campaign_outcome_is_independent_of_worker_count() {
        let base = CampaignConfig {
            master_seed: 3,
            runs: 6,
            workers: 1,
            generator: GeneratorConfig {
                min_nodes: 8,
                max_nodes: 10,
                max_events: 2,
                ..GeneratorConfig::default()
            },
            ..CampaignConfig::default()
        };
        let seq = run_campaign(&base);
        let par = run_campaign(&CampaignConfig { workers: 3, ..base });
        assert_eq!(seq.records.len(), 6);
        let key = |r: &CampaignReport| -> Vec<(u64, bool, u64)> {
            r.records
                .iter()
                .map(|rec| (rec.schedule.seed, rec.passed(), rec.end_time_ns))
                .collect()
        };
        assert_eq!(key(&seq), key(&par));
        assert_eq!(seq.total_violations(), 0, "failures: {:?}", {
            let v: Vec<_> = seq.failures().map(|f| &f.violations).collect();
            v
        });
    }

    #[test]
    fn invariant_report_hash_is_identical_across_1_and_8_workers() {
        use std::hash::{Hash, Hasher};

        // Hashes everything an invariant report contains — per-run
        // violations (names and rendered details), completion, end times,
        // restarts, phase hits, and traces — so any scheduling-dependent
        // divergence between worker counts shows up as a hash mismatch.
        fn report_hash(r: &CampaignReport) -> u64 {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            for rec in &r.records {
                rec.schedule.seed.hash(&mut h);
                rec.finished.hash(&mut h);
                rec.end_time_ns.hash(&mut h);
                rec.restarts.hash(&mut h);
                rec.phase_hits.hash(&mut h);
                rec.os_recovery_hits.hash(&mut h);
                rec.violations.len().hash(&mut h);
                for v in &rec.violations {
                    v.invariant.hash(&mut h);
                    v.details.hash(&mut h);
                }
                rec.trace.hash(&mut h);
                rec.trace_hash.hash(&mut h);
                rec.trace_dropped.hash(&mut h);
            }
            r.phase_hits.hash(&mut h);
            r.os_recovery_hits.hash(&mut h);
            h.finish()
        }

        let base = CampaignConfig {
            master_seed: 29,
            runs: 8,
            workers: 1,
            generator: GeneratorConfig {
                min_nodes: 8,
                max_nodes: 10,
                max_events: 2,
                ..GeneratorConfig::default()
            },
            ..CampaignConfig::default()
        };
        let seq = run_campaign(&base);
        let par = run_campaign(&CampaignConfig { workers: 8, ..base });
        assert_eq!(
            report_hash(&seq),
            report_hash(&par),
            "campaign must be bit-identical across worker counts"
        );
        // The per-run merged-trace hashes (FNV-1a over the totally ordered
        // event stream) must also agree record by record: the structured
        // trace itself, not just the report, is worker-count independent.
        let traces = |r: &CampaignReport| -> Vec<u64> {
            r.records.iter().map(|rec| rec.trace_hash).collect()
        };
        assert_eq!(
            traces(&seq),
            traces(&par),
            "merged traces must be identical across 1 and 8 workers"
        );
    }

    #[test]
    fn sharded_campaign_is_identical_across_intra_run_worker_counts() {
        use flash_machine::ShardPlan;

        // The intra-run counterpart of the 1-vs-8-worker tests above: each
        // run itself executes on the sharded simulator core, and the
        // number of threads multiplexing a run's shards must never show up
        // in any record — schedule outcomes, verdicts or merged trace
        // hashes. (The region count is pinned: it is part of the run
        // identity, like the seed.)
        let base = CampaignConfig {
            master_seed: 53,
            runs: 4,
            workers: 1,
            shard: Some(ShardPlan::new(4, 1)),
            generator: GeneratorConfig {
                min_nodes: 8,
                max_nodes: 10,
                max_events: 2,
                gray_chance: 0.4,
                ..GeneratorConfig::default()
            },
        };
        let one = run_campaign(&base);
        let eight = run_campaign(&CampaignConfig {
            shard: Some(ShardPlan::new(4, 8)),
            ..base
        });
        let key = |r: &CampaignReport| -> Vec<(u64, bool, u64, &'static str, u64)> {
            r.records
                .iter()
                .map(|rec| {
                    (
                        rec.schedule.seed,
                        rec.passed(),
                        rec.end_time_ns,
                        rec.verdict.kind_str(),
                        rec.trace_hash,
                    )
                })
                .collect()
        };
        assert_eq!(
            key(&one),
            key(&eight),
            "sharded campaign must be bit-identical across intra-run worker counts"
        );
        assert_eq!(one.total_violations(), 0, "failures: {:?}", {
            let v: Vec<_> = one.failures().map(|f| &f.violations).collect();
            v
        });
    }

    #[test]
    fn fail_slow_run_survives_degraded_with_full_progress() {
        let s = tiny_schedule(
            19,
            true,
            vec![FaultEvent {
                at: InjectAt::Steady { offset_ns: 100 },
                fault: FaultSpec::FailSlow(NodeId(3), 6),
            }],
        );
        let r = run_schedule(&s);
        assert!(r.finished, "a fail-slow machine must still drain");
        assert!(r.passed(), "violations: {:?}", r.violations);
        assert_eq!(
            r.verdict,
            Verdict::SurvivedDegraded,
            "fail-slow alone is legitimately undetected"
        );
        assert_eq!(r.detect_latency_ns, None);
    }

    #[test]
    fn degraded_memory_and_lossy_link_pass_the_stack() {
        use flash_net::RouterId;
        let s = tiny_schedule(
            23,
            true,
            vec![
                FaultEvent {
                    at: InjectAt::Steady { offset_ns: 50 },
                    fault: FaultSpec::DegradedMemory(NodeId(2), 40, 900),
                },
                FaultEvent {
                    at: InjectAt::Steady { offset_ns: 2_000 },
                    fault: FaultSpec::LossyLink(RouterId(0), RouterId(1), 50_000),
                },
            ],
        );
        let r = run_schedule(&s);
        assert!(r.passed(), "violations: {:?}", r.violations);
        assert!(
            matches!(
                r.verdict,
                Verdict::SurvivedDegraded | Verdict::DetectedRecovered
            ),
            "gray-only run must not be classified as contained: {:?}",
            r.verdict
        );
    }

    #[test]
    fn pool_failure_is_contained_like_a_multi_node_fault() {
        let s = tiny_schedule(
            27,
            true,
            vec![FaultEvent {
                at: InjectAt::Steady { offset_ns: 100 },
                fault: FaultSpec::PoolFailure {
                    pool: vec![NodeId(2), NodeId(3)],
                },
            }],
        );
        let r = run_schedule(&s);
        assert!(r.passed(), "violations: {:?}", r.violations);
        assert_eq!(r.verdict, Verdict::Contained, "a pool failure dooms nodes");
        assert!(
            r.detect_latency_ns.is_some(),
            "contained runs must report a detection latency"
        );
    }

    #[test]
    fn gray_campaign_is_identical_across_1_and_8_workers() {
        // The acceptance gate of the gray-failure extension: with gray
        // faults in the schedule mix, campaign outcomes (including the new
        // verdict and detection-latency fields, and the merged trace
        // hashes) stay bit-identical whatever the worker count.
        let base = CampaignConfig {
            master_seed: 31,
            runs: 8,
            workers: 1,
            generator: GeneratorConfig {
                min_nodes: 8,
                max_nodes: 10,
                max_events: 2,
                gray_chance: 0.6,
                ..GeneratorConfig::default()
            },
            ..CampaignConfig::default()
        };
        let seq = run_campaign(&base);
        let par = run_campaign(&CampaignConfig { workers: 8, ..base });
        let key = |r: &CampaignReport| -> Vec<(u64, &'static str, Option<u64>, u64, bool)> {
            r.records
                .iter()
                .map(|rec| {
                    (
                        rec.schedule.seed,
                        rec.verdict.kind_str(),
                        rec.detect_latency_ns,
                        rec.trace_hash,
                        rec.passed(),
                    )
                })
                .collect()
        };
        assert_eq!(key(&seq), key(&par));
        assert_eq!(seq.total_violations(), 0, "failures: {:?}", {
            let v: Vec<_> = seq.failures().map(|f| &f.violations).collect();
            v
        });
        assert!(
            seq.records
                .iter()
                .any(|r| r.verdict != Verdict::Contained || r.detect_latency_ns.is_some()),
            "the mix must exercise the three-way oracle"
        );
    }

    #[test]
    fn kv_campaign_passes_the_stack_and_reports_serving_stats() {
        // KV serving mode end to end: every schedule hosts the replicated
        // KV workload, faults strike mid-traffic, and both the generic
        // invariant stack and the KV serving invariants must hold.
        let cfg = CampaignConfig {
            master_seed: 41,
            runs: 6,
            workers: 3,
            generator: GeneratorConfig {
                min_nodes: 8,
                max_nodes: 8,
                max_events: 2,
                kv_chance: 1.0,
                gray_chance: 0.4,
                ..GeneratorConfig::default()
            },
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg);
        assert_eq!(report.records.len(), 6);
        assert_eq!(report.total_violations(), 0, "failures: {:?}", {
            let v: Vec<_> = report.failures().map(|f| &f.violations).collect();
            v
        });
        for rec in &report.records {
            let kv = rec.kv.as_ref().expect("kv schedules must carry kv stats");
            assert!(
                kv.arrivals > 0,
                "no requests served for {}",
                rec.schedule.seed
            );
            assert!(
                kv.ok > kv.arrivals / 2,
                "seed {}: only {}/{} requests succeeded",
                rec.schedule.seed,
                kv.ok,
                kv.arrivals
            );
        }
    }

    #[test]
    fn kv_campaign_is_identical_across_1_and_8_workers() {
        let base = CampaignConfig {
            master_seed: 43,
            runs: 6,
            workers: 1,
            generator: GeneratorConfig {
                min_nodes: 8,
                max_nodes: 8,
                max_events: 2,
                kv_chance: 1.0,
                gray_chance: 0.4,
                ..GeneratorConfig::default()
            },
            ..CampaignConfig::default()
        };
        let seq = run_campaign(&base);
        let par = run_campaign(&CampaignConfig { workers: 8, ..base });
        let key = |r: &CampaignReport| -> Vec<(u64, &'static str, u64, String)> {
            r.records
                .iter()
                .map(|rec| {
                    let kv = rec.kv.as_ref().expect("kv stats");
                    (
                        rec.schedule.seed,
                        rec.verdict.kind_str(),
                        rec.trace_hash,
                        format!("{}/{}/{}/{}", kv.arrivals, kv.ok, kv.errors, kv.unserved),
                    )
                })
                .collect()
        };
        assert_eq!(
            key(&seq),
            key(&par),
            "kv campaign must be bit-identical across worker counts"
        );
    }

    #[test]
    fn per_run_seeds_are_stable_and_distinct() {
        let seeds: Vec<u64> = (0..100).map(|i| per_run_seed(42, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "per-run seeds must not collide");
        assert_eq!(per_run_seed(42, 7), seeds[7]);
    }
}
