//! Schedule execution and the parallel campaign driver.
//!
//! [`run_schedule`] executes one [`Schedule`] deterministically: it drives
//! the simulation in fixed slices, arms steady faults after the workload
//! prelude, arms phase-entry faults by polling the recovery extension's
//! machine-wide phase-entry times between slices, models the dying master's
//! stray write (the wild write the MAGIC firewall exists to block,
//! Section 3.1), and runs the invariant stack on the final state.
//!
//! [`run_campaign`] fans runs across worker threads with deterministic
//! per-run seeds, so a campaign's outcome is independent of worker count
//! and every failure is replayable from its seed alone.

use crate::invariants::{self, GrayFacts, RunContext, Violation};
use crate::schedule::{generate, FaultEvent, GeneratorConfig, InjectAt, Mode, Schedule};
use flash_coherence::{LineAddr, NodeSet};
use flash_core::{build_machine, FcMachine, RecoveryConfig};
use flash_hive::{os, CellLayout, CompileTask, HiveConfig, ServerLoop, TaskState};
use flash_hivekv::{prepare_kv_serving, KvConfig, KvStats};
use flash_machine::{FaultSpec, Idle, MachineParams, ProcState, RandomFill, ShardPlan};
use flash_net::NodeId;
use flash_sim::{DetRng, RunOutcome, SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The three-way containment verdict of one run (the revised oracle: a
/// fail-slow fault may legitimately go undetected, so "no recovery ran" is
/// only a failure when a fail-stop fault fired).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// A node-dooming (fail-stop) fault fired; recovery contained it.
    Contained,
    /// Nothing was doomed, but detection hardware noticed the fault (NAK
    /// overflow, timeout, false alarm) and recovery ran to completion.
    DetectedRecovered,
    /// No detection fired and the machine survived, possibly degraded —
    /// the legitimate quiet outcome of a gray fault.
    SurvivedDegraded,
}

impl Verdict {
    /// Stable string tag (result sheets, JSON).
    pub fn kind_str(&self) -> &'static str {
        match self {
            Verdict::Contained => "contained",
            Verdict::DetectedRecovered => "detected_recovered",
            Verdict::SurvivedDegraded => "survived_degraded",
        }
    }
}

/// The outcome of one schedule execution.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// The schedule that was run (self-contained replay input).
    pub schedule: Schedule,
    /// Invariant violations found on the final state (empty = pass).
    pub violations: Vec<Violation>,
    /// Whether the run reached a terminal state within its budget.
    pub finished: bool,
    /// Final simulated time, ns.
    pub end_time_ns: u64,
    /// Recovery restarts observed.
    pub restarts: u32,
    /// Faults that fired during each recovery phase (P1–P4).
    pub phase_hits: [u64; 4],
    /// Faults injected during the Hive OS recovery pass.
    pub os_recovery_hits: u64,
    /// The containment verdict.
    pub verdict: Verdict,
    /// Nanoseconds from the first fired fault to the recovery trigger, when
    /// both happened (in that order).
    pub detect_latency_ns: Option<u64>,
    /// Rendered machine trace; captured only when violations were found.
    pub trace: String,
    /// FNV-1a hash of the merged trace (always captured; worker-count
    /// independent, so campaigns can assert trace determinism cheaply).
    pub trace_hash: u64,
    /// Trace records evicted from the bounded recorder rings.
    pub trace_dropped: u64,
    /// Flight-recorder tail (last trace events) as a JSON array; captured
    /// only when violations were found.
    pub trace_tail_json: String,
    /// Metrics snapshot as a JSON object; captured only when violations
    /// were found.
    pub metrics_json: String,
    /// User-visible serving statistics (KV mode only).
    pub kv: Option<KvStats>,
}

impl RunRecord {
    /// Whether the run passed the whole invariant stack.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Whether a fired fault is guaranteed to be detected. Any node-dooming
/// fault is: live traffic referencing the dead home times out, fail-fast
/// assertions self-trigger, and when both of those are quiet the machine's
/// heartbeat audit raises the trigger within one heartbeat period — so the
/// oracle never excuses an undetected fail-stop fault.
fn detectable_fault(f: &FaultSpec) -> bool {
    !f.doomed_nodes().is_empty()
}

/// Schedules `fault` and models the dying master's stray write: one store
/// aimed at `target`'s MAGIC-protected tail page, submitted to the target's
/// firewall. With the firewall enabled the write is denied (containment);
/// with it disabled — the deliberately seeded bug — the write lands and the
/// oracle-based invariants must catch it.
fn inject(m: &mut FcMachine, at: SimTime, fault: &FaultSpec, wild_target: NodeId) {
    m.schedule_fault(at, fault.clone());
    if let Some(&victim) = fault.doomed_nodes().first() {
        let st = m.st_mut();
        let lpn = st.layout.lines_per_node();
        let line = LineAddr((wild_target.index() as u64 + 1) * lpn - 1);
        if st.nodes[wild_target.index()]
            .firewall
            .may_write(line.page(), victim)
        {
            let v = st.nodes[wild_target.index()].dir.mem_version(line).next();
            st.nodes[wild_target.index()].dir.recovery_put(line, v);
            st.counters.incr("wild_writes_landed");
        } else {
            st.counters.incr("wild_writes_blocked");
        }
    }
}

/// A fault that has been scheduled into the machine.
struct Armed {
    at: SimTime,
    fault: FaultSpec,
}

/// Executes one schedule and checks the invariant stack.
pub fn run_schedule(s: &Schedule) -> RunRecord {
    run_schedule_with(s, None)
}

/// [`run_schedule`] with machine-mode slices driven through the sharded
/// executor ([`flash_machine::Machine::run_until_sharded`]).
///
/// `plan.regions` is part of the run identity — a sharded record is its
/// own valid discretization and need not match a serial [`run_schedule`]
/// record — but `plan.workers` never is: the record is bit-identical for
/// any worker count, which is what the intra-run determinism campaign
/// tests assert. Hive and KV schedules (slice loops owned by their prep
/// harnesses) still run on the serial engine.
pub fn run_schedule_sharded(s: &Schedule, plan: ShardPlan) -> RunRecord {
    run_schedule_with(s, Some(plan))
}

fn run_schedule_with(s: &Schedule, plan: Option<ShardPlan>) -> RunRecord {
    match s.mode {
        Mode::Machine => run_machine_schedule(s, plan),
        Mode::Hive => run_hive_schedule(s),
        Mode::HiveKv => run_kv_schedule(s),
    }
}

/// Advances the machine to `horizon` on the serial engine or, given a
/// plan, on the sharded executor.
fn drive(m: &mut FcMachine, horizon: SimTime, plan: Option<ShardPlan>) -> RunOutcome {
    match plan {
        Some(p) => m.run_until_sharded(horizon, p),
        None => m.run_until(horizon),
    }
}

#[allow(clippy::too_many_arguments)]
fn finalize(
    m: &FcMachine,
    s: &Schedule,
    finished: bool,
    detectable: bool,
    phase_hits: [u64; 4],
    os_recovery_hits: u64,
    extra: Vec<Violation>,
    fired: &[FaultSpec],
    first_inject: Option<SimTime>,
) -> RunRecord {
    let gray = GrayFacts::from_faults(fired);
    let triggered_at = m.ext().report.phases.triggered_at;
    // The revised three-way oracle. Ordering matters: a doomed node means
    // the run exercised fail-stop containment whatever else fired.
    let verdict = if gray.doomed_any {
        Verdict::Contained
    } else if triggered_at.is_some() {
        Verdict::DetectedRecovered
    } else {
        Verdict::SurvivedDegraded
    };
    let detect_latency_ns = match (first_inject, triggered_at) {
        (Some(i), Some(t)) if t >= i => Some(t.since(i).as_nanos()),
        _ => None,
    };
    let ctx = RunContext {
        finished,
        detectable_fault_fired: detectable,
        hive: s.mode == Mode::Hive,
        required_progress: if s.mode == Mode::Machine {
            s.total_ops
        } else {
            0
        },
        gray,
    };
    let mut violations = invariants::check_all(m, &ctx);
    violations.extend(extra);
    let obs = &m.st().obs;
    // Flight-recorder mode: the event tail and metrics snapshot are only
    // materialized for failing runs (the post-mortem input).
    let (trace, trace_tail_json, metrics_json) = if violations.is_empty() {
        (String::new(), String::new(), String::new())
    } else {
        (
            obs.render(),
            flash_obs::tail_json(obs, 64),
            obs.metrics.snapshot_json(),
        )
    };
    RunRecord {
        schedule: s.clone(),
        violations,
        finished,
        end_time_ns: m.now().as_nanos(),
        restarts: m.ext().report.restarts,
        phase_hits,
        os_recovery_hits,
        verdict,
        detect_latency_ns,
        trace,
        trace_hash: obs.merged_hash(),
        trace_dropped: obs.dropped_total(),
        trace_tail_json,
        metrics_json,
        kv: None,
    }
}

// ----------------------------------------------------------------------
// Machine mode (Section 5.2 harness)
// ----------------------------------------------------------------------

fn run_machine_schedule(s: &Schedule, plan: Option<ShardPlan>) -> RunRecord {
    let mut params = MachineParams::tiny();
    params.n_nodes = s.n_nodes;
    params.magic.firewall_enabled = s.firewall_enabled;
    let layout = params.layout();
    let protected = params.protected_lines;
    let total_ops = s.total_ops;
    let mut m = build_machine(
        params,
        RecoveryConfig::default(),
        move |_| {
            Box::new(RandomFill::valid_system_range(
                total_ops, 0.5, layout, protected,
            ))
        },
        s.seed,
    );
    // Firewall policy for the stand-alone harness: each node's
    // MAGIC-protected tail pages are writable only by the node itself
    // (Hive installs the equivalent per-cell policy via `os::configure`).
    {
        let st = m.st_mut();
        let lpn = layout.lines_per_node();
        for i in 0..s.n_nodes {
            let first = LineAddr((i as u64 + 1) * lpn - protected).page();
            let last = LineAddr((i as u64 + 1) * lpn - 1).page();
            for p in first.0..=last.0 {
                st.nodes[i].firewall.restrict(
                    flash_coherence::PageAddr(p),
                    NodeSet::singleton(NodeId(i as u16)),
                );
            }
        }
    }
    m.set_event_budget(2_000_000_000);
    m.start();

    // Cache-fill prelude.
    let slice = SimDuration::from_micros(20);
    let mut guard = 0;
    loop {
        let horizon = m.now() + slice;
        let out = drive(&mut m, horizon, plan);
        if m.st()
            .nodes
            .iter()
            .all(|n| n.workload.progress() >= s.fill_ops)
        {
            break;
        }
        guard += 1;
        if guard > 1_000_000 || out == RunOutcome::Drained {
            break;
        }
    }

    // Arm steady events; queue phase-entry events for slice-time arming.
    let steady_base = m.now();
    let mut armed: Vec<Armed> = Vec::new();
    let mut pending: Vec<(u8, u64, FaultSpec)> = Vec::new();
    let mut phase_hits = [0u64; 4];
    let mut detectable = false;
    for FaultEvent { at, fault } in &s.events {
        match *at {
            InjectAt::Steady { offset_ns } => {
                let at = steady_base + SimDuration::from_nanos(1 + offset_ns);
                inject(&mut m, at, fault, NodeId(0));
                detectable |= detectable_fault(fault);
                armed.push(Armed {
                    at,
                    fault: fault.clone(),
                });
            }
            InjectAt::PhaseEntry { phase, delay_ns } => {
                pending.push((phase, delay_ns, fault.clone()));
            }
            // No OS pass in machine mode: fires as a late steady fault.
            InjectAt::DuringOsRecovery => {
                let at = steady_base + SimDuration::from_micros(600);
                inject(&mut m, at, fault, NodeId(0));
                detectable |= detectable_fault(fault);
                armed.push(Armed {
                    at,
                    fault: fault.clone(),
                });
            }
        }
    }

    let horizon = m.now() + SimDuration::from_secs(20);
    let mut finished = false;
    loop {
        // Arm any phase-entry faults whose phase has now been entered.
        let entries = m.ext().phase_entries();
        let mut i = 0;
        while i < pending.len() {
            if entries.entered(pending[i].0).is_some() {
                let (phase, delay_ns, fault) = pending.remove(i);
                let at = m.now() + SimDuration::from_nanos(1 + delay_ns);
                phase_hits[phase as usize - 1] += 1;
                inject(&mut m, at, &fault, NodeId(0));
                detectable |= detectable_fault(&fault);
                armed.push(Armed { at, fault });
            } else {
                i += 1;
            }
        }
        if pending.is_empty() {
            let out = drive(&mut m, horizon, plan);
            finished = out == RunOutcome::Drained;
            break;
        }
        let step = m.now() + SimDuration::from_micros(10);
        let out = drive(&mut m, step, plan);
        if out == RunOutcome::Drained {
            finished = true;
            break;
        }
        if m.now() >= horizon {
            break;
        }
    }

    // The fired-fault list is the *armed* list: a drained run has fired
    // every event it queued, while never-armed phase events did not happen.
    let fired: Vec<FaultSpec> = armed.iter().map(|a| a.fault.clone()).collect();
    let first_inject = armed.iter().map(|a| a.at).min();
    finalize(
        &m,
        s,
        finished,
        detectable,
        phase_hits,
        0,
        Vec::new(),
        &fired,
        first_inject,
    )
}

// ----------------------------------------------------------------------
// Hive mode (Table 5.4 harness)
// ----------------------------------------------------------------------

fn campaign_hive_config() -> HiveConfig {
    HiveConfig {
        n_cells: 4,
        files_per_task: 2,
        blocks_per_file: 16,
        out_blocks: 8,
        compute_ns: 10_000,
        ..HiveConfig::default()
    }
}

fn run_hive_schedule(s: &Schedule) -> RunRecord {
    let hive = campaign_hive_config();
    let mut params = MachineParams::table_5_1();
    params.n_nodes = s.n_nodes;
    params.magic.firewall_enabled = s.firewall_enabled;
    let layout = CellLayout::contiguous(params.n_nodes, hive.n_cells);
    let server = layout.boot_node(0);

    let mut m: FcMachine = build_machine(
        params,
        RecoveryConfig::default(),
        |_| Box::new(Idle),
        s.seed,
    );
    let placement = os::configure(&mut m, &layout, &hive);
    let lines_per_node = m.st().layout.lines_per_node();
    let client_nodes: Vec<NodeId> = (1..hive.n_cells).map(|c| layout.boot_node(c)).collect();
    let kernel_line = |node: NodeId| os::own_region(node, lines_per_node, params.protected_lines).0;
    {
        let st = m.st_mut();
        let n_all = params.n_nodes;
        let peers_of = move |me: NodeId| -> Vec<u64> {
            (0..n_all)
                .map(|i| NodeId(i as u16))
                .filter(|&b| b != me)
                .map(kernel_line)
                .collect()
        };
        st.nodes[server.index()].workload =
            Box::new(ServerLoop::new(placement.server_data, 20_000).with_monitor(peers_of(server)));
        for &client in &client_nodes {
            let own = os::own_region(client, lines_per_node, params.protected_lines);
            let task = CompileTask::new(
                server,
                hive.files_per_task,
                hive.blocks_per_file,
                hive.out_blocks,
                hive.compute_ns,
                placement.server_data,
                own,
                hive.cross_writes.then_some(placement.scratch),
            )
            .with_monitor(peers_of(client));
            st.nodes[client.index()].workload = Box::new(task);
        }
    }
    m.set_event_budget(4_000_000_000);
    m.start();

    // Wild writes must land in a cell the victim does not belong to; aiming
    // at a fixed foreign boot node keeps the model deterministic.
    let wild_target = |victim: NodeId| {
        let c = layout.cell_of(victim);
        layout.boot_node(if c == 0 { 1 } else { 0 })
    };

    // Run until one compile passes the injection threshold.
    let inject_threshold = hive.ops_per_task() * 3 / 10;
    let mut guard = 0;
    loop {
        m.run_for(SimDuration::from_micros(50));
        let ready = client_nodes
            .iter()
            .any(|c| m.st().nodes[c.index()].workload.progress() >= inject_threshold);
        if ready || guard > 2_000_000 {
            break;
        }
        guard += 1;
    }

    // Arm events.
    let steady_base = m.now();
    let mut armed: Vec<Armed> = Vec::new();
    let mut pending: Vec<(u8, u64, FaultSpec)> = Vec::new();
    let mut os_events: Vec<FaultSpec> = Vec::new();
    let mut phase_hits = [0u64; 4];
    let mut detectable = false;
    for FaultEvent { at, fault } in &s.events {
        match *at {
            InjectAt::Steady { offset_ns } => {
                let at = steady_base + SimDuration::from_nanos(1 + offset_ns);
                let target = fault
                    .doomed_nodes()
                    .first()
                    .map_or(NodeId(0), |&v| wild_target(v));
                inject(&mut m, at, fault, target);
                detectable |= detectable_fault(fault);
                armed.push(Armed {
                    at,
                    fault: fault.clone(),
                });
            }
            InjectAt::PhaseEntry { phase, delay_ns } => {
                pending.push((phase, delay_ns, fault.clone()));
            }
            InjectAt::DuringOsRecovery => os_events.push(fault.clone()),
        }
    }

    // Main loop: drive to terminal compiles + completed recovery, arming
    // phase-entry faults between slices (mirrors `run_parallel_make`).
    let mut finished = false;
    let mut detect_wait = 0u32;
    let budget = 400_000; // x 50us = 20s of simulated time
    for _ in 0..budget {
        let entries = m.ext().phase_entries();
        let mut i = 0;
        while i < pending.len() {
            if entries.entered(pending[i].0).is_some() {
                let (phase, delay_ns, fault) = pending.remove(i);
                let at = m.now() + SimDuration::from_nanos(1 + delay_ns);
                phase_hits[phase as usize - 1] += 1;
                let target = fault
                    .doomed_nodes()
                    .first()
                    .map_or(NodeId(0), |&v| wild_target(v));
                inject(&mut m, at, &fault, target);
                detectable |= detectable_fault(&fault);
                armed.push(Armed { at, fault });
            } else {
                i += 1;
            }
        }
        let out = m.run_for(SimDuration::from_micros(50));
        let all_done = client_nodes.iter().all(|c| {
            let n = &m.st().nodes[c.index()];
            !n.is_alive() || matches!(n.proc, ProcState::Halted | ProcState::Dead)
        });
        let all_fired = armed.iter().all(|a| m.now() >= a.at);
        if all_done && !m.ext().recovery_active() && pending.is_empty() && all_fired {
            let fault_pending = detectable && !m.ext().report.completed();
            if fault_pending && detect_wait < 10_000 {
                detect_wait += 1;
                continue;
            }
            finished = true;
            break;
        }
        if out == RunOutcome::Drained {
            finished = true;
            break;
        }
    }

    // OS recovery pass, with optional faults injected in its window.
    let mut os_recovery_hits = 0u64;
    if m.ext().report.completed() || !os_events.is_empty() {
        for fault in &os_events {
            os_recovery_hits += 1;
            let prior_p4 = m.ext().report.phases.p4_done;
            let target = fault
                .doomed_nodes()
                .first()
                .map_or(NodeId(0), |&v| wild_target(v));
            let at = m.now() + SimDuration::from_nanos(1);
            inject(&mut m, at, fault, target);
            detectable |= detectable_fault(fault);
            // Let the new fault be detected and recovered before the OS
            // pass resumes (up to ~2 s of simulated time).
            for _ in 0..40_000 {
                m.run_for(SimDuration::from_micros(50));
                let done = !m.ext().recovery_active()
                    && (m.ext().report.phases.p4_done != prior_p4
                        || m.ext().report.machine_halted
                        || fault.doomed_nodes().is_empty());
                if done {
                    break;
                }
            }
        }
        os::os_recover(&mut m);
        // Settle any tasks the OS pass unblocked or terminated.
        for _ in 0..2_000 {
            let out = m.run_for(SimDuration::from_micros(50));
            let all_done = client_nodes.iter().all(|c| {
                let n = &m.st().nodes[c.index()];
                !n.is_alive() || matches!(n.proc, ProcState::Halted | ProcState::Dead)
            });
            if all_done || out == RunOutcome::Drained {
                break;
            }
        }
    }

    // Hive-level completeness: compiles with no dependency on a failed
    // cell must have completed.
    let mut extra = Vec::new();
    if finished && m.ext().report.completed() && !m.ext().report.machine_halted {
        let failed_cells = layout.failed_cells(&m.st().failed_nodes);
        let server_failed = failed_cells.contains(&0);
        for (i, &node) in client_nodes.iter().enumerate() {
            let cell = i + 1;
            let affected = server_failed || failed_cells.contains(&cell);
            if affected {
                continue;
            }
            match os::task_result(&m, node) {
                Some((TaskState::Completed, _)) => {}
                other => extra.push(Violation {
                    invariant: "hive-unaffected-completion",
                    details: format!(
                        "cell {cell} had no failed dependency but its compile ended as {other:?}"
                    ),
                }),
            }
        }
    }

    let mut fired: Vec<FaultSpec> = armed.iter().map(|a| a.fault.clone()).collect();
    if os_recovery_hits > 0 {
        fired.extend(os_events.iter().cloned());
    }
    let first_inject = armed.iter().map(|a| a.at).min();
    finalize(
        &m,
        s,
        finished,
        detectable,
        phase_hits,
        os_recovery_hits,
        extra,
        &fired,
        first_inject,
    )
}

// ----------------------------------------------------------------------
// KV serving mode (hive-kv harness)
// ----------------------------------------------------------------------

/// Executes a KV serving schedule: boot cells with replicated KV shards,
/// warm to the injection threshold, arm the schedule's faults, drive
/// through recovery and the replication-repair pass, and judge both the
/// generic invariant stack and the KV serving invariants (no data loss
/// while a replica survives; unaffected chunks keep their SLO).
fn run_kv_schedule(s: &Schedule) -> RunRecord {
    let kv = KvConfig::campaign();
    let mut params = MachineParams::table_5_1();
    params.n_nodes = s.n_nodes;
    params.magic.firewall_enabled = s.firewall_enabled;
    let layout = CellLayout::contiguous(params.n_nodes, kv.n_cells);
    let mut prep = prepare_kv_serving(params, &kv, RecoveryConfig::default(), s.seed);

    // Wild writes must land in a cell the victim does not belong to (same
    // policy as hive mode).
    let wild_target = |victim: NodeId| {
        let c = layout.cell_of(victim);
        layout.boot_node(if c == 0 { 1 } else { 0 })
    };

    // Warm until any shard passes the injection threshold.
    let inject_threshold = kv.requests_per_shard * 3 / 10;
    let mut guard = 0;
    loop {
        prep.machine_mut().run_for(SimDuration::from_micros(50));
        let ready = prep
            .shard_nodes()
            .iter()
            .any(|c| prep.machine().st().nodes[c.index()].workload.progress() >= inject_threshold);
        if ready || guard > 2_000_000 {
            break;
        }
        guard += 1;
    }

    // Arm events.
    let steady_base = prep.machine().now();
    let mut armed: Vec<Armed> = Vec::new();
    let mut pending: Vec<(u8, u64, FaultSpec)> = Vec::new();
    let mut os_events: Vec<FaultSpec> = Vec::new();
    let mut phase_hits = [0u64; 4];
    let mut detectable = false;
    for FaultEvent { at, fault } in &s.events {
        match *at {
            InjectAt::Steady { offset_ns } => {
                let at = steady_base + SimDuration::from_nanos(1 + offset_ns);
                let target = fault
                    .doomed_nodes()
                    .first()
                    .map_or(NodeId(0), |&v| wild_target(v));
                inject(prep.machine_mut(), at, fault, target);
                detectable |= detectable_fault(fault);
                armed.push(Armed {
                    at,
                    fault: fault.clone(),
                });
            }
            InjectAt::PhaseEntry { phase, delay_ns } => {
                pending.push((phase, delay_ns, fault.clone()));
            }
            InjectAt::DuringOsRecovery => os_events.push(fault.clone()),
        }
    }

    // Main loop: drive until every shard drains (or dies) and recovery is
    // idle, arming phase-entry faults between slices and running the
    // service-level repair pass at every recovery completion.
    let mut finished = false;
    let mut detect_wait = 0u32;
    let mut os_recovery_hits = 0u64;
    let budget = 400_000; // x 50us = 20s of simulated time
    for _ in 0..budget {
        let entries = prep.machine().ext().phase_entries();
        let mut i = 0;
        while i < pending.len() {
            if entries.entered(pending[i].0).is_some() {
                let (phase, delay_ns, fault) = pending.remove(i);
                let at = prep.machine().now() + SimDuration::from_nanos(1 + delay_ns);
                phase_hits[phase as usize - 1] += 1;
                let target = fault
                    .doomed_nodes()
                    .first()
                    .map_or(NodeId(0), |&v| wild_target(v));
                inject(prep.machine_mut(), at, &fault, target);
                detectable |= detectable_fault(&fault);
                armed.push(Armed { at, fault });
            } else {
                i += 1;
            }
        }
        let out = prep.machine_mut().run_for(SimDuration::from_micros(50));
        // At each recovery completion: OS page service + replica repair.
        // Faults armed "during OS recovery" fire in exactly that window.
        if prep.post_recovery_pass().is_some() {
            for fault in os_events.drain(..) {
                os_recovery_hits += 1;
                let at = prep.machine().now() + SimDuration::from_nanos(1);
                let target = fault
                    .doomed_nodes()
                    .first()
                    .map_or(NodeId(0), |&v| wild_target(v));
                inject(prep.machine_mut(), at, &fault, target);
                detectable |= detectable_fault(&fault);
                armed.push(Armed { at, fault });
            }
        }
        let all_fired = {
            let now = prep.machine().now();
            armed.iter().all(|a| now >= a.at)
        };
        if prep.shards_done()
            && !prep.machine().ext().recovery_active()
            && pending.is_empty()
            && os_events.is_empty()
            && all_fired
        {
            let fault_pending = detectable && !prep.machine().ext().report.completed();
            if fault_pending && detect_wait < 10_000 {
                detect_wait += 1;
                continue;
            }
            finished = true;
            break;
        }
        if out == RunOutcome::Drained {
            // A drained machine whose triggered recovery never completed is
            // a wedged fault cascade (recovery messages lost over dead
            // links), not a finished run — leave `finished` false so the
            // drain-dependent checks don't judge a machine that never came
            // back.
            let report = &prep.machine().ext().report;
            finished =
                report.machine_halted || report.phases.triggered_at.is_none() || report.completed();
            break;
        }
    }
    prep.post_recovery_pass();

    // Never-armed OS-recovery events (no recovery completed) did not fire.
    let fired: Vec<FaultSpec> = armed.iter().map(|a| a.fault.clone()).collect();
    let first_inject = armed.iter().map(|a| a.at).min();

    {
        let now = prep.machine().now();
        let failed_cells = layout.failed_cells(&prep.machine().st().failed_nodes);
        let st = prep.machine_mut().st_mut();
        for &cell in &failed_cells {
            st.obs.record(
                flash_obs::Domain::Hive,
                now,
                flash_obs::TraceEvent::HiveCell {
                    cell: cell as u16,
                    what: "cell_failed",
                    value: layout.members(cell).len() as u64,
                },
            );
        }
    }

    let outcome = prep.collect(finished, detectable);
    let extra: Vec<Violation> = outcome
        .checks
        .iter()
        .map(|c| Violation {
            invariant: c.name,
            details: c.details.clone(),
        })
        .collect();

    let mut record = finalize(
        prep.machine(),
        s,
        finished,
        detectable,
        phase_hits,
        os_recovery_hits,
        extra,
        &fired,
        first_inject,
    );
    record.kv = Some(outcome.stats);
    record
}

// ----------------------------------------------------------------------
// Parallel campaign driver
// ----------------------------------------------------------------------

/// Configuration of a randomized campaign.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Master seed; every per-run seed derives deterministically from it.
    pub master_seed: u64,
    /// Number of runs.
    pub runs: u64,
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Drive each machine-mode run through the sharded executor with this
    /// plan (`None` = serial engine). The plan's region count is part of
    /// every run's identity; its worker count is not — see
    /// [`run_schedule_sharded`].
    pub shard: Option<ShardPlan>,
    /// Schedule-generator tunables.
    pub generator: GeneratorConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            master_seed: 1,
            runs: 200,
            workers: 4,
            shard: None,
            generator: GeneratorConfig::default(),
        }
    }
}

/// The outcome of a campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Per-run records, in run order (independent of worker count).
    pub records: Vec<RunRecord>,
    /// Campaign-wide count of faults fired during each recovery phase.
    pub phase_hits: [u64; 4],
    /// Campaign-wide count of faults injected during OS recovery.
    pub os_recovery_hits: u64,
    /// Host wall-clock seconds the campaign took.
    pub host_secs: f64,
    /// Worker threads used.
    pub workers: usize,
}

impl CampaignReport {
    /// Records that violated at least one invariant.
    pub fn failures(&self) -> impl Iterator<Item = &RunRecord> + '_ {
        self.records.iter().filter(|r| !r.passed())
    }

    /// Total violations across the campaign.
    pub fn total_violations(&self) -> usize {
        self.records.iter().map(|r| r.violations.len()).sum()
    }
}

/// The deterministic seed of run `i` of a campaign (independent of worker
/// count and scheduling).
pub fn per_run_seed(master_seed: u64, i: u64) -> u64 {
    DetRng::new(master_seed ^ 0x0CA_2CA1_67E5)
        .fork(i)
        .next_u64()
}

/// Runs a randomized campaign, fanning runs across `workers` threads via a
/// shared work counter. Results are keyed by run index, so the report is
/// identical whatever the worker count.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let start = std::time::Instant::now();
    let workers = cfg.workers.max(1);
    let next = AtomicU64::new(0);
    let slots: Mutex<Vec<Option<RunRecord>>> = Mutex::new((0..cfg.runs).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cfg.runs {
                    break;
                }
                let seed = per_run_seed(cfg.master_seed, i);
                let schedule = generate(seed, &cfg.generator);
                let record = run_schedule_with(&schedule, cfg.shard);
                slots.lock().expect("campaign result lock")[i as usize] = Some(record);
            });
        }
    });

    let records: Vec<RunRecord> = slots
        .into_inner()
        .expect("campaign result lock")
        .into_iter()
        .map(|r| r.expect("every run index filled"))
        .collect();
    let mut phase_hits = [0u64; 4];
    let mut os_recovery_hits = 0;
    for r in &records {
        for (total, hit) in phase_hits.iter_mut().zip(r.phase_hits) {
            *total += hit;
        }
        os_recovery_hits += r.os_recovery_hits;
    }
    CampaignReport {
        records,
        phase_hits,
        os_recovery_hits,
        host_secs: start.elapsed().as_secs_f64(),
        workers,
    }
}
