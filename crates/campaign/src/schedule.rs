//! Fault-schedule representation and the seeded randomized generator.
//!
//! A [`Schedule`] is a self-contained, replayable description of one chaos
//! run: machine size, workload seed, the firewall switch (the deliberate
//! sabotage knob of the paper's Section 6.2 ablation) and a list of
//! [`FaultEvent`]s, each pairing a [`FaultSpec`] with an injection point
//! ([`InjectAt`]). Running the same schedule twice produces bit-identical
//! simulations, which is what makes seed replay and shrinking possible.

use flash_core::{random_fault, FaultKind};
use flash_machine::FaultSpec;
use flash_net::NodeId;
use flash_sim::DetRng;

/// When, relative to the run, a fault fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectAt {
    /// During steady-state operation: `offset_ns` after the cache-fill
    /// prelude completes (machine mode) or after the compiles pass their
    /// injection threshold (hive mode).
    Steady {
        /// Nanoseconds after the steady-state point.
        offset_ns: u64,
    },
    /// Mid-recovery: `delay_ns` after the first node of the current
    /// incarnation enters recovery phase `phase` (1–4). Fires at most once,
    /// the first time the phase entry is observed.
    PhaseEntry {
        /// Recovery phase, `1..=4`.
        phase: u8,
        /// Nanoseconds after the observed phase entry.
        delay_ns: u64,
    },
    /// During the Hive OS recovery pass, after hardware recovery completed
    /// but before the page service re-initializes incoherent lines (hive
    /// mode only; treated as a late steady fault in machine mode).
    DuringOsRecovery,
}

/// One fault injection of a schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// When to inject.
    pub at: InjectAt,
    /// What to inject.
    pub fault: FaultSpec,
}

/// Which harness the schedule drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The Section 5.2 validation harness: random cache-fill workload,
    /// oracle validation.
    Machine,
    /// The Table 5.4 end-to-end harness: Hive cells running a parallel
    /// make with a file-server cell.
    Hive,
}

/// A complete, replayable chaos-run description.
#[derive(Clone, Debug, PartialEq)]
pub struct Schedule {
    /// Seed for the machine/workload RNGs (and the generator that built
    /// this schedule).
    pub seed: u64,
    /// Node count.
    pub n_nodes: usize,
    /// Harness choice.
    pub mode: Mode,
    /// Operations per processor before the first steady fault (machine
    /// mode).
    pub fill_ops: u64,
    /// Total operations per processor (machine mode).
    pub total_ops: u64,
    /// The MAGIC firewall switch. `false` is the deliberately seeded bug of
    /// the Section 6.2 ablation: the dying master's stray write lands in
    /// another node's memory and the invariant stack must catch it.
    pub firewall_enabled: bool,
    /// The fault injections, in generation order.
    pub events: Vec<FaultEvent>,
}

/// Tunables of the randomized schedule generator.
#[derive(Clone, Copy, Debug)]
pub struct GeneratorConfig {
    /// Minimum machine size.
    pub min_nodes: usize,
    /// Maximum machine size.
    pub max_nodes: usize,
    /// Maximum fault events per schedule (at least 1).
    pub max_events: usize,
    /// Probability that a follow-up event is armed on a recovery-phase
    /// entry instead of a steady-state offset.
    pub phase_fault_chance: f64,
    /// Probability that an event is a multi-fault ([`FaultSpec::Multi`]).
    pub multi_chance: f64,
    /// Probability that a schedule targets the Hive end-to-end harness.
    pub hive_chance: f64,
    /// Firewall switch copied into every schedule (see
    /// [`Schedule::firewall_enabled`]).
    pub firewall_enabled: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            min_nodes: 8,
            max_nodes: 16,
            max_events: 4,
            phase_fault_chance: 0.5,
            multi_chance: 0.25,
            hive_chance: 0.0,
            firewall_enabled: true,
        }
    }
}

/// Draws one single-fault spec, including the firmware-assertion type the
/// Table 5.2 harness does not generate. Avoids node 0 so the machine always
/// keeps a survivor.
fn single_fault(n_nodes: usize, rng: &mut DetRng) -> FaultSpec {
    if rng.chance(0.12) {
        return FaultSpec::FirmwareAssertion(NodeId(1 + rng.below(n_nodes as u64 - 1) as u16));
    }
    let kind = *rng.choose(&FaultKind::ALL).expect("ALL is non-empty");
    random_fault(kind, n_nodes, rng)
}

/// Generates the deterministic fault schedule for `seed`.
///
/// Guarantees:
/// * the first event is a steady-state *real* fault (so that recovery runs
///   and phase-armed events have a phase to hit);
/// * node 0 is never doomed (a survivor always exists);
/// * the cumulative doomed-node count stays below half the machine, so the
///   shutdown heuristic never halts a fault-free-by-construction run.
pub fn generate(seed: u64, cfg: &GeneratorConfig) -> Schedule {
    let mut rng = DetRng::new(seed ^ 0x00C4_A05C_00C4_A05C);
    let hive = rng.chance(cfg.hive_chance);
    let n_nodes = if hive {
        // Hive runs use 4 cells; keep the node count a multiple of 4.
        let lo = cfg.min_nodes.div_ceil(4).max(1);
        let hi = (cfg.max_nodes / 4).max(lo);
        4 * rng.range_inclusive(lo as u64, hi as u64) as usize
    } else {
        rng.range_inclusive(cfg.min_nodes as u64, cfg.max_nodes as u64) as usize
    };
    let max_doomed = (n_nodes / 2).saturating_sub(1).max(1);
    let mut doomed: Vec<NodeId> = Vec::new();
    let mut events = Vec::new();

    let n_events = 1 + rng.index(cfg.max_events.max(1));
    for i in 0..n_events {
        let fault = if i > 0 && rng.chance(cfg.multi_chance) {
            let members = (0..2 + rng.index(2))
                .map(|_| single_fault(n_nodes, &mut rng))
                .collect();
            FaultSpec::Multi(members)
        } else if i == 0 {
            // The opener must actually trigger recovery.
            loop {
                let f = single_fault(n_nodes, &mut rng);
                if !f.is_false_alarm() {
                    break f;
                }
            }
        } else {
            single_fault(n_nodes, &mut rng)
        };

        // Survivor budget: skip events that would doom too much of the
        // machine.
        let mut projected = doomed.clone();
        projected.extend(fault.doomed_nodes());
        projected.sort_unstable_by_key(|n| n.0);
        projected.dedup();
        if projected.len() > max_doomed {
            continue;
        }
        doomed = projected;

        let at = if i == 0 {
            InjectAt::Steady {
                offset_ns: rng.below(100_000),
            }
        } else if hive && rng.chance(0.2) {
            InjectAt::DuringOsRecovery
        } else if rng.chance(cfg.phase_fault_chance) {
            InjectAt::PhaseEntry {
                phase: 1 + rng.index(4) as u8,
                delay_ns: rng.below(50_000),
            }
        } else {
            InjectAt::Steady {
                offset_ns: rng.below(400_000),
            }
        };
        events.push(FaultEvent { at, fault });
    }

    Schedule {
        seed,
        n_nodes,
        mode: if hive { Mode::Hive } else { Mode::Machine },
        fill_ops: 120,
        total_ops: 350,
        firewall_enabled: cfg.firewall_enabled,
        events,
    }
}

// ----------------------------------------------------------------------
// JSON (hand-rolled: the workspace carries no serde)
// ----------------------------------------------------------------------

/// Escapes a string for embedding in a JSON document.
///
/// The canonical escaper lives in `flash-obs` ([`flash_obs::json_escape_str`])
/// so every hand-rolled JSON writer in the workspace shares one
/// implementation; this re-exporting wrapper is kept for API compatibility.
pub fn json_escape(s: &str) -> String {
    flash_obs::json_escape_str(s)
}

fn fault_to_json(f: &FaultSpec) -> String {
    match f {
        FaultSpec::Node(n) => format!("{{\"kind\":\"node\",\"node\":{}}}", n.0),
        FaultSpec::Router(r) => format!("{{\"kind\":\"router\",\"router\":{}}}", r.0),
        FaultSpec::Link(a, b) => {
            format!("{{\"kind\":\"link\",\"a\":{},\"b\":{}}}", a.0, b.0)
        }
        FaultSpec::InfiniteLoop(n) => {
            format!("{{\"kind\":\"infinite_loop\",\"node\":{}}}", n.0)
        }
        FaultSpec::FirmwareAssertion(n) => {
            format!("{{\"kind\":\"firmware_assertion\",\"node\":{}}}", n.0)
        }
        FaultSpec::FalseAlarm(n) => {
            format!("{{\"kind\":\"false_alarm\",\"node\":{}}}", n.0)
        }
        FaultSpec::Multi(list) => {
            let members: Vec<String> = list.iter().map(fault_to_json).collect();
            format!("{{\"kind\":\"multi\",\"members\":[{}]}}", members.join(","))
        }
    }
}

fn inject_to_json(at: &InjectAt) -> String {
    match at {
        InjectAt::Steady { offset_ns } => {
            format!("{{\"when\":\"steady\",\"offset_ns\":{offset_ns}}}")
        }
        InjectAt::PhaseEntry { phase, delay_ns } => {
            format!("{{\"when\":\"phase_entry\",\"phase\":{phase},\"delay_ns\":{delay_ns}}}")
        }
        InjectAt::DuringOsRecovery => "{\"when\":\"during_os_recovery\"}".to_string(),
    }
}

impl Schedule {
    /// Renders the schedule as a JSON object (hand-rolled; no serde in the
    /// workspace).
    pub fn to_json(&self) -> String {
        let events: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                format!(
                    "{{\"at\":{},\"fault\":{}}}",
                    inject_to_json(&e.at),
                    fault_to_json(&e.fault)
                )
            })
            .collect();
        format!(
            "{{\"seed\":{},\"n_nodes\":{},\"mode\":\"{}\",\"fill_ops\":{},\"total_ops\":{},\
             \"firewall_enabled\":{},\"events\":[{}]}}",
            self.seed,
            self.n_nodes,
            match self.mode {
                Mode::Machine => "machine",
                Mode::Hive => "hive",
            },
            self.fill_ops,
            self.total_ops,
            self.firewall_enabled,
            events.join(",")
        )
    }

    /// Union of the nodes doomed by every event of the schedule.
    pub fn doomed_nodes(&self) -> Vec<NodeId> {
        let mut doomed: Vec<NodeId> = self
            .events
            .iter()
            .flat_map(|e| e.fault.doomed_nodes())
            .collect();
        doomed.sort_unstable_by_key(|n| n.0);
        doomed.dedup();
        doomed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::default();
        for seed in 0..32 {
            assert_eq!(generate(seed, &cfg), generate(seed, &cfg));
        }
    }

    #[test]
    fn schedules_always_keep_a_survivor() {
        let cfg = GeneratorConfig::default();
        for seed in 0..200 {
            let s = generate(seed, &cfg);
            let doomed = s.doomed_nodes();
            assert!(!doomed.contains(&NodeId(0)), "seed {seed}: node 0 doomed");
            assert!(
                doomed.len() < s.n_nodes / 2,
                "seed {seed}: {} of {} nodes doomed",
                doomed.len(),
                s.n_nodes
            );
            assert!(!s.events.is_empty());
            assert!(
                matches!(s.events[0].at, InjectAt::Steady { .. }),
                "seed {seed}: opener must be steady"
            );
            assert!(!s.events[0].fault.is_false_alarm(), "seed {seed}");
        }
    }

    #[test]
    fn node_counts_respect_bounds() {
        let cfg = GeneratorConfig::default();
        for seed in 0..100 {
            let s = generate(seed, &cfg);
            assert!((8..=16).contains(&s.n_nodes), "seed {seed}: {}", s.n_nodes);
        }
    }

    #[test]
    fn phase_events_appear_across_a_campaign() {
        let cfg = GeneratorConfig::default();
        let mut seen = [false; 4];
        for seed in 0..300 {
            for e in &generate(seed, &cfg).events {
                if let InjectAt::PhaseEntry { phase, .. } = e.at {
                    seen[phase as usize - 1] = true;
                }
            }
        }
        assert_eq!(seen, [true; 4], "all four phases must be targetable");
    }

    #[test]
    fn json_rendering_covers_every_variant() {
        let cfg = GeneratorConfig {
            hive_chance: 0.5,
            ..GeneratorConfig::default()
        };
        for seed in 0..50 {
            let s = generate(seed, &cfg);
            let j = s.to_json();
            assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
            assert!(j.contains("\"events\":["));
        }
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
