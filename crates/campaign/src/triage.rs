//! Failure triage: seed replay, greedy schedule shrinking and post-mortem
//! dumps.
//!
//! When a campaign run violates an invariant, triage (1) replays the run
//! from its schedule to confirm the violation is deterministic, (2) shrinks
//! the schedule — dropping events, advancing injection points to
//! steady-state time zero, and splitting multi-faults — while the violation
//! persists, and (3) writes a JSON post-mortem (violations, original and
//! shrunk schedules, the machine's trace buffer) under
//! `target/campaign/`.

use crate::runner::{run_schedule, RunRecord};
use crate::schedule::{json_escape, FaultEvent, InjectAt, Schedule};
use flash_machine::FaultSpec;
use std::path::{Path, PathBuf};

/// The outcome of triaging one failing run.
#[derive(Clone, Debug)]
pub struct TriageReport {
    /// The original failing record.
    pub original: RunRecord,
    /// Whether replaying the schedule reproduced at least one violation.
    pub reproduced: bool,
    /// The shrunk schedule (equals the original when not reproduced).
    pub shrunk: Schedule,
    /// The record of the shrunk schedule's run.
    pub shrunk_record: RunRecord,
    /// Schedule executions spent shrinking (including the replay).
    pub probe_runs: u64,
    /// Where the JSON post-mortem was written, if a dump directory was
    /// given.
    pub dump_path: Option<PathBuf>,
}

fn violates(s: &Schedule, probes: &mut u64) -> Option<RunRecord> {
    *probes += 1;
    let record = run_schedule(s);
    if record.passed() {
        None
    } else {
        Some(record)
    }
}

/// Candidate simplifications of one event, most aggressive first.
fn advance_candidates(ev: &FaultEvent) -> Vec<FaultEvent> {
    let mut out = Vec::new();
    // Advance the injection point to steady-state time zero.
    if ev.at != (InjectAt::Steady { offset_ns: 0 }) {
        out.push(FaultEvent {
            at: InjectAt::Steady { offset_ns: 0 },
            fault: ev.fault.clone(),
        });
    }
    // Keep the phase but drop the delay.
    if let InjectAt::PhaseEntry { phase, delay_ns } = ev.at {
        if delay_ns != 0 {
            out.push(FaultEvent {
                at: InjectAt::PhaseEntry { phase, delay_ns: 0 },
                fault: ev.fault.clone(),
            });
        }
    }
    // Split a multi-fault into a single member.
    if let FaultSpec::Multi(members) = &ev.fault {
        for member in members {
            out.push(FaultEvent {
                at: ev.at,
                fault: member.clone(),
            });
        }
    }
    // Split a pool failure into a single failed node of the pool.
    if let FaultSpec::PoolFailure { pool } = &ev.fault {
        for member in pool {
            out.push(FaultEvent {
                at: ev.at,
                fault: FaultSpec::Node(*member),
            });
        }
    }
    out
}

/// Greedy fixpoint shrinking: repeatedly try dropping an event or replacing
/// it with a simpler candidate, keeping any change under which the
/// violation persists. Returns the minimal schedule found and its failing
/// record.
pub fn shrink(schedule: &Schedule, failing: RunRecord, probes: &mut u64) -> (Schedule, RunRecord) {
    let mut best = schedule.clone();
    let mut best_record = failing;
    loop {
        let mut improved = false;
        // Pass 1: drop each event.
        for i in 0..best.events.len() {
            if best.events.len() == 1 {
                break;
            }
            let mut candidate = best.clone();
            candidate.events.remove(i);
            if let Some(record) = violates(&candidate, probes) {
                best = candidate;
                best_record = record;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }
        // Pass 2: simplify each event in place.
        'simplify: for i in 0..best.events.len() {
            for replacement in advance_candidates(&best.events[i]) {
                if replacement == best.events[i] {
                    continue;
                }
                let mut candidate = best.clone();
                candidate.events[i] = replacement;
                if let Some(record) = violates(&candidate, probes) {
                    best = candidate;
                    best_record = record;
                    improved = true;
                    break 'simplify;
                }
            }
        }
        if !improved {
            return (best, best_record);
        }
    }
}

fn violations_json(record: &RunRecord) -> String {
    let items: Vec<String> = record
        .violations
        .iter()
        .map(|v| {
            format!(
                "{{\"invariant\":\"{}\",\"details\":\"{}\"}}",
                json_escape(v.invariant),
                json_escape(&v.details)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// Renders the full post-mortem JSON document, including the flight
/// recorder's event tail and the metrics snapshot of the shrunk run.
pub fn post_mortem_json(report: &TriageReport) -> String {
    let rec = &report.shrunk_record;
    let tail = if rec.trace_tail_json.is_empty() {
        "[]"
    } else {
        &rec.trace_tail_json
    };
    let metrics = if rec.metrics_json.is_empty() {
        "{}"
    } else {
        &rec.metrics_json
    };
    format!(
        "{{\n  \"seed\": {},\n  \"reproduced\": {},\n  \"violations\": {},\n  \
         \"schedule\": {},\n  \"shrunk_schedule\": {},\n  \"shrunk_violations\": {},\n  \
         \"probe_runs\": {},\n  \"trace_hash\": {},\n  \"trace_dropped\": {},\n  \
         \"trace_tail\": {},\n  \"metrics\": {},\n  \"trace\": \"{}\"\n}}\n",
        report.original.schedule.seed,
        report.reproduced,
        violations_json(&report.original),
        report.original.schedule.to_json(),
        report.shrunk.to_json(),
        violations_json(rec),
        report.probe_runs,
        rec.trace_hash,
        rec.trace_dropped,
        tail,
        metrics,
        json_escape(&rec.trace)
    )
}

/// The default post-mortem directory: `target/campaign/` (override with
/// `FLASH_CAMPAIGN_DIR`).
pub fn campaign_dir() -> PathBuf {
    match std::env::var("FLASH_CAMPAIGN_DIR") {
        Ok(d) => PathBuf::from(d),
        Err(_) => Path::new("target").join("campaign"),
    }
}

/// Triage a failing run: replay from its schedule, shrink while the
/// violation persists, and (if `dump_dir` is `Some`) write the post-mortem
/// as `run-<seed>.json`.
pub fn triage(failing: &RunRecord, dump_dir: Option<&Path>) -> TriageReport {
    let mut probes = 0u64;
    let replay = violates(&failing.schedule, &mut probes);
    let reproduced = replay.is_some();
    let (shrunk, shrunk_record) = match replay {
        Some(record) => shrink(&failing.schedule, record, &mut probes),
        None => (failing.schedule.clone(), failing.clone()),
    };
    let mut report = TriageReport {
        original: failing.clone(),
        reproduced,
        shrunk,
        shrunk_record,
        probe_runs: probes,
        dump_path: None,
    };
    if let Some(dir) = dump_dir {
        let path = dir.join(format!("run-{}.json", failing.schedule.seed));
        if std::fs::create_dir_all(dir).is_ok()
            && std::fs::write(&path, post_mortem_json(&report)).is_ok()
        {
            report.dump_path = Some(path);
        }
    }
    report
}
