//! The processor's second-level cache model.
//!
//! A 2-way set-associative cache (the MIPS R10000's L2 is 2-way) holding
//! line-granular entries with an exclusive/dirty bit and the versioned data
//! model of [`crate::line`]. Capacity is expressed in lines; a 1 MB L2 holds
//! 8192 lines of 128 bytes.
//!
//! The cache-flush step of coherence-protocol recovery (paper, Section 4.5)
//! is [`L2Cache::flush_all`]: dirty lines are returned for writeback and the
//! entire cache is invalidated, leaving it empty.

use crate::line::{LineAddr, Version};

/// One cached line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CachedLine {
    /// The line's address.
    pub addr: LineAddr,
    /// Whether this copy is exclusive. In this protocol exclusive copies are
    /// always dirty (exclusivity is only requested to satisfy a store).
    pub exclusive: bool,
    /// The line's data (version model).
    pub version: Version,
}

#[derive(Clone, Copy, Debug, Default)]
struct Set {
    ways: [Option<CachedLine>; 2],
    /// Index of the least-recently-used way.
    lru: u8,
}

/// The result of inserting a line into the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The line was installed without displacing anything.
    Installed,
    /// A clean line was silently evicted to make room.
    EvictedClean(LineAddr),
    /// A dirty line was evicted; the caller must write it back to its home
    /// (the returned copy is the only valid one).
    EvictedDirty(CachedLine),
}

/// A 2-way set-associative L2 cache.
///
/// # Examples
///
/// ```
/// use flash_coherence::{L2Cache, LineAddr, Version};
///
/// let mut cache = L2Cache::new(64);
/// cache.insert(LineAddr(5), false, Version(1));
/// assert_eq!(cache.lookup(LineAddr(5)).unwrap().version, Version(1));
/// assert_eq!(cache.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct L2Cache {
    sets: Vec<Set>,
    len: usize,
}

impl L2Cache {
    /// Creates a cache holding `capacity_lines` lines (rounded up to an even
    /// number; at least 2).
    pub fn new(capacity_lines: usize) -> Self {
        let sets = (capacity_lines.max(2)).div_ceil(2);
        L2Cache {
            sets: vec![Set::default(); sets],
            len: 0,
        }
    }

    /// Creates a cache sized in megabytes (128-byte lines).
    pub fn with_mb(mb: f64) -> Self {
        let lines = (mb * 1024.0 * 1024.0 / 128.0) as usize;
        L2Cache::new(lines.max(2))
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * 2
    }

    /// Number of lines currently cached.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn set_of(&self, addr: LineAddr) -> usize {
        (addr.0 % self.sets.len() as u64) as usize
    }

    /// Looks up a line without touching LRU state.
    pub fn lookup(&self, addr: LineAddr) -> Option<&CachedLine> {
        let set = &self.sets[self.set_of(addr)];
        set.ways.iter().flatten().find(|l| l.addr == addr)
    }

    /// Looks up a line, marking it most recently used.
    pub fn touch(&mut self, addr: LineAddr) -> Option<CachedLine> {
        let si = self.set_of(addr);
        let set = &mut self.sets[si];
        for (w, slot) in set.ways.iter().enumerate() {
            if let Some(l) = slot {
                if l.addr == addr {
                    let l = *l;
                    set.lru = (w as u8) ^ 1;
                    return Some(l);
                }
            }
        }
        None
    }

    /// Installs a line (shared or exclusive), possibly evicting the LRU way.
    /// Exclusive installs are dirty by construction.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the line is already present — callers must not
    /// double-install.
    pub fn insert(&mut self, addr: LineAddr, exclusive: bool, version: Version) -> InsertOutcome {
        debug_assert!(self.lookup(addr).is_none(), "line already cached");
        let si = self.set_of(addr);
        let set = &mut self.sets[si];
        let new = CachedLine {
            addr,
            exclusive,
            version,
        };
        // Free way?
        for (w, slot) in set.ways.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(new);
                set.lru = (w as u8) ^ 1;
                self.len += 1;
                return InsertOutcome::Installed;
            }
        }
        // Evict the LRU way.
        let victim_way = set.lru as usize;
        let victim = set.ways[victim_way].take().expect("full set has lines");
        set.ways[victim_way] = Some(new);
        set.lru = (victim_way as u8) ^ 1;
        if victim.exclusive {
            InsertOutcome::EvictedDirty(victim)
        } else {
            InsertOutcome::EvictedClean(victim.addr)
        }
    }

    /// Commits a store to a cached exclusive line, bumping its version.
    /// Returns the new version, or `None` if the line is absent or not
    /// exclusive (the caller must obtain exclusivity first).
    pub fn store(&mut self, addr: LineAddr) -> Option<Version> {
        let si = self.set_of(addr);
        let set = &mut self.sets[si];
        for (w, slot) in set.ways.iter_mut().enumerate() {
            if let Some(l) = slot {
                if l.addr == addr && l.exclusive {
                    l.version = l.version.next();
                    set.lru = (w as u8) ^ 1;
                    return Some(l.version);
                }
            }
        }
        None
    }

    /// Removes a line (invalidation), returning the removed copy if present.
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<CachedLine> {
        let si = self.set_of(addr);
        let set = &mut self.sets[si];
        for slot in set.ways.iter_mut() {
            if let Some(l) = slot {
                if l.addr == addr {
                    let out = *l;
                    *slot = None;
                    self.len -= 1;
                    return Some(out);
                }
            }
        }
        None
    }

    /// Upgrades a shared copy to exclusive ownership (after an
    /// [`UpgradeAck`](crate::CohMsg::UpgradeAck) from the home). Returns the
    /// copy's version, or `None` if the line is absent or already exclusive.
    pub fn upgrade(&mut self, addr: LineAddr) -> Option<Version> {
        let si = self.set_of(addr);
        for l in self.sets[si].ways.iter_mut().flatten() {
            if l.addr == addr && !l.exclusive {
                l.exclusive = true;
                return Some(l.version);
            }
        }
        None
    }

    /// Downgrades an exclusive line to a clean shared copy (after the home
    /// recalled the data with a read-only `Fetch`). Returns the version
    /// written back, or `None` if the line is absent or already shared.
    pub fn downgrade(&mut self, addr: LineAddr) -> Option<Version> {
        let si = self.set_of(addr);
        for l in self.sets[si].ways.iter_mut().flatten() {
            if l.addr == addr && l.exclusive {
                l.exclusive = false;
                return Some(l.version);
            }
        }
        None
    }

    /// The recovery cache flush: returns all dirty (exclusive) lines for
    /// writeback and empties the whole cache (paper, Section 4.5: "after the
    /// cache flush step all processor caches in the system are empty").
    pub fn flush_all(&mut self) -> Vec<CachedLine> {
        let mut dirty = Vec::new();
        for set in &mut self.sets {
            for slot in set.ways.iter_mut() {
                if let Some(l) = slot.take() {
                    if l.exclusive {
                        dirty.push(l);
                    }
                }
            }
            set.lru = 0;
        }
        self.len = 0;
        dirty.sort_by_key(|l| l.addr);
        dirty
    }

    /// Iterates over all cached lines (set order).
    pub fn iter(&self) -> impl Iterator<Item = &CachedLine> + '_ {
        self.sets.iter().flat_map(|s| s.ways.iter().flatten())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_store() {
        let mut c = L2Cache::new(8);
        assert_eq!(
            c.insert(LineAddr(1), true, Version(0)),
            InsertOutcome::Installed
        );
        assert_eq!(c.store(LineAddr(1)), Some(Version(1)));
        assert_eq!(c.store(LineAddr(1)), Some(Version(2)));
        assert_eq!(c.lookup(LineAddr(1)).unwrap().version, Version(2));
        // Store to a shared line fails.
        c.insert(LineAddr(2), false, Version(5));
        assert_eq!(c.store(LineAddr(2)), None);
        // Store to an absent line fails.
        assert_eq!(c.store(LineAddr(99)), None);
    }

    #[test]
    fn eviction_prefers_lru_and_reports_dirty() {
        let mut c = L2Cache::new(2); // one set, two ways
        c.insert(LineAddr(0), true, Version(1));
        c.insert(LineAddr(1), false, Version(2));
        // Touch 0 so 1 becomes LRU.
        c.touch(LineAddr(0));
        match c.insert(LineAddr(2), false, Version(3)) {
            InsertOutcome::EvictedClean(a) => assert_eq!(a, LineAddr(1)),
            other => panic!("expected clean eviction, got {other:?}"),
        }
        // Now 0 (dirty) is LRU after inserting 2.
        match c.insert(LineAddr(3), false, Version(4)) {
            InsertOutcome::EvictedDirty(l) => {
                assert_eq!(l.addr, LineAddr(0));
                assert_eq!(l.version, Version(1));
            }
            other => panic!("expected dirty eviction, got {other:?}"),
        }
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn invalidate_and_downgrade() {
        let mut c = L2Cache::new(8);
        c.insert(LineAddr(3), true, Version(7));
        assert_eq!(c.downgrade(LineAddr(3)), Some(Version(7)));
        assert!(!c.lookup(LineAddr(3)).unwrap().exclusive);
        assert_eq!(c.downgrade(LineAddr(3)), None, "already shared");
        let out = c.invalidate(LineAddr(3)).unwrap();
        assert_eq!(out.version, Version(7));
        assert!(c.invalidate(LineAddr(3)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn flush_returns_dirty_and_empties() {
        let mut c = L2Cache::new(16);
        c.insert(LineAddr(1), true, Version(1));
        c.insert(LineAddr(2), false, Version(2));
        c.insert(LineAddr(3), true, Version(3));
        let dirty = c.flush_all();
        let addrs: Vec<u64> = dirty.iter().map(|l| l.addr.0).collect();
        assert_eq!(addrs, vec![1, 3]);
        assert!(c.is_empty());
        assert!(c.lookup(LineAddr(2)).is_none());
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = L2Cache::new(8);
        let mut evictions = 0;
        for i in 0..100 {
            match c.insert(LineAddr(i), false, Version(0)) {
                InsertOutcome::Installed => {}
                _ => evictions += 1,
            }
        }
        assert_eq!(c.len() + evictions, 100);
        assert!(c.len() <= c.capacity());
        assert_eq!(c.capacity(), 8);
    }

    #[test]
    fn with_mb_sizes() {
        assert_eq!(L2Cache::with_mb(1.0).capacity(), 8192);
        assert_eq!(L2Cache::with_mb(0.5).capacity(), 4096);
    }

    #[test]
    fn iter_visits_all_lines() {
        let mut c = L2Cache::new(8);
        for i in 0..4 {
            c.insert(LineAddr(i), i % 2 == 0, Version(i));
        }
        assert_eq!(c.iter().count(), 4);
    }
}
