//! The home-node directory and its protocol state machine.
//!
//! Each node's directory tracks the coherence state of the lines homed on
//! it. The protocol is a home-based MSI directory protocol with the
//! properties the paper's recovery algorithm relies on (Section 3.2):
//!
//! * a line's home services all misses for it — a dead home makes the line
//!   *inaccessible*;
//! * a dirty writeback ([`CohMsg::Put`]) carries the *only valid copy* —
//!   losing it makes the line *incoherent*;
//! * transient states (invalidations or a recall outstanding) *lock* the
//!   line: requests are NAK'd and retried, so a lost unlock message turns
//!   into an indefinite NAK spin (detected via NAK-counter overflow).
//!
//! The recovery entry points ([`Directory::recovery_put`],
//! [`Directory::scan_and_reset`]) implement the directory side of
//! coherence-protocol recovery (Section 4.5).

use crate::line::{LineAddr, MemLayout, Version};
use crate::msg::CohMsg;
use crate::nodeset::NodeSet;
use flash_net::NodeId;
use flash_sim::Counters;

/// Directory state of one line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirState {
    /// No cached copies; memory holds the valid data.
    Uncached,
    /// Clean copies at the given nodes; memory is valid.
    Shared(NodeSet),
    /// A single dirty copy at the given node; memory is stale.
    Exclusive(NodeId),
    /// Locked: invalidations outstanding for a write request.
    PendingInvals {
        /// The node waiting for exclusive access.
        requester: NodeId,
        /// Sharers whose invalidation acknowledgment is still outstanding.
        pending: NodeSet,
        /// Whether the requester needs the data (full write miss) or only
        /// an ownership grant (upgrade of a held shared copy).
        needs_data: bool,
    },
    /// Locked: the dirty owner has been asked to write the line back.
    PendingRecall {
        /// The node waiting for the data.
        requester: NodeId,
        /// The current dirty owner.
        owner: NodeId,
        /// Whether the requester wants an exclusive copy.
        for_write: bool,
    },
    /// The line's only valid copy was lost in a fault; accesses bus-error
    /// until the operating system reinitializes the page.
    Incoherent,
}

impl DirState {
    /// Whether the line is locked in a transient state (requests are NAK'd).
    pub fn is_locked(&self) -> bool {
        matches!(
            self,
            DirState::PendingInvals { .. } | DirState::PendingRecall { .. }
        )
    }
}

/// Messages to send as the result of a directory transition, as
/// (destination, message) pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Outcome {
    /// Protocol messages to emit.
    pub sends: Vec<(NodeId, CohMsg)>,
}

impl Outcome {
    fn send(dest: NodeId, msg: CohMsg) -> Outcome {
        Outcome {
            sends: vec![(dest, msg)],
        }
    }
}

/// Inputs to the home-node protocol engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HomeIn {
    /// A read miss arrived.
    Get {
        /// Requesting node.
        from: NodeId,
    },
    /// A write (exclusive) miss arrived.
    GetX {
        /// Requesting node.
        from: NodeId,
    },
    /// An ownership-upgrade request arrived (requester claims to hold a
    /// shared copy).
    Upgrade {
        /// Requesting node.
        from: NodeId,
    },
    /// A writeback arrived.
    Put {
        /// Writing node.
        from: NodeId,
        /// The written-back data.
        version: Version,
        /// Whether the writer keeps a clean shared copy (a downgrade in
        /// response to a read recall) rather than dropping the line.
        keep_shared: bool,
    },
    /// An invalidation acknowledgment arrived.
    InvalAck {
        /// Acknowledging node.
        from: NodeId,
    },
}

/// The directory (and memory image) for the lines homed on one node.
#[derive(Clone, Debug)]
pub struct Directory {
    home: NodeId,
    layout: MemLayout,
    states: Vec<DirState>,
    versions: Vec<Version>,
    counters: Counters,
    // Sorted index of lines currently in `DirState::Incoherent`, so the
    // OS page service can find them without scanning every homed line.
    incoherent: Vec<LineAddr>,
}

impl Directory {
    /// Creates the directory for `home` under the given layout; all lines
    /// start uncached at [`Version::INITIAL`].
    pub fn new(home: NodeId, layout: MemLayout) -> Self {
        let n = layout.lines_per_node() as usize;
        Directory {
            home,
            layout,
            states: vec![DirState::Uncached; n],
            versions: vec![Version::INITIAL; n],
            counters: Counters::new(),
            incoherent: Vec::new(),
        }
    }

    /// The node this directory lives on.
    pub fn home(&self) -> NodeId {
        self.home
    }

    /// Number of lines homed here.
    pub fn num_lines(&self) -> usize {
        self.states.len()
    }

    fn idx(&self, line: LineAddr) -> usize {
        debug_assert_eq!(self.layout.home_of(line), self.home, "line not homed here");
        self.layout.local_index(line)
    }

    /// The directory state of a line.
    pub fn state(&self, line: LineAddr) -> DirState {
        self.states[self.idx(line)]
    }

    /// The memory image's data version for a line.
    pub fn mem_version(&self, line: LineAddr) -> Version {
        self.versions[self.idx(line)]
    }

    /// Whether a line is marked incoherent.
    pub fn is_incoherent(&self, line: LineAddr) -> bool {
        matches!(self.state(line), DirState::Incoherent)
    }

    /// Protocol statistics (NAKs sent, unexpected messages, ...).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Handles one protocol message addressed to this home.
    pub fn handle(&mut self, line: LineAddr, input: HomeIn) -> Outcome {
        let i = self.idx(line);
        match input {
            HomeIn::Get { from } => self.on_get(i, line, from),
            HomeIn::GetX { from } => self.on_getx(i, line, from, true),
            HomeIn::Upgrade { from } => self.on_upgrade(i, line, from),
            HomeIn::Put {
                from,
                version,
                keep_shared,
            } => self.on_put(i, line, from, version, keep_shared),
            HomeIn::InvalAck { from } => self.on_inval_ack(i, line, from),
        }
    }

    fn on_get(&mut self, i: usize, line: LineAddr, from: NodeId) -> Outcome {
        match self.states[i] {
            DirState::Uncached => {
                self.states[i] = DirState::Shared(NodeSet::singleton(from));
                Outcome::send(
                    from,
                    CohMsg::Data {
                        line,
                        version: self.versions[i],
                        exclusive: false,
                    },
                )
            }
            DirState::Shared(mut s) => {
                s.insert(from);
                self.states[i] = DirState::Shared(s);
                Outcome::send(
                    from,
                    CohMsg::Data {
                        line,
                        version: self.versions[i],
                        exclusive: false,
                    },
                )
            }
            DirState::Exclusive(owner) => {
                self.states[i] = DirState::PendingRecall {
                    requester: from,
                    owner,
                    for_write: false,
                };
                Outcome::send(
                    owner,
                    CohMsg::Fetch {
                        line,
                        for_write: false,
                    },
                )
            }
            DirState::PendingInvals { .. } | DirState::PendingRecall { .. } => {
                self.counters.incr("naks_sent");
                Outcome::send(from, CohMsg::Nak { line })
            }
            DirState::Incoherent => {
                self.counters.incr("incoherent_accesses");
                Outcome::send(from, CohMsg::IncoherentErr { line })
            }
        }
    }

    /// Grants exclusivity to `from`: a data reply for a full miss, or an
    /// upgrade acknowledgment when the requester already holds the data.
    fn grant_exclusive(
        &mut self,
        i: usize,
        line: LineAddr,
        from: NodeId,
        needs_data: bool,
    ) -> Outcome {
        self.states[i] = DirState::Exclusive(from);
        if needs_data {
            Outcome::send(
                from,
                CohMsg::Data {
                    line,
                    version: self.versions[i],
                    exclusive: true,
                },
            )
        } else {
            Outcome::send(from, CohMsg::UpgradeAck { line })
        }
    }

    /// An upgrade request: valid only while the requester is still listed
    /// as a sharer — otherwise its copy was invalidated or silently evicted
    /// and the request falls back to the full GetX path.
    fn on_upgrade(&mut self, i: usize, line: LineAddr, from: NodeId) -> Outcome {
        match self.states[i] {
            DirState::Shared(s) if s.contains(from) => {
                let mut others = s;
                others.remove(from);
                if others.is_empty() {
                    self.grant_exclusive(i, line, from, false)
                } else {
                    self.states[i] = DirState::PendingInvals {
                        requester: from,
                        pending: others,
                        needs_data: false,
                    };
                    Outcome {
                        sends: others
                            .iter()
                            .map(|sharer| (sharer, CohMsg::Inval { line }))
                            .collect(),
                    }
                }
            }
            _ => {
                self.counters.incr("upgrade_fallbacks");
                self.on_getx(i, line, from, true)
            }
        }
    }

    fn on_getx(&mut self, i: usize, line: LineAddr, from: NodeId, needs_data: bool) -> Outcome {
        match self.states[i] {
            DirState::Uncached => self.grant_exclusive(i, line, from, needs_data),
            DirState::Shared(s) => {
                let mut others = s;
                others.remove(from);
                if others.is_empty() {
                    self.grant_exclusive(i, line, from, needs_data)
                } else {
                    self.states[i] = DirState::PendingInvals {
                        requester: from,
                        pending: others,
                        needs_data,
                    };
                    Outcome {
                        sends: others
                            .iter()
                            .map(|sharer| (sharer, CohMsg::Inval { line }))
                            .collect(),
                    }
                }
            }
            DirState::Exclusive(owner) => {
                self.states[i] = DirState::PendingRecall {
                    requester: from,
                    owner,
                    for_write: true,
                };
                Outcome::send(
                    owner,
                    CohMsg::Fetch {
                        line,
                        for_write: true,
                    },
                )
            }
            DirState::PendingInvals { .. } | DirState::PendingRecall { .. } => {
                self.counters.incr("naks_sent");
                Outcome::send(from, CohMsg::Nak { line })
            }
            DirState::Incoherent => {
                self.counters.incr("incoherent_accesses");
                Outcome::send(from, CohMsg::IncoherentErr { line })
            }
        }
    }

    fn on_put(
        &mut self,
        i: usize,
        line: LineAddr,
        from: NodeId,
        version: Version,
        keep_shared: bool,
    ) -> Outcome {
        match self.states[i] {
            DirState::Exclusive(owner) if owner == from => {
                self.versions[i] = version;
                self.states[i] = if keep_shared {
                    DirState::Shared(NodeSet::singleton(from))
                } else {
                    DirState::Uncached
                };
                Outcome::send(from, CohMsg::PutAck { line })
            }
            DirState::PendingRecall {
                requester,
                owner,
                for_write,
            } if owner == from => {
                self.versions[i] = version;
                if for_write {
                    self.states[i] = DirState::Exclusive(requester);
                    Outcome::send(
                        requester,
                        CohMsg::Data {
                            line,
                            version,
                            exclusive: true,
                        },
                    )
                } else {
                    let mut sharers = NodeSet::singleton(requester);
                    if keep_shared {
                        sharers.insert(owner);
                    }
                    self.states[i] = DirState::Shared(sharers);
                    Outcome::send(
                        requester,
                        CohMsg::Data {
                            line,
                            version,
                            exclusive: false,
                        },
                    )
                }
            }
            _ => {
                // Stale or duplicate writeback (e.g. after a recovery reset):
                // acknowledge so the writer can forget the line, change
                // nothing.
                self.counters.incr("unexpected_puts");
                Outcome::send(from, CohMsg::PutAck { line })
            }
        }
    }

    fn on_inval_ack(&mut self, i: usize, line: LineAddr, from: NodeId) -> Outcome {
        match self.states[i] {
            DirState::PendingInvals {
                requester,
                mut pending,
                needs_data,
            } => {
                pending.remove(from);
                if pending.is_empty() {
                    self.grant_exclusive(i, line, requester, needs_data)
                } else {
                    self.states[i] = DirState::PendingInvals {
                        requester,
                        pending,
                        needs_data,
                    };
                    Outcome::default()
                }
            }
            _ => {
                self.counters.incr("unexpected_inval_acks");
                Outcome::default()
            }
        }
    }

    // ------------------------------------------------------------------
    // Recovery entry points (paper, Section 4.5)
    // ------------------------------------------------------------------

    /// Accepts a flush writeback during coherence-protocol recovery: the
    /// data is stored and the line unlocked, with no reply generated (node
    /// controllers suppress replies during recovery).
    pub fn recovery_put(&mut self, line: LineAddr, version: Version) {
        let i = self.idx(line);
        if matches!(self.states[i], DirState::Incoherent) {
            self.counters.incr("recovery_put_to_incoherent");
            return;
        }
        self.versions[i] = version;
        self.states[i] = DirState::Uncached;
    }

    /// Scans the directory after the flush barrier: any line still dirty
    /// remote (`Exclusive` or `PendingRecall` — its writeback never made it
    /// home) is marked incoherent; every other line is reset to `Uncached`
    /// since all caches are now empty. Returns the newly marked lines.
    pub fn scan_and_reset(&mut self) -> Vec<LineAddr> {
        let mut marked = Vec::new();
        let base = self.home.index() as u64 * self.layout.lines_per_node();
        for (i, state) in self.states.iter_mut().enumerate() {
            match state {
                DirState::Exclusive(_) | DirState::PendingRecall { .. } => {
                    *state = DirState::Incoherent;
                    marked.push(LineAddr(base + i as u64));
                }
                DirState::Incoherent => {}
                DirState::Uncached | DirState::Shared(_) | DirState::PendingInvals { .. } => {
                    *state = DirState::Uncached;
                }
            }
        }
        self.index_marked(&marked);
        marked
    }

    /// The reliable-interconnect variant of post-fault directory recovery
    /// (paper, Section 6.3 discussing the HAL machine): with a hardware
    /// end-to-end reliable interconnect the cache flush can be eliminated;
    /// the directory is *pruned* instead of reset — failed nodes are
    /// removed from sharer sets, lines they owned become incoherent, and
    /// surviving cached state is preserved. Returns the newly marked lines.
    pub fn scan_and_prune(&mut self, failed: &NodeSet) -> Vec<LineAddr> {
        let mut marked = Vec::new();
        let base = self.home.index() as u64 * self.layout.lines_per_node();
        for (i, state) in self.states.iter_mut().enumerate() {
            match state {
                DirState::Exclusive(o) if failed.contains(*o) => {
                    *state = DirState::Incoherent;
                    marked.push(LineAddr(base + i as u64));
                }
                DirState::Exclusive(_) | DirState::Uncached | DirState::Incoherent => {}
                DirState::Shared(s) => {
                    s.subtract(failed);
                    if s.is_empty() {
                        *state = DirState::Uncached;
                    }
                }
                DirState::PendingInvals { pending, .. } => {
                    // The upgrade request was cancelled at recovery
                    // initiation; un-acked sharers may still hold copies
                    // (over-approximating is safe — absent sharers simply
                    // ack the next invalidation).
                    let mut remaining = *pending;
                    remaining.subtract(failed);
                    *state = if remaining.is_empty() {
                        DirState::Uncached
                    } else {
                        DirState::Shared(remaining)
                    };
                }
                DirState::PendingRecall { owner, .. } => {
                    if failed.contains(*owner) {
                        *state = DirState::Incoherent;
                        marked.push(LineAddr(base + i as u64));
                    } else {
                        // The recall was consumed during the drain; the
                        // owner still holds its dirty copy and the
                        // requester will retry after recovery.
                        *state = DirState::Exclusive(*owner);
                    }
                }
            }
        }
        self.index_marked(&marked);
        marked
    }

    /// Clears the incoherent mark on a line and reinitializes its data —
    /// the MAGIC service Hive uses before reusing a page (paper, Section
    /// 4.6). Returns whether the line was incoherent.
    pub fn clear_incoherent(&mut self, line: LineAddr, fresh: Version) -> bool {
        let i = self.idx(line);
        if matches!(self.states[i], DirState::Incoherent) {
            self.states[i] = DirState::Uncached;
            self.versions[i] = fresh;
            if let Ok(p) = self.incoherent.binary_search(&line) {
                self.incoherent.remove(p);
            }
            true
        } else {
            false
        }
    }

    /// Marks a line incoherent directly (used when a truncated data packet
    /// identified a specific lost line).
    pub fn mark_incoherent(&mut self, line: LineAddr) {
        let i = self.idx(line);
        if !matches!(self.states[i], DirState::Incoherent) {
            if let Err(p) = self.incoherent.binary_search(&line) {
                self.incoherent.insert(p, line);
            }
        }
        self.states[i] = DirState::Incoherent;
    }

    /// The lines currently marked incoherent, in ascending address order —
    /// the same order a full [`Directory::iter_states`] scan would find
    /// them, but in O(marked) rather than O(lines homed).
    pub fn incoherent_lines(&self) -> &[LineAddr] {
        &self.incoherent
    }

    /// Merges freshly marked lines (ascending, previously not incoherent)
    /// into the sorted index.
    fn index_marked(&mut self, marked: &[LineAddr]) {
        if marked.is_empty() {
            return;
        }
        self.incoherent.extend_from_slice(marked);
        self.incoherent.sort_unstable();
        self.incoherent.dedup();
    }

    /// Iterates over `(line, state)` for all lines homed here.
    pub fn iter_states(&self) -> impl Iterator<Item = (LineAddr, DirState)> + '_ {
        let base = self.home.index() as u64 * self.layout.lines_per_node();
        self.states
            .iter()
            .enumerate()
            .map(move |(i, s)| (LineAddr(base + i as u64), *s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> (Directory, LineAddr) {
        let layout = MemLayout::new(4, 64);
        // Home node 1; its lines are 64..128.
        (Directory::new(NodeId(1), layout), LineAddr(70))
    }

    fn data(msg: &CohMsg) -> (Version, bool) {
        match msg {
            CohMsg::Data {
                version, exclusive, ..
            } => (*version, *exclusive),
            other => panic!("expected Data, got {other:?}"),
        }
    }

    #[test]
    fn read_miss_grants_shared() {
        let (mut d, l) = dir();
        let out = d.handle(l, HomeIn::Get { from: NodeId(2) });
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.sends[0].0, NodeId(2));
        assert_eq!(data(&out.sends[0].1), (Version::INITIAL, false));
        assert_eq!(d.state(l), DirState::Shared(NodeSet::singleton(NodeId(2))));
        // Second reader joins the sharer set.
        d.handle(l, HomeIn::Get { from: NodeId(3) });
        match d.state(l) {
            DirState::Shared(s) => assert_eq!(s.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn write_miss_on_uncached_grants_exclusive() {
        let (mut d, l) = dir();
        let out = d.handle(l, HomeIn::GetX { from: NodeId(0) });
        assert_eq!(data(&out.sends[0].1), (Version::INITIAL, true));
        assert_eq!(d.state(l), DirState::Exclusive(NodeId(0)));
    }

    #[test]
    fn write_miss_on_shared_invalidates_and_locks() {
        let (mut d, l) = dir();
        d.handle(l, HomeIn::Get { from: NodeId(2) });
        d.handle(l, HomeIn::Get { from: NodeId(3) });
        let out = d.handle(l, HomeIn::GetX { from: NodeId(0) });
        // Two invalidations, no data yet.
        assert_eq!(out.sends.len(), 2);
        assert!(out
            .sends
            .iter()
            .all(|(_, m)| matches!(m, CohMsg::Inval { .. })));
        assert!(d.state(l).is_locked());
        // Requests while locked are NAK'd.
        let nak = d.handle(l, HomeIn::Get { from: NodeId(3) });
        assert!(matches!(nak.sends[0].1, CohMsg::Nak { .. }));
        assert_eq!(d.counters().get("naks_sent"), 1);
        // First ack: still locked; second ack: grant. Duplicate acks from
        // the same node do not complete the invalidation round.
        let out = d.handle(l, HomeIn::InvalAck { from: NodeId(2) });
        assert!(out.sends.is_empty());
        let out = d.handle(l, HomeIn::InvalAck { from: NodeId(2) });
        assert!(out.sends.is_empty(), "duplicate ack ignored");
        let out = d.handle(l, HomeIn::InvalAck { from: NodeId(3) });
        assert_eq!(out.sends[0].0, NodeId(0));
        assert_eq!(data(&out.sends[0].1), (Version::INITIAL, true));
        assert_eq!(d.state(l), DirState::Exclusive(NodeId(0)));
    }

    #[test]
    fn upgrade_from_sole_sharer_is_immediate() {
        let (mut d, l) = dir();
        d.handle(l, HomeIn::Get { from: NodeId(2) });
        let out = d.handle(l, HomeIn::GetX { from: NodeId(2) });
        assert_eq!(data(&out.sends[0].1), (Version::INITIAL, true));
        assert_eq!(d.state(l), DirState::Exclusive(NodeId(2)));
    }

    #[test]
    fn read_of_dirty_line_recalls_owner() {
        let (mut d, l) = dir();
        d.handle(l, HomeIn::GetX { from: NodeId(0) });
        let out = d.handle(l, HomeIn::Get { from: NodeId(2) });
        assert_eq!(out.sends[0].0, NodeId(0));
        assert!(matches!(
            out.sends[0].1,
            CohMsg::Fetch {
                for_write: false,
                ..
            }
        ));
        assert!(d.state(l).is_locked());
        // Owner writes back version 5 keeping a shared copy.
        let out = d.handle(
            l,
            HomeIn::Put {
                from: NodeId(0),
                version: Version(5),
                keep_shared: true,
            },
        );
        assert_eq!(out.sends[0].0, NodeId(2));
        assert_eq!(data(&out.sends[0].1), (Version(5), false));
        match d.state(l) {
            DirState::Shared(s) => {
                assert!(s.contains(NodeId(0)) && s.contains(NodeId(2)));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(d.mem_version(l), Version(5));
    }

    #[test]
    fn write_of_dirty_line_transfers_ownership() {
        let (mut d, l) = dir();
        d.handle(l, HomeIn::GetX { from: NodeId(0) });
        let out = d.handle(l, HomeIn::GetX { from: NodeId(3) });
        assert!(matches!(
            out.sends[0].1,
            CohMsg::Fetch {
                for_write: true,
                ..
            }
        ));
        let out = d.handle(
            l,
            HomeIn::Put {
                from: NodeId(0),
                version: Version(9),
                keep_shared: false,
            },
        );
        assert_eq!(out.sends[0].0, NodeId(3));
        assert_eq!(data(&out.sends[0].1), (Version(9), true));
        assert_eq!(d.state(l), DirState::Exclusive(NodeId(3)));
    }

    #[test]
    fn voluntary_writeback_returns_line_home() {
        let (mut d, l) = dir();
        d.handle(l, HomeIn::GetX { from: NodeId(0) });
        let out = d.handle(
            l,
            HomeIn::Put {
                from: NodeId(0),
                version: Version(3),
                keep_shared: false,
            },
        );
        assert!(matches!(out.sends[0].1, CohMsg::PutAck { .. }));
        assert_eq!(d.state(l), DirState::Uncached);
        assert_eq!(d.mem_version(l), Version(3));
    }

    #[test]
    fn stale_put_is_acked_and_ignored() {
        let (mut d, l) = dir();
        let out = d.handle(
            l,
            HomeIn::Put {
                from: NodeId(2),
                version: Version(7),
                keep_shared: false,
            },
        );
        assert!(matches!(out.sends[0].1, CohMsg::PutAck { .. }));
        assert_eq!(d.mem_version(l), Version::INITIAL);
        assert_eq!(d.counters().get("unexpected_puts"), 1);
    }

    #[test]
    fn incoherent_lines_bus_error() {
        let (mut d, l) = dir();
        d.mark_incoherent(l);
        let out = d.handle(l, HomeIn::Get { from: NodeId(2) });
        assert!(matches!(out.sends[0].1, CohMsg::IncoherentErr { .. }));
        let out = d.handle(l, HomeIn::GetX { from: NodeId(2) });
        assert!(matches!(out.sends[0].1, CohMsg::IncoherentErr { .. }));
        assert!(d.is_incoherent(l));
    }

    #[test]
    fn scan_marks_lost_exclusive_lines() {
        let layout = MemLayout::new(2, 8);
        let mut d = Directory::new(NodeId(0), layout);
        d.handle(LineAddr(0), HomeIn::GetX { from: NodeId(1) }); // dirty remote
        d.handle(LineAddr(1), HomeIn::Get { from: NodeId(1) }); // shared
        d.handle(LineAddr(2), HomeIn::GetX { from: NodeId(1) });
        d.handle(LineAddr(2), HomeIn::Get { from: NodeId(0) }); // pending recall
                                                                // Line 3: dirty remote, but the flush writeback made it home.
        d.handle(LineAddr(3), HomeIn::GetX { from: NodeId(1) });
        d.recovery_put(LineAddr(3), Version(4));
        let marked = d.scan_and_reset();
        assert_eq!(marked, vec![LineAddr(0), LineAddr(2)]);
        assert!(d.is_incoherent(LineAddr(0)));
        assert!(d.is_incoherent(LineAddr(2)));
        assert_eq!(d.state(LineAddr(1)), DirState::Uncached);
        assert_eq!(d.state(LineAddr(3)), DirState::Uncached);
        assert_eq!(d.mem_version(LineAddr(3)), Version(4));
    }

    #[test]
    fn clear_incoherent_reinitializes() {
        let (mut d, l) = dir();
        d.mark_incoherent(l);
        assert!(d.clear_incoherent(l, Version(100)));
        assert!(!d.is_incoherent(l));
        assert_eq!(d.mem_version(l), Version(100));
        assert!(!d.clear_incoherent(l, Version(101)), "already clear");
    }

    #[test]
    fn late_inval_ack_after_reset_is_ignored() {
        let (mut d, l) = dir();
        let out = d.handle(l, HomeIn::InvalAck { from: NodeId(2) });
        assert!(out.sends.is_empty());
        assert_eq!(d.counters().get("unexpected_inval_acks"), 1);
    }
}

#[cfg(test)]
mod upgrade_tests {
    use super::*;

    fn dir() -> (Directory, LineAddr) {
        let layout = MemLayout::new(4, 64);
        (Directory::new(NodeId(1), layout), LineAddr(70))
    }

    #[test]
    fn sole_sharer_upgrade_acks_without_data() {
        let (mut d, l) = dir();
        d.handle(l, HomeIn::Get { from: NodeId(2) });
        let out = d.handle(l, HomeIn::Upgrade { from: NodeId(2) });
        assert_eq!(out.sends, vec![(NodeId(2), CohMsg::UpgradeAck { line: l })]);
        assert_eq!(d.state(l), DirState::Exclusive(NodeId(2)));
    }

    #[test]
    fn upgrade_with_other_sharers_invalidates_then_acks() {
        let (mut d, l) = dir();
        d.handle(l, HomeIn::Get { from: NodeId(2) });
        d.handle(l, HomeIn::Get { from: NodeId(3) });
        let out = d.handle(l, HomeIn::Upgrade { from: NodeId(2) });
        assert_eq!(out.sends, vec![(NodeId(3), CohMsg::Inval { line: l })]);
        assert!(d.state(l).is_locked());
        let out = d.handle(l, HomeIn::InvalAck { from: NodeId(3) });
        assert_eq!(out.sends, vec![(NodeId(2), CohMsg::UpgradeAck { line: l })]);
        assert_eq!(d.state(l), DirState::Exclusive(NodeId(2)));
    }

    #[test]
    fn upgrade_from_nonsharer_falls_back_to_full_data() {
        let (mut d, l) = dir();
        // Requester is not in the sharer set (silently evicted copy).
        let out = d.handle(l, HomeIn::Upgrade { from: NodeId(2) });
        match &out.sends[..] {
            [(
                dst,
                CohMsg::Data {
                    exclusive: true, ..
                },
            )] => assert_eq!(*dst, NodeId(2)),
            other => panic!("expected full data grant, got {other:?}"),
        }
        assert_eq!(d.counters().get("upgrade_fallbacks"), 1);
    }

    #[test]
    fn upgrade_of_dirty_remote_line_recalls_owner() {
        let (mut d, l) = dir();
        d.handle(l, HomeIn::GetX { from: NodeId(0) });
        let out = d.handle(l, HomeIn::Upgrade { from: NodeId(2) });
        assert!(matches!(
            out.sends[0].1,
            CohMsg::Fetch {
                for_write: true,
                ..
            }
        ));
        assert_eq!(d.counters().get("upgrade_fallbacks"), 1);
    }

    #[test]
    fn scan_and_prune_preserves_survivor_state() {
        let layout = MemLayout::new(4, 8);
        let mut d = Directory::new(NodeId(0), layout);
        let failed = NodeSet::singleton(NodeId(3));
        // Line 0: exclusive at the dead node -> incoherent.
        d.handle(LineAddr(0), HomeIn::GetX { from: NodeId(3) });
        // Line 1: exclusive at a live node -> preserved.
        d.handle(LineAddr(1), HomeIn::GetX { from: NodeId(1) });
        // Line 2: shared by live and dead -> dead pruned.
        d.handle(LineAddr(2), HomeIn::Get { from: NodeId(1) });
        d.handle(LineAddr(2), HomeIn::Get { from: NodeId(3) });
        // Line 3: shared only by the dead node -> uncached.
        d.handle(LineAddr(3), HomeIn::Get { from: NodeId(3) });
        // Line 4: recall pending toward a live owner -> ownership restored.
        d.handle(LineAddr(4), HomeIn::GetX { from: NodeId(2) });
        d.handle(LineAddr(4), HomeIn::Get { from: NodeId(1) });
        let marked = d.scan_and_prune(&failed);
        assert_eq!(marked, vec![LineAddr(0)]);
        assert_eq!(d.state(LineAddr(1)), DirState::Exclusive(NodeId(1)));
        match d.state(LineAddr(2)) {
            DirState::Shared(s) => {
                assert!(s.contains(NodeId(1)) && !s.contains(NodeId(3)));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(d.state(LineAddr(3)), DirState::Uncached);
        assert_eq!(d.state(LineAddr(4)), DirState::Exclusive(NodeId(2)));
    }

    /// `incoherent_lines()` must always equal the full-scan answer: it is
    /// what the OS page service trusts instead of walking every line.
    #[test]
    fn incoherent_index_tracks_marks_and_clears() {
        let layout = MemLayout::new(4, 64);
        let mut d = Directory::new(NodeId(0), layout);
        let scan = |d: &Directory| -> Vec<LineAddr> {
            d.iter_states()
                .filter(|(_, s)| matches!(s, DirState::Incoherent))
                .map(|(l, _)| l)
                .collect()
        };
        // Dirty-remote lines (live and dead owners alike) become incoherent
        // at the post-flush scan.
        d.handle(LineAddr(5), HomeIn::GetX { from: NodeId(2) });
        d.handle(LineAddr(9), HomeIn::GetX { from: NodeId(3) });
        let marked = d.scan_and_reset();
        assert_eq!(marked, vec![LineAddr(5), LineAddr(9)]);
        assert_eq!(d.incoherent_lines(), scan(&d).as_slice());
        // Direct marks (truncated-packet path), idempotently.
        d.mark_incoherent(LineAddr(7));
        d.mark_incoherent(LineAddr(7));
        assert_eq!(
            d.incoherent_lines(),
            &[LineAddr(5), LineAddr(7), LineAddr(9)]
        );
        assert_eq!(d.incoherent_lines(), scan(&d).as_slice());
        // Clearing removes from the index; clearing a coherent line is a
        // no-op on it.
        assert!(d.clear_incoherent(LineAddr(7), Version::INITIAL.next()));
        assert!(!d.clear_incoherent(LineAddr(6), Version::INITIAL.next()));
        assert_eq!(d.incoherent_lines(), &[LineAddr(5), LineAddr(9)]);
        assert_eq!(d.incoherent_lines(), scan(&d).as_slice());
        // A second scan re-marks nothing and keeps the index sorted/deduped.
        let marked = d.scan_and_reset();
        assert!(marked.is_empty());
        assert_eq!(d.incoherent_lines(), scan(&d).as_slice());
    }
}
