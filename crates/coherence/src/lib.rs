//! # flash-coherence — directory-based cache coherence model
//!
//! The shared-memory substrate of the FLASH fault-containment reproduction:
//! a home-based MSI directory protocol over 128-byte lines, with the exact
//! properties the paper's recovery algorithm depends on (Sections 3.2, 4.5):
//!
//! * every line has a fixed home node holding its directory state
//!   ([`MemLayout`], [`Directory`]);
//! * a dirty writeback carries the *only valid copy* of a line
//!   ([`CohMsg::Put`]);
//! * transient directory states lock a line: requests are NAK'd and retried;
//! * lines can be marked [`DirState::Incoherent`] after a fault, causing
//!   bus errors on access until the OS reinitializes the page.
//!
//! Data is modeled as a per-line [`Version`] that each committed store
//! increments; the validation experiments check that every accessible line
//! reads the latest version after recovery.
//!
//! The processor-side cache is [`L2Cache`] (2-way set-associative). The
//! protocol engines here are *pure state machines*; the `flash-machine`
//! crate wires them to the interconnect and to MAGIC handler timing.
//!
//! # Examples
//!
//! ```
//! use flash_coherence::{Directory, HomeIn, MemLayout, DirState, LineAddr};
//! use flash_net::NodeId;
//!
//! let layout = MemLayout::new(2, 128);
//! let mut dir = Directory::new(NodeId(0), layout);
//! let out = dir.handle(LineAddr(3), HomeIn::GetX { from: NodeId(1) });
//! assert_eq!(out.sends.len(), 1); // exclusive data reply to node 1
//! assert_eq!(dir.state(LineAddr(3)), DirState::Exclusive(NodeId(1)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod directory;
mod line;
mod msg;
mod nodeset;

pub use cache::{CachedLine, InsertOutcome, L2Cache};
pub use directory::{DirState, Directory, HomeIn, Outcome};
pub use line::{LineAddr, MemLayout, PageAddr, Version, LINES_PER_PAGE, LINE_BYTES};
pub use msg::{CohMsg, CTRL_FLITS, DATA_FLITS};
pub use nodeset::NodeSet;
