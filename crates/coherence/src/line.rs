//! Cache-line addressing and the versioned data model.
//!
//! FLASH assigns each 128-byte memory line to a fixed home node where its
//! directory state lives. We address memory at line granularity with
//! [`LineAddr`]; [`MemLayout`] maps lines to home nodes (contiguous ranges,
//! as in FLASH where each node contributes a slice of physical memory).
//!
//! Instead of modeling 128 bytes of payload per line, each line carries a
//! [`Version`]: every committed store increments it. A copy of a line is
//! *correct* iff its version equals the globally latest committed version —
//! this is how the validation experiments detect silent data loss or
//! corruption after recovery (paper, Section 5.2).

use core::fmt;
use flash_net::NodeId;

/// Bytes per cache line (FLASH uses 128-byte lines).
pub const LINE_BYTES: u64 = 128;

/// Cache lines per 4 KB page (the firewall's protection granularity).
pub const LINES_PER_PAGE: u64 = 4096 / LINE_BYTES;

/// A global line-granular memory address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

/// A 4 KB page address (line address divided by [`LINES_PER_PAGE`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageAddr(pub u64);

/// The version number standing in for a line's 128 bytes of data.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(pub u64);

impl LineAddr {
    /// The page containing this line.
    #[inline]
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 / LINES_PER_PAGE)
    }

    /// The byte address of the start of this line.
    #[inline]
    pub fn byte_addr(self) -> u64 {
        self.0 * LINE_BYTES
    }
}

impl Version {
    /// The initial version of every line at boot.
    pub const INITIAL: Version = Version(0);

    /// The next version (after one more store).
    #[inline]
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}
impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}
impl fmt::Debug for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:#x}", self.0)
    }
}
impl fmt::Debug for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The machine's physical memory layout: `n_nodes` nodes each contributing
/// `lines_per_node` lines, with line `i` homed on node `i / lines_per_node`.
///
/// # Examples
///
/// ```
/// use flash_coherence::{MemLayout, LineAddr};
/// use flash_net::NodeId;
///
/// let layout = MemLayout::new(4, 1024);
/// assert_eq!(layout.total_lines(), 4096);
/// assert_eq!(layout.home_of(LineAddr(1025)), NodeId(1));
/// assert_eq!(layout.local_index(LineAddr(1025)), 1);
/// assert_eq!(layout.line_of(NodeId(1), 1), LineAddr(1025));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemLayout {
    n_nodes: usize,
    lines_per_node: u64,
}

impl MemLayout {
    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(n_nodes: usize, lines_per_node: u64) -> Self {
        assert!(n_nodes > 0 && lines_per_node > 0);
        MemLayout {
            n_nodes,
            lines_per_node,
        }
    }

    /// Creates a layout from a per-node memory size in megabytes.
    pub fn with_node_mb(n_nodes: usize, mb_per_node: u64) -> Self {
        MemLayout::new(n_nodes, mb_per_node * 1024 * 1024 / LINE_BYTES)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Lines contributed by each node.
    pub fn lines_per_node(&self) -> u64 {
        self.lines_per_node
    }

    /// Total lines in the machine.
    pub fn total_lines(&self) -> u64 {
        self.n_nodes as u64 * self.lines_per_node
    }

    /// The home node of a line.
    ///
    /// # Panics
    ///
    /// Panics if the line is out of range.
    pub fn home_of(&self, line: LineAddr) -> NodeId {
        assert!(line.0 < self.total_lines(), "line out of range");
        NodeId((line.0 / self.lines_per_node) as u16)
    }

    /// The line's index within its home node's memory.
    pub fn local_index(&self, line: LineAddr) -> usize {
        assert!(line.0 < self.total_lines(), "line out of range");
        (line.0 % self.lines_per_node) as usize
    }

    /// The global line address of `node`'s `local`-th line.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn line_of(&self, node: NodeId, local: u64) -> LineAddr {
        assert!((node.index()) < self.n_nodes && local < self.lines_per_node);
        LineAddr(node.index() as u64 * self.lines_per_node + local)
    }

    /// Whether a line lies in the exception-vector range (the first page of
    /// physical memory). References to this range are remapped node-locally
    /// by MAGIC to avoid a single point of failure (paper, Section 3.2).
    pub fn is_vector_range(&self, line: LineAddr) -> bool {
        line.0 < LINES_PER_PAGE
    }

    /// Iterates over all lines homed on `node`.
    pub fn lines_of(&self, node: NodeId) -> impl Iterator<Item = LineAddr> + '_ {
        let base = node.index() as u64 * self.lines_per_node;
        (base..base + self.lines_per_node).map(LineAddr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_group_lines() {
        assert_eq!(LINES_PER_PAGE, 32);
        assert_eq!(LineAddr(0).page(), PageAddr(0));
        assert_eq!(LineAddr(31).page(), PageAddr(0));
        assert_eq!(LineAddr(32).page(), PageAddr(1));
        assert_eq!(LineAddr(2).byte_addr(), 256);
    }

    #[test]
    fn version_monotone() {
        let v = Version::INITIAL;
        assert_eq!(v.next(), Version(1));
        assert!(v < v.next());
    }

    #[test]
    fn layout_maps_lines_to_homes() {
        let l = MemLayout::new(4, 100);
        assert_eq!(l.home_of(LineAddr(0)), NodeId(0));
        assert_eq!(l.home_of(LineAddr(99)), NodeId(0));
        assert_eq!(l.home_of(LineAddr(100)), NodeId(1));
        assert_eq!(l.home_of(LineAddr(399)), NodeId(3));
        assert_eq!(l.local_index(LineAddr(399)), 99);
    }

    #[test]
    fn layout_from_megabytes() {
        let l = MemLayout::with_node_mb(8, 16);
        assert_eq!(l.lines_per_node(), 16 * 1024 * 1024 / 128);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_line_panics() {
        let l = MemLayout::new(2, 10);
        let _ = l.home_of(LineAddr(20));
    }

    #[test]
    fn vector_range_is_first_page() {
        let l = MemLayout::new(2, 100);
        assert!(l.is_vector_range(LineAddr(0)));
        assert!(l.is_vector_range(LineAddr(31)));
        assert!(!l.is_vector_range(LineAddr(32)));
    }

    #[test]
    fn lines_of_enumerates_node_slice() {
        let l = MemLayout::new(3, 5);
        let lines: Vec<u64> = l.lines_of(NodeId(1)).map(|a| a.0).collect();
        assert_eq!(lines, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn line_of_roundtrips() {
        let l = MemLayout::new(3, 7);
        for n in 0..3u16 {
            for i in 0..7u64 {
                let a = l.line_of(NodeId(n), i);
                assert_eq!(l.home_of(a), NodeId(n));
                assert_eq!(l.local_index(a) as u64, i);
            }
        }
    }
}
