//! Coherence protocol messages.
//!
//! The directory protocol exchanges these messages between a line's *home*
//! node and the caching nodes. Messages that can generate further messages
//! travel on the request virtual lane; terminal messages travel on the reply
//! lane (so they are always sinkable, avoiding protocol deadlock).

use crate::line::{LineAddr, Version};
use flash_net::Lane;

/// Flits in a header-only control message.
pub const CTRL_FLITS: u32 = 1;
/// Flits in a message carrying a 128-byte line (1 header + 8 data flits).
pub const DATA_FLITS: u32 = 9;

/// A cache-coherence protocol message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CohMsg {
    /// Read request: fetch a shared copy.
    Get {
        /// The requested line.
        line: LineAddr,
    },
    /// Write request: fetch an exclusive copy.
    GetX {
        /// The requested line.
        line: LineAddr,
    },
    /// Ownership upgrade: the requester already holds a shared copy and
    /// asks for exclusivity without a data transfer (1 flit instead of 9).
    /// If the home no longer lists the requester as a sharer, it falls back
    /// to the full [`CohMsg::GetX`] path.
    UpgradeReq {
        /// The line to upgrade.
        line: LineAddr,
    },
    /// Grants an upgrade: the requester's shared copy becomes exclusive.
    UpgradeAck {
        /// The upgraded line.
        line: LineAddr,
    },
    /// Writeback: returns the *only valid copy* of a dirty line to its home
    /// (the FLASH protocol entrusts the data to this message — losing it
    /// makes the line incoherent; paper, Section 3.2).
    Put {
        /// The written-back line.
        line: LineAddr,
        /// The line's data (version model).
        version: Version,
        /// Whether the writer keeps a clean shared copy (downgrade in
        /// response to a read recall) instead of dropping the line.
        keep_shared: bool,
    },
    /// Acknowledges a voluntary writeback.
    PutAck {
        /// The acknowledged line.
        line: LineAddr,
    },
    /// Home asks a sharer to drop its copy.
    Inval {
        /// The line to invalidate.
        line: LineAddr,
    },
    /// Sharer acknowledges an invalidation.
    InvalAck {
        /// The invalidated line.
        line: LineAddr,
    },
    /// Home asks the exclusive owner to write the line back (a recall on
    /// behalf of another requester).
    Fetch {
        /// The recalled line.
        line: LineAddr,
        /// Whether the waiting requester wants exclusive access.
        for_write: bool,
    },
    /// Data reply granting a shared or exclusive copy.
    Data {
        /// The granted line.
        line: LineAddr,
        /// The line's data (version model).
        version: Version,
        /// Whether the copy is exclusive.
        exclusive: bool,
    },
    /// Negative acknowledgment: the line is locked in a transient state;
    /// the requester must retry (incrementing its NAK counter).
    Nak {
        /// The NAK'd line.
        line: LineAddr,
    },
    /// Terminal error reply: the line is marked incoherent after a fault;
    /// the requester's node controller raises a bus error.
    IncoherentErr {
        /// The incoherent line.
        line: LineAddr,
    },
    /// Terminal error reply: the requester lacks firewall write permission
    /// for the page (raises a bus error at the requester).
    FirewallErr {
        /// The denied line.
        line: LineAddr,
    },
}

impl CohMsg {
    /// The line this message concerns.
    pub fn line(&self) -> LineAddr {
        match *self {
            CohMsg::Get { line }
            | CohMsg::GetX { line }
            | CohMsg::UpgradeReq { line }
            | CohMsg::UpgradeAck { line }
            | CohMsg::Put { line, .. }
            | CohMsg::PutAck { line }
            | CohMsg::Inval { line }
            | CohMsg::InvalAck { line }
            | CohMsg::Fetch { line, .. }
            | CohMsg::Data { line, .. }
            | CohMsg::Nak { line }
            | CohMsg::IncoherentErr { line }
            | CohMsg::FirewallErr { line } => line,
        }
    }

    /// The packet size in flits.
    pub fn flits(&self) -> u32 {
        match self {
            CohMsg::Put { .. } | CohMsg::Data { .. } => DATA_FLITS,
            _ => CTRL_FLITS,
        }
    }

    /// The virtual lane this message travels on.
    pub fn lane(&self) -> Lane {
        match self {
            // Messages that may trigger further protocol activity.
            CohMsg::Get { .. }
            | CohMsg::GetX { .. }
            | CohMsg::UpgradeReq { .. }
            | CohMsg::Put { .. }
            | CohMsg::Inval { .. }
            | CohMsg::Fetch { .. } => Lane::Request,
            // Terminal messages: always consumable.
            CohMsg::PutAck { .. }
            | CohMsg::UpgradeAck { .. }
            | CohMsg::InvalAck { .. }
            | CohMsg::Data { .. }
            | CohMsg::Nak { .. }
            | CohMsg::IncoherentErr { .. }
            | CohMsg::FirewallErr { .. } => Lane::Reply,
        }
    }

    /// Stable snake-case label, used by the observability layer as the
    /// handler name for dispatch events.
    pub fn kind_str(&self) -> &'static str {
        match self {
            CohMsg::Get { .. } => "get",
            CohMsg::GetX { .. } => "getx",
            CohMsg::UpgradeReq { .. } => "upgrade_req",
            CohMsg::UpgradeAck { .. } => "upgrade_ack",
            CohMsg::Put { .. } => "put",
            CohMsg::PutAck { .. } => "put_ack",
            CohMsg::Inval { .. } => "inval",
            CohMsg::InvalAck { .. } => "inval_ack",
            CohMsg::Fetch { .. } => "fetch",
            CohMsg::Data { .. } => "data",
            CohMsg::Nak { .. } => "nak",
            CohMsg::IncoherentErr { .. } => "incoherent_err",
            CohMsg::FirewallErr { .. } => "firewall_err",
        }
    }

    /// Whether this message carries the only valid copy of a line (its loss
    /// makes the line incoherent).
    pub fn carries_sole_copy(&self) -> bool {
        matches!(
            self,
            CohMsg::Put { .. }
                | CohMsg::Data {
                    exclusive: true,
                    ..
                }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_lanes() {
        let l = LineAddr(5);
        assert_eq!(CohMsg::Get { line: l }.flits(), 1);
        assert_eq!(
            CohMsg::Put {
                line: l,
                version: Version(1),
                keep_shared: false
            }
            .flits(),
            9
        );
        assert_eq!(
            CohMsg::Data {
                line: l,
                version: Version(1),
                exclusive: false
            }
            .flits(),
            9
        );
        assert_eq!(CohMsg::Get { line: l }.lane(), Lane::Request);
        assert_eq!(CohMsg::Nak { line: l }.lane(), Lane::Reply);
        assert_eq!(CohMsg::Inval { line: l }.lane(), Lane::Request);
        assert_eq!(CohMsg::InvalAck { line: l }.lane(), Lane::Reply);
    }

    #[test]
    fn line_accessor_covers_all_variants() {
        let l = LineAddr(7);
        let msgs = [
            CohMsg::Get { line: l },
            CohMsg::GetX { line: l },
            CohMsg::Put {
                line: l,
                version: Version(2),
                keep_shared: false,
            },
            CohMsg::PutAck { line: l },
            CohMsg::Inval { line: l },
            CohMsg::InvalAck { line: l },
            CohMsg::Fetch {
                line: l,
                for_write: true,
            },
            CohMsg::Data {
                line: l,
                version: Version(2),
                exclusive: true,
            },
            CohMsg::Nak { line: l },
            CohMsg::IncoherentErr { line: l },
            CohMsg::FirewallErr { line: l },
        ];
        for m in msgs {
            assert_eq!(m.line(), l);
        }
    }

    #[test]
    fn sole_copy_carriers() {
        let l = LineAddr(1);
        assert!(CohMsg::Put {
            line: l,
            version: Version(3),
            keep_shared: false
        }
        .carries_sole_copy());
        assert!(CohMsg::Data {
            line: l,
            version: Version(3),
            exclusive: true
        }
        .carries_sole_copy());
        assert!(!CohMsg::Data {
            line: l,
            version: Version(3),
            exclusive: false
        }
        .carries_sole_copy());
        assert!(!CohMsg::Get { line: l }.carries_sole_copy());
    }
}
