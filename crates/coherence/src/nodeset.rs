//! A compact bitset of node ids, used for directory sharer lists and
//! recovery-state vectors. Supports machines of up to 1024 nodes: the paper
//! evaluates up to 128 and FLASH scales to 512, but the sharded executor's
//! beyond-the-paper sweeps run 512- and 1024-node meshes, which need every
//! sharer list and recovery vector to address the full machine.

use core::fmt;
use flash_net::NodeId;

const WORDS: usize = 16;

/// A set of [`NodeId`]s backed by a fixed 1024-bit bitmap.
///
/// # Examples
///
/// ```
/// use flash_coherence::NodeSet;
/// use flash_net::NodeId;
///
/// let mut s = NodeSet::new();
/// s.insert(NodeId(3));
/// s.insert(NodeId(130));
/// assert!(s.contains(NodeId(3)));
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodeSet {
    bits: [u64; WORDS],
}

impl NodeSet {
    /// The maximum node id + 1 a `NodeSet` can hold.
    pub const CAPACITY: usize = WORDS * 64;

    /// Creates an empty set.
    pub fn new() -> Self {
        NodeSet::default()
    }

    /// Creates a set containing a single node.
    pub fn singleton(node: NodeId) -> Self {
        let mut s = NodeSet::new();
        s.insert(node);
        s
    }

    /// Creates a set containing all nodes `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > CAPACITY`.
    pub fn all_below(n: usize) -> Self {
        assert!(n <= Self::CAPACITY);
        let mut s = NodeSet::new();
        for i in 0..n {
            s.insert(NodeId(i as u16));
        }
        s
    }

    /// Adds a node; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if the id exceeds [`NodeSet::CAPACITY`].
    pub fn insert(&mut self, node: NodeId) -> bool {
        let (w, b) = Self::slot(node);
        let had = self.bits[w] & b != 0;
        self.bits[w] |= b;
        !had
    }

    /// Removes a node; returns whether it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let (w, b) = Self::slot(node);
        let had = self.bits[w] & b != 0;
        self.bits[w] &= !b;
        had
    }

    /// Membership test.
    pub fn contains(&self, node: NodeId) -> bool {
        let (w, b) = Self::slot(node);
        self.bits[w] & b != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Set union, in place.
    pub fn union_with(&mut self, other: &NodeSet) {
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= b;
        }
    }

    /// Set difference (`self - other`), in place.
    pub fn subtract(&mut self, other: &NodeSet) {
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a &= !b;
        }
    }

    /// Whether the two sets intersect.
    pub fn intersects(&self, other: &NodeSet) -> bool {
        self.bits
            .iter()
            .zip(other.bits.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        self.bits
            .iter()
            .zip(other.bits.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..Self::CAPACITY as u16)
            .filter(move |&i| self.contains(NodeId(i)))
            .map(NodeId)
    }

    /// The smallest member, if any.
    pub fn first(&self) -> Option<NodeId> {
        self.iter().next()
    }

    fn slot(node: NodeId) -> (usize, u64) {
        let i = node.index();
        assert!(i < Self::CAPACITY, "node id {i} exceeds NodeSet capacity");
        (i / 64, 1u64 << (i % 64))
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let mut s = NodeSet::new();
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<T: IntoIterator<Item = NodeId>>(&mut self, iter: T) {
        for n in iter {
            self.insert(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new();
        assert!(s.is_empty());
        assert!(s.insert(NodeId(7)));
        assert!(!s.insert(NodeId(7)));
        assert!(s.contains(NodeId(7)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(NodeId(7)));
        assert!(!s.remove(NodeId(7)));
        assert!(s.is_empty());
    }

    #[test]
    fn spans_multiple_words() {
        let mut s = NodeSet::new();
        s.insert(NodeId(0));
        s.insert(NodeId(64));
        s.insert(NodeId(255));
        assert_eq!(s.len(), 3);
        let members: Vec<u16> = s.iter().map(|n| n.0).collect();
        assert_eq!(members, vec![0, 64, 255]);
        assert_eq!(s.first(), Some(NodeId(0)));
    }

    #[test]
    fn set_algebra() {
        let a: NodeSet = [1u16, 2, 3].iter().map(|&i| NodeId(i)).collect();
        let b: NodeSet = [3u16, 4].iter().map(|&i| NodeId(i)).collect();
        let mut u = a;
        u.union_with(&b);
        assert_eq!(u.len(), 4);
        let mut d = a;
        d.subtract(&b);
        assert!(d.contains(NodeId(1)) && d.contains(NodeId(2)) && !d.contains(NodeId(3)));
        assert!(a.intersects(&b));
        assert!(!d.intersects(&b));
        assert!(a.is_subset(&u));
        assert!(!u.is_subset(&a));
    }

    #[test]
    fn all_below_and_singleton() {
        let s = NodeSet::all_below(10);
        assert_eq!(s.len(), 10);
        assert!(s.contains(NodeId(9)));
        assert!(!s.contains(NodeId(10)));
        assert_eq!(NodeSet::singleton(NodeId(5)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds NodeSet capacity")]
    fn oversized_id_panics() {
        let mut s = NodeSet::new();
        s.insert(NodeId(1024));
    }

    #[test]
    fn debug_lists_members() {
        let s = NodeSet::singleton(NodeId(2));
        assert_eq!(format!("{s:?}"), "{n2}");
    }
}
