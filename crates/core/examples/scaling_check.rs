use flash_core::*;
use flash_machine::*;
use flash_sim::DetRng;

fn main() {
    // Mini Table 5.3: 5 fault kinds x 6 seeds on the 8-node machine.
    let mut failures = 0;
    let t0 = std::time::Instant::now();
    for kind in FaultKind::ALL {
        for seed in 0..6u64 {
            let mut rng = DetRng::new(seed * 31 + 7);
            let mut cfg = ExperimentConfig::new(MachineParams::table_5_1(), seed);
            cfg.fill_ops = 500;
            cfg.total_ops = 1200;
            let fault = random_fault(kind, 8, &mut rng);
            let out = run_fault_experiment(&cfg, fault.clone());
            if !out.passed() {
                failures += 1;
                println!(
                    "FAIL {kind:?} seed {seed} {fault:?}: finished={} rec={:?} val={}",
                    out.finished,
                    out.recovery.completed(),
                    out.validation
                );
            }
        }
        println!("{kind:?} done at {:?}", t0.elapsed());
    }
    println!("mini table 5.3: failures={failures}/30");

    // Scaling check: recovery time vs nodes (mesh).
    for n in [2usize, 8, 16, 32, 64, 128] {
        let mut params = MachineParams::table_5_1();
        params.n_nodes = n;
        let mut cfg = ExperimentConfig::new(params, 99);
        cfg.fill_ops = 50;
        cfg.total_ops = 200;
        let out = run_fault_experiment(&cfg, FaultSpec::Node(flash_net::NodeId(1)));
        let p = out.recovery.phases;
        println!(
            "n={n:4} P1={:?} P1-2={:?} P1-3={:?} total={:?} host={:?}",
            p.p1().map(|d| d.as_millis_f64()),
            p.p1_2().map(|d| d.as_millis_f64()),
            p.p1_3().map(|d| d.as_millis_f64()),
            p.total().map(|d| d.as_millis_f64()),
            t0.elapsed()
        );
    }
}
