//! Recovery-algorithm configuration and result reporting.

use flash_sim::{SimDuration, SimTime};

/// Cost and timing parameters of the distributed recovery algorithm.
///
/// During recovery the R10000 processors execute from uncached space at
/// roughly 2.5 MIPS (400 ns per instruction — the paper's calibrated value,
/// Sections 4.1 and 5.3); all compute costs below are expressed in *uncached
/// instructions* and converted through `uncached_instr_ns`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryConfig {
    /// Nanoseconds per uncached instruction (~2.5 MIPS).
    pub uncached_instr_ns: u64,
    /// Instructions to force the processor into the recovery code (the
    /// Cache Error path of Section 4.2).
    pub drop_in_instr: u64,
    /// Instructions per router/link probe during cwn exploration.
    pub probe_instr: u64,
    /// Time to wait for a ping reply before retrying / declaring the target
    /// node failed.
    pub ping_timeout: SimDuration,
    /// Ping retries before a node is declared failed.
    pub ping_retries: u32,
    /// Whether nodes speculatively ping their immediate neighbors before
    /// starting cwn exploration (the ~5x trigger-wave speedup of §4.2).
    pub speculative_pings: bool,
    /// Fixed instructions per dissemination-round message processed.
    pub merge_base_instr: u64,
    /// Additional instructions per machine node per merged state vector.
    pub merge_per_node_instr: u64,
    /// Instructions per machine node for one BFT-height computation.
    pub bft_per_node_instr: u64,
    /// Whether stabilized nodes send their round bound as a *hint* so that
    /// other nodes can skip their own BFT computation (§4.3's scheduling
    /// optimization).
    pub bft_hints: bool,
    /// Instructions for the isolation step (reprogramming the local router's
    /// discard entries).
    pub isolate_instr: u64,
    /// The drain bound τ: a node votes to proceed after seeing no stalled
    /// coherence delivery for this long (§4.4).
    pub drain_tau: SimDuration,
    /// Polling interval of the drain check.
    pub drain_poll: SimDuration,
    /// Instructions per machine node to compute the new routing tables.
    pub route_per_node_instr: u64,
    /// Nanoseconds per cache line of the flush walk (uncached flush loop;
    /// calibrated to Figure 5.6: ~1.2 us/line).
    pub flush_per_line_ns: u64,
    /// Watchdog: a recovery phase making no progress for this long is
    /// treated as an additional failure and restarts the algorithm.
    pub watchdog: SimDuration,
    /// Heuristic machine-shutdown threshold: if more than this fraction of
    /// nodes is failed, recovery halts the whole machine instead of risking
    /// split-brain operation (§4.2). `1.0` disables the heuristic.
    pub shutdown_fraction: f64,
    /// Use the tighter double-sweep/center diameter bound (in the spirit of
    /// the paper's citation \[1\], Aingworth et al.) instead of the plain
    /// `2h` bound for dissemination termination. Costs three BFS
    /// computations instead of one but can nearly halve the round count on
    /// meshes whose deterministic root sits in a corner.
    pub center_diameter_bound: bool,
    /// The Section 6.3 variant: the interconnect provides HAL-style
    /// hardware end-to-end reliability, so coherence packets crossing a
    /// failed region are retransmitted rather than lost. The cache-flush
    /// step of P4 is then eliminated and the directories are *pruned*
    /// (failed sharers/owners removed, surviving cached state kept)
    /// instead of reset. Sound for node/controller failures; link-loss
    /// retransmission hardware itself is not modeled.
    pub reliable_interconnect: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            uncached_instr_ns: 400,
            drop_in_instr: 1_250, // ~0.5 ms
            probe_instr: 250,     // ~0.1 ms per probe
            ping_timeout: SimDuration::from_micros(1_500),
            ping_retries: 2,
            speculative_pings: true,
            merge_base_instr: 200,
            merge_per_node_instr: 13,
            bft_per_node_instr: 40,
            bft_hints: true,
            isolate_instr: 500,
            drain_tau: SimDuration::from_micros(2),
            drain_poll: SimDuration::from_micros(5),
            route_per_node_instr: 60,
            flush_per_line_ns: 1_200,
            watchdog: SimDuration::from_millis(400),
            shutdown_fraction: 0.5,
            center_diameter_bound: false,
            reliable_interconnect: false,
        }
    }
}

impl RecoveryConfig {
    /// Converts an instruction count to simulated time.
    pub fn instr(&self, count: u64) -> SimDuration {
        SimDuration::from_nanos(count.saturating_mul(self.uncached_instr_ns))
    }
}

/// Completion times of the recovery phases, machine-wide (last node to
/// finish each phase), matching the series of Figure 5.5.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// First hardware trigger.
    pub triggered_at: Option<SimTime>,
    /// Recovery initiation (P1) complete on all nodes.
    pub p1_done: Option<SimTime>,
    /// Information dissemination (P2) complete.
    pub p2_done: Option<SimTime>,
    /// Interconnect recovery (P3) complete.
    pub p3_done: Option<SimTime>,
    /// Coherence-protocol recovery (P4) complete; normal operation resumed.
    pub p4_done: Option<SimTime>,
}

impl PhaseTimes {
    fn span(&self, end: Option<SimTime>) -> Option<SimDuration> {
        Some(end?.since(self.triggered_at?))
    }

    /// Duration of P1 from the first trigger.
    pub fn p1(&self) -> Option<SimDuration> {
        self.span(self.p1_done)
    }

    /// Duration of P1+P2.
    pub fn p1_2(&self) -> Option<SimDuration> {
        self.span(self.p2_done)
    }

    /// Duration of P1+P2+P3.
    pub fn p1_3(&self) -> Option<SimDuration> {
        self.span(self.p3_done)
    }

    /// Total hardware recovery time.
    pub fn total(&self) -> Option<SimDuration> {
        self.span(self.p4_done)
    }
}

/// Machine-wide *first-entry* times of the recovery phases for the current
/// incarnation. Unlike [`PhaseTimes`], which records when the *last* node
/// finished each phase, these record when the *first* node entered it —
/// the moment a fault-injection campaign can arm a mid-phase fault.
/// Cleared whenever a restart begins a new incarnation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseEntries {
    /// First node dropped into the recovery code (P1 entry).
    pub p1: Option<SimTime>,
    /// First node began information dissemination (P2 entry).
    pub p2: Option<SimTime>,
    /// First node began interconnect recovery (P3 entry).
    pub p3: Option<SimTime>,
    /// First node began coherence-protocol recovery (P4 entry).
    pub p4: Option<SimTime>,
}

impl PhaseEntries {
    /// The entry time of phase `1..=4`; `None` while not yet entered.
    ///
    /// # Panics
    ///
    /// Panics if `phase` is outside `1..=4`.
    pub fn entered(&self, phase: u8) -> Option<SimTime> {
        match phase {
            1 => self.p1,
            2 => self.p2,
            3 => self.p3,
            4 => self.p4,
            other => panic!("recovery has phases 1..=4, not {other}"),
        }
    }
}

/// Summary of one recovery execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// Phase completion times of the final (successful) incarnation.
    pub phases: PhaseTimes,
    /// Number of algorithm restarts (additional faults / watchdogs).
    pub restarts: u32,
    /// Lines marked incoherent by the directory scans.
    pub lines_marked_incoherent: u64,
    /// Cache lines written back during the flush step.
    pub flush_writebacks: u64,
    /// Nodes that completed recovery and resumed.
    pub nodes_resumed: u32,
    /// Nodes that shut themselves down because their failure unit lost a
    /// component.
    pub nodes_shut_down: u32,
    /// Whether the whole-machine shutdown heuristic fired.
    pub machine_halted: bool,
    /// Time of the cache-flush barrier completion (start of the directory
    /// scans), for the Figure 5.6 writeback/scan split.
    pub flush_done_at: Option<SimTime>,
    /// Time the flush step started (P4 entry).
    pub p4_started_at: Option<SimTime>,
    /// Time at which every live node had entered recovery (the trigger
    /// wave's completion; §4.2's speculative pings accelerate this).
    pub wave_complete_at: Option<SimTime>,
}

impl RecoveryReport {
    /// Whether hardware recovery ran to completion.
    pub fn completed(&self) -> bool {
        self.phases.p4_done.is_some()
    }

    /// Duration of the flush (writeback) step of P4 — the "WB" series of
    /// Figure 5.6.
    pub fn writeback_time(&self) -> Option<SimDuration> {
        Some(self.flush_done_at?.since(self.p4_started_at?))
    }

    /// Duration of the whole of P4 — the "P4" series of Figure 5.6.
    pub fn p4_time(&self) -> Option<SimDuration> {
        Some(self.phases.p4_done?.since(self.p4_started_at?))
    }

    /// Time from the first trigger until every live node had entered
    /// recovery (the trigger-wave latency of Section 4.2).
    pub fn trigger_wave_time(&self) -> Option<SimDuration> {
        Some(self.wave_complete_at?.since(self.phases.triggered_at?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_calibrated() {
        let c = RecoveryConfig::default();
        assert_eq!(c.uncached_instr_ns, 400, "~2.5 MIPS uncached execution");
        assert!(c.speculative_pings && c.bft_hints);
        assert_eq!(c.instr(10), SimDuration::from_nanos(4_000));
    }

    #[test]
    fn phase_times_spans() {
        let mut p = PhaseTimes::default();
        assert_eq!(p.total(), None);
        p.triggered_at = Some(SimTime::from_nanos(100));
        p.p1_done = Some(SimTime::from_nanos(600));
        p.p2_done = Some(SimTime::from_nanos(1_100));
        p.p3_done = Some(SimTime::from_nanos(1_500));
        p.p4_done = Some(SimTime::from_nanos(2_100));
        assert_eq!(p.p1(), Some(SimDuration::from_nanos(500)));
        assert_eq!(p.p1_2(), Some(SimDuration::from_nanos(1_000)));
        assert_eq!(p.p1_3(), Some(SimDuration::from_nanos(1_400)));
        assert_eq!(p.total(), Some(SimDuration::from_nanos(2_000)));
    }

    #[test]
    fn report_wb_and_p4_split() {
        let mut r = RecoveryReport::default();
        assert!(!r.completed());
        r.p4_started_at = Some(SimTime::from_nanos(1_000));
        r.flush_done_at = Some(SimTime::from_nanos(4_000));
        r.phases.triggered_at = Some(SimTime::ZERO);
        r.phases.p4_done = Some(SimTime::from_nanos(9_000));
        assert!(r.completed());
        assert_eq!(r.writeback_time(), Some(SimDuration::from_nanos(3_000)));
        assert_eq!(r.p4_time(), Some(SimDuration::from_nanos(8_000)));
    }
}
