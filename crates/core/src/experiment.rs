//! Experiment harness: builds a fault-contained machine, drives the
//! cache-fill workload of Section 5.2, injects a fault, runs the recovery
//! algorithm to completion and validates the result against the oracle.
//!
//! This is the engine behind the Table 5.3 validation suite and the
//! scalability figures (5.5 and 5.6); the Hive end-to-end experiments of
//! Table 5.4 / Figure 5.7 build on it from the `flash-hive` crate.

use crate::config::{RecoveryConfig, RecoveryReport};
use crate::ext::RecoveryExt;
use flash_machine::{
    FaultSpec, Machine, MachineParams, RandomFill, ShardPlan, ValidationReport, Workload,
};
use flash_net::{NodeId, RouterId};
use flash_sim::{DetRng, RunOutcome, SimDuration, SimTime};

/// A fault-contained machine: the substrate plus the recovery extension.
pub type FcMachine = Machine<RecoveryExt>;

/// Builds a machine with the recovery algorithm installed.
pub fn build_machine(
    params: MachineParams,
    recovery: RecoveryConfig,
    make_workload: impl FnMut(NodeId) -> Box<dyn Workload>,
    seed: u64,
) -> FcMachine {
    let ext = RecoveryExt::new(params.n_nodes, recovery);
    Machine::new(params, make_workload, ext, seed)
}

/// Configuration of one fault-injection experiment.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Machine configuration.
    pub params: MachineParams,
    /// Recovery-algorithm configuration.
    pub recovery: RecoveryConfig,
    /// Operations each processor completes before the fault is injected
    /// (the cache-fill prelude).
    pub fill_ops: u64,
    /// Total operations per processor (the remainder runs across and after
    /// the fault, providing the detection traffic and the post-recovery
    /// check accesses).
    pub total_ops: u64,
    /// Store fraction of the random accesses.
    pub write_fraction: f64,
    /// Random seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// A small default experiment on the Table 5.1 machine.
    pub fn new(params: MachineParams, seed: u64) -> Self {
        ExperimentConfig {
            params,
            recovery: RecoveryConfig::default(),
            fill_ops: 2_000,
            total_ops: 4_000,
            write_fraction: 0.5,
            seed,
        }
    }
}

/// The outcome of one fault-injection experiment.
#[derive(Clone, Debug)]
pub struct ExperimentOutcome {
    /// Oracle validation (over-marking / corruption checks).
    pub validation: ValidationReport,
    /// Recovery-algorithm summary (phase times, restarts, marked lines).
    pub recovery: RecoveryReport,
    /// Bus errors observed by the workloads (accesses to incoherent lines
    /// or failed homes after recovery).
    pub bus_errors: u64,
    /// Final simulated time.
    pub end_time: SimTime,
    /// Whether the experiment ran to quiescence within its budget.
    pub finished: bool,
    /// Trace records evicted from the bounded recorder rings during the run
    /// (0 means the captured trace is complete).
    pub trace_dropped: u64,
    /// FNV-1a hash of the merged structured trace at the end of the run
    /// ([`flash_obs::Recorder::merged_hash`]): the fork-determinism witness —
    /// a run forked from a warm checkpoint must hash identically to a
    /// from-scratch run with the same seeds.
    pub trace_hash: u64,
}

impl ExperimentOutcome {
    /// The overall pass criterion of the validation experiments: recovery
    /// completed and the oracle found neither over-marking nor corruption.
    pub fn passed(&self) -> bool {
        self.finished && self.recovery.completed() && self.validation.passed()
    }
}

/// Runs a complete fault-injection experiment (Section 5.2 methodology):
/// random cache fill → inject `fault` → distributed recovery → drain →
/// oracle validation.
pub fn run_fault_experiment(cfg: &ExperimentConfig, fault: FaultSpec) -> ExperimentOutcome {
    let m = prepare_fault_experiment(cfg);
    finish_fault_experiment(m, fault)
}

/// [`run_fault_experiment`] on the sharded executor: the same experiment
/// driven through [`flash_machine::Machine::run_until_sharded`].
///
/// The result is a function of `(cfg, fault, plan.regions)`;
/// `plan.workers` never changes it — which is exactly what the
/// cross-worker determinism campaigns assert via the outcome's
/// `trace_hash`.
pub fn run_fault_experiment_sharded(
    cfg: &ExperimentConfig,
    fault: FaultSpec,
    plan: ShardPlan,
) -> ExperimentOutcome {
    let m = prepare_fault_experiment_sharded(cfg, plan);
    finish_fault_experiment_sharded(m, fault, plan)
}

/// Advances the machine to `horizon` on the serial engine or, given a
/// plan, on the sharded executor.
fn drive(m: &mut FcMachine, horizon: SimTime, plan: Option<ShardPlan>) -> RunOutcome {
    match plan {
        Some(p) => m.run_until_sharded(horizon, p),
        None => m.run_until(horizon),
    }
}

/// Builds the machine and runs the cache-fill prelude (Phase A): every
/// processor completes `cfg.fill_ops` operations with no fault armed.
///
/// The returned machine is warm and checkpointable: sweep harnesses call
/// [`flash_machine::Machine::checkpoint`] on it once and
/// [`flash_machine::Checkpoint::fork`] one fork per fault, amortizing the
/// fill across every run that shares `(params, seed)`. Composing this with
/// [`finish_fault_experiment`] is exactly [`run_fault_experiment`].
pub fn prepare_fault_experiment(cfg: &ExperimentConfig) -> FcMachine {
    prepare_inner(cfg, None)
}

/// [`prepare_fault_experiment`] on the sharded executor (the fill phase
/// is where sharding pays: dense, embarrassingly regional traffic).
pub fn prepare_fault_experiment_sharded(cfg: &ExperimentConfig, plan: ShardPlan) -> FcMachine {
    prepare_inner(cfg, Some(plan))
}

fn prepare_inner(cfg: &ExperimentConfig, plan: Option<ShardPlan>) -> FcMachine {
    let layout = cfg.params.layout();
    let protected = cfg.params.protected_lines;
    let (total_ops, write_fraction) = (cfg.total_ops, cfg.write_fraction);
    let mut m = build_machine(
        cfg.params,
        cfg.recovery,
        move |_| {
            Box::new(RandomFill::valid_system_range(
                total_ops,
                write_fraction,
                layout,
                protected,
            ))
        },
        cfg.seed,
    );
    m.set_event_budget(2_000_000_000);
    m.start();

    // Phase A: fill caches until every processor completed `fill_ops`.
    let slice = SimDuration::from_micros(20);
    let mut guard = 0;
    loop {
        let horizon = m.now() + slice;
        let outcome = drive(&mut m, horizon, plan);
        let filled = m
            .st()
            .nodes
            .iter()
            .all(|n| n.workload.progress() >= cfg.fill_ops);
        if filled {
            break;
        }
        guard += 1;
        if guard > 1_000_000 || outcome == RunOutcome::Drained {
            break;
        }
    }
    m
}

/// Injects `fault` into a warm machine (fresh from
/// [`prepare_fault_experiment`] or forked from its checkpoint), runs to
/// quiescence and validates against the oracle (Phases B and C).
pub fn finish_fault_experiment(m: FcMachine, fault: FaultSpec) -> ExperimentOutcome {
    finish_inner(m, fault, None)
}

/// [`finish_fault_experiment`] on the sharded executor: identical phases,
/// driven through [`flash_machine::Machine::run_until_sharded`].
pub fn finish_fault_experiment_sharded(
    m: FcMachine,
    fault: FaultSpec,
    plan: ShardPlan,
) -> ExperimentOutcome {
    finish_inner(m, fault, Some(plan))
}

fn finish_inner(mut m: FcMachine, fault: FaultSpec, plan: Option<ShardPlan>) -> ExperimentOutcome {
    // Phase B: inject the fault while the workload is running.
    let inject_at = m.now() + SimDuration::from_nanos(1);
    m.schedule_fault(inject_at, fault);

    // Phase C: run to quiescence (workload completion + recovery + drain).
    let budget = m.now() + SimDuration::from_secs(20);
    let outcome = drive(&mut m, budget, plan);
    let finished = outcome == RunOutcome::Drained;

    let bus_errors = m.st().counters.get("bus_errors");
    let (busy_ns, services) = m.st().occupancy_totals();
    let st = m.st_mut();
    st.obs.metrics.add("magic_busy_ns_total", busy_ns);
    st.obs.metrics.add("magic_services_total", services);
    ExperimentOutcome {
        validation: m.st().validate(),
        recovery: m.ext().report.clone(),
        bus_errors,
        end_time: m.now(),
        finished,
        trace_dropped: m.st().obs.dropped_total(),
        trace_hash: m.st().obs.merged_hash(),
    }
}

/// Draws a random single-fault specification of the given experiment type
/// (Table 5.2), avoiding node 0 as the direct victim so the machine always
/// keeps a survivor.
pub fn random_fault(kind: FaultKind, n_nodes: usize, rng: &mut DetRng) -> FaultSpec {
    let victim = {
        let v = 1 + rng.below(n_nodes as u64 - 1) as u16;
        move || NodeId(v)
    };
    match kind {
        FaultKind::Node => FaultSpec::Node(victim()),
        FaultKind::Router => FaultSpec::Router(RouterId(victim().0)),
        FaultKind::Link => {
            // Pick a random mesh-adjacent pair by drawing a victim and one
            // of its design neighbors; resolved by the caller's fabric, so
            // here we use the roughly-square mesh shape.
            let w = mesh_width(n_nodes);
            loop {
                let a = rng.below(n_nodes as u64) as u16;
                let (x, y) = (a as usize % w, a as usize / w);
                let mut nbrs = Vec::new();
                if x + 1 < w {
                    nbrs.push(a + 1);
                }
                if (y + 1) * w < n_nodes {
                    nbrs.push(a + w as u16);
                }
                if let Some(&b) = rng.choose(&nbrs) {
                    return FaultSpec::Link(RouterId(a), RouterId(b));
                }
            }
        }
        FaultKind::InfiniteLoop => FaultSpec::InfiniteLoop(victim()),
        FaultKind::FalseAlarm => FaultSpec::FalseAlarm(NodeId(rng.below(n_nodes as u64) as u16)),
    }
}

/// The width of the roughly-square mesh used for `n` nodes (matches
/// `Mesh2D::roughly_square`).
pub fn mesh_width(n: usize) -> usize {
    let mut best = (n, 1);
    let mut w = 1;
    while w * w <= n {
        if n.is_multiple_of(w) {
            best = (n / w, w);
        }
        w += 1;
    }
    best.0
}

/// The experiment fault types of Table 5.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// MAGIC fails; router stays up.
    Node,
    /// The router fails.
    Router,
    /// A link fails.
    Link,
    /// A MAGIC handler spins forever.
    InfiniteLoop,
    /// Recovery without a fault.
    FalseAlarm,
}

impl FaultKind {
    /// The five experiment fault types, in Table 5.2 order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Node,
        FaultKind::Router,
        FaultKind::Link,
        FaultKind::InfiniteLoop,
        FaultKind::FalseAlarm,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_width_matches_roughly_square() {
        assert_eq!(mesh_width(8), 4);
        assert_eq!(mesh_width(16), 4);
        assert_eq!(mesh_width(128), 16);
        assert_eq!(mesh_width(2), 2);
    }

    #[test]
    fn heartbeat_detects_fault_after_workload_drain() {
        // A fail-stop fault firing after all traffic has drained is invisible
        // to timeout-based detection; the peers' heartbeat audit must catch
        // it, run recovery, and leave the oracle checks clean (no silently
        // lost dirty lines).
        let cfg = ExperimentConfig::new(flash_machine::MachineParams::tiny(), 7);
        let mut m = prepare_fault_experiment(&cfg);
        let out = m.run_until(m.now() + SimDuration::from_secs(20));
        assert_eq!(out, RunOutcome::Drained, "fault-free run should drain");
        assert!(m.ext().report.phases.triggered_at.is_none());

        m.schedule_fault(
            m.now() + SimDuration::from_nanos(1),
            FaultSpec::Node(NodeId(2)),
        );
        let out = m.run_until(m.now() + SimDuration::from_secs(20));
        assert_eq!(out, RunOutcome::Drained, "post-fault run should drain");
        assert!(
            m.st().counters.get("heartbeat_triggers") >= 1,
            "detection must have come from the heartbeat audit"
        );
        assert!(m.ext().report.completed(), "{:?}", m.ext().report);
        let v = m.st().validate();
        assert!(v.passed(), "{v:?}");
    }

    #[test]
    fn pool_failure_recovery_converges_without_watchdog_restarts() {
        // Three simultaneous dead nodes leave node 4 (CWN = {0, 5} on the
        // 4x2 mesh) stabilizing its view one dissemination round after its
        // partners. Without the final-view echo, the partners terminate
        // their rounds and node 4 waits forever for a round nobody sends —
        // the watchdog then restarts the episode into the same deadlock,
        // livelocking recovery until the run budget expires.
        let mut params = flash_machine::MachineParams::tiny();
        params.n_nodes = 8;
        let cfg = ExperimentConfig::new(params, 1);
        let m = prepare_fault_experiment(&cfg);
        let out = finish_fault_experiment(
            m,
            FaultSpec::PoolFailure {
                pool: vec![NodeId(1), NodeId(2), NodeId(3)],
            },
        );
        assert!(out.finished, "recovery must converge: {:?}", out.recovery);
        assert!(out.recovery.completed(), "{:?}", out.recovery);
        assert_eq!(out.recovery.restarts, 0, "{:?}", out.recovery);
        assert!(out.validation.passed(), "{}", out.validation);
    }

    #[test]
    fn sharded_experiment_is_worker_count_invariant() {
        // The full experiment pipeline (fill, inject, recover, validate)
        // through the sharded executor must give a bit-identical trace for
        // any worker count, and match the recovery outcome contract.
        let cfg = ExperimentConfig::new(flash_machine::MachineParams::tiny(), 11);
        let fault = FaultSpec::Node(NodeId(2));
        let runs: Vec<ExperimentOutcome> = [1usize, 2, 4]
            .iter()
            .map(|&w| run_fault_experiment_sharded(&cfg, fault.clone(), ShardPlan::new(4, w)))
            .collect();
        for out in &runs {
            assert!(out.passed(), "{:?} / {}", out.recovery, out.validation);
        }
        for out in &runs[1..] {
            assert_eq!(out.trace_hash, runs[0].trace_hash);
            assert_eq!(out.end_time, runs[0].end_time);
            assert_eq!(out.bus_errors, runs[0].bus_errors);
        }
    }

    #[test]
    fn random_fault_avoids_node_zero_victims() {
        let mut rng = DetRng::new(1);
        for _ in 0..50 {
            match random_fault(FaultKind::Node, 8, &mut rng) {
                FaultSpec::Node(n) => assert_ne!(n, NodeId(0)),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn random_link_faults_are_mesh_adjacent() {
        let mut rng = DetRng::new(2);
        for _ in 0..50 {
            match random_fault(FaultKind::Link, 8, &mut rng) {
                FaultSpec::Link(a, b) => {
                    let w = mesh_width(8) as u16;
                    let diff = b.0.abs_diff(a.0);
                    assert!(diff == 1 || diff == w, "{a:?} {b:?}");
                }
                other => panic!("{other:?}"),
            }
        }
    }
}
