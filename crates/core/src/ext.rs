//! The distributed hardware recovery algorithm (paper, Section 4),
//! implemented as a [`flash_machine::Extension`].
//!
//! Each live node runs an instance of a per-node state machine; nodes
//! communicate only through source-routed messages on the dedicated
//! recovery lanes and local probes of adjacent routers. The phases:
//!
//! 1. **Recovery initiation** — the processor is dropped into the recovery
//!    code, pending operations are NAK'd (uncached reads saved), the node
//!    probes its vicinity and determines its set of closest working
//!    neighbors (`cwn`), pinging them into recovery; the ping wave spreads
//!    the trigger to every good node.
//! 2. **Information dissemination** — synchronized rounds of `LState`/
//!    `NState` exchange with the cwn; termination after `2h` rounds, with
//!    `h` the BFT height at the agreed root, propagated as a hint.
//! 3. **Interconnect recovery** — isolate failed regions, drain stalled
//!    traffic with a two-phase agreement (bound τ), recompute deadlock-free
//!    routing tables (up*/down*) and reprogram the routers, then barrier.
//! 4. **Coherence-protocol recovery** — flush caches (dirty lines home),
//!    barrier, scan directories marking lost lines incoherent, reset
//!    state, barrier, resume (raising the OS-recovery interrupt).
//!
//! Additional faults detected mid-recovery (truncated packets, firmware
//! assertions, phase watchdogs) restart the algorithm under a higher
//! *incarnation* number that spreads with the ping wave; stale-incarnation
//! messages are discarded.

use crate::config::{PhaseEntries, RecoveryConfig, RecoveryReport};
use crate::msg::{BarrierId, RecMsg};
use crate::view::{Tree, View};
use flash_coherence::NodeSet;
use flash_machine::{Ev, Extension, FaultSpec, MachineState};
use flash_magic::{MagicMode, Trigger};
use flash_net::{Lane, LinkProbe, NodeId, RouterId, UGraph, MAX_SOURCE_HOPS};
use flash_sim::{Scheduler, SimTime};
use std::collections::{HashMap, HashSet};

/// Timed events private to the recovery algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecEv {
    /// A ping's reply deadline expired.
    PingDeadline {
        /// The waiting node.
        node: u16,
        /// The pinged node.
        target: u16,
        /// Incarnation the ping belongs to.
        inc: u32,
    },
    /// A charged computation step finished.
    StepDone {
        /// The computing node.
        node: u16,
        /// Incarnation.
        inc: u32,
        /// Which step.
        step: Step,
    },
    /// Drain-quiet polling.
    DrainPoll {
        /// Polling node.
        node: u16,
        /// Incarnation.
        inc: u32,
        /// Drain attempt number (re-votes after a failed agreement).
        attempt: u32,
    },
    /// Poll until the node's outbound writebacks have entered the fabric,
    /// then join the flush barrier.
    FlushJoinPoll {
        /// Polling node.
        node: u16,
        /// Incarnation.
        inc: u32,
    },
    /// The barrier root polls the interconnect for complete writeback
    /// delivery before releasing the flush barrier.
    RootFlushPoll {
        /// The root node.
        node: u16,
        /// Incarnation.
        inc: u32,
    },
    /// Phase-progress watchdog.
    Watchdog {
        /// Watched node.
        node: u16,
        /// Incarnation.
        inc: u32,
        /// Progress stamp at scheduling time.
        stamp: u64,
    },
}

/// A charged computation step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Processor dropped into the recovery code.
    DropIn,
    /// One dissemination round's merges (and possibly the BFT computation).
    Round {
        /// The round being finalized.
        round: u32,
    },
    /// Local router isolation reprogramming.
    Isolate,
    /// Routing-table recomputation.
    RouteCompute,
    /// The uncached cache-flush walk.
    FlushWalk,
    /// The directory scan.
    Scan,
}

/// Per-node recovery phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Idle,
    DropIn,
    Explore,
    Dissem,
    Isolate,
    Drain1Wait,
    InBarrier(BarrierId),
    RouteCompute,
    FlushWalk,
    FlushJoin,
    Scan,
    Shut,
}

#[derive(Clone, Debug, Default)]
struct BarState {
    ups: HashSet<u16>,
    self_joined: bool,
    ok: bool,
    released: bool,
}

#[derive(Clone, Debug)]
struct PingState {
    route: Vec<RouterId>,
    retries: u32,
}

#[derive(Clone, Debug)]
struct NodeRec {
    inc: u32,
    phase: Phase,
    view: View,
    // --- exploration ---
    visited: HashSet<u16>,
    pending_pings: HashMap<u16, PingState>,
    routes: HashMap<u16, Vec<RouterId>>,
    cwn: Vec<u16>,
    // --- dissemination ---
    round: u32,
    inbox: HashMap<(u16, u32), (View, Option<u32>)>,
    bound: Option<u32>,
    computing_round: bool,
    // --- barriers / P3 / P4 ---
    tree: Option<Tree>,
    bars: HashMap<BarrierId, BarState>,
    stashed_ups: Vec<(u16, BarrierId, bool)>,
    vote1_at: Option<SimTime>,
    drain_attempt: u32,
    progress: u64,
}

impl NodeRec {
    fn new() -> Self {
        NodeRec {
            inc: 0,
            phase: Phase::Idle,
            view: View::new(),
            visited: HashSet::new(),
            pending_pings: HashMap::new(),
            routes: HashMap::new(),
            cwn: Vec::new(),
            round: 0,
            inbox: HashMap::new(),
            bound: None,
            computing_round: false,
            tree: None,
            bars: HashMap::new(),
            stashed_ups: Vec::new(),
            vote1_at: None,
            drain_attempt: 0,
            progress: 0,
        }
    }

    fn reset_for(&mut self, inc: u32) {
        let progress = self.progress + 1;
        *self = NodeRec::new();
        self.inc = inc;
        self.progress = progress;
    }
}

type Sched<'a, 'b> = &'a mut Scheduler<'b, Ev<RecEv>>;
type St = MachineState<RecMsg>;

/// The recovery algorithm extension: plugs into
/// [`flash_machine::Machine`] and reacts to the hardware triggers of
/// Table 4.1.
#[derive(Debug)]
pub struct RecoveryExt {
    /// Algorithm parameters.
    pub cfg: RecoveryConfig,
    nodes: Vec<NodeRec>,
    design: Option<UGraph>,
    /// Hive failure units: when set, a node whose unit lost any member
    /// shuts itself down after recovery (Section 3.3).
    units: Option<Vec<NodeSet>>,
    /// Execution summary.
    pub report: RecoveryReport,
    entries: PhaseEntries,
    max_inc: u32,
    active: bool,
    started: HashSet<u16>,
    done_p1: HashSet<u16>,
    done_p2: HashSet<u16>,
    done_p3: HashSet<u16>,
    done_p4: HashSet<u16>,
}

impl RecoveryExt {
    /// Creates the extension for a machine with `n_nodes` nodes.
    pub fn new(n_nodes: usize, cfg: RecoveryConfig) -> Self {
        RecoveryExt {
            cfg,
            nodes: (0..n_nodes).map(|_| NodeRec::new()).collect(),
            design: None,
            units: None,
            report: RecoveryReport::default(),
            entries: PhaseEntries::default(),
            max_inc: 0,
            active: false,
            started: HashSet::new(),
            done_p1: HashSet::new(),
            done_p2: HashSet::new(),
            done_p3: HashSet::new(),
            done_p4: HashSet::new(),
        }
    }

    /// Configures Hive failure units (each node must appear in exactly one
    /// set).
    pub fn set_failure_units(&mut self, units: Vec<NodeSet>) {
        self.units = Some(units);
    }

    /// Clears the accumulated report (between experiments on a reused
    /// machine).
    pub fn reset_report(&mut self) {
        self.report = RecoveryReport::default();
    }

    /// Whether any node is currently executing the recovery algorithm.
    pub fn recovery_active(&self) -> bool {
        self.active
    }

    /// The current incarnation number (0 before the first recovery).
    pub fn incarnation(&self) -> u32 {
        self.max_inc
    }

    /// Machine-wide first-entry times of the recovery phases for the
    /// current incarnation (reset when a restart begins a new one).
    /// External drivers — fault campaigns in particular — poll this
    /// between run slices to arm faults *inside* a chosen phase.
    pub fn phase_entries(&self) -> PhaseEntries {
        self.entries
    }

    fn design(&mut self, st: &St) -> UGraph {
        self.design
            .get_or_insert_with(|| st.fabric.design_graph().clone())
            .clone()
    }

    // ------------------------------------------------------------------
    // Message plumbing
    // ------------------------------------------------------------------

    fn send(
        &mut self,
        st: &mut St,
        from: u16,
        to: u16,
        msg: RecMsg,
        lane: Lane,
        sched: Sched<'_, '_>,
    ) {
        let route = match self.nodes[from as usize].routes.get(&to) {
            Some(r) => Some(r.clone()),
            None => {
                let design = self.design(st);
                self.nodes[from as usize]
                    .view
                    .route_between(&design, NodeId(from), NodeId(to))
            }
        };
        let Some(route) = route else {
            st.counters.incr("recovery_msg_unroutable");
            return;
        };
        st.send_recovery(NodeId(from), NodeId(to), route, lane, msg, sched);
    }

    fn bump_progress(&mut self, st: &St, node: u16, sched: Sched<'_, '_>) {
        let rec = &mut self.nodes[node as usize];
        rec.progress += 1;
        let stamp = rec.progress;
        let inc = rec.inc;
        let _ = st;
        sched.after(
            self.cfg.watchdog,
            Ev::Ext(RecEv::Watchdog { node, inc, stamp }),
        );
    }

    // ------------------------------------------------------------------
    // Phase 1: recovery initiation
    // ------------------------------------------------------------------

    /// Starts (or restarts) recovery on `node` under incarnation `inc`.
    fn start(&mut self, st: &mut St, node: u16, inc: u32, sched: Sched<'_, '_>) {
        if !st.nodes[node as usize].is_alive() {
            return;
        }
        if inc > self.max_inc {
            if self.max_inc >= 1 {
                self.report.restarts += 1;
            }
            self.max_inc = inc;
            // A restart invalidates earlier completion bookkeeping.
            self.started.clear();
            self.done_p1.clear();
            self.done_p2.clear();
            self.done_p3.clear();
            self.done_p4.clear();
            self.entries = PhaseEntries::default();
        }
        if self.entries.p1.is_none() {
            self.entries.p1 = Some(sched.now());
        }
        if !self.active {
            self.active = true;
            // A fresh trigger after an earlier *completed* recovery opens a
            // new episode: `phases` always describes the most recent one.
            // (Restarts within an episode keep `active` and only clear the
            // per-node completion sets above.)
            if self.report.phases.p4_done.is_some() {
                self.report.phases = crate::PhaseTimes::default();
            }
            self.report.phases.triggered_at = Some(sched.now());
        }
        st.counters.incr("recovery_starts");
        st.trace.record(
            sched.now(),
            flash_machine::TraceEvent::Note(
                "recovery_start(node,inc)",
                ((node as u64) << 32) | inc as u64,
            ),
        );
        self.started.insert(node);
        if self.report.wave_complete_at.is_none() && self.done_for_all(st, &self.started.clone()) {
            self.report.wave_complete_at = Some(sched.now());
        }
        st.enter_recovery_mode(NodeId(node));
        st.drop_processor_into_recovery(NodeId(node));
        self.nodes[node as usize].reset_for(inc);
        self.nodes[node as usize].view.set_node_up(NodeId(node));
        self.bump_progress(st, node, sched);

        // Speculative pings to immediate neighbors before exploration — the
        // ~5x faster trigger wave of Section 4.2.
        if self.cfg.speculative_pings {
            let own_router = RouterId(node);
            let nbrs: Vec<RouterId> = st
                .fabric
                .neighbors(own_router)
                .iter()
                .map(|n| n.router)
                .collect();
            for nbr in nbrs {
                let ping = RecMsg::Ping {
                    inc,
                    reply_route: vec![own_router],
                };
                st.send_recovery(
                    NodeId(node),
                    NodeId(nbr.0),
                    vec![nbr],
                    Lane::Recovery0,
                    ping,
                    sched,
                );
            }
        }

        self.nodes[node as usize].phase = Phase::DropIn;
        sched.after(
            self.cfg.instr(self.cfg.drop_in_instr),
            Ev::Ext(RecEv::StepDone {
                node,
                inc,
                step: Step::DropIn,
            }),
        );
    }

    /// Expands cwn exploration through router `r` (reached via `route`).
    fn expand(
        &mut self,
        st: &mut St,
        node: u16,
        r: RouterId,
        route: Vec<RouterId>,
        sched: Sched<'_, '_>,
    ) {
        let nbrs: Vec<(usize, RouterId)> = st
            .fabric
            .neighbors(r)
            .iter()
            .enumerate()
            .map(|(i, n)| (i, n.router))
            .collect();
        let inc = self.nodes[node as usize].inc;
        for (port, s) in nbrs {
            if self.nodes[node as usize].visited.contains(&s.0) {
                continue;
            }
            match st.fabric.probe(r, port) {
                LinkProbe::NoSuchLink => {}
                LinkProbe::LinkDead => {
                    // The far side may still be reachable another way; do
                    // not mark it visited.
                    self.nodes[node as usize].view.set_link_down(r, s);
                }
                LinkProbe::RouterDead => {
                    self.nodes[node as usize].visited.insert(s.0);
                    self.nodes[node as usize].view.set_link_down(r, s);
                    self.nodes[node as usize].view.set_node_down(NodeId(s.0));
                }
                LinkProbe::Alive => {
                    self.nodes[node as usize].visited.insert(s.0);
                    self.nodes[node as usize].view.set_link_up(r, s);
                    let mut ping_route = route.clone();
                    ping_route.push(s);
                    let mut reply_route: Vec<RouterId> = route.iter().rev().copied().collect();
                    reply_route.push(RouterId(node));
                    let ping = RecMsg::Ping { inc, reply_route };
                    st.send_recovery(
                        NodeId(node),
                        NodeId(s.0),
                        ping_route.clone(),
                        Lane::Recovery0,
                        ping,
                        sched,
                    );
                    self.nodes[node as usize].pending_pings.insert(
                        s.0,
                        PingState {
                            route: ping_route,
                            retries: 0,
                        },
                    );
                    sched.after(
                        self.cfg.ping_timeout,
                        Ev::Ext(RecEv::PingDeadline {
                            node,
                            target: s.0,
                            inc,
                        }),
                    );
                }
            }
        }
    }

    fn check_explore_done(&mut self, st: &mut St, node: u16, sched: Sched<'_, '_>) {
        if self.nodes[node as usize].phase != Phase::Explore
            || !self.nodes[node as usize].pending_pings.is_empty()
        {
            return;
        }
        // Exploration complete: enter dissemination round 1.
        self.nodes[node as usize].phase = Phase::Dissem;
        self.nodes[node as usize].round = 1;
        if self.entries.p2.is_none() {
            self.entries.p2 = Some(sched.now());
        }
        self.done_p1.insert(node);
        self.mark_phase_progress(st, sched.now());
        self.bump_progress(st, node, sched);
        self.send_round_exchanges(st, node, sched);
        self.try_advance_round(st, node, sched);
    }

    // ------------------------------------------------------------------
    // Phase 2: information dissemination
    // ------------------------------------------------------------------

    fn send_round_exchanges(&mut self, st: &mut St, node: u16, sched: Sched<'_, '_>) {
        let rec = &self.nodes[node as usize];
        let (inc, round, view, hint) = (rec.inc, rec.round, rec.view.clone(), rec.bound);
        let cwn = rec.cwn.clone();
        let own_router = RouterId(node);
        for m in cwn {
            let fwd = self.nodes[node as usize]
                .routes
                .get(&m)
                .cloned()
                .unwrap_or_default();
            // Reply route: reverse the forward route, replacing the final
            // hop with our own router.
            let mut reply_route: Vec<RouterId> = fwd.iter().rev().skip(1).copied().collect();
            reply_route.push(own_router);
            let msg = RecMsg::Exchange {
                inc,
                round,
                view: view.clone(),
                hint,
                reply_route,
            };
            self.send(st, node, m, msg, Lane::Recovery1, sched);
        }
    }

    fn try_advance_round(&mut self, st: &mut St, node: u16, sched: Sched<'_, '_>) {
        let rec = &self.nodes[node as usize];
        if rec.phase != Phase::Dissem || rec.computing_round {
            return;
        }
        let round = rec.round;
        let cwn = rec.cwn.clone();
        if !cwn.iter().all(|m| rec.inbox.contains_key(&(*m, round))) {
            return;
        }
        // All round-r vectors in hand: merge, then charge the round cost.
        let inc = rec.inc;
        let mut changed = false;
        let mut hint_seen = None;
        for m in &cwn {
            let removed = self.nodes[node as usize].inbox.remove(&(*m, round));
            let Some((v, hint)) = removed else {
                st.invariant_failure("dissemination inbox entry vanished between check and merge");
            };
            if self.nodes[node as usize].view.merge(&v) {
                changed = true;
            }
            if hint_seen.is_none() {
                hint_seen = hint;
            }
        }
        let n = st.num_nodes() as u64;
        let mut cost =
            self.cfg.merge_base_instr + cwn.len() as u64 * self.cfg.merge_per_node_instr * n;
        // Stabilized and no bound yet: compute it (unless a hint arrived and
        // hints are enabled — the deferred-BFT optimization).
        let rec = &mut self.nodes[node as usize];
        if rec.bound.is_none() {
            if let Some(h) = hint_seen.filter(|_| self.cfg.bft_hints) {
                rec.bound = Some(h);
            } else if !changed && round > 1 {
                // View stable for a full round => complete: compute the
                // round bound (2h, or the tighter center-based estimate).
                let design = self.design(st);
                let view = &self.nodes[node as usize].view;
                let b = if self.cfg.center_diameter_bound {
                    // Two sweeps + reverse distances + up to 4 candidate
                    // eccentricities + the 2h fallback: ~8 BFS traversals.
                    cost += 8 * self.cfg.bft_per_node_instr * n;
                    view.round_bound_center(&design)
                } else {
                    cost += self.cfg.bft_per_node_instr * n;
                    view.round_bound(&design)
                };
                self.nodes[node as usize].bound = Some(b);
            }
        }
        self.nodes[node as usize].computing_round = true;
        sched.after(
            self.cfg.instr(cost),
            Ev::Ext(RecEv::StepDone {
                node,
                inc,
                step: Step::Round { round },
            }),
        );
    }

    fn finish_round(&mut self, st: &mut St, node: u16, round: u32, sched: Sched<'_, '_>) {
        let rec = &mut self.nodes[node as usize];
        if rec.phase != Phase::Dissem || rec.round != round {
            return;
        }
        rec.computing_round = false;
        rec.round += 1;
        self.bump_progress(st, node, sched);
        let rec = &self.nodes[node as usize];
        if let Some(b) = rec.bound {
            if rec.round > b.max(1) {
                self.enter_p3(st, node, sched);
                return;
            }
        }
        self.send_round_exchanges(st, node, sched);
        self.try_advance_round(st, node, sched);
    }

    // ------------------------------------------------------------------
    // Phase 3: interconnect recovery
    // ------------------------------------------------------------------

    fn enter_p3(&mut self, st: &mut St, node: u16, sched: Sched<'_, '_>) {
        st.trace.record(
            sched.now(),
            flash_machine::TraceEvent::Note("enter_p3(node)", node as u64),
        );
        self.done_p2.insert(node);
        self.mark_phase_progress(st, sched.now());
        if self.entries.p3.is_none() {
            self.entries.p3 = Some(sched.now());
        }
        let design = self.design(st);
        let rec = &self.nodes[node as usize];
        let inc = rec.inc;
        let view = rec.view.clone();

        // Shutdown heuristic against split-brain operation (§4.2): a node
        // that cannot account for a quorum of the machine (unreachable
        // nodes count as lost) halts rather than risk divergent operation.
        let total = st.num_nodes();
        let failed = total - view.live_nodes().len().min(total);
        if (failed as f64) > self.cfg.shutdown_fraction * total as f64 {
            self.report.machine_halted = true;
            self.nodes[node as usize].phase = Phase::Shut;
            st.apply_fault(&FaultSpec::Node(NodeId(node)), sched.now());
            return;
        }

        // Node map update: live nodes minus doomed failure units.
        let effective = self.effective_live(&view);
        st.nodes[node as usize].node_map.reprogram(&effective);

        // Barrier tree for the rest of the algorithm.
        let tree = view.bft_tree(&design);
        self.nodes[node as usize].tree = Some(tree);
        self.nodes[node as usize].bars = BarrierId::ALL
            .iter()
            .map(|&id| {
                (
                    id,
                    BarState {
                        ok: true,
                        ..BarState::default()
                    },
                )
            })
            .collect();
        // Process any barrier joins that raced ahead of us.
        let stashed = std::mem::take(&mut self.nodes[node as usize].stashed_ups);
        for (from, id, ok) in stashed {
            self.on_bar_up(st, node, from, id, ok, sched);
        }

        // Isolation: reprogram the local router (and adjacent dead
        // controllers' ejection ports).
        st.apply_isolation_for(NodeId(node), &view.failed_nodes());
        self.nodes[node as usize].phase = Phase::Isolate;
        sched.after(
            self.cfg.instr(self.cfg.isolate_instr),
            Ev::Ext(RecEv::StepDone {
                node,
                inc,
                step: Step::Isolate,
            }),
        );
    }

    /// Live nodes minus failure units that lost a member (those shut down
    /// at the end of recovery and must not be re-used by survivors).
    fn effective_live(&self, view: &View) -> NodeSet {
        let mut live = view.live_nodes();
        if let Some(units) = &self.units {
            let failed = view.failed_nodes();
            for unit in units {
                if unit.intersects(&failed) {
                    live.subtract(unit);
                }
            }
        }
        live
    }

    fn start_drain_wait(&mut self, st: &mut St, node: u16, sched: Sched<'_, '_>) {
        let rec = &mut self.nodes[node as usize];
        rec.phase = Phase::Drain1Wait;
        rec.drain_attempt += 1;
        rec.vote1_at = None;
        let (inc, attempt) = (rec.inc, rec.drain_attempt);
        self.bump_progress(st, node, sched);
        sched.immediately(Ev::Ext(RecEv::DrainPoll { node, inc, attempt }));
    }

    fn drain_poll(&mut self, st: &mut St, node: u16, attempt: u32, sched: Sched<'_, '_>) {
        let rec = &self.nodes[node as usize];
        if rec.phase != Phase::Drain1Wait || rec.drain_attempt != attempt {
            return;
        }
        let last = st.fabric.last_coherence_delivery(NodeId(node));
        let quiet = sched.now().since(last) >= self.cfg.drain_tau;
        if quiet {
            self.nodes[node as usize].vote1_at = Some(sched.now());
            self.join_barrier(st, node, BarrierId::Drain1, true, sched);
        } else {
            let inc = self.nodes[node as usize].inc;
            sched.after(
                self.cfg.drain_poll,
                Ev::Ext(RecEv::DrainPoll { node, inc, attempt }),
            );
        }
    }

    fn compute_and_install_routes(&mut self, st: &mut St, node: u16, sched: Sched<'_, '_>) {
        let design = self.design(st);
        let view = self.nodes[node as usize].view.clone();
        // Router graph from probed-alive links; a dead node's router still
        // routes traffic.
        let n = design.len();
        let mut g = UGraph::new(n);
        let mut alive = vec![false; n];
        for &(a, b) in &view.links_up {
            g.add_edge(a, b);
            alive[a as usize] = true;
            alive[b as usize] = true;
        }
        let Some(root) = view.root() else { return };
        alive[root.index()] = true;
        let tables = flash_net::up_down_tables(&g, &alive, RouterId(root.0));
        // Install our own router's row.
        st.install_router_row(RouterId(node), &tables);
        // The root additionally programs routers not owned by any live node
        // (routers of failed nodes that survived the fault).
        if view.root() == Some(NodeId(node)) {
            for r in 0..n as u16 {
                if alive[r as usize] && !view.live_nodes().contains(NodeId(r)) {
                    st.install_router_row(RouterId(r), &tables);
                }
            }
        }
        self.join_barrier(st, node, BarrierId::Routes, true, sched);
    }

    // ------------------------------------------------------------------
    // Phase 4: coherence-protocol recovery
    // ------------------------------------------------------------------

    fn start_flush(&mut self, st: &mut St, node: u16, sched: Sched<'_, '_>) {
        self.done_p3.insert(node);
        self.mark_phase_progress(st, sched.now());
        if self.report.p4_started_at.is_none() {
            self.report.p4_started_at = Some(sched.now());
        }
        if self.entries.p4.is_none() {
            self.entries.p4 = Some(sched.now());
        }
        st.nodes[node as usize].mode = MagicMode::Recovery;
        // With HAL-style end-to-end interconnect reliability the flush step
        // is eliminated (paper, Section 6.3); caches stay warm and the
        // directory is pruned during the scan instead.
        let walk_ns = if self.cfg.reliable_interconnect {
            0
        } else {
            let sent = st.flush_cache_for_recovery(NodeId(node), sched);
            self.report.flush_writebacks += sent as u64;
            st.params.l2_lines() as u64 * self.cfg.flush_per_line_ns
        };
        let inc = self.nodes[node as usize].inc;
        self.nodes[node as usize].phase = Phase::FlushWalk;
        self.bump_progress(st, node, sched);
        sched.after(
            flash_sim::SimDuration::from_nanos(walk_ns),
            Ev::Ext(RecEv::StepDone {
                node,
                inc,
                step: Step::FlushWalk,
            }),
        );
    }

    fn flush_join_poll(&mut self, st: &mut St, node: u16, sched: Sched<'_, '_>) {
        if self.nodes[node as usize].phase != Phase::FlushJoin {
            return;
        }
        let outbox_empty = st.nodes[node as usize].outbox[Lane::Request.index()].is_empty();
        if outbox_empty {
            self.join_barrier(st, node, BarrierId::Flush, true, sched);
        } else {
            let inc = self.nodes[node as usize].inc;
            sched.after(
                self.cfg.drain_poll,
                Ev::Ext(RecEv::FlushJoinPoll { node, inc }),
            );
        }
    }

    fn start_scan(&mut self, st: &mut St, node: u16, sched: Sched<'_, '_>) {
        if self.report.flush_done_at.is_none() {
            self.report.flush_done_at = Some(sched.now());
        }
        let marked = if self.cfg.reliable_interconnect {
            let failed = self.nodes[node as usize].view.failed_nodes();
            st.nodes[node as usize].dir.scan_and_prune(&failed)
        } else {
            st.nodes[node as usize].dir.scan_and_reset()
        };
        self.report.lines_marked_incoherent += marked.len() as u64;
        st.counters
            .add("lines_marked_incoherent", marked.len() as u64);
        let scan_ns = st.layout.lines_per_node() * st.params.magic.costs.dir_scan_per_line_ns;
        let inc = self.nodes[node as usize].inc;
        self.nodes[node as usize].phase = Phase::Scan;
        self.bump_progress(st, node, sched);
        sched.after(
            flash_sim::SimDuration::from_nanos(scan_ns),
            Ev::Ext(RecEv::StepDone {
                node,
                inc,
                step: Step::Scan,
            }),
        );
    }

    fn complete_recovery(&mut self, st: &mut St, node: u16, sched: Sched<'_, '_>) {
        st.trace.record(
            sched.now(),
            flash_machine::TraceEvent::Note("recovery_complete(node)", node as u64),
        );
        let view = self.nodes[node as usize].view.clone();
        let doomed = {
            let effective = self.effective_live(&view);
            !effective.contains(NodeId(node))
        };
        if doomed {
            // Clean shutdown of the whole failure unit (Section 3.3).
            self.report.nodes_shut_down += 1;
            self.nodes[node as usize].phase = Phase::Shut;
            st.apply_fault(&FaultSpec::Node(NodeId(node)), sched.now());
        } else {
            self.report.nodes_resumed += 1;
            self.nodes[node as usize].phase = Phase::Idle;
            st.resume_after_recovery(NodeId(node), sched);
        }
        self.done_p4.insert(node);
        self.mark_phase_progress(st, sched.now());
        if self.done_for_all(st, &self.done_p4) {
            self.active = false;
        }
    }

    // ------------------------------------------------------------------
    // Barriers
    // ------------------------------------------------------------------

    fn join_barrier(
        &mut self,
        st: &mut St,
        node: u16,
        id: BarrierId,
        ok: bool,
        sched: Sched<'_, '_>,
    ) {
        self.nodes[node as usize].phase = Phase::InBarrier(id);
        {
            let bar = self.nodes[node as usize]
                .bars
                .entry(id)
                .or_insert_with(|| BarState {
                    ok: true,
                    ..BarState::default()
                });
            if bar.self_joined {
                return;
            }
            bar.self_joined = true;
            bar.ok &= ok;
        }
        self.bump_progress(st, node, sched);
        self.maybe_send_up(st, node, id, sched);
    }

    fn on_bar_up(
        &mut self,
        st: &mut St,
        node: u16,
        from: u16,
        id: BarrierId,
        ok: bool,
        sched: Sched<'_, '_>,
    ) {
        if self.nodes[node as usize].tree.is_none() {
            self.nodes[node as usize].stashed_ups.push((from, id, ok));
            return;
        }
        {
            let bar = self.nodes[node as usize]
                .bars
                .entry(id)
                .or_insert_with(|| BarState {
                    ok: true,
                    ..BarState::default()
                });
            bar.ups.insert(from);
            bar.ok &= ok;
        }
        self.maybe_send_up(st, node, id, sched);
    }

    fn maybe_send_up(&mut self, st: &mut St, node: u16, id: BarrierId, sched: Sched<'_, '_>) {
        let Some(tree) = self.nodes[node as usize].tree.clone() else {
            return;
        };
        let children: Vec<u16> = tree.children[node as usize].iter().map(|c| c.0).collect();
        let (joined, have_all, ok, released) = {
            let bar = self.nodes[node as usize]
                .bars
                .entry(id)
                .or_insert_with(|| BarState {
                    ok: true,
                    ..BarState::default()
                });
            (
                bar.self_joined,
                children.iter().all(|c| bar.ups.contains(c)),
                bar.ok,
                bar.released,
            )
        };
        if !joined || !have_all || released {
            return;
        }
        let inc = self.nodes[node as usize].inc;
        if tree.is_root(NodeId(node)) {
            // The flush barrier's root additionally waits for the fabric's
            // coherence lanes to drain — standing in for CrayLink's in-order
            // delivery guarantee that writebacks precede the barrier
            // messages (see DESIGN.md).
            if id == BarrierId::Flush && st.fabric.in_flight_coherence() > 0 {
                sched.after(
                    self.cfg.drain_poll,
                    Ev::Ext(RecEv::RootFlushPoll { node, inc }),
                );
                return;
            }
            self.release_barrier(st, node, id, ok, sched);
        } else if let Some(parent) = tree.parent[node as usize] {
            let msg = RecMsg::BarUp { inc, id, ok };
            self.send(st, node, parent.0, msg, Lane::Recovery1, sched);
        }
    }

    fn release_barrier(
        &mut self,
        st: &mut St,
        node: u16,
        id: BarrierId,
        ok: bool,
        sched: Sched<'_, '_>,
    ) {
        {
            let bar = self.nodes[node as usize]
                .bars
                .entry(id)
                .or_insert_with(|| BarState {
                    ok: true,
                    ..BarState::default()
                });
            if bar.released {
                return;
            }
            bar.released = true;
        }
        let Some(tree) = self.nodes[node as usize].tree.clone() else {
            return;
        };
        let inc = self.nodes[node as usize].inc;
        for c in &tree.children[node as usize] {
            let msg = RecMsg::BarDown { inc, id, ok };
            self.send(st, node, c.0, msg, Lane::Recovery1, sched);
        }
        self.on_barrier_complete(st, node, id, ok, sched);
    }

    fn on_bar_down(
        &mut self,
        st: &mut St,
        node: u16,
        id: BarrierId,
        ok: bool,
        sched: Sched<'_, '_>,
    ) {
        self.release_barrier(st, node, id, ok, sched);
    }

    fn on_barrier_complete(
        &mut self,
        st: &mut St,
        node: u16,
        id: BarrierId,
        ok: bool,
        sched: Sched<'_, '_>,
    ) {
        self.bump_progress(st, node, sched);
        match id {
            BarrierId::Drain1 => {
                // Second vote: still quiet since the first vote?
                let last = st.fabric.last_coherence_delivery(NodeId(node));
                let quiet = self.nodes[node as usize]
                    .vote1_at
                    .map(|v| last <= v)
                    .unwrap_or(false);
                self.join_barrier(st, node, BarrierId::Drain2, quiet, sched);
            }
            BarrierId::Drain2 => {
                if ok {
                    let inc = self.nodes[node as usize].inc;
                    self.nodes[node as usize].phase = Phase::RouteCompute;
                    let n = st.num_nodes() as u64;
                    sched.after(
                        self.cfg.instr(self.cfg.route_per_node_instr * n),
                        Ev::Ext(RecEv::StepDone {
                            node,
                            inc,
                            step: Step::RouteCompute,
                        }),
                    );
                } else {
                    // Stalled traffic was still moving: restart the
                    // agreement (never observed to happen in the paper's
                    // experiments either, but supported).
                    st.counters.incr("drain_agreement_restarts");
                    let bars = &mut self.nodes[node as usize].bars;
                    bars.insert(
                        BarrierId::Drain1,
                        BarState {
                            ok: true,
                            ..BarState::default()
                        },
                    );
                    bars.insert(
                        BarrierId::Drain2,
                        BarState {
                            ok: true,
                            ..BarState::default()
                        },
                    );
                    self.start_drain_wait(st, node, sched);
                }
            }
            BarrierId::Routes => self.start_flush(st, node, sched),
            BarrierId::Flush => self.start_scan(st, node, sched),
            BarrierId::Scan => self.complete_recovery(st, node, sched),
        }
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    fn done_for_all(&self, st: &St, set: &HashSet<u16>) -> bool {
        st.nodes
            .iter()
            .filter(|n| n.is_alive())
            .all(|n| set.contains(&n.id.0))
            || st.nodes.iter().all(|n| !n.is_alive())
    }

    fn mark_phase_progress(&mut self, st: &St, now: SimTime) {
        if self.report.phases.p1_done.is_none() && self.done_for_all(st, &self.done_p1.clone()) {
            self.report.phases.p1_done = Some(now);
        }
        if self.report.phases.p2_done.is_none() && self.done_for_all(st, &self.done_p2.clone()) {
            self.report.phases.p2_done = Some(now);
        }
        if self.report.phases.p3_done.is_none() && self.done_for_all(st, &self.done_p3.clone()) {
            self.report.phases.p3_done = Some(now);
        }
        if self.report.phases.p4_done.is_none() && self.done_for_all(st, &self.done_p4.clone()) {
            self.report.phases.p4_done = Some(now);
        }
    }
}

impl Extension for RecoveryExt {
    type Msg = RecMsg;
    type Ev = RecEv;

    fn on_trigger(
        &mut self,
        st: &mut St,
        node: NodeId,
        trig: Trigger,
        sched: &mut Scheduler<'_, Ev<RecEv>>,
    ) {
        if !st.nodes[node.index()].is_alive() {
            return;
        }
        let rec = &self.nodes[node.index()];
        match rec.phase {
            Phase::Idle => {
                st.counters.incr("recovery_triggers");
                // Concurrent independent triggers (many nodes timing out on
                // the same dead home) join the active incarnation; a fresh
                // fault after a completed recovery starts a new one.
                let inc = if self.active {
                    self.max_inc.max(1)
                } else {
                    self.max_inc + 1
                };
                self.start(st, node.0, inc, sched);
            }
            Phase::Shut => {}
            _ => {
                // Already recovering: only evidence of a *new* fault
                // restarts the algorithm.
                if matches!(trig, Trigger::TruncatedPacket | Trigger::AssertionFailure) {
                    st.counters.incr("recovery_restarts_trigger");
                    let inc = self.max_inc.max(rec.inc) + 1;
                    self.start(st, node.0, inc, sched);
                }
            }
        }
    }

    fn on_event(&mut self, st: &mut St, ev: RecEv, sched: &mut Scheduler<'_, Ev<RecEv>>) {
        // Events belonging to a node that has since died are void — a dead
        // controller runs nothing.
        let owner = match &ev {
            RecEv::PingDeadline { node, .. }
            | RecEv::StepDone { node, .. }
            | RecEv::DrainPoll { node, .. }
            | RecEv::FlushJoinPoll { node, .. }
            | RecEv::RootFlushPoll { node, .. }
            | RecEv::Watchdog { node, .. } => *node,
        };
        if !st.nodes[owner as usize].is_alive() {
            return;
        }
        match ev {
            RecEv::StepDone { node, inc, step } => {
                if self.nodes[node as usize].inc != inc {
                    return;
                }
                match step {
                    Step::DropIn => {
                        if self.nodes[node as usize].phase != Phase::DropIn {
                            return;
                        }
                        self.nodes[node as usize].phase = Phase::Explore;
                        self.nodes[node as usize].visited.insert(node);
                        self.expand(st, node, RouterId(node), Vec::new(), sched);
                        self.check_explore_done(st, node, sched);
                    }
                    Step::Round { round } => self.finish_round(st, node, round, sched),
                    Step::Isolate => {
                        if self.nodes[node as usize].phase == Phase::Isolate {
                            self.start_drain_wait(st, node, sched);
                        }
                    }
                    Step::RouteCompute => {
                        if self.nodes[node as usize].phase == Phase::RouteCompute {
                            self.compute_and_install_routes(st, node, sched);
                        }
                    }
                    Step::FlushWalk => {
                        if self.nodes[node as usize].phase == Phase::FlushWalk {
                            self.nodes[node as usize].phase = Phase::FlushJoin;
                            self.flush_join_poll(st, node, sched);
                        }
                    }
                    Step::Scan => {
                        if self.nodes[node as usize].phase == Phase::Scan {
                            // This home's directory is reset: return to
                            // normal dispatch now, so requests from nodes
                            // released earlier by the final barrier are
                            // serviced rather than silently drained.
                            st.nodes[node as usize].mode = MagicMode::Normal;
                            self.join_barrier(st, node, BarrierId::Scan, true, sched);
                        }
                    }
                }
            }
            RecEv::PingDeadline { node, target, inc } => {
                if self.nodes[node as usize].inc != inc {
                    return;
                }
                let Some(ping) = self.nodes[node as usize]
                    .pending_pings
                    .get(&target)
                    .cloned()
                else {
                    return;
                };
                if ping.retries < self.cfg.ping_retries {
                    // Retry.
                    let route = ping.route.clone();
                    match self.nodes[node as usize].pending_pings.get_mut(&target) {
                        Some(p) => p.retries += 1,
                        None => st.invariant_failure(
                            "ping retry state vanished between check and update",
                        ),
                    }
                    let mut reply_route: Vec<RouterId> =
                        route.iter().rev().skip(1).copied().collect();
                    reply_route.push(RouterId(node));
                    let msg = RecMsg::Ping { inc, reply_route };
                    st.send_recovery(
                        NodeId(node),
                        NodeId(target),
                        route,
                        Lane::Recovery0,
                        msg,
                        sched,
                    );
                    sched.after(
                        self.cfg.ping_timeout,
                        Ev::Ext(RecEv::PingDeadline { node, target, inc }),
                    );
                } else {
                    // Declared failed: explore through its router.
                    let removed = self.nodes[node as usize].pending_pings.remove(&target);
                    let Some(ping) = removed else {
                        st.invariant_failure("ping state vanished before failure declaration");
                    };
                    self.nodes[node as usize].view.set_node_down(NodeId(target));
                    if ping.route.len() < MAX_SOURCE_HOPS {
                        self.expand(st, node, RouterId(target), ping.route, sched);
                    }
                    self.check_explore_done(st, node, sched);
                }
            }
            RecEv::DrainPoll { node, inc, attempt } => {
                if self.nodes[node as usize].inc == inc {
                    self.drain_poll(st, node, attempt, sched);
                }
            }
            RecEv::FlushJoinPoll { node, inc } => {
                if self.nodes[node as usize].inc == inc {
                    self.flush_join_poll(st, node, sched);
                }
            }
            RecEv::RootFlushPoll { node, inc } => {
                if self.nodes[node as usize].inc == inc {
                    self.maybe_send_up(st, node, BarrierId::Flush, sched);
                }
            }
            RecEv::Watchdog { node, inc, stamp } => {
                let rec = &self.nodes[node as usize];
                if rec.inc != inc || rec.progress != stamp {
                    return;
                }
                if matches!(rec.phase, Phase::Idle | Phase::Shut) {
                    return;
                }
                // No progress for a whole watchdog period: treat as an
                // additional failure and restart.
                st.counters.incr("recovery_watchdog_restarts");
                let new_inc = self.max_inc.max(inc) + 1;
                self.start(st, node, new_inc, sched);
            }
        }
    }

    fn on_recovery_msg(
        &mut self,
        st: &mut St,
        at: NodeId,
        from: NodeId,
        msg: RecMsg,
        sched: &mut Scheduler<'_, Ev<RecEv>>,
    ) {
        if !st.nodes[at.index()].is_alive() {
            return;
        }
        let my_inc = self.nodes[at.index()].inc;
        let msg_inc = msg.inc();
        // Adopt newer incarnations; drop stale ones (except pings, which get
        // a reply telling the sender our newer incarnation).
        let idle_join = self.nodes[at.index()].phase == Phase::Idle && msg_inc > 0 && self.active;
        if (msg_inc > my_inc || idle_join) && !matches!(self.nodes[at.index()].phase, Phase::Shut) {
            self.start(st, at.0, msg_inc.max(my_inc), sched);
        }
        let my_inc = self.nodes[at.index()].inc;
        match msg {
            RecMsg::Ping { inc, reply_route } => {
                let reply = RecMsg::PingReply {
                    inc: my_inc.max(inc),
                };
                st.send_recovery(at, from, reply_route, Lane::Recovery0, reply, sched);
            }
            RecMsg::PingReply { inc } => {
                if inc > my_inc {
                    self.start(st, at.0, inc, sched);
                    return;
                }
                if inc < my_inc {
                    return;
                }
                let rec = &mut self.nodes[at.index()];
                rec.view.set_node_up(from);
                if let Some(p) = rec.pending_pings.remove(&from.0) {
                    rec.routes.insert(from.0, p.route);
                    if !rec.cwn.contains(&from.0) {
                        rec.cwn.push(from.0);
                    }
                    self.check_explore_done(st, at.0, sched);
                } else if st
                    .fabric
                    .neighbors(RouterId(at.0))
                    .iter()
                    .any(|n| n.router.0 == from.0)
                {
                    // Reply to a speculative ping from a direct neighbor.
                    let rec = &mut self.nodes[at.index()];
                    rec.routes
                        .entry(from.0)
                        .or_insert_with(|| vec![RouterId(from.0)]);
                }
            }
            RecMsg::Exchange {
                inc,
                round,
                view,
                hint,
                reply_route,
            } => {
                if inc != my_inc {
                    return;
                }
                let rec = &mut self.nodes[at.index()];
                // An exchange partner we did not discover ourselves (cwn
                // asymmetry): adopt it.
                if !rec.cwn.contains(&from.0) {
                    rec.cwn.push(from.0);
                    rec.routes.insert(from.0, reply_route);
                }
                rec.inbox.insert((from.0, round), (view, hint));
                self.try_advance_round(st, at.0, sched);
            }
            RecMsg::BarUp { inc, id, ok } => {
                if inc == my_inc {
                    self.on_bar_up(st, at.0, from.0, id, ok, sched);
                }
            }
            RecMsg::BarDown { inc, id, ok } => {
                if inc == my_inc {
                    self.on_bar_down(st, at.0, id, ok, sched);
                }
            }
        }
    }
}
