//! The barrier tree: BFT-structured up/down waves over the agreed view,
//! used to synchronize the drain agreement, route installation, cache
//! flush, and directory scan steps (paper, Section 4.4).

use super::{BarState, Phase, RecEv, RecoveryExt, Sched, St, Step};
use crate::msg::{BarrierId, RecMsg};
use flash_machine::Ev;
use flash_net::{Lane, NodeId};

impl RecoveryExt {
    // ------------------------------------------------------------------
    // Barriers
    // ------------------------------------------------------------------

    pub(super) fn join_barrier(
        &mut self,
        st: &mut St,
        node: u16,
        id: BarrierId,
        ok: bool,
        sched: Sched<'_, '_>,
    ) {
        self.nodes[node as usize].phase = Phase::InBarrier(id);
        {
            let bar = self.nodes[node as usize]
                .bars
                .entry(id)
                .or_insert_with(|| BarState {
                    ok: true,
                    ..BarState::default()
                });
            if bar.self_joined {
                return;
            }
            bar.self_joined = true;
            bar.ok &= ok;
        }
        self.bump_progress(st, node, sched);
        self.maybe_send_up(st, node, id, sched);
    }

    pub(super) fn on_bar_up(
        &mut self,
        st: &mut St,
        node: u16,
        from: u16,
        id: BarrierId,
        ok: bool,
        sched: Sched<'_, '_>,
    ) {
        if self.nodes[node as usize].tree.is_none() {
            self.nodes[node as usize].stashed_ups.push((from, id, ok));
            return;
        }
        {
            let bar = self.nodes[node as usize]
                .bars
                .entry(id)
                .or_insert_with(|| BarState {
                    ok: true,
                    ..BarState::default()
                });
            bar.ups.insert(from);
            bar.ok &= ok;
        }
        self.maybe_send_up(st, node, id, sched);
    }

    pub(super) fn maybe_send_up(
        &mut self,
        st: &mut St,
        node: u16,
        id: BarrierId,
        sched: Sched<'_, '_>,
    ) {
        let Some(tree) = self.nodes[node as usize].tree.clone() else {
            return;
        };
        let children: Vec<u16> = tree.children[node as usize].iter().map(|c| c.0).collect();
        let (joined, have_all, ok, released) = {
            let bar = self.nodes[node as usize]
                .bars
                .entry(id)
                .or_insert_with(|| BarState {
                    ok: true,
                    ..BarState::default()
                });
            (
                bar.self_joined,
                children.iter().all(|c| bar.ups.contains(c)),
                bar.ok,
                bar.released,
            )
        };
        if !joined || !have_all || released {
            return;
        }
        let inc = self.nodes[node as usize].inc;
        if tree.is_root(NodeId(node)) {
            // The flush barrier's root additionally waits for the fabric's
            // coherence lanes to drain — standing in for CrayLink's in-order
            // delivery guarantee that writebacks precede the barrier
            // messages (see DESIGN.md).
            if id == BarrierId::Flush && st.fabric.in_flight_coherence() > 0 {
                sched.after(
                    self.cfg.drain_poll,
                    Ev::Ext(RecEv::RootFlushPoll { node, inc }),
                );
                return;
            }
            self.release_barrier(st, node, id, ok, sched);
        } else if let Some(parent) = tree.parent[node as usize] {
            let msg = RecMsg::BarUp { inc, id, ok };
            self.send(st, node, parent.0, msg, Lane::Recovery1, sched);
        }
    }

    pub(super) fn release_barrier(
        &mut self,
        st: &mut St,
        node: u16,
        id: BarrierId,
        ok: bool,
        sched: Sched<'_, '_>,
    ) {
        {
            let bar = self.nodes[node as usize]
                .bars
                .entry(id)
                .or_insert_with(|| BarState {
                    ok: true,
                    ..BarState::default()
                });
            if bar.released {
                return;
            }
            bar.released = true;
        }
        let Some(tree) = self.nodes[node as usize].tree.clone() else {
            return;
        };
        let inc = self.nodes[node as usize].inc;
        for c in &tree.children[node as usize] {
            let msg = RecMsg::BarDown { inc, id, ok };
            self.send(st, node, c.0, msg, Lane::Recovery1, sched);
        }
        self.on_barrier_complete(st, node, id, ok, sched);
    }

    pub(super) fn on_bar_down(
        &mut self,
        st: &mut St,
        node: u16,
        id: BarrierId,
        ok: bool,
        sched: Sched<'_, '_>,
    ) {
        self.release_barrier(st, node, id, ok, sched);
    }

    pub(super) fn on_barrier_complete(
        &mut self,
        st: &mut St,
        node: u16,
        id: BarrierId,
        ok: bool,
        sched: Sched<'_, '_>,
    ) {
        st.obs.record(
            flash_obs::Domain::Recovery,
            sched.now(),
            flash_obs::TraceEvent::BarrierRound {
                node,
                barrier: id.label(),
                ok,
            },
        );
        self.bump_progress(st, node, sched);
        match id {
            BarrierId::Drain1 => {
                // Second vote: still quiet since the first vote?
                let last = st.fabric.last_coherence_delivery(NodeId(node));
                let quiet = self.nodes[node as usize]
                    .vote1_at
                    .map(|v| last <= v)
                    .unwrap_or(false);
                self.join_barrier(st, node, BarrierId::Drain2, quiet, sched);
            }
            BarrierId::Drain2 => {
                if ok {
                    let inc = self.nodes[node as usize].inc;
                    self.nodes[node as usize].phase = Phase::RouteCompute;
                    let n = st.num_nodes() as u64;
                    sched.after(
                        self.cfg.instr(self.cfg.route_per_node_instr * n),
                        Ev::Ext(RecEv::StepDone {
                            node,
                            inc,
                            step: Step::RouteCompute,
                        }),
                    );
                } else {
                    // Stalled traffic was still moving: restart the
                    // agreement (never observed to happen in the paper's
                    // experiments either, but supported).
                    st.counters.incr("drain_agreement_restarts");
                    let bars = &mut self.nodes[node as usize].bars;
                    bars.insert(
                        BarrierId::Drain1,
                        BarState {
                            ok: true,
                            ..BarState::default()
                        },
                    );
                    bars.insert(
                        BarrierId::Drain2,
                        BarState {
                            ok: true,
                            ..BarState::default()
                        },
                    );
                    self.start_drain_wait(st, node, sched);
                }
            }
            BarrierId::Routes => self.start_flush(st, node, sched),
            BarrierId::Flush => self.start_scan(st, node, sched),
            BarrierId::Scan => self.complete_recovery(st, node, sched),
        }
    }
}
