//! The [`Extension`] impl: routes hardware triggers (Table 4.1), timed
//! recovery events, and incoming recovery messages into the per-node state
//! machines, enforcing incarnation-number freshness throughout.

use super::{Phase, RecEv, RecoveryExt, St, Step};
use crate::msg::{BarrierId, RecMsg};
use flash_machine::{Ev, Extension};
use flash_magic::{MagicMode, Trigger};
use flash_net::{Lane, NodeId, RouterId, MAX_SOURCE_HOPS};
use flash_sim::Scheduler;

impl Extension for RecoveryExt {
    type Msg = RecMsg;
    type Ev = RecEv;

    fn on_trigger(
        &mut self,
        st: &mut St,
        node: NodeId,
        trig: Trigger,
        sched: &mut Scheduler<'_, Ev<RecEv>>,
    ) {
        if !st.nodes[node.index()].is_alive() {
            return;
        }
        let rec = &self.nodes[node.index()];
        match rec.phase {
            Phase::Idle => {
                st.counters.incr("recovery_triggers");
                // Concurrent independent triggers (many nodes timing out on
                // the same dead home) join the active incarnation; a fresh
                // fault after a completed recovery starts a new one.
                let inc = if self.active {
                    self.max_inc.max(1)
                } else {
                    self.max_inc + 1
                };
                self.start(st, node.0, inc, sched);
            }
            Phase::Shut => {}
            _ => {
                // Already recovering: only evidence of a *new* fault
                // restarts the algorithm.
                if matches!(trig, Trigger::TruncatedPacket | Trigger::AssertionFailure) {
                    st.counters.incr("recovery_restarts_trigger");
                    let inc = self.max_inc.max(rec.inc) + 1;
                    self.start(st, node.0, inc, sched);
                }
            }
        }
    }

    fn on_event(&mut self, st: &mut St, ev: RecEv, sched: &mut Scheduler<'_, Ev<RecEv>>) {
        // Events belonging to a node that has since died are void — a dead
        // controller runs nothing.
        let owner = match &ev {
            RecEv::PingDeadline { node, .. }
            | RecEv::StepDone { node, .. }
            | RecEv::DrainPoll { node, .. }
            | RecEv::FlushJoinPoll { node, .. }
            | RecEv::RootFlushPoll { node, .. }
            | RecEv::Watchdog { node, .. } => *node,
        };
        if !st.nodes[owner as usize].is_alive() {
            return;
        }
        match ev {
            RecEv::StepDone { node, inc, step } => {
                if self.nodes[node as usize].inc != inc {
                    return;
                }
                match step {
                    Step::DropIn => {
                        if self.nodes[node as usize].phase != Phase::DropIn {
                            return;
                        }
                        self.nodes[node as usize].phase = Phase::Explore;
                        self.nodes[node as usize].visited.insert(node);
                        self.expand(st, node, RouterId(node), Vec::new(), sched);
                        self.check_explore_done(st, node, sched);
                    }
                    Step::Round { round } => self.finish_round(st, node, round, sched),
                    Step::Isolate => {
                        if self.nodes[node as usize].phase == Phase::Isolate {
                            self.start_drain_wait(st, node, sched);
                        }
                    }
                    Step::RouteCompute => {
                        if self.nodes[node as usize].phase == Phase::RouteCompute {
                            self.compute_and_install_routes(st, node, sched);
                        }
                    }
                    Step::FlushWalk => {
                        if self.nodes[node as usize].phase == Phase::FlushWalk {
                            self.nodes[node as usize].phase = Phase::FlushJoin;
                            self.flush_join_poll(st, node, sched);
                        }
                    }
                    Step::Scan => {
                        if self.nodes[node as usize].phase == Phase::Scan {
                            // This home's directory is reset: return to
                            // normal dispatch now, so requests from nodes
                            // released earlier by the final barrier are
                            // serviced rather than silently drained.
                            st.nodes[node as usize].mode = MagicMode::Normal;
                            self.join_barrier(st, node, BarrierId::Scan, true, sched);
                        }
                    }
                }
            }
            RecEv::PingDeadline { node, target, inc } => {
                if self.nodes[node as usize].inc != inc {
                    return;
                }
                let Some(ping) = self.nodes[node as usize]
                    .pending_pings
                    .get(&target)
                    .cloned()
                else {
                    return;
                };
                if ping.retries < self.cfg.ping_retries {
                    // Retry.
                    let route = ping.route.clone();
                    match self.nodes[node as usize].pending_pings.get_mut(&target) {
                        Some(p) => p.retries += 1,
                        None => st.invariant_failure(
                            "ping retry state vanished between check and update",
                        ),
                    }
                    let mut reply_route: Vec<RouterId> =
                        route.iter().rev().skip(1).copied().collect();
                    reply_route.push(RouterId(node));
                    let msg = RecMsg::Ping { inc, reply_route };
                    st.send_recovery(
                        NodeId(node),
                        NodeId(target),
                        route,
                        Lane::Recovery0,
                        msg,
                        sched,
                    );
                    sched.after(
                        self.cfg.ping_timeout,
                        Ev::Ext(RecEv::PingDeadline { node, target, inc }),
                    );
                } else {
                    // Declared failed: explore through its router.
                    let removed = self.nodes[node as usize].pending_pings.remove(&target);
                    let Some(ping) = removed else {
                        st.invariant_failure("ping state vanished before failure declaration");
                    };
                    self.nodes[node as usize].view.set_node_down(NodeId(target));
                    if ping.route.len() < MAX_SOURCE_HOPS {
                        self.expand(st, node, RouterId(target), ping.route, sched);
                    }
                    self.check_explore_done(st, node, sched);
                }
            }
            RecEv::DrainPoll { node, inc, attempt } => {
                if self.nodes[node as usize].inc == inc {
                    self.drain_poll(st, node, attempt, sched);
                }
            }
            RecEv::FlushJoinPoll { node, inc } => {
                if self.nodes[node as usize].inc == inc {
                    self.flush_join_poll(st, node, sched);
                }
            }
            RecEv::RootFlushPoll { node, inc } => {
                if self.nodes[node as usize].inc == inc {
                    self.maybe_send_up(st, node, BarrierId::Flush, sched);
                }
            }
            RecEv::Watchdog { node, inc, stamp } => {
                let rec = &self.nodes[node as usize];
                if rec.inc != inc || rec.progress != stamp {
                    return;
                }
                if matches!(rec.phase, Phase::Idle | Phase::Shut) {
                    return;
                }
                // No progress for a whole watchdog period: treat as an
                // additional failure and restart.
                st.counters.incr("recovery_watchdog_restarts");
                let new_inc = self.max_inc.max(inc) + 1;
                self.start(st, node, new_inc, sched);
            }
        }
    }

    fn on_recovery_msg(
        &mut self,
        st: &mut St,
        at: NodeId,
        from: NodeId,
        msg: RecMsg,
        sched: &mut Scheduler<'_, Ev<RecEv>>,
    ) {
        if !st.nodes[at.index()].is_alive() {
            return;
        }
        let my_inc = self.nodes[at.index()].inc;
        let msg_inc = msg.inc();
        // Adopt newer incarnations; drop stale ones (except pings, which get
        // a reply telling the sender our newer incarnation).
        let idle_join = self.nodes[at.index()].phase == Phase::Idle && msg_inc > 0 && self.active;
        if (msg_inc > my_inc || idle_join) && !matches!(self.nodes[at.index()].phase, Phase::Shut) {
            self.start(st, at.0, msg_inc.max(my_inc), sched);
        }
        let my_inc = self.nodes[at.index()].inc;
        match msg {
            RecMsg::Ping { inc, reply_route } => {
                let reply = RecMsg::PingReply {
                    inc: my_inc.max(inc),
                };
                st.send_recovery(at, from, reply_route, Lane::Recovery0, reply, sched);
            }
            RecMsg::PingReply { inc } => {
                if inc > my_inc {
                    self.start(st, at.0, inc, sched);
                    return;
                }
                if inc < my_inc {
                    return;
                }
                let rec = &mut self.nodes[at.index()];
                rec.view.set_node_up(from);
                if let Some(p) = rec.pending_pings.remove(&from.0) {
                    rec.routes.insert(from.0, p.route);
                    if !rec.cwn.contains(&from.0) {
                        rec.cwn.push(from.0);
                    }
                    self.check_explore_done(st, at.0, sched);
                } else if st
                    .fabric
                    .neighbors(RouterId(at.0))
                    .iter()
                    .any(|n| n.router.0 == from.0)
                {
                    // Reply to a speculative ping from a direct neighbor.
                    let rec = &mut self.nodes[at.index()];
                    rec.routes
                        .entry(from.0)
                        .or_insert_with(|| vec![RouterId(from.0)]);
                }
            }
            RecMsg::Exchange {
                inc,
                round,
                view,
                hint,
                reply_route,
            } => {
                if inc != my_inc {
                    return;
                }
                // A node that already finished its dissemination rounds
                // echoes its final (stable) view and round bound: a
                // neighbor with a sparser CWN stabilizes a round later
                // than we do, and without the echo it would wait forever
                // for a round we will never send (its watchdog would then
                // restart the whole episode, deterministically hitting
                // the same deadlock).
                let done_dissem = !matches!(
                    self.nodes[at.index()].phase,
                    Phase::DropIn | Phase::Explore | Phase::Dissem | Phase::Shut
                );
                if done_dissem {
                    let rec = &self.nodes[at.index()];
                    let mut echo_route: Vec<RouterId> =
                        reply_route.iter().rev().skip(1).copied().collect();
                    echo_route.push(RouterId(at.0));
                    let echo = RecMsg::Exchange {
                        inc,
                        round,
                        view: Box::new(rec.view.clone()),
                        hint: rec.bound,
                        reply_route: echo_route,
                    };
                    st.send_recovery(at, from, reply_route, Lane::Recovery1, echo, sched);
                    return;
                }
                let rec = &mut self.nodes[at.index()];
                // An exchange partner we did not discover ourselves (cwn
                // asymmetry): adopt it.
                if !rec.cwn.contains(&from.0) {
                    rec.cwn.push(from.0);
                    rec.routes.insert(from.0, reply_route);
                }
                rec.inbox.insert((from.0, round), (*view, hint));
                self.try_advance_round(st, at.0, sched);
            }
            RecMsg::BarUp { inc, id, ok } => {
                if inc == my_inc {
                    self.on_bar_up(st, at.0, from.0, id, ok, sched);
                }
            }
            RecMsg::BarDown { inc, id, ok } => {
                if inc == my_inc {
                    self.on_bar_down(st, at.0, id, ok, sched);
                }
            }
        }
    }

    fn unnoticed_failure(&self, st: &St, node: NodeId) -> bool {
        // A failure is accounted for once some live node's failure view
        // marks the victim down — the explore phase's ping timeout records
        // exactly that, and views persist after recovery completes (they
        // are only reset when a new episode starts, which re-discovers any
        // still-dead victim before finishing).
        !st.nodes
            .iter()
            .any(|n| n.is_alive() && self.nodes[n.id.index()].view.node_down.contains(node))
    }
}
