//! Phases 1 and 2: recovery initiation (ping-wave spread, vicinity
//! exploration, closest-working-neighbor selection) and round-synchronized
//! information dissemination with the `2h` termination bound (paper,
//! Sections 4.3 and 4.4).

use super::{Phase, PingState, RecEv, RecoveryExt, Sched, St, Step};
use crate::config::PhaseEntries;
use crate::msg::RecMsg;
use flash_machine::Ev;
use flash_net::{Lane, LinkProbe, NodeId, RouterId};

impl RecoveryExt {
    // ------------------------------------------------------------------
    // Phase 1: recovery initiation
    // ------------------------------------------------------------------

    /// Starts (or restarts) recovery on `node` under incarnation `inc`.
    pub(super) fn start(&mut self, st: &mut St, node: u16, inc: u32, sched: Sched<'_, '_>) {
        if !st.nodes[node as usize].is_alive() {
            return;
        }
        if inc > self.max_inc {
            if self.max_inc >= 1 {
                self.report.restarts += 1;
                st.obs.record(
                    flash_obs::Domain::Recovery,
                    sched.now(),
                    flash_obs::TraceEvent::RecoveryRestart {
                        node,
                        incarnation: inc,
                    },
                );
            }
            self.max_inc = inc;
            // A restart invalidates earlier completion bookkeeping.
            self.started.clear();
            self.done_p1.clear();
            self.done_p2.clear();
            self.done_p3.clear();
            self.done_p4.clear();
            self.entries = PhaseEntries::default();
        }
        if self.entries.p1.is_none() {
            self.entries.p1 = Some(sched.now());
        }
        if !self.active {
            self.active = true;
            // A fresh trigger after an earlier *completed* recovery opens a
            // new episode: `phases` always describes the most recent one.
            // (Restarts within an episode keep `active` and only clear the
            // per-node completion sets above.)
            if self.report.phases.p4_done.is_some() {
                self.report.phases = crate::PhaseTimes::default();
            }
            self.report.phases.triggered_at = Some(sched.now());
        }
        st.counters.incr("recovery_starts");
        st.obs.record(
            flash_obs::Domain::Recovery,
            sched.now(),
            flash_obs::TraceEvent::PhaseEnter {
                node,
                phase: 1,
                incarnation: inc,
            },
        );
        self.started.insert(node);
        if self.report.wave_complete_at.is_none() && self.done_for_all(st, &self.started.clone()) {
            self.report.wave_complete_at = Some(sched.now());
        }
        st.enter_recovery_mode(NodeId(node));
        st.drop_processor_into_recovery(NodeId(node));
        self.nodes[node as usize].reset_for(inc);
        self.nodes[node as usize].view.set_node_up(NodeId(node));
        self.bump_progress(st, node, sched);

        // Speculative pings to immediate neighbors before exploration — the
        // ~5x faster trigger wave of Section 4.2.
        if self.cfg.speculative_pings {
            let own_router = RouterId(node);
            let nbrs: Vec<RouterId> = st
                .fabric
                .neighbors(own_router)
                .iter()
                .map(|n| n.router)
                .collect();
            for nbr in nbrs {
                let ping = RecMsg::Ping {
                    inc,
                    reply_route: vec![own_router],
                };
                st.send_recovery(
                    NodeId(node),
                    NodeId(nbr.0),
                    vec![nbr],
                    Lane::Recovery0,
                    ping,
                    sched,
                );
            }
        }

        self.nodes[node as usize].phase = Phase::DropIn;
        sched.after(
            self.cfg.instr(self.cfg.drop_in_instr),
            Ev::Ext(RecEv::StepDone {
                node,
                inc,
                step: Step::DropIn,
            }),
        );
    }

    /// Expands cwn exploration through router `r` (reached via `route`).
    pub(super) fn expand(
        &mut self,
        st: &mut St,
        node: u16,
        r: RouterId,
        route: Vec<RouterId>,
        sched: Sched<'_, '_>,
    ) {
        let nbrs: Vec<(usize, RouterId)> = st
            .fabric
            .neighbors(r)
            .iter()
            .enumerate()
            .map(|(i, n)| (i, n.router))
            .collect();
        let inc = self.nodes[node as usize].inc;
        for (port, s) in nbrs {
            if self.nodes[node as usize].visited.contains(&s.0) {
                continue;
            }
            match st.fabric.probe(r, port) {
                LinkProbe::NoSuchLink => {}
                LinkProbe::LinkDead => {
                    // The far side may still be reachable another way; do
                    // not mark it visited.
                    self.nodes[node as usize].view.set_link_down(r, s);
                }
                LinkProbe::RouterDead => {
                    self.nodes[node as usize].visited.insert(s.0);
                    self.nodes[node as usize].view.set_link_down(r, s);
                    self.nodes[node as usize].view.set_node_down(NodeId(s.0));
                }
                LinkProbe::Alive => {
                    self.nodes[node as usize].visited.insert(s.0);
                    self.nodes[node as usize].view.set_link_up(r, s);
                    let mut ping_route = route.clone();
                    ping_route.push(s);
                    let mut reply_route: Vec<RouterId> = route.iter().rev().copied().collect();
                    reply_route.push(RouterId(node));
                    let ping = RecMsg::Ping { inc, reply_route };
                    st.send_recovery(
                        NodeId(node),
                        NodeId(s.0),
                        ping_route.clone(),
                        Lane::Recovery0,
                        ping,
                        sched,
                    );
                    self.nodes[node as usize].pending_pings.insert(
                        s.0,
                        PingState {
                            route: ping_route,
                            retries: 0,
                        },
                    );
                    sched.after(
                        self.cfg.ping_timeout,
                        Ev::Ext(RecEv::PingDeadline {
                            node,
                            target: s.0,
                            inc,
                        }),
                    );
                }
            }
        }
    }

    pub(super) fn check_explore_done(&mut self, st: &mut St, node: u16, sched: Sched<'_, '_>) {
        if self.nodes[node as usize].phase != Phase::Explore
            || !self.nodes[node as usize].pending_pings.is_empty()
        {
            return;
        }
        // Exploration complete: enter dissemination round 1.
        self.nodes[node as usize].phase = Phase::Dissem;
        self.nodes[node as usize].round = 1;
        if self.entries.p2.is_none() {
            self.entries.p2 = Some(sched.now());
        }
        self.record_phase_edge(st, node, 1, 2, sched.now());
        self.done_p1.insert(node);
        self.mark_phase_progress(st, sched.now());
        self.bump_progress(st, node, sched);
        self.send_round_exchanges(st, node, sched);
        self.try_advance_round(st, node, sched);
    }

    // ------------------------------------------------------------------
    // Phase 2: information dissemination
    // ------------------------------------------------------------------

    pub(super) fn send_round_exchanges(&mut self, st: &mut St, node: u16, sched: Sched<'_, '_>) {
        let rec = &self.nodes[node as usize];
        let (inc, round, view, hint) = (rec.inc, rec.round, rec.view.clone(), rec.bound);
        let cwn = rec.cwn.clone();
        let own_router = RouterId(node);
        for m in cwn {
            let fwd = self.nodes[node as usize]
                .routes
                .get(&m)
                .cloned()
                .unwrap_or_default();
            // Reply route: reverse the forward route, replacing the final
            // hop with our own router.
            let mut reply_route: Vec<RouterId> = fwd.iter().rev().skip(1).copied().collect();
            reply_route.push(own_router);
            let msg = RecMsg::Exchange {
                inc,
                round,
                view: Box::new(view.clone()),
                hint,
                reply_route,
            };
            self.send(st, node, m, msg, Lane::Recovery1, sched);
        }
    }

    pub(super) fn try_advance_round(&mut self, st: &mut St, node: u16, sched: Sched<'_, '_>) {
        let rec = &self.nodes[node as usize];
        if rec.phase != Phase::Dissem || rec.computing_round {
            return;
        }
        let round = rec.round;
        let cwn = rec.cwn.clone();
        if !cwn.iter().all(|m| rec.inbox.contains_key(&(*m, round))) {
            return;
        }
        // All round-r vectors in hand: merge, then charge the round cost.
        let inc = rec.inc;
        let mut changed = false;
        let mut hint_seen = None;
        for m in &cwn {
            let removed = self.nodes[node as usize].inbox.remove(&(*m, round));
            let Some((v, hint)) = removed else {
                st.invariant_failure("dissemination inbox entry vanished between check and merge");
            };
            if self.nodes[node as usize].view.merge(&v) {
                changed = true;
            }
            if hint_seen.is_none() {
                hint_seen = hint;
            }
        }
        let n = st.num_nodes() as u64;
        let mut cost =
            self.cfg.merge_base_instr + cwn.len() as u64 * self.cfg.merge_per_node_instr * n;
        // Stabilized and no bound yet: compute it (unless a hint arrived and
        // hints are enabled — the deferred-BFT optimization).
        let rec = &mut self.nodes[node as usize];
        if rec.bound.is_none() {
            if let Some(h) = hint_seen.filter(|_| self.cfg.bft_hints) {
                rec.bound = Some(h);
            } else if !changed && round > 1 {
                // View stable for a full round => complete: compute the
                // round bound (2h, or the tighter center-based estimate).
                let design = self.design(st);
                let view = &self.nodes[node as usize].view;
                let b = if self.cfg.center_diameter_bound {
                    // Two sweeps + reverse distances + up to 4 candidate
                    // eccentricities + the 2h fallback: ~8 BFS traversals.
                    cost += 8 * self.cfg.bft_per_node_instr * n;
                    view.round_bound_center(&design)
                } else {
                    cost += self.cfg.bft_per_node_instr * n;
                    view.round_bound(&design)
                };
                self.nodes[node as usize].bound = Some(b);
            }
        }
        self.nodes[node as usize].computing_round = true;
        sched.after(
            self.cfg.instr(cost),
            Ev::Ext(RecEv::StepDone {
                node,
                inc,
                step: Step::Round { round },
            }),
        );
    }

    pub(super) fn finish_round(
        &mut self,
        st: &mut St,
        node: u16,
        round: u32,
        sched: Sched<'_, '_>,
    ) {
        let rec = &mut self.nodes[node as usize];
        if rec.phase != Phase::Dissem || rec.round != round {
            return;
        }
        rec.computing_round = false;
        rec.round += 1;
        self.bump_progress(st, node, sched);
        let rec = &self.nodes[node as usize];
        if let Some(b) = rec.bound {
            if rec.round > b.max(1) {
                self.enter_p3(st, node, sched);
                return;
            }
        }
        self.send_round_exchanges(st, node, sched);
        self.try_advance_round(st, node, sched);
    }
}
