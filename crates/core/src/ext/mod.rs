//! The distributed hardware recovery algorithm (paper, Section 4),
//! implemented as a [`flash_machine::Extension`].
//!
//! Each live node runs an instance of a per-node state machine; nodes
//! communicate only through source-routed messages on the dedicated
//! recovery lanes and local probes of adjacent routers. The phases:
//!
//! 1. **Recovery initiation** — the processor is dropped into the recovery
//!    code, pending operations are NAK'd (uncached reads saved), the node
//!    probes its vicinity and determines its set of closest working
//!    neighbors (`cwn`), pinging them into recovery; the ping wave spreads
//!    the trigger to every good node.
//! 2. **Information dissemination** — synchronized rounds of `LState`/
//!    `NState` exchange with the cwn; termination after `2h` rounds, with
//!    `h` the BFT height at the agreed root, propagated as a hint.
//! 3. **Interconnect recovery** — isolate failed regions, drain stalled
//!    traffic with a two-phase agreement (bound τ), recompute deadlock-free
//!    routing tables (up*/down*) and reprogram the routers, then barrier.
//! 4. **Coherence-protocol recovery** — flush caches (dirty lines home),
//!    barrier, scan directories marking lost lines incoherent, reset
//!    state, barrier, resume (raising the OS-recovery interrupt).
//!
//! Additional faults detected mid-recovery (truncated packets, firmware
//! assertions, phase watchdogs) restart the algorithm under a higher
//! *incarnation* number that spreads with the ping wave; stale-incarnation
//! messages are discarded.
//!
//! The implementation is split across this module tree:
//!
//! * [`mod@self`] — shared types ([`RecEv`], [`Step`], the per-node record)
//!   and the [`RecoveryExt`] state plus its cross-phase plumbing.
//! * `init` — phase 1 (recovery initiation) and phase 2 (dissemination).
//! * `phases` — phase 3 (interconnect) and phase 4 (coherence) recovery.
//! * `barrier` — the BFT barrier tree shared by phases 3 and 4.
//! * `report` — phase-completion bookkeeping for [`RecoveryReport`].
//! * `driver` — the [`flash_machine::Extension`] impl wiring triggers,
//!   timed events, and recovery messages into the state machine.

mod barrier;
mod driver;
mod init;
mod phases;
mod report;

use crate::config::{PhaseEntries, RecoveryConfig, RecoveryReport};
use crate::msg::{BarrierId, RecMsg};
use crate::view::{Tree, View};
use flash_coherence::NodeSet;
use flash_machine::{Ev, MachineState};
use flash_net::{Lane, NodeId, RouterId, UGraph};
use flash_sim::{Scheduler, SimTime};
use std::collections::{HashMap, HashSet};

/// Timed events private to the recovery algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecEv {
    /// A ping's reply deadline expired.
    PingDeadline {
        /// The waiting node.
        node: u16,
        /// The pinged node.
        target: u16,
        /// Incarnation the ping belongs to.
        inc: u32,
    },
    /// A charged computation step finished.
    StepDone {
        /// The computing node.
        node: u16,
        /// Incarnation.
        inc: u32,
        /// Which step.
        step: Step,
    },
    /// Drain-quiet polling.
    DrainPoll {
        /// Polling node.
        node: u16,
        /// Incarnation.
        inc: u32,
        /// Drain attempt number (re-votes after a failed agreement).
        attempt: u32,
    },
    /// Poll until the node's outbound writebacks have entered the fabric,
    /// then join the flush barrier.
    FlushJoinPoll {
        /// Polling node.
        node: u16,
        /// Incarnation.
        inc: u32,
    },
    /// The barrier root polls the interconnect for complete writeback
    /// delivery before releasing the flush barrier.
    RootFlushPoll {
        /// The root node.
        node: u16,
        /// Incarnation.
        inc: u32,
    },
    /// Phase-progress watchdog.
    Watchdog {
        /// Watched node.
        node: u16,
        /// Incarnation.
        inc: u32,
        /// Progress stamp at scheduling time.
        stamp: u64,
    },
}

/// A charged computation step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Processor dropped into the recovery code.
    DropIn,
    /// One dissemination round's merges (and possibly the BFT computation).
    Round {
        /// The round being finalized.
        round: u32,
    },
    /// Local router isolation reprogramming.
    Isolate,
    /// Routing-table recomputation.
    RouteCompute,
    /// The uncached cache-flush walk.
    FlushWalk,
    /// The directory scan.
    Scan,
}

/// Per-node recovery phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Idle,
    DropIn,
    Explore,
    Dissem,
    Isolate,
    Drain1Wait,
    InBarrier(BarrierId),
    RouteCompute,
    FlushWalk,
    FlushJoin,
    Scan,
    Shut,
}

#[derive(Clone, Debug, Default)]
struct BarState {
    ups: HashSet<u16>,
    self_joined: bool,
    ok: bool,
    released: bool,
}

#[derive(Clone, Debug)]
struct PingState {
    route: Vec<RouterId>,
    retries: u32,
}

#[derive(Clone, Debug)]
struct NodeRec {
    inc: u32,
    phase: Phase,
    view: View,
    // --- exploration ---
    visited: HashSet<u16>,
    pending_pings: HashMap<u16, PingState>,
    routes: HashMap<u16, Vec<RouterId>>,
    cwn: Vec<u16>,
    // --- dissemination ---
    round: u32,
    inbox: HashMap<(u16, u32), (View, Option<u32>)>,
    bound: Option<u32>,
    computing_round: bool,
    // --- barriers / P3 / P4 ---
    tree: Option<Tree>,
    bars: HashMap<BarrierId, BarState>,
    stashed_ups: Vec<(u16, BarrierId, bool)>,
    vote1_at: Option<SimTime>,
    drain_attempt: u32,
    progress: u64,
}

impl NodeRec {
    fn new() -> Self {
        NodeRec {
            inc: 0,
            phase: Phase::Idle,
            view: View::new(),
            visited: HashSet::new(),
            pending_pings: HashMap::new(),
            routes: HashMap::new(),
            cwn: Vec::new(),
            round: 0,
            inbox: HashMap::new(),
            bound: None,
            computing_round: false,
            tree: None,
            bars: HashMap::new(),
            stashed_ups: Vec::new(),
            vote1_at: None,
            drain_attempt: 0,
            progress: 0,
        }
    }

    fn reset_for(&mut self, inc: u32) {
        let progress = self.progress + 1;
        *self = NodeRec::new();
        self.inc = inc;
        self.progress = progress;
    }
}

type Sched<'a, 'b> = &'a mut Scheduler<'b, Ev<RecEv>>;
type St = MachineState<RecMsg>;

/// The recovery algorithm extension: plugs into
/// [`flash_machine::Machine`] and reacts to the hardware triggers of
/// Table 4.1.
///
/// `Clone` makes the whole `Machine<RecoveryExt>` checkpointable: a
/// snapshot taken mid-recovery (between phases) carries the per-node
/// recovery records, phase-entry log and barrier/ping state with it.
#[derive(Clone, Debug)]
pub struct RecoveryExt {
    /// Algorithm parameters.
    pub cfg: RecoveryConfig,
    nodes: Vec<NodeRec>,
    design: Option<UGraph>,
    /// Hive failure units: when set, a node whose unit lost any member
    /// shuts itself down after recovery (Section 3.3).
    units: Option<Vec<NodeSet>>,
    /// Execution summary.
    pub report: RecoveryReport,
    entries: PhaseEntries,
    max_inc: u32,
    active: bool,
    started: HashSet<u16>,
    done_p1: HashSet<u16>,
    done_p2: HashSet<u16>,
    done_p3: HashSet<u16>,
    done_p4: HashSet<u16>,
}

impl RecoveryExt {
    /// Creates the extension for a machine with `n_nodes` nodes.
    pub fn new(n_nodes: usize, cfg: RecoveryConfig) -> Self {
        RecoveryExt {
            cfg,
            nodes: (0..n_nodes).map(|_| NodeRec::new()).collect(),
            design: None,
            units: None,
            report: RecoveryReport::default(),
            entries: PhaseEntries::default(),
            max_inc: 0,
            active: false,
            started: HashSet::new(),
            done_p1: HashSet::new(),
            done_p2: HashSet::new(),
            done_p3: HashSet::new(),
            done_p4: HashSet::new(),
        }
    }

    /// Configures Hive failure units (each node must appear in exactly one
    /// set).
    pub fn set_failure_units(&mut self, units: Vec<NodeSet>) {
        self.units = Some(units);
    }

    /// Clears the accumulated report (between experiments on a reused
    /// machine).
    pub fn reset_report(&mut self) {
        self.report = RecoveryReport::default();
    }

    /// Whether any node is currently executing the recovery algorithm.
    pub fn recovery_active(&self) -> bool {
        self.active
    }

    /// The current incarnation number (0 before the first recovery).
    pub fn incarnation(&self) -> u32 {
        self.max_inc
    }

    /// Machine-wide first-entry times of the recovery phases for the
    /// current incarnation (reset when a restart begins a new one).
    /// External drivers — fault campaigns in particular — poll this
    /// between run slices to arm faults *inside* a chosen phase.
    pub fn phase_entries(&self) -> PhaseEntries {
        self.entries
    }

    /// One human-readable line per node of recovery-internal state
    /// (phase, incarnation, view, exchange partners): the triage view used
    /// when a campaign reproduction stalls mid-recovery.
    pub fn debug_node_states(&self) -> Vec<String> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, r)| {
                format!(
                    "n{i}: phase={:?} inc={} round={} bound={:?} inbox={:?} down={:?} cwn={:?} pings={:?} bars={:?}",
                    r.phase,
                    r.inc,
                    r.round,
                    r.bound,
                    r.inbox.keys().collect::<Vec<_>>(),
                    r.view.node_down.iter().map(|n| n.0).collect::<Vec<_>>(),
                    r.cwn,
                    r.pending_pings.keys().collect::<Vec<_>>(),
                    r.bars
                        .iter()
                        .map(|(id, b)| (format!("{id:?}"), b.self_joined, b.released))
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    fn design(&mut self, st: &St) -> UGraph {
        self.design
            .get_or_insert_with(|| st.fabric.design_graph().clone())
            .clone()
    }

    // ------------------------------------------------------------------
    // Message plumbing
    // ------------------------------------------------------------------

    fn send(
        &mut self,
        st: &mut St,
        from: u16,
        to: u16,
        msg: RecMsg,
        lane: Lane,
        sched: Sched<'_, '_>,
    ) {
        let route = match self.nodes[from as usize].routes.get(&to) {
            Some(r) => Some(r.clone()),
            None => {
                let design = self.design(st);
                self.nodes[from as usize]
                    .view
                    .route_between(&design, NodeId(from), NodeId(to))
            }
        };
        let Some(route) = route else {
            st.counters.incr("recovery_msg_unroutable");
            return;
        };
        st.send_recovery(NodeId(from), NodeId(to), route, lane, msg, sched);
    }

    /// Records a P`from`→P`to` transition for `node` in the Recovery trace
    /// domain; `to == 0` records only the exit (recovery complete).
    fn record_phase_edge(&self, st: &mut St, node: u16, from: u8, to: u8, now: SimTime) {
        let incarnation = self.nodes[node as usize].inc;
        st.obs.record(
            flash_obs::Domain::Recovery,
            now,
            flash_obs::TraceEvent::PhaseExit {
                node,
                phase: from,
                incarnation,
            },
        );
        if to != 0 {
            st.obs.record(
                flash_obs::Domain::Recovery,
                now,
                flash_obs::TraceEvent::PhaseEnter {
                    node,
                    phase: to,
                    incarnation,
                },
            );
        }
    }

    fn bump_progress(&mut self, st: &St, node: u16, sched: Sched<'_, '_>) {
        let rec = &mut self.nodes[node as usize];
        rec.progress += 1;
        let stamp = rec.progress;
        let inc = rec.inc;
        let _ = st;
        sched.after(
            self.cfg.watchdog,
            Ev::Ext(RecEv::Watchdog { node, inc, stamp }),
        );
    }
}
