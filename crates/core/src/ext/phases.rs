//! Phases 3 and 4: interconnect recovery (isolation, τ-drain two-phase
//! agreement, up*/down* route recomputation) and coherence-protocol
//! recovery (cache flush, directory scan, resume) — paper, Sections 4.5
//! and 4.6.

use super::{BarState, Phase, RecEv, RecoveryExt, Sched, St, Step};
use crate::msg::{BarrierId, RecMsg};
use crate::view::View;
use flash_coherence::NodeSet;
use flash_machine::{Ev, FaultSpec};
use flash_magic::MagicMode;
use flash_net::{Lane, NodeId, RouterId, UGraph};

impl RecoveryExt {
    // ------------------------------------------------------------------
    // Phase 3: interconnect recovery
    // ------------------------------------------------------------------

    pub(super) fn enter_p3(&mut self, st: &mut St, node: u16, sched: Sched<'_, '_>) {
        // Echo stashed future-round exchanges before leaving dissemination:
        // a partner with a sparser CWN stabilizes a round later than we do,
        // and its round-(bound+1) exchange may already sit in our inbox.
        // Dropping it would leave that partner waiting forever for a round
        // we never run; its watchdog would then restart the whole episode
        // into the same deterministic deadlock. (Late arrivals after this
        // point are echoed on receipt — see `on_recovery_msg`.)
        {
            let rec = &self.nodes[node as usize];
            let inc = rec.inc;
            let last_round = rec.bound.unwrap_or(0);
            let mut stale: Vec<(u16, u32)> = rec
                .inbox
                .keys()
                .filter(|(_, r)| *r > last_round)
                .copied()
                .collect();
            stale.sort_unstable();
            for (m, r) in stale {
                let rec = &self.nodes[node as usize];
                let fwd = rec.routes.get(&m).cloned().unwrap_or_default();
                let mut reply_route: Vec<RouterId> = fwd.iter().rev().skip(1).copied().collect();
                reply_route.push(RouterId(node));
                let msg = RecMsg::Exchange {
                    inc,
                    round: r,
                    view: Box::new(rec.view.clone()),
                    hint: rec.bound,
                    reply_route,
                };
                self.send(st, node, m, msg, Lane::Recovery1, sched);
            }
        }
        self.record_phase_edge(st, node, 2, 3, sched.now());
        self.done_p2.insert(node);
        self.mark_phase_progress(st, sched.now());
        if self.entries.p3.is_none() {
            self.entries.p3 = Some(sched.now());
        }
        let design = self.design(st);
        let rec = &self.nodes[node as usize];
        let inc = rec.inc;
        let view = rec.view.clone();

        // Shutdown heuristic against split-brain operation (§4.2): a node
        // that cannot account for a quorum of the machine (unreachable
        // nodes count as lost) halts rather than risk divergent operation.
        let total = st.num_nodes();
        let failed = total - view.live_nodes().len().min(total);
        if (failed as f64) > self.cfg.shutdown_fraction * total as f64 {
            self.report.machine_halted = true;
            self.nodes[node as usize].phase = Phase::Shut;
            st.apply_fault(&FaultSpec::Node(NodeId(node)), sched.now());
            return;
        }

        // Node map update: live nodes minus doomed failure units.
        let effective = self.effective_live(&view);
        st.nodes[node as usize].node_map.reprogram(&effective);

        // Barrier tree for the rest of the algorithm.
        let tree = view.bft_tree(&design);
        self.nodes[node as usize].tree = Some(tree);
        self.nodes[node as usize].bars = BarrierId::ALL
            .iter()
            .map(|&id| {
                (
                    id,
                    BarState {
                        ok: true,
                        ..BarState::default()
                    },
                )
            })
            .collect();
        // Process any barrier joins that raced ahead of us.
        let stashed = std::mem::take(&mut self.nodes[node as usize].stashed_ups);
        for (from, id, ok) in stashed {
            self.on_bar_up(st, node, from, id, ok, sched);
        }

        // Isolation: reprogram the local router (and adjacent dead
        // controllers' ejection ports).
        st.apply_isolation_for(NodeId(node), &view.failed_nodes());
        self.nodes[node as usize].phase = Phase::Isolate;
        sched.after(
            self.cfg.instr(self.cfg.isolate_instr),
            Ev::Ext(RecEv::StepDone {
                node,
                inc,
                step: Step::Isolate,
            }),
        );
    }

    /// Live nodes minus failure units that lost a member (those shut down
    /// at the end of recovery and must not be re-used by survivors).
    pub(super) fn effective_live(&self, view: &View) -> NodeSet {
        let mut live = view.live_nodes();
        if let Some(units) = &self.units {
            let failed = view.failed_nodes();
            for unit in units {
                if unit.intersects(&failed) {
                    live.subtract(unit);
                }
            }
        }
        live
    }

    pub(super) fn start_drain_wait(&mut self, st: &mut St, node: u16, sched: Sched<'_, '_>) {
        let rec = &mut self.nodes[node as usize];
        rec.phase = Phase::Drain1Wait;
        rec.drain_attempt += 1;
        rec.vote1_at = None;
        let (inc, attempt) = (rec.inc, rec.drain_attempt);
        self.bump_progress(st, node, sched);
        sched.immediately(Ev::Ext(RecEv::DrainPoll { node, inc, attempt }));
    }

    pub(super) fn drain_poll(
        &mut self,
        st: &mut St,
        node: u16,
        attempt: u32,
        sched: Sched<'_, '_>,
    ) {
        let rec = &self.nodes[node as usize];
        if rec.phase != Phase::Drain1Wait || rec.drain_attempt != attempt {
            return;
        }
        let last = st.fabric.last_coherence_delivery(NodeId(node));
        let quiet = sched.now().since(last) >= self.cfg.drain_tau;
        if quiet {
            self.nodes[node as usize].vote1_at = Some(sched.now());
            self.join_barrier(st, node, BarrierId::Drain1, true, sched);
        } else {
            let inc = self.nodes[node as usize].inc;
            sched.after(
                self.cfg.drain_poll,
                Ev::Ext(RecEv::DrainPoll { node, inc, attempt }),
            );
        }
    }

    pub(super) fn compute_and_install_routes(
        &mut self,
        st: &mut St,
        node: u16,
        sched: Sched<'_, '_>,
    ) {
        let design = self.design(st);
        let view = self.nodes[node as usize].view.clone();
        // Router graph from probed-alive links; a dead node's router still
        // routes traffic.
        let n = design.len();
        let mut g = UGraph::new(n);
        let mut alive = vec![false; n];
        for &(a, b) in &view.links_up {
            g.add_edge(a, b);
            alive[a as usize] = true;
            alive[b as usize] = true;
        }
        let Some(root) = view.root() else { return };
        alive[root.index()] = true;
        let tables = flash_net::up_down_tables(&g, &alive, RouterId(root.0));
        // Install our own router's row.
        st.install_router_row(RouterId(node), &tables);
        // The root additionally programs routers not owned by any live node
        // (routers of failed nodes that survived the fault).
        if view.root() == Some(NodeId(node)) {
            for r in 0..n as u16 {
                if alive[r as usize] && !view.live_nodes().contains(NodeId(r)) {
                    st.install_router_row(RouterId(r), &tables);
                }
            }
        }
        self.join_barrier(st, node, BarrierId::Routes, true, sched);
    }

    // ------------------------------------------------------------------
    // Phase 4: coherence-protocol recovery
    // ------------------------------------------------------------------

    pub(super) fn start_flush(&mut self, st: &mut St, node: u16, sched: Sched<'_, '_>) {
        self.record_phase_edge(st, node, 3, 4, sched.now());
        self.done_p3.insert(node);
        self.mark_phase_progress(st, sched.now());
        if self.report.p4_started_at.is_none() {
            self.report.p4_started_at = Some(sched.now());
        }
        if self.entries.p4.is_none() {
            self.entries.p4 = Some(sched.now());
        }
        st.nodes[node as usize].mode = MagicMode::Recovery;
        // With HAL-style end-to-end interconnect reliability the flush step
        // is eliminated (paper, Section 6.3); caches stay warm and the
        // directory is pruned during the scan instead.
        let walk_ns = if self.cfg.reliable_interconnect {
            0
        } else {
            let sent = st.flush_cache_for_recovery(NodeId(node), sched);
            self.report.flush_writebacks += sent as u64;
            st.params.l2_lines() as u64 * self.cfg.flush_per_line_ns
        };
        let inc = self.nodes[node as usize].inc;
        self.nodes[node as usize].phase = Phase::FlushWalk;
        self.bump_progress(st, node, sched);
        sched.after(
            flash_sim::SimDuration::from_nanos(walk_ns),
            Ev::Ext(RecEv::StepDone {
                node,
                inc,
                step: Step::FlushWalk,
            }),
        );
    }

    pub(super) fn flush_join_poll(&mut self, st: &mut St, node: u16, sched: Sched<'_, '_>) {
        if self.nodes[node as usize].phase != Phase::FlushJoin {
            return;
        }
        let outbox_empty = st.nodes[node as usize].outbox[Lane::Request.index()].is_empty();
        if outbox_empty {
            self.join_barrier(st, node, BarrierId::Flush, true, sched);
        } else {
            let inc = self.nodes[node as usize].inc;
            sched.after(
                self.cfg.drain_poll,
                Ev::Ext(RecEv::FlushJoinPoll { node, inc }),
            );
        }
    }

    pub(super) fn start_scan(&mut self, st: &mut St, node: u16, sched: Sched<'_, '_>) {
        if self.report.flush_done_at.is_none() {
            self.report.flush_done_at = Some(sched.now());
        }
        let marked = if self.cfg.reliable_interconnect {
            let failed = self.nodes[node as usize].view.failed_nodes();
            st.nodes[node as usize].dir.scan_and_prune(&failed)
        } else {
            st.nodes[node as usize].dir.scan_and_reset()
        };
        self.report.lines_marked_incoherent += marked.len() as u64;
        st.counters
            .add("lines_marked_incoherent", marked.len() as u64);
        let scan_ns = st.layout.lines_per_node() * st.params.magic.costs.dir_scan_per_line_ns;
        let inc = self.nodes[node as usize].inc;
        self.nodes[node as usize].phase = Phase::Scan;
        self.bump_progress(st, node, sched);
        sched.after(
            flash_sim::SimDuration::from_nanos(scan_ns),
            Ev::Ext(RecEv::StepDone {
                node,
                inc,
                step: Step::Scan,
            }),
        );
    }

    pub(super) fn complete_recovery(&mut self, st: &mut St, node: u16, sched: Sched<'_, '_>) {
        self.record_phase_edge(st, node, 4, 0, sched.now());
        let view = self.nodes[node as usize].view.clone();
        let doomed = {
            let effective = self.effective_live(&view);
            !effective.contains(NodeId(node))
        };
        if doomed {
            // Clean shutdown of the whole failure unit (Section 3.3).
            self.report.nodes_shut_down += 1;
            self.nodes[node as usize].phase = Phase::Shut;
            st.apply_fault(&FaultSpec::Node(NodeId(node)), sched.now());
        } else {
            self.report.nodes_resumed += 1;
            self.nodes[node as usize].phase = Phase::Idle;
            st.resume_after_recovery(NodeId(node), sched);
        }
        self.done_p4.insert(node);
        self.mark_phase_progress(st, sched.now());
        if self.done_for_all(st, &self.done_p4) {
            self.active = false;
        }
    }
}
