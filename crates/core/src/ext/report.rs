//! Phase-completion bookkeeping: per-phase done sets are folded into the
//! [`crate::config::RecoveryReport`] timeline consumed by the experiment
//! harness.

use super::{RecoveryExt, St};
use flash_sim::SimTime;
use std::collections::HashSet;

impl RecoveryExt {
    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    pub(super) fn done_for_all(&self, st: &St, set: &HashSet<u16>) -> bool {
        st.nodes
            .iter()
            .filter(|n| n.is_alive())
            .all(|n| set.contains(&n.id.0))
            || st.nodes.iter().all(|n| !n.is_alive())
    }

    pub(super) fn mark_phase_progress(&mut self, st: &St, now: SimTime) {
        if self.report.phases.p1_done.is_none() && self.done_for_all(st, &self.done_p1.clone()) {
            self.report.phases.p1_done = Some(now);
        }
        if self.report.phases.p2_done.is_none() && self.done_for_all(st, &self.done_p2.clone()) {
            self.report.phases.p2_done = Some(now);
        }
        if self.report.phases.p3_done.is_none() && self.done_for_all(st, &self.done_p3.clone()) {
            self.report.phases.p3_done = Some(now);
        }
        if self.report.phases.p4_done.is_none() && self.done_for_all(st, &self.done_p4.clone()) {
            self.report.phases.p4_done = Some(now);
        }
    }
}
