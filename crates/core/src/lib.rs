//! # flash-core — hardware fault containment and distributed recovery
//!
//! The primary contribution of *Hardware Fault Containment in Scalable
//! Shared-Memory Multiprocessors* (Teodosiu et al., ISCA 1997), reproduced
//! on top of the `flash-*` substrate crates:
//!
//! * the **recovery triggers** of Table 4.1 (memory-operation timeouts, NAK
//!   counter overflow, firmware assertions, truncated packets) feed into
//! * the **four-phase distributed recovery algorithm** of Section 4
//!   ([`RecoveryExt`]): initiation with closest-working-neighbor discovery,
//!   round-synchronized information dissemination with the `2h` bound,
//!   interconnect recovery (isolation, τ-drain two-phase agreement,
//!   deadlock-free rerouting), and coherence-protocol recovery (cache
//!   flush, directory scan, incoherent-line marking);
//! * plus the **experiment harness** of Section 5.2 ([`run_fault_experiment`])
//!   used by the validation suite (Table 5.3) and the scalability figures.
//!
//! # Examples
//!
//! Run one Table 5.3-style validation experiment — inject a node failure
//! into an 8-node machine under a random cache-fill workload and verify
//! that recovery neither over-marks incoherent lines nor silently corrupts
//! data:
//!
//! ```no_run
//! use flash_core::{ExperimentConfig, run_fault_experiment};
//! use flash_machine::{FaultSpec, MachineParams};
//! use flash_net::NodeId;
//!
//! let cfg = ExperimentConfig::new(MachineParams::table_5_1(), 42);
//! let outcome = run_fault_experiment(&cfg, FaultSpec::Node(NodeId(3)));
//! assert!(outcome.passed());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod experiment;
mod ext;
mod msg;
mod view;

pub use config::{PhaseEntries, PhaseTimes, RecoveryConfig, RecoveryReport};
pub use experiment::{
    build_machine, finish_fault_experiment, finish_fault_experiment_sharded, mesh_width,
    prepare_fault_experiment, prepare_fault_experiment_sharded, random_fault, run_fault_experiment,
    run_fault_experiment_sharded, ExperimentConfig, ExperimentOutcome, FaultKind, FcMachine,
};
pub use ext::{RecEv, RecoveryExt, Step};
pub use msg::{BarrierId, RecMsg};
pub use view::{Tree, View};
