//! Wire messages of the distributed recovery algorithm, carried on the two
//! dedicated recovery virtual lanes as source-routed packets (Section 4.1).

use crate::view::View;
use flash_net::RouterId;

/// Identifies one of the global barriers of the recovery algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BarrierId {
    /// First drain vote (interconnect recovery, phase 1 of the two-phase
    /// agreement).
    Drain1,
    /// Second drain vote.
    Drain2,
    /// All routing tables reprogrammed.
    Routes,
    /// All caches flushed and writebacks home.
    Flush,
    /// All directories scanned and reset.
    Scan,
}

impl BarrierId {
    /// All barriers in execution order.
    pub const ALL: [BarrierId; 5] = [
        BarrierId::Drain1,
        BarrierId::Drain2,
        BarrierId::Routes,
        BarrierId::Flush,
        BarrierId::Scan,
    ];

    /// Stable snake-case label, used by the observability layer.
    pub fn label(&self) -> &'static str {
        match self {
            BarrierId::Drain1 => "drain1",
            BarrierId::Drain2 => "drain2",
            BarrierId::Routes => "routes",
            BarrierId::Flush => "flush",
            BarrierId::Scan => "scan",
        }
    }
}

/// A recovery-algorithm message. Every message carries the sender's
/// incarnation number `inc`; receivers drop stale incarnations and adopt
/// (restart into) newer ones, which implements the paper's
/// restart-on-additional-failure semantics.
#[derive(Clone, Debug, PartialEq)]
pub enum RecMsg {
    /// Drop the receiver into recovery and ask for a liveness reply.
    Ping {
        /// Sender's incarnation.
        inc: u32,
        /// Source route for the reply.
        reply_route: Vec<RouterId>,
    },
    /// Liveness acknowledgment: the replier successfully started its
    /// recovery code.
    PingReply {
        /// Replier's incarnation.
        inc: u32,
    },
    /// One dissemination-round state exchange.
    Exchange {
        /// Sender's incarnation.
        inc: u32,
        /// The dissemination round this vector belongs to.
        round: u32,
        /// The sender's current view (boxed: a `View` holds 1024-bit
        /// node sets, and inlining it would inflate every `RecMsg` — and
        /// every packet payload carrying one — to its size).
        view: Box<View>,
        /// The sender's round bound, once known (the BFT hint of §4.3).
        hint: Option<u32>,
        /// Source route back to the sender (lets receivers adopt previously
        /// unknown cwn partners).
        reply_route: Vec<RouterId>,
    },
    /// Barrier aggregation up the BFT.
    BarUp {
        /// Sender's incarnation.
        inc: u32,
        /// Which barrier.
        id: BarrierId,
        /// AND-aggregated vote (used by the drain agreement).
        ok: bool,
    },
    /// Barrier release down the BFT.
    BarDown {
        /// Sender's incarnation.
        inc: u32,
        /// Which barrier.
        id: BarrierId,
        /// The aggregated outcome.
        ok: bool,
    },
}

impl RecMsg {
    /// The incarnation this message belongs to.
    pub fn inc(&self) -> u32 {
        match self {
            RecMsg::Ping { inc, .. }
            | RecMsg::PingReply { inc }
            | RecMsg::Exchange { inc, .. }
            | RecMsg::BarUp { inc, .. }
            | RecMsg::BarDown { inc, .. } => *inc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_accessor() {
        assert_eq!(RecMsg::PingReply { inc: 3 }.inc(), 3);
        assert_eq!(
            RecMsg::Ping {
                inc: 7,
                reply_route: vec![]
            }
            .inc(),
            7
        );
        assert_eq!(
            RecMsg::BarUp {
                inc: 2,
                id: BarrierId::Flush,
                ok: true
            }
            .inc(),
            2
        );
        assert_eq!(
            RecMsg::BarDown {
                inc: 4,
                id: BarrierId::Scan,
                ok: false
            }
            .inc(),
            4
        );
        let ex = RecMsg::Exchange {
            inc: 9,
            round: 1,
            view: Box::new(View::new()),
            hint: None,
            reply_route: vec![],
        };
        assert_eq!(ex.inc(), 9);
    }

    #[test]
    fn barrier_order() {
        let ids = BarrierId::ALL;
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
