//! The system-state view exchanged during the information-dissemination
//! phase: the `LState` (link state) and `NState` (node state) vectors of
//! Section 4.3, plus the graph computations derived from a stabilized view
//! (closest-working-neighbor graph, dissemination round bound, breadth-first
//! tree for the barriers).

use flash_coherence::NodeSet;
use flash_net::{NodeId, RouterId, UGraph, MAX_SOURCE_HOPS};
use std::collections::BTreeSet;

/// A node's (partial) knowledge of the machine's health. Knowledge is
/// three-valued per component (up / down / unknown); `merge` is the join of
/// the knowledge lattice and is commutative, associative and idempotent, so
/// exchange order cannot matter.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct View {
    /// Nodes known to have answered a recovery ping.
    pub node_up: NodeSet,
    /// Nodes known failed (no ping response, or router dead).
    pub node_down: NodeSet,
    /// Links probed alive, as canonical `(min, max)` router pairs.
    pub links_up: BTreeSet<(u16, u16)>,
    /// Links probed dead.
    pub links_down: BTreeSet<(u16, u16)>,
}

fn canon(a: RouterId, b: RouterId) -> (u16, u16) {
    (a.0.min(b.0), a.0.max(b.0))
}

impl View {
    /// An empty (all-unknown) view.
    pub fn new() -> Self {
        View::default()
    }

    /// Records a node as up. Down-knowledge wins over up-knowledge on
    /// conflict (a node observed failed stays failed for this recovery).
    pub fn set_node_up(&mut self, n: NodeId) {
        if !self.node_down.contains(n) {
            self.node_up.insert(n);
        }
    }

    /// Records a node as down.
    pub fn set_node_down(&mut self, n: NodeId) {
        self.node_down.insert(n);
        self.node_up.remove(n);
    }

    /// Records a link as up.
    pub fn set_link_up(&mut self, a: RouterId, b: RouterId) {
        let k = canon(a, b);
        if !self.links_down.contains(&k) {
            self.links_up.insert(k);
        }
    }

    /// Records a link as down.
    pub fn set_link_down(&mut self, a: RouterId, b: RouterId) {
        let k = canon(a, b);
        self.links_down.insert(k);
        self.links_up.remove(&k);
    }

    /// Whether a link is known up.
    pub fn link_up(&self, a: RouterId, b: RouterId) -> bool {
        self.links_up.contains(&canon(a, b))
    }

    /// Merges another view into this one; returns whether anything changed.
    pub fn merge(&mut self, other: &View) -> bool {
        let before = self.clone();
        for n in other.node_down.iter() {
            self.set_node_down(n);
        }
        for n in other.node_up.iter() {
            self.set_node_up(n);
        }
        for &(a, b) in &other.links_down {
            self.set_link_down(RouterId(a), RouterId(b));
        }
        for &(a, b) in &other.links_up {
            self.set_link_up(RouterId(a), RouterId(b));
        }
        *self != before
    }

    /// Nodes known up.
    pub fn live_nodes(&self) -> NodeSet {
        self.node_up
    }

    /// Nodes known down.
    pub fn failed_nodes(&self) -> NodeSet {
        self.node_down
    }

    /// The deterministic root all nodes agree on: the lowest-id live node.
    pub fn root(&self) -> Option<NodeId> {
        self.node_up.first()
    }

    /// The closest-working-neighbor graph over *nodes*: A and B are
    /// neighbors iff some path of alive links connects their routers passing
    /// only through routers of failed nodes, within the source-route hop
    /// limit. Every node derives the same graph from a stabilized view.
    pub fn cwn_graph(&self, design: &UGraph) -> UGraph {
        let n = design.len();
        let mut g = UGraph::new(n);
        for a in 0..n as u16 {
            if !self.node_up.contains(NodeId(a)) {
                continue;
            }
            // BFS from a's router through failed-node routers only.
            let mut dist = vec![u32::MAX; n];
            let mut queue = std::collections::VecDeque::new();
            dist[a as usize] = 0;
            queue.push_back(a);
            while let Some(r) = queue.pop_front() {
                if dist[r as usize] as usize >= MAX_SOURCE_HOPS {
                    continue;
                }
                for &s in design.neighbors(r) {
                    if !self.link_up(RouterId(r), RouterId(s)) {
                        continue;
                    }
                    if dist[s as usize] != u32::MAX {
                        continue;
                    }
                    dist[s as usize] = dist[r as usize] + 1;
                    if self.node_up.contains(NodeId(s)) {
                        // Reached a working node: edge, do not pass through.
                        if s != a {
                            g.add_edge(a, s);
                        }
                    } else if self.node_down.contains(NodeId(s)) {
                        // Router of a failed node: traverse it.
                        queue.push_back(s);
                    }
                    // Unknown nodes are not traversed.
                }
            }
        }
        g
    }

    /// The source route from live node `a` to live node `b` along the
    /// shortest alive-link path through failed-node routers — the route the
    /// barrier and exchange messages take. `None` if not cwn-adjacent.
    pub fn route_between(&self, design: &UGraph, a: NodeId, b: NodeId) -> Option<Vec<RouterId>> {
        let n = design.len();
        let mut prev = vec![u16::MAX; n];
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[a.index()] = 0;
        queue.push_back(a.0);
        while let Some(r) = queue.pop_front() {
            if r == b.0 {
                break;
            }
            if dist[r as usize] as usize >= MAX_SOURCE_HOPS {
                continue;
            }
            for &s in design.neighbors(r) {
                if !self.link_up(RouterId(r), RouterId(s)) || dist[s as usize] != u32::MAX {
                    continue;
                }
                let is_target = s == b.0;
                let traversable = self.node_down.contains(NodeId(s));
                if is_target || traversable {
                    dist[s as usize] = dist[r as usize] + 1;
                    prev[s as usize] = r;
                    if is_target {
                        queue.clear();
                        queue.push_back(s);
                        break;
                    }
                    queue.push_back(s);
                }
            }
        }
        if dist[b.index()] == u32::MAX {
            return None;
        }
        let mut hops = Vec::new();
        let mut at = b.0;
        while at != a.0 {
            hops.push(RouterId(at));
            at = prev[at as usize];
            if at == u16::MAX {
                return None;
            }
        }
        hops.reverse();
        Some(hops)
    }

    /// The dissemination round bound: `2 h` where `h` is the height of the
    /// BFT rooted at the agreed root in the cwn graph (Section 4.3).
    pub fn round_bound(&self, design: &UGraph) -> u32 {
        let Some(root) = self.root() else { return 0 };
        let g = self.cwn_graph(design);
        let alive: Vec<bool> = (0..g.len() as u16)
            .map(|i| self.node_up.contains(NodeId(i)))
            .collect();
        2 * g.bft_height(root.0, &alive).unwrap_or(0)
    }

    /// A tighter linear-time diameter upper bound in the spirit of the
    /// paper's citation \[1\] (Aingworth, Chekuri, Motwani): a double BFS
    /// sweep finds a long path; the eccentricity of that path's midpoint —
    /// a near-central vertex — gives the bound `2·ecc(mid)`, usually much
    /// smaller than `2·ecc(root)` when the deterministic root (lowest live
    /// id) sits in a corner of the mesh. Still a sound upper bound on the
    /// diameter, since `2·ecc(v) >= diameter` for every vertex `v`.
    ///
    /// Costs three BFS traversals instead of one; every node computes the
    /// same value from a stabilized view.
    pub fn round_bound_center(&self, design: &UGraph) -> u32 {
        let Some(root) = self.root() else { return 0 };
        let g = self.cwn_graph(design);
        let alive: Vec<bool> = (0..g.len() as u16)
            .map(|i| self.node_up.contains(NodeId(i)))
            .collect();
        // Sweep 1: farthest live vertex `a` from the root (lowest id ties).
        let d0 = g.bfs_distances(root.0, &alive);
        let far = |dist: &[u32]| -> Option<u16> {
            let mut best: Option<(u32, u16)> = None;
            for (v, &d) in dist.iter().enumerate() {
                if d != u32::MAX && alive[v] {
                    let key = (d, u32::MAX - v as u32);
                    if best.is_none_or(|(bd, bv)| key > (bd, u32::MAX - bv as u32)) {
                        best = Some((d, v as u16));
                    }
                }
            }
            best.map(|(_, v)| v)
        };
        let Some(a) = far(&d0) else { return 0 };
        // Sweep 2: farthest vertex `b` from `a`; walk back to the midpoint.
        let da = g.bfs_distances(a, &alive);
        let Some(b) = far(&da) else { return 0 };
        let path_len = da[b as usize];
        // Midpoint candidates: vertices on the a-b shortest-path bisector
        // (da == path_len/2 and da + db == path_len). Compute the
        // eccentricity of a small deterministic sample and take the most
        // central — the bisector of a boundary-to-boundary path crosses the
        // graph's center on mesh-like topologies.
        let db = g.bfs_distances(b, &alive);
        let target = path_len / 2;
        let mut candidates: Vec<u16> = (0..g.len() as u16)
            .filter(|&v| {
                alive[v as usize]
                    && da[v as usize] == target
                    && db[v as usize] != u32::MAX
                    && da[v as usize] + db[v as usize] == path_len
            })
            .collect();
        if candidates.is_empty() {
            candidates.push(b);
        }
        // A deterministic spread over the bisector: up to 4 evenly spaced
        // candidates (the bisector is sorted by id, which on a row-major
        // mesh sweeps it end to end).
        let picks: Vec<u16> = if candidates.len() <= 4 {
            candidates.clone()
        } else {
            (0..4)
                .map(|i| candidates[i * (candidates.len() - 1) / 3])
                .collect()
        };
        let ecc_of = |v: u16| -> u32 {
            g.bfs_distances(v, &alive)
                .iter()
                .enumerate()
                .filter(|(u, &d)| alive[*u] && d != u32::MAX)
                .map(|(_, &d)| d)
                .max()
                .unwrap_or(0)
        };
        let best_ecc = picks.iter().map(|&v| ecc_of(v)).min().unwrap_or(0);
        // Never worse than the plain 2h bound; never below the observed
        // path length (a diameter lower bound).
        (2 * best_ecc).min(self.round_bound(design)).max(path_len)
    }

    /// The breadth-first tree over live nodes used by the barrier
    /// implementation; deterministic (ascending neighbor order), so every
    /// node computes the same tree from the same view.
    pub fn bft_tree(&self, design: &UGraph) -> Tree {
        let n = design.len();
        let mut tree = Tree {
            parent: vec![None; n],
            children: vec![Vec::new(); n],
            root: self.root(),
        };
        let Some(root) = self.root() else { return tree };
        let g = self.cwn_graph(design);
        let alive: Vec<bool> = (0..n as u16)
            .map(|i| self.node_up.contains(NodeId(i)))
            .collect();
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[root.index()] = true;
        queue.push_back(root.0);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if alive[v as usize] && !seen[v as usize] {
                    seen[v as usize] = true;
                    tree.parent[v as usize] = Some(NodeId(u));
                    tree.children[u as usize].push(NodeId(v));
                    queue.push_back(v);
                }
            }
        }
        tree
    }
}

/// A barrier tree over the live nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tree {
    /// Each node's parent (`None` for the root and non-members).
    pub parent: Vec<Option<NodeId>>,
    /// Each node's children.
    pub children: Vec<Vec<NodeId>>,
    /// The root, if any live node exists.
    pub root: Option<NodeId>,
}

impl Tree {
    /// Whether `n` is the tree root.
    pub fn is_root(&self, n: NodeId) -> bool {
        self.root == Some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_net::{Mesh2D, Topology};

    fn design(w: usize, h: usize) -> UGraph {
        let m = Mesh2D::new(w, h);
        UGraph::from_edges(m.num_routers(), m.links().iter().map(|l| (l.a.0, l.b.0)))
    }

    /// A fully healthy view of a w x h mesh.
    fn healthy(w: usize, h: usize) -> View {
        let m = Mesh2D::new(w, h);
        let mut v = View::new();
        for i in 0..m.num_nodes() as u16 {
            v.set_node_up(NodeId(i));
        }
        for l in m.links() {
            v.set_link_up(l.a, l.b);
        }
        v
    }

    #[test]
    fn merge_is_idempotent_and_down_wins() {
        let mut a = View::new();
        a.set_node_up(NodeId(1));
        let mut b = View::new();
        b.set_node_down(NodeId(1));
        assert!(a.merge(&b));
        assert!(a.node_down.contains(NodeId(1)));
        assert!(!a.node_up.contains(NodeId(1)));
        // Re-merging changes nothing.
        let b2 = b.clone();
        assert!(!a.merge(&b2));
        // Up-knowledge arriving later does not resurrect a down node.
        let mut c = View::new();
        c.set_node_up(NodeId(1));
        a.merge(&c);
        assert!(a.node_down.contains(NodeId(1)));
    }

    #[test]
    fn merge_links_down_wins() {
        let mut a = View::new();
        a.set_link_up(RouterId(0), RouterId(1));
        let mut b = View::new();
        b.set_link_down(RouterId(1), RouterId(0)); // reversed order, same link
        a.merge(&b);
        assert!(!a.link_up(RouterId(0), RouterId(1)));
        assert!(a.links_down.contains(&(0, 1)));
    }

    #[test]
    fn healthy_cwn_graph_is_the_mesh() {
        let v = healthy(3, 3);
        let g = v.cwn_graph(&design(3, 3));
        assert_eq!(g.num_edges(), design(3, 3).num_edges());
    }

    #[test]
    fn cwn_bridges_failed_nodes() {
        // 3x1 mesh, middle node failed (router up): 0 and 2 become cwn.
        let mut v = healthy(3, 1);
        v.set_node_down(NodeId(1));
        let g = v.cwn_graph(&design(3, 1));
        assert_eq!(g.neighbors(0), &[2]);
        let route = v
            .route_between(&design(3, 1), NodeId(0), NodeId(2))
            .unwrap();
        assert_eq!(route, vec![RouterId(1), RouterId(2)]);
    }

    #[test]
    fn dead_links_disconnect_cwn() {
        let mut v = healthy(3, 1);
        v.set_node_down(NodeId(1));
        v.set_link_down(RouterId(1), RouterId(2));
        let g = v.cwn_graph(&design(3, 1));
        assert!(g.neighbors(0).is_empty());
        assert_eq!(v.route_between(&design(3, 1), NodeId(0), NodeId(2)), None);
    }

    #[test]
    fn round_bound_on_healthy_mesh() {
        let v = healthy(4, 4);
        // Root 0 (corner): BFT height = 6, bound = 12 >= diameter 6.
        assert_eq!(v.round_bound(&design(4, 4)), 12);
    }

    #[test]
    fn tree_is_deterministic_and_spans_live_nodes() {
        let mut v = healthy(3, 3);
        v.set_node_down(NodeId(4)); // center
        let d = design(3, 3);
        let t1 = v.bft_tree(&d);
        let t2 = v.bft_tree(&d);
        assert_eq!(t1, t2);
        assert_eq!(t1.root, Some(NodeId(0)));
        assert!(t1.is_root(NodeId(0)));
        // All live nodes except the root have parents.
        for i in 0..9u16 {
            let n = NodeId(i);
            if v.node_up.contains(n) && i != 0 {
                assert!(t1.parent[n.index()].is_some(), "node {i} attached");
            }
        }
        // The failed node is not in the tree.
        assert!(t1.parent[4].is_none());
        assert!(t1.children[4].is_empty());
    }

    #[test]
    fn empty_view_has_no_root() {
        let v = View::new();
        assert_eq!(v.root(), None);
        assert_eq!(v.round_bound(&design(2, 2)), 0);
        assert_eq!(v.bft_tree(&design(2, 2)).root, None);
    }

    #[test]
    fn merge_commutes() {
        let mut a = View::new();
        a.set_node_up(NodeId(0));
        a.set_link_down(RouterId(0), RouterId(1));
        let mut b = View::new();
        b.set_node_down(NodeId(2));
        b.set_link_up(RouterId(1), RouterId(2));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }
}

#[cfg(test)]
mod center_bound_tests {
    use super::*;
    use flash_net::{Mesh2D, Topology};

    fn design(w: usize, h: usize) -> UGraph {
        let m = Mesh2D::new(w, h);
        UGraph::from_edges(m.num_routers(), m.links().iter().map(|l| (l.a.0, l.b.0)))
    }

    fn healthy(w: usize, h: usize) -> View {
        let m = Mesh2D::new(w, h);
        let mut v = View::new();
        for i in 0..m.num_nodes() as u16 {
            v.set_node_up(NodeId(i));
        }
        for l in m.links() {
            v.set_link_up(l.a, l.b);
        }
        v
    }

    #[test]
    fn center_bound_is_tighter_on_meshes() {
        // 16x8 mesh: corner-rooted 2h = 44; diameter = 22; the center
        // bound must sit in between and strictly improve on 2h.
        let v = healthy(16, 8);
        let d = design(16, 8);
        let plain = v.round_bound(&d);
        let center = v.round_bound_center(&d);
        let g = v.cwn_graph(&d);
        let alive = vec![true; 128];
        let diam = g.exact_diameter(&alive);
        assert_eq!(plain, 44);
        assert_eq!(diam, 22);
        assert!(center >= diam, "must remain a sound upper bound");
        assert!(center < plain, "and improve on 2h: {center} vs {plain}");
    }

    #[test]
    fn center_bound_sound_with_failures() {
        let mut v = healthy(6, 6);
        for dead in [7u16, 14, 21, 28] {
            v.set_node_down(NodeId(dead));
        }
        let d = design(6, 6);
        let g = v.cwn_graph(&d);
        let alive: Vec<bool> = (0..36u16)
            .map(|i| v.live_nodes().contains(NodeId(i)))
            .collect();
        let diam = g.exact_diameter(&alive);
        let center = v.round_bound_center(&d);
        assert!(center >= diam, "{center} >= {diam}");
        assert!(center <= v.round_bound(&d));
    }

    #[test]
    fn center_bound_trivial_cases() {
        let v = View::new();
        assert_eq!(v.round_bound_center(&design(2, 2)), 0);
        let mut single = View::new();
        single.set_node_up(NodeId(0));
        assert_eq!(single.round_bound_center(&design(2, 2)), 0);
    }
}
