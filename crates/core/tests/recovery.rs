//! End-to-end tests of the four-phase recovery algorithm on small machines.

use flash_core::{run_fault_experiment, ExperimentConfig, FaultKind};
use flash_machine::{FaultSpec, MachineParams};
use flash_net::{NodeId, RouterId};

fn tiny_cfg(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(MachineParams::tiny(), seed);
    cfg.fill_ops = 150;
    cfg.total_ops = 400;
    cfg
}

#[test]
fn node_failure_recovers_and_validates() {
    let outcome = run_fault_experiment(&tiny_cfg(1), FaultSpec::Node(NodeId(2)));
    assert!(outcome.finished, "machine quiesced");
    assert!(
        outcome.recovery.completed(),
        "recovery ran: {:?}",
        outcome.recovery
    );
    assert!(
        outcome.validation.passed(),
        "validation: {} overmarked={:?} corrupted={:?}",
        outcome.validation,
        &outcome.validation.overmarked[..outcome.validation.overmarked.len().min(5)],
        &outcome.validation.corrupted[..outcome.validation.corrupted.len().min(5)],
    );
    assert_eq!(outcome.recovery.nodes_resumed, 3);
    assert!(!outcome.recovery.machine_halted);
}

#[test]
fn router_failure_recovers_and_validates() {
    let outcome = run_fault_experiment(&tiny_cfg(2), FaultSpec::Router(RouterId(1)));
    assert!(
        outcome.passed(),
        "{:?} / {}",
        outcome.recovery,
        outcome.validation
    );
}

#[test]
fn link_failure_recovers_and_validates() {
    let outcome = run_fault_experiment(&tiny_cfg(3), FaultSpec::Link(RouterId(0), RouterId(1)));
    assert!(
        outcome.passed(),
        "{:?} / {}",
        outcome.recovery,
        outcome.validation
    );
    // No node died: everyone resumes.
    assert_eq!(outcome.recovery.nodes_resumed, 4);
}

#[test]
fn infinite_loop_recovers_and_validates() {
    let outcome = run_fault_experiment(&tiny_cfg(4), FaultSpec::InfiniteLoop(NodeId(3)));
    assert!(
        outcome.passed(),
        "{:?} / {}",
        outcome.recovery,
        outcome.validation
    );
    assert_eq!(outcome.recovery.nodes_resumed, 3);
}

#[test]
fn false_alarm_causes_no_data_loss() {
    let outcome = run_fault_experiment(&tiny_cfg(5), FaultSpec::FalseAlarm(NodeId(0)));
    assert!(
        outcome.passed(),
        "{:?} / {}",
        outcome.recovery,
        outcome.validation
    );
    // The sole effect of a false alarm is a brief interruption: nothing is
    // marked incoherent and all nodes resume.
    assert_eq!(outcome.recovery.lines_marked_incoherent, 0);
    assert_eq!(outcome.recovery.nodes_resumed, 4);
    assert_eq!(outcome.validation.marked_incoherent, 0);
}

#[test]
fn all_fault_kinds_on_table_5_1_machine() {
    // One run of each fault type on the paper's 8-node configuration.
    for (i, kind) in FaultKind::ALL.iter().enumerate() {
        let mut cfg = ExperimentConfig::new(MachineParams::table_5_1(), 100 + i as u64);
        cfg.fill_ops = 300;
        cfg.total_ops = 800;
        let fault = match kind {
            FaultKind::Node => FaultSpec::Node(NodeId(5)),
            FaultKind::Router => FaultSpec::Router(RouterId(6)),
            FaultKind::Link => FaultSpec::Link(RouterId(1), RouterId(2)),
            FaultKind::InfiniteLoop => FaultSpec::InfiniteLoop(NodeId(3)),
            FaultKind::FalseAlarm => FaultSpec::FalseAlarm(NodeId(2)),
        };
        let outcome = run_fault_experiment(&cfg, fault);
        assert!(
            outcome.passed(),
            "{kind:?}: finished={} recovery={:?} validation={}",
            outcome.finished,
            outcome.recovery,
            outcome.validation
        );
    }
}

#[test]
fn phase_times_are_ordered() {
    let outcome = run_fault_experiment(&tiny_cfg(7), FaultSpec::Node(NodeId(1)));
    let p = outcome.recovery.phases;
    let (p1, p12, p13, total) = (
        p.p1().unwrap(),
        p.p1_2().unwrap(),
        p.p1_3().unwrap(),
        p.total().unwrap(),
    );
    assert!(p1 <= p12 && p12 <= p13 && p13 <= total);
    assert!(total.as_millis_f64() > 0.0);
}
