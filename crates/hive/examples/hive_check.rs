use flash_core::RecoveryConfig;
use flash_hive::{run_parallel_make, HiveConfig, TaskState};
use flash_machine::{FaultSpec, MachineParams};
use flash_net::NodeId;

fn main() {
    let t0 = std::time::Instant::now();
    // Table 5.4 style: 8 cells, inject node failures at random victims.
    let mut ok = 0;
    let mut total = 0;
    for seed in 0..8u64 {
        let params = MachineParams::table_5_1();
        let victim = NodeId(1 + (seed % 7) as u16);
        let out = run_parallel_make(
            params,
            &HiveConfig::default(),
            RecoveryConfig::default(),
            Some(FaultSpec::Node(victim)),
            seed,
        );
        total += 1;
        let pass = out.finished && out.unaffected_all_completed();
        if pass {
            ok += 1;
        } else {
            println!(
                "seed {seed} victim {victim:?}: finished={} rec={} compiles={:?}",
                out.finished,
                out.recovery.completed(),
                out.compiles
                    .iter()
                    .map(|c| (c.cell, c.state, c.affected))
                    .collect::<Vec<_>>()
            );
        }
    }
    println!("table5.4-style: {ok}/{total} ok in {:?}", t0.elapsed());

    // Fig 5.7 style: HW+OS times for 2..16 cells (1 cell/node, 16MB/node).
    for n in [2usize, 4, 8, 16] {
        let mut params = MachineParams::table_5_1();
        params.n_nodes = n;
        params.mem_mb_per_node = 16;
        let hive = HiveConfig {
            n_cells: n,
            ..HiveConfig::default()
        };
        let out = run_parallel_make(
            params,
            &hive,
            RecoveryConfig::default(),
            Some(FaultSpec::Node(NodeId(1))),
            77,
        );
        println!(
            "n={n:3} hw={:?}ms os={:.2}ms total={:?}ms unaffected_ok={} reinit={}",
            out.recovery.phases.total().map(|d| d.as_millis_f64()),
            out.os_time.as_millis_f64(),
            out.suspension_time().map(|d| d.as_millis_f64()),
            out.unaffected_all_completed(),
            out.lines_reinitialized
        );
    }
    println!("host {:?}", t0.elapsed());
    let _ = TaskState::Completed;
}
