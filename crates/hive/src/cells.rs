//! Cell layout: partitioning the machine into failure units.
//!
//! Hive partitions the machine into *cells*, each a separate kernel managing
//! a hardware failure unit. The unit boundaries are chosen so that all
//! intra-cell coherence traffic stays within the unit's portion of the
//! interconnect (paper, Section 3.3); with contiguous node ranges on a
//! row-major mesh this holds for row-aligned cells, and trivially for
//! one-node cells (the configuration of the paper's experiments).

use flash_coherence::NodeSet;
use flash_net::NodeId;

/// A partition of the machine's nodes into cells (failure units).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellLayout {
    cells: Vec<NodeSet>,
    cell_of: Vec<u16>,
}

impl CellLayout {
    /// Partitions `n_nodes` nodes into `n_cells` contiguous, equally sized
    /// cells.
    ///
    /// # Panics
    ///
    /// Panics unless `n_cells` divides `n_nodes`.
    pub fn contiguous(n_nodes: usize, n_cells: usize) -> Self {
        assert!(
            n_cells > 0 && n_nodes.is_multiple_of(n_cells),
            "cells must divide nodes evenly"
        );
        let per = n_nodes / n_cells;
        let mut cells = Vec::with_capacity(n_cells);
        let mut cell_of = vec![0u16; n_nodes];
        for c in 0..n_cells {
            let mut set = NodeSet::new();
            for (i, slot) in cell_of.iter_mut().enumerate().skip(c * per).take(per) {
                set.insert(NodeId(i as u16));
                *slot = c as u16;
            }
            cells.push(set);
        }
        CellLayout { cells, cell_of }
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.cell_of.len()
    }

    /// The cell index a node belongs to.
    pub fn cell_of(&self, node: NodeId) -> usize {
        self.cell_of[node.index()] as usize
    }

    /// The nodes of one cell.
    pub fn members(&self, cell: usize) -> &NodeSet {
        &self.cells[cell]
    }

    /// All cells as failure-unit sets (for the recovery algorithm).
    pub fn units(&self) -> Vec<NodeSet> {
        self.cells.clone()
    }

    /// The cells that lost at least one member to the given failed set.
    pub fn failed_cells(&self, failed: &NodeSet) -> Vec<usize> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, set)| set.intersects(failed))
            .map(|(c, _)| c)
            .collect()
    }

    /// The lowest-id node of a cell (its "boot" node, running the cell's
    /// task or services).
    ///
    /// # Panics
    ///
    /// Panics if the cell index is out of range.
    pub fn boot_node(&self, cell: usize) -> NodeId {
        self.cells[cell].first().expect("cells are nonempty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_partition() {
        let l = CellLayout::contiguous(8, 4);
        assert_eq!(l.num_cells(), 4);
        assert_eq!(l.num_nodes(), 8);
        assert_eq!(l.cell_of(NodeId(0)), 0);
        assert_eq!(l.cell_of(NodeId(1)), 0);
        assert_eq!(l.cell_of(NodeId(2)), 1);
        assert_eq!(l.cell_of(NodeId(7)), 3);
        assert_eq!(l.members(1).len(), 2);
        assert_eq!(l.boot_node(2), NodeId(4));
    }

    #[test]
    fn one_node_cells() {
        let l = CellLayout::contiguous(8, 8);
        for i in 0..8u16 {
            assert_eq!(l.cell_of(NodeId(i)), i as usize);
            assert_eq!(l.boot_node(i as usize), NodeId(i));
        }
    }

    #[test]
    fn failed_cells_detection() {
        let l = CellLayout::contiguous(8, 4);
        let failed = NodeSet::singleton(NodeId(3));
        assert_eq!(l.failed_cells(&failed), vec![1]);
        let mut multi = NodeSet::singleton(NodeId(0));
        multi.insert(NodeId(7));
        assert_eq!(l.failed_cells(&multi), vec![0, 3]);
        assert!(l.failed_cells(&NodeSet::new()).is_empty());
    }

    #[test]
    fn units_cover_all_nodes_disjointly() {
        let l = CellLayout::contiguous(12, 3);
        let units = l.units();
        let mut seen = NodeSet::new();
        for u in &units {
            assert!(!seen.intersects(u), "disjoint");
            seen.union_with(u);
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    #[should_panic(expected = "evenly")]
    fn uneven_partition_panics() {
        let _ = CellLayout::contiguous(8, 3);
    }
}
