//! The end-to-end recovery experiments of Table 5.4 and Figure 5.7: a
//! parallel make running across Hive cells, a hardware fault injected
//! mid-run, hardware + OS recovery, and per-compile outcome accounting.

use crate::cells::CellLayout;
use crate::os::{self, HiveConfig};
use crate::task::{CompileTask, ServerLoop, TaskState};
use flash_core::{build_machine, FcMachine, RecoveryConfig, RecoveryReport};
use flash_machine::{FaultSpec, Idle, MachineParams};
use flash_net::NodeId;
use flash_sim::{RunOutcome, SimDuration};

/// The outcome of one compile in an end-to-end run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompileOutcome {
    /// The cell that ran the compile.
    pub cell: usize,
    /// Final task state.
    pub state: TaskState,
    /// Files completed.
    pub files_done: u32,
    /// Whether the compile had an essential dependency on a failed cell
    /// (its own cell or the file-server cell lost hardware).
    pub affected: bool,
}

/// The outcome of one end-to-end experiment run.
#[derive(Clone, Debug)]
pub struct EndToEndOutcome {
    /// Per-compile results (one per non-server cell).
    pub compiles: Vec<CompileOutcome>,
    /// Hardware recovery summary (empty `phases` when no fault fired).
    pub recovery: RecoveryReport,
    /// Modeled OS recovery time (scales with live cells, Section 4.6).
    pub os_time: SimDuration,
    /// Incoherent lines reinitialized by the OS page service.
    pub lines_reinitialized: u64,
    /// Whether the run reached a terminal state within its budget.
    pub finished: bool,
    /// FNV-1a hash of the merged structured trace at the end of the run
    /// ([`flash_obs::Recorder::merged_hash`]): the fork-determinism witness
    /// for end-to-end runs forked from a warm [`PreparedMake`].
    pub trace_hash: u64,
}

impl EndToEndOutcome {
    /// Compiles unaffected by the fault.
    pub fn unaffected(&self) -> impl Iterator<Item = &CompileOutcome> + '_ {
        self.compiles.iter().filter(|c| !c.affected)
    }

    /// The Table 5.4 success criterion: every compile not affected by the
    /// fault finished correctly.
    pub fn unaffected_all_completed(&self) -> bool {
        self.unaffected().all(|c| c.state == TaskState::Completed)
    }

    /// Duration user processes stayed suspended: hardware recovery plus OS
    /// recovery (the quantity of Figure 5.7).
    pub fn suspension_time(&self) -> Option<SimDuration> {
        Some(self.recovery.phases.total()? + self.os_time)
    }
}

/// Runs one end-to-end experiment: boot `cfg.n_cells` cells (cell 0 is the
/// file server), start one compile per client cell, optionally inject
/// `fault` mid-run, recover, run OS recovery, and account per-compile
/// outcomes.
pub fn run_parallel_make(
    params: MachineParams,
    hive: &HiveConfig,
    recovery: RecoveryConfig,
    fault: Option<FaultSpec>,
    seed: u64,
) -> EndToEndOutcome {
    let mut prep = prepare_parallel_make(params, hive, recovery, seed);
    if fault.is_some() {
        prep.warm();
    }
    finish_parallel_make(prep, fault)
}

/// A booted (and optionally warmed) parallel-make experiment: the machine
/// with server and compile workloads installed and started, plus the cell
/// layout needed to account outcomes.
///
/// Cloning a `PreparedMake` is the end-to-end checkpoint: warm one with
/// [`PreparedMake::warm`], then [`PreparedMake::fork`] one copy per fault —
/// each fork, driven through [`finish_parallel_make`], produces a trace
/// hash bit-identical to a from-scratch run with the same seed.
#[derive(Clone, Debug)]
pub struct PreparedMake {
    m: FcMachine,
    layout: CellLayout,
    client_nodes: Vec<NodeId>,
    hive: HiveConfig,
}

impl PreparedMake {
    /// Runs the machine until any compile reaches ~30% of its operations —
    /// [`run_parallel_make`]'s injection point. Idempotent once the
    /// threshold is reached.
    pub fn warm(&mut self) {
        self.warm_to_percent(30);
    }

    /// Runs the machine until the make is `pct`% done — mean compile
    /// progress across client cells (summed operations against the summed
    /// budget, so one fast or slow client does not skew the injection
    /// point). The paper injects faults at random times while the benchmark
    /// runs; sweeps stratify that over several progress points,
    /// checkpointing at each rung of the ladder (a deeper rung shares a
    /// longer prelude across its forks). Idempotent once the threshold is
    /// reached, so warming a machine rung by rung leaves it in exactly the
    /// state a single `warm_to_percent` call would have.
    pub fn warm_to_percent(&mut self, pct: u32) {
        let total_budget = self.hive.ops_per_task() * self.client_nodes.len() as u64;
        let inject_threshold = total_budget * u64::from(pct) / 100;
        let mut guard = 0;
        loop {
            let done: u64 = self
                .client_nodes
                .iter()
                .map(|c| self.m.st().nodes[c.index()].workload.progress())
                .sum();
            if done >= inject_threshold {
                break;
            }
            self.m.run_for(SimDuration::from_micros(50));
            guard += 1;
            if guard > 2_000_000 {
                break;
            }
        }
    }

    /// Deep-copies the warm experiment — one fork per fault to amortize the
    /// boot + warm-up prelude across a sweep.
    pub fn fork(&self) -> PreparedMake {
        self.clone()
    }

    /// Read access to the underlying machine (inspection).
    pub fn machine(&self) -> &FcMachine {
        &self.m
    }

    /// Consumes the prepared experiment, returning the machine (custom
    /// drivers that need more control than [`finish_parallel_make`]).
    pub fn into_machine(self) -> FcMachine {
        self.m
    }
}

/// Boots the parallel-make experiment: builds the machine, computes
/// placement, installs the server and compile workloads and starts every
/// processor. No warm-up is run — call [`PreparedMake::warm`] before
/// injecting a fault (matching [`run_parallel_make`]'s behavior).
pub fn prepare_parallel_make(
    params: MachineParams,
    hive: &HiveConfig,
    recovery: RecoveryConfig,
    seed: u64,
) -> PreparedMake {
    let layout = CellLayout::contiguous(params.n_nodes, hive.n_cells);
    let server = layout.boot_node(0);

    // Build with idle workloads; real workloads are installed after
    // placement is computed (they need the shared-region addresses).
    let mut m: FcMachine = build_machine(params, recovery, |_| Box::new(Idle), seed);
    let placement = os::configure(&mut m, &layout, hive);

    let lines_per_node = m.st().layout.lines_per_node();
    let client_nodes: Vec<NodeId> = (1..hive.n_cells).map(|c| layout.boot_node(c)).collect();
    // Every node hosts a slice of its cell's kernel; peers poll the first
    // kernel line of every other node (Hive cells read each other's kernel
    // structures, and a cell's own kernel spans all its nodes — Section
    // 3.3). This is also what detects failures of non-boot cell members.
    let kernel_line = |node: NodeId| os::own_region(node, lines_per_node, params.protected_lines).0;
    {
        let st = m.st_mut();
        let n_all = params.n_nodes;
        let peers_of = move |me: NodeId| -> Vec<u64> {
            (0..n_all)
                .map(|i| NodeId(i as u16))
                .filter(|&b| b != me)
                .map(kernel_line)
                .collect()
        };
        // The server's background activity also dirties the shared file
        // data, creating cross-cell recall traffic.
        st.nodes[server.index()].workload =
            Box::new(ServerLoop::new(placement.server_data, 20_000).with_monitor(peers_of(server)));
        for &client in &client_nodes {
            let own = os::own_region(client, lines_per_node, params.protected_lines);
            let task = CompileTask::new(
                server,
                hive.files_per_task,
                hive.blocks_per_file,
                hive.out_blocks,
                hive.compute_ns,
                placement.server_data,
                own,
                hive.cross_writes.then_some(placement.scratch),
            )
            .with_monitor(peers_of(client));
            st.nodes[client.index()].workload = Box::new(task);
        }
    }
    m.set_event_budget(4_000_000_000);
    m.start();

    PreparedMake {
        m,
        layout,
        client_nodes,
        hive: *hive,
    }
}

/// Drives a booted (and, for fault runs, warmed) experiment to its terminal
/// state: optional fault injection, hardware recovery, OS recovery and
/// per-compile outcome accounting.
pub fn finish_parallel_make(prep: PreparedMake, fault: Option<FaultSpec>) -> EndToEndOutcome {
    let PreparedMake {
        mut m,
        layout,
        client_nodes,
        hive,
    } = prep;

    if let Some(spec) = fault.clone() {
        m.schedule_fault(m.now() + SimDuration::from_nanos(1), spec);
    }

    // Run until every compile reaches a terminal state (its processor halts
    // or dies). The server loop never halts, so poll with horizons. When a
    // fault was injected, additionally wait for the (background kernel
    // monitoring) traffic to detect it and for recovery to complete — up to
    // a detection budget, since an unreferenced dead link can legitimately
    // stay latent.
    let mut finished = false;
    let mut detect_wait = 0u32;
    let budget = 400_000; // x 50us = 20s of simulated time
    for _ in 0..budget {
        let out = m.run_for(SimDuration::from_micros(50));
        let all_done = client_nodes.iter().all(|c| {
            let n = &m.st().nodes[c.index()];
            !n.is_alive()
                || matches!(
                    n.proc,
                    flash_machine::ProcState::Halted | flash_machine::ProcState::Dead
                )
        });
        if all_done && !m.ext().recovery_active() {
            let fault_pending = fault.is_some() && !m.ext().report.completed();
            if fault_pending && detect_wait < 10_000 {
                detect_wait += 1; // up to 500ms of simulated detection time
                continue;
            }
            finished = true;
            break;
        }
        if out == RunOutcome::Drained {
            finished = true;
            break;
        }
    }

    // OS recovery (Section 4.6): page reinitialization + modeled cost.
    let failed_cells = layout.failed_cells(&m.st().failed_nodes);
    {
        let now = m.now();
        let st = m.st_mut();
        for &cell in &failed_cells {
            st.obs.record(
                flash_obs::Domain::Hive,
                now,
                flash_obs::TraceEvent::HiveCell {
                    cell: cell as u16,
                    what: "cell_failed",
                    value: layout.members(cell).len() as u64,
                },
            );
        }
    }
    let lines_reinitialized = if fault.is_some() {
        os::os_recover(&mut m)
    } else {
        0
    };
    let live_cells = hive.n_cells - failed_cells.len();
    let os_time = if fault.is_some() {
        hive.os_recovery_time(live_cells)
    } else {
        SimDuration::ZERO
    };

    let server_failed = failed_cells.contains(&0);
    let compiles = client_nodes
        .iter()
        .enumerate()
        .map(|(i, &node)| {
            let cell = i + 1;
            let (state, files_done) = os::task_result(&m, node).unwrap_or((TaskState::Running, 0));
            CompileOutcome {
                cell,
                state,
                files_done,
                affected: server_failed || failed_cells.contains(&cell),
            }
        })
        .collect();

    EndToEndOutcome {
        compiles,
        recovery: m.ext().report.clone(),
        os_time,
        lines_reinitialized,
        finished,
        trace_hash: m.st().obs.merged_hash(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_hive() -> (MachineParams, HiveConfig) {
        let mut params = MachineParams::table_5_1();
        params.n_nodes = 4;
        let hive = HiveConfig {
            n_cells: 4,
            files_per_task: 2,
            blocks_per_file: 16,
            out_blocks: 8,
            compute_ns: 10_000,
            ..HiveConfig::default()
        };
        (params, hive)
    }

    #[test]
    fn fault_free_make_completes_everything() {
        let (params, hive) = small_hive();
        let out = run_parallel_make(params, &hive, RecoveryConfig::default(), None, 1);
        assert!(out.finished);
        assert_eq!(out.compiles.len(), 3);
        for c in &out.compiles {
            assert_eq!(c.state, TaskState::Completed, "{c:?}");
            assert!(!c.affected);
        }
        assert!(out.unaffected_all_completed());
        assert!(!out.recovery.completed(), "no recovery without a fault");
        assert_eq!(out.os_time, SimDuration::ZERO);
    }

    #[test]
    fn client_cell_failure_spares_other_compiles() {
        let (params, hive) = small_hive();
        // Kill cell 2's node (a client).
        let out = run_parallel_make(
            params,
            &hive,
            RecoveryConfig::default(),
            Some(FaultSpec::Node(NodeId(2))),
            2,
        );
        assert!(out.finished);
        assert!(out.recovery.completed(), "{:?}", out.recovery);
        let affected: Vec<usize> = out
            .compiles
            .iter()
            .filter(|c| c.affected)
            .map(|c| c.cell)
            .collect();
        assert_eq!(affected, vec![2]);
        assert!(out.unaffected_all_completed(), "{:?}", out.compiles);
        assert!(out.suspension_time().is_some());
    }

    #[test]
    fn server_cell_failure_affects_all_compiles() {
        let (params, hive) = small_hive();
        let out = run_parallel_make(
            params,
            &hive,
            RecoveryConfig::default(),
            Some(FaultSpec::Node(NodeId(0))),
            3,
        );
        assert!(out.finished);
        assert!(out.compiles.iter().all(|c| c.affected));
        // Vacuously true: there are no unaffected compiles.
        assert!(out.unaffected_all_completed());
    }
}
