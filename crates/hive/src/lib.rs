//! # flash-hive — a Hive-like cell operating-system model
//!
//! The operating-system half of the fault-containment story (paper,
//! Sections 3.3, 4.6 and 5): Hive partitions the machine into *cells*, each
//! a kernel managing one hardware failure unit, and applies resource
//! placement and protection policies so that most faults stay confined to
//! the cells whose hardware failed.
//!
//! This crate models those policies on top of the `flash-*` substrate:
//!
//! * [`CellLayout`] — failure-unit partitioning;
//! * [`os::configure`] — firewall ACLs (cell-private pages), I/O guards
//!   (no cross-cell uncached I/O except the exported RPC mailbox), and
//!   failure-unit registration with the recovery algorithm;
//! * [`CompileTask`] / [`ServerLoop`] — the parallel-make workload of the
//!   end-to-end experiments (one compile per cell, a file-server cell,
//!   file data moved through shared memory, RPCs for open/close);
//! * [`os::os_recover`] — the post-recovery OS pass: reinitializing pages
//!   with incoherent lines via the MAGIC service and terminating tasks
//!   with dependencies on failed cells;
//! * [`run_parallel_make`] — the Table 5.4 / Figure 5.7 harness.
//!
//! # Examples
//!
//! ```no_run
//! use flash_hive::{run_parallel_make, HiveConfig};
//! use flash_core::RecoveryConfig;
//! use flash_machine::{FaultSpec, MachineParams};
//! use flash_net::NodeId;
//!
//! // 8 cells, one compile each; kill cell 3's node mid-run.
//! let params = MachineParams::table_5_1();
//! let out = run_parallel_make(
//!     params,
//!     &HiveConfig::default(),
//!     RecoveryConfig::default(),
//!     Some(FaultSpec::Node(NodeId(3))),
//!     42,
//! );
//! assert!(out.unaffected_all_completed());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cells;
mod experiment;
pub mod os;
mod task;

pub use cells::CellLayout;
pub use experiment::{
    finish_parallel_make, prepare_parallel_make, run_parallel_make, CompileOutcome,
    EndToEndOutcome, PreparedMake,
};
pub use os::{HiveConfig, HivePlacement};
pub use task::{CompileTask, RpcAudit, ServerLoop, TaskState};
