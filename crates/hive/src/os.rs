//! The Hive operating-system model: cell configuration, resource placement
//! policies and OS-level recovery (paper, Sections 3.3 and 4.6).
//!
//! Hive itself is a full IRIX-derived kernel; what the hardware
//! fault-containment experiments need from it are its *policies*, which this
//! module applies to a machine:
//!
//! * each cell keeps kernel data in its own failure unit and restricts the
//!   firewall so only cell members can write its pages;
//! * uncached I/O from outside the failure unit is refused ([`flash_magic::IoGuard`]),
//!   except for the file server's exported RPC mailbox;
//! * the recovery algorithm is told the failure-unit boundaries, so a cell
//!   that loses any member is cleanly shut down as a whole;
//! * after hardware recovery, the OS adjusts its structures (modeled as a
//!   per-cell time cost), reinitializes pages containing incoherent lines
//!   through the MAGIC service, and terminates tasks with essential
//!   dependencies on failed cells.

use crate::cells::CellLayout;
use crate::task::{CompileTask, TaskState};
use flash_coherence::{NodeSet, LINES_PER_PAGE};
use flash_core::FcMachine;
use flash_net::NodeId;
use flash_sim::SimDuration;

/// Parameters of the Hive model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HiveConfig {
    /// Number of cells (must divide the node count).
    pub n_cells: usize,
    /// Files each compile task processes.
    pub files_per_task: u32,
    /// File blocks read from the server per file.
    pub blocks_per_file: u32,
    /// Output blocks written locally per file.
    pub out_blocks: u32,
    /// Compute burst per file, ns.
    pub compute_ns: u64,
    /// Whether tasks also write a firewall-opened scratch line on the
    /// server (cross-cell write traffic for the firewall experiments).
    pub cross_writes: bool,
    /// OS recovery fixed cost, uncached instructions.
    pub os_base_instr: u64,
    /// OS recovery cost per live cell, uncached instructions (the paper
    /// notes OS recovery scales with the number of cells).
    pub os_per_cell_instr: u64,
    /// Nanoseconds per uncached instruction.
    pub uncached_instr_ns: u64,
}

impl Default for HiveConfig {
    fn default() -> Self {
        HiveConfig {
            n_cells: 8,
            files_per_task: 4,
            blocks_per_file: 64,
            out_blocks: 32,
            compute_ns: 50_000,
            cross_writes: false,
            os_base_instr: 50_000,
            os_per_cell_instr: 20_000,
            uncached_instr_ns: 400,
        }
    }
}

impl HiveConfig {
    /// Expected workload operations per compile task.
    pub fn ops_per_task(&self) -> u64 {
        let per_file = 2 // open + close RPCs
            + self.blocks_per_file as u64
            + 1 // compute
            + self.out_blocks as u64
            + u64::from(self.cross_writes);
        self.files_per_task as u64 * per_file
    }

    /// The modeled OS-recovery duration for `live_cells` surviving cells.
    pub fn os_recovery_time(&self, live_cells: usize) -> SimDuration {
        SimDuration::from_nanos(
            (self.os_base_instr + self.os_per_cell_instr * live_cells as u64)
                * self.uncached_instr_ns,
        )
    }
}

/// Ranges of the per-node address space used by the workload model.
#[derive(Clone, Copy, Debug)]
pub struct HivePlacement {
    /// Server-homed lines holding shared file data.
    pub server_data: (u64, u64),
    /// The firewall-opened scratch line on the server.
    pub scratch: u64,
}

/// Applies Hive's placement and protection policies to a machine:
/// failure units, firewalls, I/O guards. Returns the shared-region
/// placement used by the tasks.
pub fn configure(m: &mut FcMachine, layout: &CellLayout, _cfg: &HiveConfig) -> HivePlacement {
    let n_nodes = m.st().num_nodes();
    assert_eq!(
        layout.num_nodes(),
        n_nodes,
        "cell layout must match machine"
    );
    // Failure units drive clean cell shutdown in the recovery algorithm.
    m.ext_mut().set_failure_units(layout.units());
    {
        let now = m.now();
        let st = m.st_mut();
        for cell in 0..layout.num_cells() {
            st.obs.record(
                flash_obs::Domain::Hive,
                now,
                flash_obs::TraceEvent::HiveCell {
                    cell: cell as u16,
                    what: "cell_configured",
                    value: layout.boot_node(cell).0 as u64,
                },
            );
        }
    }

    let lines_per_node = m.st().layout.lines_per_node();
    let pages_per_node = lines_per_node / LINES_PER_PAGE;
    let server = layout.boot_node(0);

    for i in 0..n_nodes {
        let node = NodeId(i as u16);
        let cell = layout.cell_of(node);
        let members = *layout.members(cell);
        // Firewall: all pages of this node writable only by cell members.
        let base_page = i as u64 * pages_per_node;
        {
            let st = m.st_mut();
            for p in 0..pages_per_node {
                st.nodes[i]
                    .firewall
                    .restrict(flash_coherence::PageAddr(base_page + p), members);
            }
            // I/O guard: only cell members may touch local devices; the file
            // server's RPC mailbox is deliberately exported to every cell
            // (its exactly-once semantics are provided end-to-end by the
            // Hive RPC subsystem, Section 3.3).
            if node == server {
                st.nodes[i]
                    .io_guard
                    .set_allowed(NodeSet::all_below(n_nodes));
            } else {
                st.nodes[i].io_guard.set_allowed(members);
            }
        }
    }

    // Shared file-data region: the first quarter of the server's memory
    // (below the vector-range replica concerns: start after the first page).
    let server_base = server.index() as u64 * lines_per_node;
    let data_lo = server_base + LINES_PER_PAGE;
    let data_hi = server_base + (lines_per_node / 4).max(LINES_PER_PAGE * 2);
    // Scratch line on its own page, opened to all cells.
    let scratch_line = data_hi;
    {
        let st = m.st_mut();
        st.nodes[server.index()].firewall.restrict(
            flash_coherence::LineAddr(scratch_line).page(),
            NodeSet::all_below(n_nodes),
        );
    }
    HivePlacement {
        server_data: (data_lo, data_hi),
        scratch: scratch_line,
    }
}

/// The private output region of a cell's boot node (its own memory, away
/// from the vector replica and the MAGIC-protected tail).
pub fn own_region(node: NodeId, lines_per_node: u64, protected_lines: u64) -> (u64, u64) {
    let base = node.index() as u64 * lines_per_node;
    let lo = base + LINES_PER_PAGE;
    let hi = base + lines_per_node - protected_lines;
    (lo, hi)
}

/// The OS-level recovery pass of Section 4.6, run after the hardware
/// recovery interrupt: reinitializes pages with incoherent lines through
/// the MAGIC service and acknowledges the interrupt. Returns the number of
/// lines reinitialized.
pub fn os_recover(m: &mut FcMachine) -> u64 {
    let mut cleared = 0;
    let now = m.now();
    let n = m.st().num_nodes();
    for i in 0..n {
        if !m.st().nodes[i].is_alive() {
            continue;
        }
        // The directory maintains a sorted incoherent-line index, so this
        // costs O(marked) per node rather than a full O(lines) scan — at
        // sweep scale the scan dominated the whole OS-recovery pass.
        let incoherent: Vec<flash_coherence::LineAddr> =
            m.st().nodes[i].dir.incoherent_lines().to_vec();
        let st = m.st_mut();
        for line in incoherent {
            // The page is reinitialized with fresh data; the oracle tracks
            // the reinitialization as a store so later validation stays
            // consistent.
            let fresh = st.oracle.expected_version(line).next();
            st.oracle.record_store(line, fresh);
            let ok = st.nodes[i].dir.clear_incoherent(line, fresh);
            debug_assert!(ok);
            cleared += 1;
        }
        st.nodes[i].os_interrupt_pending = false;
    }
    m.st_mut().obs.record(
        flash_obs::Domain::Hive,
        now,
        flash_obs::TraceEvent::OsEvent {
            what: "os_recover_lines",
            value: cleared,
        },
    );
    cleared
}

/// Reads a compile task's final state from a machine node's workload.
/// Returns `None` for nodes not running a [`CompileTask`].
pub fn task_result(m: &FcMachine, node: NodeId) -> Option<(TaskState, u32)> {
    let any = m.st().nodes[node.index()].workload.as_any()?;
    let task = any.downcast_ref::<CompileTask>()?;
    Some((task.state(), task.files_done()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_per_task_counts_stages() {
        let cfg = HiveConfig {
            files_per_task: 2,
            blocks_per_file: 3,
            out_blocks: 2,
            cross_writes: false,
            ..HiveConfig::default()
        };
        // Per file: open + 3 reads + compute + 2 writes + close = 8.
        assert_eq!(cfg.ops_per_task(), 16);
        let with_cross = HiveConfig {
            cross_writes: true,
            ..cfg
        };
        assert_eq!(with_cross.ops_per_task(), 18);
    }

    #[test]
    fn os_recovery_time_scales_with_cells() {
        let cfg = HiveConfig::default();
        let t2 = cfg.os_recovery_time(2);
        let t16 = cfg.os_recovery_time(16);
        assert!(t16 > t2);
        let delta = t16.as_nanos() - t2.as_nanos();
        assert_eq!(delta, 14 * cfg.os_per_cell_instr * cfg.uncached_instr_ns);
    }

    #[test]
    fn own_region_avoids_vectors_and_magic_tail() {
        let (lo, hi) = own_region(NodeId(2), 8192, 64);
        assert_eq!(lo, 2 * 8192 + 32);
        assert_eq!(hi, 3 * 8192 - 64);
    }
}
