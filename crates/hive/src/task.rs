//! The parallel-make workload model (paper, Section 5.1).
//!
//! The end-to-end experiments run a parallel make that compiles one file per
//! cell, with one cell acting as the file server; the Hive file system
//! transfers file data across cell boundaries through shared memory, so the
//! benchmark "generates a large amount of coherence traffic". Each
//! [`CompileTask`] models one compile:
//!
//! 1. RPC to the file server to open the source file (an uncached operation
//!    with exactly-once semantics);
//! 2. read the file's blocks from server-homed shared-memory pages;
//! 3. compute;
//! 4. write the output to pages of its own cell (and occasionally to an
//!    explicitly opened scratch page on the server, exercising the
//!    firewall's cross-cell write path);
//! 5. RPC to the server to close/commit; repeat per file.
//!
//! A bus error at any point (incoherent line, dead home, unresolved RPC)
//! marks the task *failed*; Hive's OS recovery then decides whether the
//! failure was expected (a dependency on a failed cell) or not.

use flash_coherence::LineAddr;
use flash_machine::{OpResult, ProcOp, Workload};
use flash_net::NodeId;
use flash_sim::DetRng;

/// Completion state of a compile task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskState {
    /// Still executing.
    Running,
    /// All files compiled successfully.
    Completed,
    /// Terminated by a bus error (details in `first_error`).
    Failed,
}

/// Client-side accounting of the exactly-once Hive RPC protocol (Section
/// 3.3): every RPC the task issues is tracked through its outcome, so a
/// campaign invariant can check that recovery neither lost nor duplicated
/// a logical RPC.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RpcAudit {
    /// RPC operations issued, *including* retransmissions of attempts cut
    /// by a recovery.
    pub attempts: u64,
    /// RPC operations that completed successfully — exactly one per
    /// logical RPC under exactly-once semantics.
    pub completed: u64,
    /// Attempts whose outcome was unresolved across a recovery (each is
    /// followed by exactly one retransmission).
    pub unresolved: u64,
    /// Logical RPCs a fully-completed task performs (open + close per
    /// file).
    pub expected: u64,
}

impl RpcAudit {
    /// The accounting identity at quiescence: every attempt either
    /// completed or was cut by recovery and retransmitted. Mid-run (or
    /// when the issuing processor died) one attempt may still be in
    /// flight.
    pub fn balanced(&self, in_flight_slack: u64) -> bool {
        self.attempts >= self.completed + self.unresolved
            && self.attempts - (self.completed + self.unresolved) <= in_flight_slack
    }
}

/// One modeled compile job. See the module docs.
#[derive(Clone, Debug)]
pub struct CompileTask {
    server: NodeId,
    files_total: u32,
    blocks_per_file: u32,
    out_blocks: u32,
    compute_ns: u64,
    /// Server-homed lines holding file data (read-shared across cells).
    server_data: (u64, u64),
    /// Lines owned by this task's cell (written privately).
    own_data: (u64, u64),
    /// A server-homed scratch line writable by everyone (firewall-opened);
    /// `None` disables cross-cell writes.
    scratch: Option<u64>,
    /// Kernel lines of peer cells, polled periodically: Hive cells read
    /// each other's kernel structures (read-only), which both models that
    /// traffic and provides fault-detection references. Bus errors on
    /// monitor reads are handled by the kernel and do not kill the task.
    monitor: Vec<u64>,
    // progress
    file_idx: u32,
    step: Step,
    state: TaskState,
    ops_done: u64,
    first_error: Option<flash_magic::BusError>,
    last_was_monitor: bool,
    last_was_rpc: bool,
    rpc_retry_pending: bool,
    ops_issued: u64,
    rpc: RpcAudit,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Step {
    Open,
    Read(u32),
    Compute,
    Write(u32),
    CrossWrite,
    Close,
}

impl CompileTask {
    /// Creates a compile task.
    ///
    /// # Panics
    ///
    /// Panics if either line range is empty.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        server: NodeId,
        files_total: u32,
        blocks_per_file: u32,
        out_blocks: u32,
        compute_ns: u64,
        server_data: (u64, u64),
        own_data: (u64, u64),
        scratch: Option<u64>,
    ) -> Self {
        assert!(server_data.0 < server_data.1 && own_data.0 < own_data.1);
        CompileTask {
            server,
            files_total,
            blocks_per_file,
            out_blocks,
            compute_ns,
            server_data,
            own_data,
            scratch,
            monitor: Vec::new(),
            file_idx: 0,
            step: Step::Open,
            state: TaskState::Running,
            ops_done: 0,
            first_error: None,
            last_was_monitor: false,
            last_was_rpc: false,
            rpc_retry_pending: false,
            ops_issued: 0,
            rpc: RpcAudit {
                expected: 2 * files_total as u64,
                ..RpcAudit::default()
            },
        }
    }

    /// Installs the peer-cell kernel lines polled between task operations.
    pub fn with_monitor(mut self, peer_kernel_lines: Vec<u64>) -> Self {
        self.monitor = peer_kernel_lines;
        self
    }

    /// The task's completion state.
    pub fn state(&self) -> TaskState {
        self.state
    }

    /// Files fully compiled.
    pub fn files_done(&self) -> u32 {
        self.file_idx
    }

    /// The first bus error that killed the task, if any.
    pub fn first_error(&self) -> Option<flash_magic::BusError> {
        self.first_error
    }

    /// The exactly-once RPC accounting for this task.
    pub fn rpc_audit(&self) -> RpcAudit {
        self.rpc
    }

    fn pick(&self, range: (u64, u64), rng: &mut DetRng) -> LineAddr {
        LineAddr(rng.range_inclusive(range.0, range.1 - 1))
    }
}

impl Workload for CompileTask {
    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn progress(&self) -> u64 {
        self.ops_done
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn next_op(&mut self, _node: NodeId, rng: &mut DetRng) -> ProcOp {
        // An RPC whose outcome was unresolved across a recovery is
        // retransmitted by the end-to-end Hive RPC protocol (Section 3.3;
        // sequence numbers at the server deduplicate re-executions). This
        // covers the final close too: a task is only allowed to halt once
        // its last RPC is acknowledged.
        if self.rpc_retry_pending && self.state != TaskState::Failed {
            self.ops_issued += 1;
            self.rpc_retry_pending = false;
            self.last_was_monitor = false;
            self.last_was_rpc = true;
            self.rpc.attempts += 1;
            return ProcOp::UncachedRead { dev: self.server };
        }
        if self.state != TaskState::Running {
            return ProcOp::Halt;
        }
        self.ops_issued += 1;
        // Every 16th operation is an inter-cell kernel monitor read.
        if !self.monitor.is_empty() && self.ops_issued.is_multiple_of(16) {
            self.last_was_monitor = true;
            self.last_was_rpc = false;
            return ProcOp::Read(LineAddr(line_pick(&self.monitor, rng)));
        }
        self.last_was_monitor = false;
        self.last_was_rpc = matches!(self.step, Step::Open | Step::Close);
        if self.last_was_rpc {
            self.rpc.attempts += 1;
        }
        match self.step {
            Step::Open => {
                self.step = Step::Read(0);
                ProcOp::UncachedRead { dev: self.server }
            }
            Step::Read(i) => {
                self.step = if i + 1 < self.blocks_per_file {
                    Step::Read(i + 1)
                } else {
                    Step::Compute
                };
                ProcOp::Read(self.pick(self.server_data, rng))
            }
            Step::Compute => {
                self.step = Step::Write(0);
                ProcOp::Compute(self.compute_ns)
            }
            Step::Write(i) => {
                self.step = if i + 1 < self.out_blocks {
                    Step::Write(i + 1)
                } else if self.scratch.is_some() {
                    Step::CrossWrite
                } else {
                    Step::Close
                };
                ProcOp::Write(self.pick(self.own_data, rng))
            }
            Step::CrossWrite => {
                self.step = Step::Close;
                ProcOp::Write(LineAddr(self.scratch.expect("checked")))
            }
            Step::Close => {
                self.step = Step::Open;
                self.file_idx += 1;
                if self.file_idx >= self.files_total {
                    self.state = TaskState::Completed;
                    // The close RPC of the final file still executes.
                }
                ProcOp::UncachedRead { dev: self.server }
            }
        }
    }

    fn on_result(&mut self, _node: NodeId, result: OpResult) {
        self.ops_done += 1;
        match result {
            OpResult::Ok(_) => {
                if self.last_was_rpc {
                    self.rpc.completed += 1;
                }
            }
            OpResult::BusError(err) => {
                if self.last_was_monitor {
                    // Kernel-handled: reading a failed cell's structures
                    // after recovery raises a bus error the kernel absorbs.
                    return;
                }
                if self.last_was_rpc
                    && matches!(err, flash_magic::BusError::UncachedUnresolved)
                    && self.state != TaskState::Failed
                {
                    // The RPC's fate is unknown after recovery: the
                    // end-to-end protocol retransmits it.
                    self.rpc.unresolved += 1;
                    self.rpc_retry_pending = true;
                    return;
                }
                if self.first_error.is_none() {
                    self.first_error = Some(err);
                }
                self.state = TaskState::Failed;
            }
        }
    }
}

/// Picks a uniformly random element of a nonempty slice.
fn line_pick(lines: &[u64], rng: &mut DetRng) -> u64 {
    *rng.choose(lines).expect("nonempty")
}

/// The file-server workload: services RPCs passively (uncached reads hit
/// its I/O device) while keeping its kernel structures warm with local
/// stores and monitoring peer cells like any Hive kernel.
#[derive(Clone, Debug)]
pub struct ServerLoop {
    own_data: (u64, u64),
    period_ns: u64,
    monitor: Vec<u64>,
}

impl ServerLoop {
    /// Creates the server workload touching its own lines every `period_ns`.
    pub fn new(own_data: (u64, u64), period_ns: u64) -> Self {
        ServerLoop {
            own_data,
            period_ns,
            monitor: Vec::new(),
        }
    }

    /// Installs the peer-cell kernel lines polled between operations.
    pub fn with_monitor(mut self, peer_kernel_lines: Vec<u64>) -> Self {
        self.monitor = peer_kernel_lines;
        self
    }
}

impl Workload for ServerLoop {
    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn next_op(&mut self, _node: NodeId, rng: &mut DetRng) -> ProcOp {
        if !self.monitor.is_empty() && rng.chance(0.1) {
            let line = *rng.choose(&self.monitor).expect("nonempty");
            return ProcOp::Read(LineAddr(line));
        }
        if rng.chance(0.5) {
            ProcOp::Write(LineAddr(
                rng.range_inclusive(self.own_data.0, self.own_data.1 - 1),
            ))
        } else {
            ProcOp::Compute(self.period_ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_magic::BusError;

    fn task() -> CompileTask {
        CompileTask::new(NodeId(0), 2, 3, 2, 1_000, (0, 10), (100, 110), Some(5))
    }

    #[test]
    fn task_walks_through_stages() {
        let mut t = task();
        let mut rng = DetRng::new(1);
        let me = NodeId(1);
        // File 1: open, 3 reads, compute, 2 writes, cross-write, close.
        assert!(matches!(
            t.next_op(me, &mut rng),
            ProcOp::UncachedRead { .. }
        ));
        for _ in 0..3 {
            match t.next_op(me, &mut rng) {
                ProcOp::Read(l) => assert!(l.0 < 10),
                other => panic!("{other:?}"),
            }
        }
        assert!(matches!(t.next_op(me, &mut rng), ProcOp::Compute(1_000)));
        for _ in 0..2 {
            match t.next_op(me, &mut rng) {
                ProcOp::Write(l) => assert!((100..110).contains(&l.0)),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(t.next_op(me, &mut rng), ProcOp::Write(LineAddr(5)));
        assert!(matches!(
            t.next_op(me, &mut rng),
            ProcOp::UncachedRead { .. }
        ));
        assert_eq!(t.files_done(), 1);
        assert_eq!(t.state(), TaskState::Running);
        // File 2 runs to completion.
        let mut guard = 0;
        while t.state() == TaskState::Running {
            let _ = t.next_op(me, &mut rng);
            guard += 1;
            assert!(guard < 100);
        }
        assert_eq!(t.state(), TaskState::Completed);
        assert_eq!(t.files_done(), 2);
        assert_eq!(t.next_op(me, &mut rng), ProcOp::Halt);
    }

    #[test]
    fn bus_error_kills_task() {
        let mut t = task();
        let mut rng = DetRng::new(2);
        let me = NodeId(1);
        let _ = t.next_op(me, &mut rng);
        t.on_result(me, OpResult::Ok(None));
        t.on_result(me, OpResult::BusError(BusError::Incoherent));
        assert_eq!(t.state(), TaskState::Failed);
        assert_eq!(t.first_error(), Some(BusError::Incoherent));
        assert_eq!(t.next_op(me, &mut rng), ProcOp::Halt);
        assert_eq!(t.progress(), 2);
    }

    #[test]
    fn server_loop_alternates() {
        let mut s = ServerLoop::new((0, 4), 500);
        let mut rng = DetRng::new(3);
        let mut writes = 0;
        let mut computes = 0;
        for _ in 0..100 {
            match s.next_op(NodeId(0), &mut rng) {
                ProcOp::Write(l) => {
                    assert!(l.0 < 4);
                    writes += 1;
                }
                ProcOp::Compute(ns) => {
                    assert_eq!(ns, 500);
                    computes += 1;
                }
                other => panic!("{other:?}"),
            }
        }
        assert!(writes > 20 && computes > 20);
    }
}
