//! KV serving workload configuration.

/// Configuration of the replicated KV serving experiment.
///
/// The client population is *modeled*, not simulated per-client: `clients`
/// independent clients each issuing `client_rpm` requests per minute
/// collapse into one open-loop arrival process per shard with mean
/// interarrival [`KvConfig::mean_interarrival_ns`]. Arrival times are fixed
/// by the run seed before any service happens, so a slow or suspended shard
/// accumulates backlog and the measured latency (completion minus scheduled
/// arrival) captures queueing delay through faults — the user-visible
/// quantity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KvConfig {
    /// Number of Hive cells (one shard per cell, on the cell's boot node).
    pub n_cells: usize,
    /// Replicas per chunk (primary included).
    pub replication: usize,
    /// Number of key-space chunks (placement granularity).
    pub chunks: u32,
    /// Memory lines backing each chunk replica on its cell.
    pub lines_per_chunk: u64,
    /// Key population size.
    pub keys: u64,
    /// Modeled client population (10^5..10^7 in the experiments).
    pub clients: u64,
    /// Per-client request rate, requests per minute.
    pub client_rpm: u64,
    /// Zipfian skew of key popularity (0 = uniform; must be < 1).
    pub zipf_theta: f64,
    /// Fraction of requests that are GETs (the rest are PUTs).
    pub get_fraction: f64,
    /// Coherent line reads issued per GET (index + value).
    pub reads_per_get: u32,
    /// Requests served per shard before it drains and halts.
    pub requests_per_shard: u64,
    /// Modeled time to copy one chunk onto a fresh replica during
    /// re-replication. Until it elapses the new replica receives writes but
    /// does not count as data-holding, so a second fault inside the window
    /// can still lose the chunk.
    pub repair_ns_per_chunk: u64,
    /// SLO ceiling on the worst observed latency of successful requests to
    /// unaffected chunks. The whole machine suspends for protocol recovery
    /// (~0.5 s at Table 5-1 scale), so a request admitted just before a
    /// fault legitimately waits out detection + recovery + the incoherent
    /// retry backoff + backlog drain — and a multi-fault schedule can
    /// stack several such pauses back to back. The ceiling bounds that
    /// end-to-end stall, not the fault-free service time (see the measured
    /// quantiles in [`crate::KvStats`] for those).
    pub slo_ceiling_ns: u64,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            n_cells: 4,
            replication: 2,
            chunks: 16,
            lines_per_chunk: 8,
            keys: 1 << 20,
            clients: 1_000_000,
            client_rpm: 15,
            zipf_theta: 0.99,
            get_fraction: 0.9,
            reads_per_get: 2,
            requests_per_shard: 400,
            repair_ns_per_chunk: 200_000,
            slo_ceiling_ns: 5_000_000_000,
        }
    }
}

impl KvConfig {
    /// A smaller request budget for fault-campaign runs (hundreds of runs).
    pub fn campaign() -> Self {
        KvConfig {
            requests_per_shard: 160,
            ..KvConfig::default()
        }
    }

    /// Mean interarrival time of requests at one shard, in nanoseconds:
    /// the aggregate client request rate divided evenly over the shards.
    pub fn mean_interarrival_ns(&self) -> u64 {
        let per_shard_rps =
            self.clients as f64 * self.client_rpm as f64 / 60.0 / self.n_cells as f64;
        ((1e9 / per_shard_rps) as u64).max(1)
    }

    /// Total requests across all shards in one run.
    pub fn total_requests(&self) -> u64 {
        self.requests_per_shard * self.n_cells as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interarrival_matches_population_math() {
        let cfg = KvConfig::default();
        // 10^6 clients x 15 rpm = 250k rps over 4 shards = 62.5k rps each.
        assert_eq!(cfg.mean_interarrival_ns(), 16_000);
        assert_eq!(cfg.total_requests(), 1600);
    }

    #[test]
    fn heavier_population_tightens_arrivals() {
        let cfg = KvConfig {
            clients: 10_000_000,
            ..KvConfig::default()
        };
        assert!(cfg.mean_interarrival_ns() < KvConfig::default().mean_interarrival_ns());
        assert!(cfg.mean_interarrival_ns() >= 1);
    }
}
