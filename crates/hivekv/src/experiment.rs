//! The KV serving experiment harness: boot cells, install shards, drive
//! open-loop traffic through an optional fault, reconfigure replicas after
//! recovery, and account user-visible outcomes (goodput, latency
//! quantiles, error fractions, data loss).
//!
//! Mirrors the hive parallel-make harness ([`flash_hive::PreparedMake`]):
//! [`prepare_kv_serving`] boots, [`PreparedKv::warm_to_percent`] runs to a
//! checkpoint, [`PreparedKv::fork`] deep-copies, and
//! [`finish_kv_serving`] drives to the terminal state — forked runs hash
//! bit-identically to from-scratch runs with the same seed.

use crate::config::KvConfig;
use crate::placement::{ChunkDirectory, RepairSummary};
use crate::shard::KvShard;
use flash_coherence::{LineAddr, NodeSet, LINES_PER_PAGE};
use flash_core::{build_machine, FcMachine, RecoveryConfig, RecoveryReport};
use flash_hive::{os, CellLayout, HiveConfig};
use flash_machine::{FaultSpec, Idle, MachineParams, ProcState};
use flash_net::NodeId;
use flash_obs::{Domain, TraceEvent};
use flash_sim::{LatencyHistogram, RunOutcome, SimDuration};

/// Aggregated user-visible serving statistics for one run.
#[derive(Clone, Debug)]
pub struct KvStats {
    /// Requests admitted across all shards.
    pub arrivals: u64,
    /// Requests completed successfully.
    pub ok: u64,
    /// Requests that surfaced an error to the user.
    pub errors: u64,
    /// Budgeted requests never admitted or resolved because their shard's
    /// cell died (those clients see errors too).
    pub unserved: u64,
    /// PUTs acknowledged on every replica.
    pub acked_puts: u64,
    /// Chunks that lost their last data-holding replica.
    pub chunks_lost: u64,
    /// Replicas scheduled for re-replication after failures.
    pub rereplications: u64,
    /// Chunk primaries moved to a surviving replica.
    pub failovers: u64,
    /// Latency of successful requests (all chunks).
    pub lat_ok: LatencyHistogram,
    /// Latency of successful requests to never-affected chunks.
    pub lat_unaffected_ok: LatencyHistogram,
    /// Arrival-to-error latency of failed requests.
    pub lat_err: LatencyHistogram,
    /// Latency samples clamped to 0ns because completion preceded the
    /// recorded arrival — a scheduling bug, surfaced as the
    /// `kv-latency-sane` invariant rather than silently hidden.
    pub clamped_latency: u64,
    /// Simulated duration of the run.
    pub duration_ns: u64,
}

impl KvStats {
    /// Successful requests per simulated second.
    pub fn goodput_rps(&self) -> f64 {
        if self.duration_ns == 0 {
            return 0.0;
        }
        self.ok as f64 * 1e9 / self.duration_ns as f64
    }

    /// Fraction of the total request budget that surfaced as user-visible
    /// errors (failed requests plus requests stranded on dead shards).
    pub fn error_fraction(&self) -> f64 {
        let total = self.arrivals + self.unserved;
        if total == 0 {
            return 0.0;
        }
        (self.errors + self.unserved) as f64 / total as f64
    }
}

/// A violated KV serving invariant.
#[derive(Clone, Debug)]
pub struct KvCheck {
    /// Invariant name (stable, used as a campaign violation label).
    pub name: &'static str,
    /// Human-readable evidence.
    pub details: String,
}

/// The outcome of one KV serving run.
#[derive(Clone, Debug)]
pub struct KvOutcome {
    /// Aggregated serving statistics.
    pub stats: KvStats,
    /// Hardware recovery summary (empty phases when no fault fired).
    pub recovery: RecoveryReport,
    /// Modeled OS recovery time accumulated over recovery passes.
    pub os_time: SimDuration,
    /// Incoherent lines reinitialized by the OS page service.
    pub lines_reinitialized: u64,
    /// Whether the run reached a terminal state within its budget.
    pub finished: bool,
    /// FNV-1a hash of the merged structured trace (fork-determinism
    /// witness).
    pub trace_hash: u64,
    /// Violated serving invariants (empty on a clean run).
    pub checks: Vec<KvCheck>,
}

/// A booted (and optionally warmed) KV serving experiment.
///
/// Cloning is the checkpoint: warm one, [`PreparedKv::fork`] one copy per
/// fault, and drive each fork through [`finish_kv_serving`].
#[derive(Clone, Debug)]
pub struct PreparedKv {
    m: FcMachine,
    layout: CellLayout,
    shard_nodes: Vec<NodeId>,
    kv: KvConfig,
    hive: HiveConfig,
    directory: ChunkDirectory,
    last_recovery_completed: bool,
    os_time: SimDuration,
    lines_reinitialized: u64,
}

/// Boots the KV serving experiment: builds the machine, applies Hive cell
/// protection policies, opens the chunk regions for cross-cell
/// replication writes, installs one shard per cell and starts every
/// processor. No warm-up is run.
pub fn prepare_kv_serving(
    params: MachineParams,
    kv: &KvConfig,
    recovery: RecoveryConfig,
    seed: u64,
) -> PreparedKv {
    let layout = CellLayout::contiguous(params.n_nodes, kv.n_cells);
    let mut m: FcMachine = build_machine(params, recovery, |_| Box::new(Idle), seed);
    let hive = HiveConfig {
        n_cells: kv.n_cells,
        ..HiveConfig::default()
    };
    os::configure(&mut m, &layout, &hive);

    let lines_per_node = m.st().layout.lines_per_node();
    let chunk_region_lines = kv.chunks as u64 * kv.lines_per_chunk;
    assert!(
        2 * LINES_PER_PAGE + chunk_region_lines <= lines_per_node - params.protected_lines,
        "chunk region must fit below the protected tail"
    );
    // Chunk region: per cell, on the boot node, one page above the kernel
    // region polled by peers.
    let chunk_base: Vec<u64> = (0..kv.n_cells)
        .map(|c| layout.boot_node(c).index() as u64 * lines_per_node + 2 * LINES_PER_PAGE)
        .collect();

    let n_nodes = params.n_nodes;
    let shard_nodes: Vec<NodeId> = (0..kv.n_cells).map(|c| layout.boot_node(c)).collect();
    let kernel_line = |node: NodeId| os::own_region(node, lines_per_node, params.protected_lines).0;
    let directory = ChunkDirectory::new(kv.chunks, kv.n_cells, kv.replication);
    {
        let now = m.now();
        let st = m.st_mut();
        // Replication writes cross cell boundaries by design, so the chunk
        // pages are opened to every node — the KV trust model accepts
        // cross-cell writes to this one region (like the hive scratch
        // page), and the experiments measure what that costs through
        // faults.
        for (c, &base) in chunk_base.iter().enumerate() {
            let first = LineAddr(base).page();
            let last = LineAddr(base + chunk_region_lines - 1).page();
            for p in first.0..=last.0 {
                st.nodes[shard_nodes[c].index()]
                    .firewall
                    .restrict(flash_coherence::PageAddr(p), NodeSet::all_below(n_nodes));
            }
        }
        for (c, &node) in shard_nodes.iter().enumerate() {
            let peers: Vec<u64> = (0..n_nodes)
                .map(|i| NodeId(i as u16))
                .filter(|&b| b != node)
                .map(kernel_line)
                .collect();
            let shard = KvShard::new(
                c as u16,
                kv,
                chunk_base.clone(),
                directory.placement.clone(),
            )
            .with_monitor(peers);
            st.nodes[node.index()].workload = Box::new(shard);
        }
        for c in 0..directory.placement.chunks() {
            st.obs.record(
                Domain::Hive,
                now,
                TraceEvent::KvChunk {
                    chunk: c as u16,
                    what: "placed",
                    value: directory.placement.primary(c).unwrap_or(0) as u64,
                },
            );
        }
    }
    m.set_event_budget(4_000_000_000);
    m.start();

    PreparedKv {
        m,
        layout,
        shard_nodes,
        kv: *kv,
        hive,
        directory,
        last_recovery_completed: false,
        os_time: SimDuration::ZERO,
        lines_reinitialized: 0,
    }
}

impl PreparedKv {
    /// Runs until ~30% of the request budget is resolved (the default
    /// injection point).
    pub fn warm(&mut self) {
        self.warm_to_percent(30);
    }

    /// Runs until `pct`% of the total request budget is resolved, summed
    /// across shards. Idempotent once the threshold is reached.
    pub fn warm_to_percent(&mut self, pct: u32) {
        let threshold = self.kv.total_requests() * u64::from(pct) / 100;
        let mut guard = 0;
        loop {
            let done: u64 = self
                .shard_nodes
                .iter()
                .map(|n| self.m.st().nodes[n.index()].workload.progress())
                .sum();
            if done >= threshold {
                break;
            }
            self.m.run_for(SimDuration::from_micros(50));
            guard += 1;
            if guard > 2_000_000 {
                break;
            }
        }
    }

    /// Deep-copies the warm experiment — one fork per fault.
    pub fn fork(&self) -> PreparedKv {
        self.clone()
    }

    /// Read access to the underlying machine.
    pub fn machine(&self) -> &FcMachine {
        &self.m
    }

    /// Mutable access to the underlying machine (campaign drivers arm
    /// faults and step the run themselves).
    pub fn machine_mut(&mut self) -> &mut FcMachine {
        &mut self.m
    }

    /// The boot node hosting each cell's shard.
    pub fn shard_nodes(&self) -> &[NodeId] {
        &self.shard_nodes
    }

    /// The replication directory (harness-side placement ground truth).
    pub fn directory(&self) -> &ChunkDirectory {
        &self.directory
    }

    /// Whether every shard has reached a terminal state (halted after
    /// draining its budget, or dead with its cell).
    pub fn shards_done(&self) -> bool {
        self.shard_nodes.iter().all(|n| {
            let node = &self.m.st().nodes[n.index()];
            !node.is_alive() || matches!(node.proc, ProcState::Halted | ProcState::Dead)
        })
    }

    /// The service-level reaction to a completed hardware recovery, run
    /// once per recovery completion edge: reinitialize incoherent pages
    /// (the OS page service, before user serving resumes in earnest),
    /// reconfigure the replication directory for any newly failed cells,
    /// and install the new placement into surviving shards. Returns the
    /// repair summary when a pass ran.
    ///
    /// Drivers stepping the machine themselves must call this every slice;
    /// [`finish_kv_serving`] does.
    pub fn post_recovery_pass(&mut self) -> Option<RepairSummary> {
        let completed_now = self.m.ext().report.completed() && !self.m.ext().recovery_active();
        let rising = completed_now && !self.last_recovery_completed;
        self.last_recovery_completed = completed_now;
        if !rising {
            return None;
        }
        self.lines_reinitialized += os::os_recover(&mut self.m);
        let failed_cells = self.layout.failed_cells(&self.m.st().failed_nodes);
        let live_cells = self.kv.n_cells - failed_cells.len();
        self.os_time += self.hive.os_recovery_time(live_cells);
        let now_ns = self.m.now().as_nanos();
        let summary =
            self.directory
                .on_cells_failed(&failed_cells, now_ns, self.kv.repair_ns_per_chunk);
        {
            let now = self.m.now();
            let st = self.m.st_mut();
            for &c in &summary.reconfigured {
                let (what, value) = match self.directory.placement.primary(c) {
                    Some(p) => ("reconfigured", p as u64),
                    None => ("lost", 0),
                };
                st.obs.record(
                    Domain::Hive,
                    now,
                    TraceEvent::KvChunk {
                        chunk: c as u16,
                        what,
                        value,
                    },
                );
            }
        }
        if !summary.reconfigured.is_empty() {
            let placement = self.directory.placement.clone();
            let st = self.m.st_mut();
            for &node in &self.shard_nodes {
                if !st.nodes[node.index()].is_alive() {
                    continue;
                }
                if let Some(any) = st.nodes[node.index()].workload.as_any_mut() {
                    if let Some(shard) = any.downcast_mut::<KvShard>() {
                        shard.install_placement(placement.clone());
                    }
                }
            }
        }
        Some(summary)
    }

    /// Reconciles the replication directory against the machine's final
    /// failed-cell set. The repair pass normally runs at every recovery
    /// completion, but a fault cascade can end the run with no live OS
    /// instance left to run it (machine halted, every cell dead, recovery
    /// still in flight); the end-of-run accounting must still classify
    /// those chunks — data on an unrepaired dead cell is lost data, not a
    /// stale directory entry.
    fn reconcile_directory(&mut self) {
        let failed_cells = self.layout.failed_cells(&self.m.st().failed_nodes);
        let now_ns = self.m.now().as_nanos();
        let summary =
            self.directory
                .on_cells_failed(&failed_cells, now_ns, self.kv.repair_ns_per_chunk);
        let now = self.m.now();
        let st = self.m.st_mut();
        for &c in &summary.reconfigured {
            let (what, value) = match self.directory.placement.primary(c) {
                Some(p) => ("reconfigured", p as u64),
                None => ("lost", 0),
            };
            st.obs.record(
                Domain::Hive,
                now,
                TraceEvent::KvChunk {
                    chunk: c as u16,
                    what,
                    value,
                },
            );
        }
    }

    /// Collects the run outcome: aggregates shard statistics, records the
    /// per-shard resolution trace events, folds latency histograms into
    /// the machine metrics, and evaluates the serving invariants. Call
    /// once, at the end of the run.
    pub fn collect(&mut self, finished: bool, faulted: bool) -> KvOutcome {
        self.reconcile_directory();
        let mut stats = KvStats {
            arrivals: 0,
            ok: 0,
            errors: 0,
            unserved: 0,
            acked_puts: 0,
            chunks_lost: self.directory.chunks_lost,
            rereplications: self.directory.rereplications,
            failovers: self.directory.failovers,
            lat_ok: LatencyHistogram::new(),
            lat_unaffected_ok: LatencyHistogram::new(),
            lat_err: LatencyHistogram::new(),
            clamped_latency: 0,
            duration_ns: self.m.now().as_nanos(),
        };
        let now = self.m.now();
        for &node in &self.shard_nodes.clone() {
            let st = self.m.st_mut();
            let alive = st.nodes[node.index()].is_alive();
            let Some(shard) = st.nodes[node.index()]
                .workload
                .as_any()
                .and_then(|a| a.downcast_ref::<KvShard>())
            else {
                continue;
            };
            let s = shard.stats.clone();
            stats.arrivals += s.arrivals;
            stats.ok += s.ok;
            stats.errors += s.errors;
            stats.acked_puts += s.acked_puts;
            stats.lat_ok.merge(&s.lat_ok);
            stats.lat_unaffected_ok.merge(&s.lat_unaffected_ok);
            stats.lat_err.merge(&s.lat_err);
            stats.clamped_latency += s.clamped_latency;
            if !alive {
                // Clients of a dead cell's shard: everything budgeted but
                // unresolved is a user-visible error.
                stats.unserved += self.kv.requests_per_shard.saturating_sub(s.resolved());
            }
            st.obs.record(
                Domain::Hive,
                now,
                TraceEvent::KvRequest {
                    node: node.0,
                    what: "resolved",
                    value: s.resolved(),
                },
            );
            st.obs.record(
                Domain::Hive,
                now,
                TraceEvent::KvRequest {
                    node: node.0,
                    what: "errors",
                    value: s.errors,
                },
            );
        }
        {
            let st = self.m.st_mut();
            st.obs
                .metrics
                .merge_histogram("kv_request_ns", &stats.lat_ok);
            st.obs
                .metrics
                .merge_histogram("kv_request_unaffected_ns", &stats.lat_unaffected_ok);
            st.obs
                .metrics
                .merge_histogram("kv_request_error_ns", &stats.lat_err);
        }
        let checks = self.kv_checks(finished, faulted, &stats);
        KvOutcome {
            stats,
            recovery: self.m.ext().report.clone(),
            os_time: self.os_time,
            lines_reinitialized: self.lines_reinitialized,
            finished,
            trace_hash: self.m.st().obs.merged_hash(),
            checks,
        }
    }

    /// Evaluates the serving invariants, returning the violated ones.
    ///
    /// * `kv-no-data-loss` — a chunk may only be lost when at least
    ///   `replication` cells failed (a single contained fault can never
    ///   lose replicated data), and every surviving chunk must still have
    ///   a data-holding replica on a live cell.
    /// * `kv-unaffected-slo` — on a finished run whose fault (if any) was
    ///   detected and recovered: every surviving shard drained its full
    ///   request budget, requests to never-affected chunks saw zero
    ///   errors, and their worst-case latency stayed under the SLO
    ///   ceiling.
    /// * `kv-latency-sane` — no latency sample was clamped to 0ns by a
    ///   completion that preceded its recorded arrival.
    pub fn kv_checks(&self, finished: bool, faulted: bool, stats: &KvStats) -> Vec<KvCheck> {
        let mut out = Vec::new();
        let failed_cells = self.layout.failed_cells(&self.m.st().failed_nodes);
        let now_ns = self.m.now().as_nanos();

        // Latency sanity: a completion earlier than its arrival means shard
        // scheduling went backwards; the histograms clamp the sample to 0ns
        // but the clamp count turns it into a campaign-visible violation.
        if stats.clamped_latency > 0 {
            out.push(KvCheck {
                name: "kv-latency-sane",
                details: format!(
                    "{} latency sample(s) clamped to 0ns (completion before arrival)",
                    stats.clamped_latency
                ),
            });
        }

        // Data loss accounting.
        if self.directory.chunks_lost > 0 && failed_cells.len() < self.kv.replication {
            out.push(KvCheck {
                name: "kv-no-data-loss",
                details: format!(
                    "{} chunk(s) lost with only {} failed cell(s) (replication {})",
                    self.directory.chunks_lost,
                    failed_cells.len(),
                    self.kv.replication
                ),
            });
        }
        for c in 0..self.directory.placement.chunks() {
            if self.directory.placement.is_lost(c) {
                continue;
            }
            let has_live_data = self
                .directory
                .data_holding(c, now_ns)
                .iter()
                .any(|&cell| !failed_cells.contains(&(cell as usize)));
            if !has_live_data {
                out.push(KvCheck {
                    name: "kv-no-data-loss",
                    details: format!(
                        "chunk {c} not marked lost but has no live data-holding replica \
                         (replicas {:?}, failed cells {:?})",
                        self.directory.placement.replicas[c as usize], failed_cells
                    ),
                });
            }
        }

        // SLO floor for traffic the fault should not touch. Only
        // meaningful when the run terminated and any fault was actually
        // recovered (an undetected latent fault is judged by the campaign
        // verdict logic, not here).
        let recovered = !faulted || self.m.ext().report.completed();
        if finished && recovered && !self.m.ext().recovery_active() {
            let st = self.m.st();
            for &node in &self.shard_nodes {
                if !st.nodes[node.index()].is_alive() {
                    continue;
                }
                let Some(shard) = st.nodes[node.index()]
                    .workload
                    .as_any()
                    .and_then(|a| a.downcast_ref::<KvShard>())
                else {
                    continue;
                };
                if shard.stats.resolved() < self.kv.requests_per_shard {
                    out.push(KvCheck {
                        name: "kv-unaffected-slo",
                        details: format!(
                            "live shard on node {} resolved only {}/{} requests",
                            node.0,
                            shard.stats.resolved(),
                            self.kv.requests_per_shard
                        ),
                    });
                }
                for c in 0..self.kv.chunks {
                    if self.directory.placement.affected[c as usize] {
                        continue;
                    }
                    let errs = shard.stats.chunk_errors[c as usize];
                    if errs > 0 {
                        out.push(KvCheck {
                            name: "kv-unaffected-slo",
                            details: format!(
                                "node {}: {errs} error(s) on unaffected chunk {c}",
                                node.0
                            ),
                        });
                    }
                }
            }
            let worst = stats.lat_unaffected_ok.quantile_upper_bound(1.0);
            if worst > SimDuration::from_nanos(self.kv.slo_ceiling_ns) {
                out.push(KvCheck {
                    name: "kv-unaffected-slo",
                    details: format!(
                        "worst unaffected-chunk latency {:.3} ms exceeds ceiling {:.3} ms",
                        worst.as_millis_f64(),
                        self.kv.slo_ceiling_ns as f64 / 1e6
                    ),
                });
            }
        }
        out
    }
}

/// Drives a booted (and, for fault runs, warmed) experiment to its
/// terminal state: optional fault injection, hardware recovery, the OS +
/// replication-repair pass, and outcome accounting.
pub fn finish_kv_serving(mut prep: PreparedKv, fault: Option<FaultSpec>) -> KvOutcome {
    if let Some(spec) = fault.clone() {
        let at = prep.m.now() + SimDuration::from_nanos(1);
        prep.m.schedule_fault(at, spec);
    }

    let mut finished = false;
    let mut detect_wait = 0u32;
    let budget = 400_000; // x 50us = 20s of simulated time
    for _ in 0..budget {
        let out = prep.m.run_for(SimDuration::from_micros(50));
        prep.post_recovery_pass();
        if prep.shards_done() && !prep.m.ext().recovery_active() {
            let fault_pending = fault.is_some() && !prep.m.ext().report.completed();
            if fault_pending && detect_wait < 10_000 {
                detect_wait += 1; // up to 500ms of simulated detection time
                continue;
            }
            finished = true;
            break;
        }
        if out == RunOutcome::Drained {
            finished = true;
            break;
        }
    }
    prep.post_recovery_pass();

    let failed_cells = prep.layout.failed_cells(&prep.m.st().failed_nodes);
    {
        let now = prep.m.now();
        let layout = prep.layout.clone();
        let st = prep.m.st_mut();
        for &cell in &failed_cells {
            st.obs.record(
                Domain::Hive,
                now,
                TraceEvent::HiveCell {
                    cell: cell as u16,
                    what: "cell_failed",
                    value: layout.members(cell).len() as u64,
                },
            );
        }
    }

    prep.collect(finished, fault.is_some())
}

/// Runs one full KV serving experiment: boot, warm (for fault runs),
/// fault, recover, repair, account.
pub fn run_kv_serving(
    params: MachineParams,
    kv: &KvConfig,
    recovery: RecoveryConfig,
    fault: Option<FaultSpec>,
    seed: u64,
) -> KvOutcome {
    let mut prep = prepare_kv_serving(params, kv, recovery, seed);
    if fault.is_some() {
        prep.warm();
    }
    finish_kv_serving(prep, fault)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_kv() -> (MachineParams, KvConfig) {
        let mut params = MachineParams::table_5_1();
        params.n_nodes = 4;
        let kv = KvConfig {
            n_cells: 4,
            chunks: 8,
            requests_per_shard: 60,
            ..KvConfig::default()
        };
        (params, kv)
    }

    #[test]
    fn fault_free_serving_meets_the_slo() {
        let (params, kv) = small_kv();
        let out = run_kv_serving(params, &kv, RecoveryConfig::default(), None, 1);
        assert!(out.finished);
        assert_eq!(out.stats.arrivals, 240);
        assert_eq!(out.stats.ok, 240);
        assert_eq!(out.stats.errors, 0);
        assert_eq!(out.stats.unserved, 0);
        assert!(out.checks.is_empty(), "{:?}", out.checks);
        assert!(out.stats.goodput_rps() > 0.0);
        assert_eq!(out.stats.error_fraction(), 0.0);
        assert!(!out.recovery.completed());
        assert!(out.stats.acked_puts > 0, "some PUTs should have landed");
    }

    #[test]
    fn cell_failure_spares_unaffected_chunks_and_loses_no_data() {
        let (params, kv) = small_kv();
        let out = run_kv_serving(
            params,
            &kv,
            RecoveryConfig::default(),
            Some(FaultSpec::Node(NodeId(2))),
            7,
        );
        assert!(out.finished);
        assert!(out.recovery.completed(), "{:?}", out.recovery);
        assert!(out.checks.is_empty(), "{:?}", out.checks);
        assert_eq!(out.stats.chunks_lost, 0);
        assert!(out.stats.failovers > 0, "cell 2 primaries must move");
        assert!(out.stats.rereplications > 0);
        assert!(out.stats.unserved > 0, "cell 2's shard dies mid-run");
        assert!(out.stats.error_fraction() < 0.5);
        // The other shards drain fully.
        assert_eq!(out.stats.arrivals - out.stats.ok - out.stats.errors, 0);
    }

    #[test]
    fn serving_runs_are_deterministic() {
        let (params, kv) = small_kv();
        let a = run_kv_serving(
            params,
            &kv,
            RecoveryConfig::default(),
            Some(FaultSpec::Node(NodeId(1))),
            99,
        );
        let b = run_kv_serving(
            params,
            &kv,
            RecoveryConfig::default(),
            Some(FaultSpec::Node(NodeId(1))),
            99,
        );
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.stats.ok, b.stats.ok);
        assert_eq!(a.stats.errors, b.stats.errors);
    }

    #[test]
    fn forked_run_matches_scratch() {
        let (params, kv) = small_kv();
        let mut prep = prepare_kv_serving(params, &kv, RecoveryConfig::default(), 13);
        prep.warm();
        let forked = finish_kv_serving(prep.fork(), Some(FaultSpec::Node(NodeId(3))));

        let mut scratch_prep = prepare_kv_serving(params, &kv, RecoveryConfig::default(), 13);
        scratch_prep.warm();
        let scratch = finish_kv_serving(scratch_prep, Some(FaultSpec::Node(NodeId(3))));

        assert_eq!(forked.trace_hash, scratch.trace_hash);
        assert_eq!(forked.stats.ok, scratch.stats.ok);
        assert_eq!(forked.stats.errors, scratch.stats.errors);
    }
}
