//! hive-kv: a replicated key-value serving workload over Hive cells.
//!
//! The paper's end-to-end experiments drive a batch workload (a parallel
//! make) through hardware faults; this crate adds a *service* workload with
//! user-visible SLOs. Each cell's boot node runs a KV shard serving an
//! open-loop stream of GET/PUT requests from a modeled client population
//! (10^5–10^7 clients, Zipfian keys, fixed arrival schedule derived from
//! the run seed). The key space is split into chunks placed on cells by a
//! deterministic ring: chunk `c` is homed on cell `c mod n_cells` with
//! replicas on the next cells around the ring. A PUT writes every replica;
//! a GET reads the primary.
//!
//! When a cell is lost to a hardware fault, the existing failure
//! dissemination and recovery machinery (flash-core) detects it and
//! recovers the machine; this crate's directory then fails chunks over to
//! surviving replicas and re-replicates onto live cells, with a modeled
//! copy delay during which a second fault can still lose data. Requests to
//! chunks unaffected by the fault must keep completing (the containment
//! claim, restated for a service: fault isolation is visible to *users* as
//! bounded error fractions and latency, not just to batch jobs as completed
//! compiles).
//!
//! The experiment harness ([`prepare_kv_serving`] / [`PreparedKv`] /
//! [`finish_kv_serving`]) mirrors the hive parallel-make harness, including
//! warm-checkpoint/fork support with bit-identical trace hashes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod experiment;
mod placement;
mod shard;
mod zipf;

pub use config::KvConfig;
pub use experiment::{
    finish_kv_serving, prepare_kv_serving, run_kv_serving, KvCheck, KvOutcome, KvStats, PreparedKv,
};
pub use placement::{ChunkDirectory, ChunkPlacement, RepairSummary};
pub use shard::{KvShard, ShardStats};
pub use zipf::{scramble_rank, ZipfSampler};
