//! Chunk placement and the replication directory.
//!
//! The key space is hashed into `chunks` chunks. Chunk `c` is initially
//! placed on cell `c mod n_cells` (the primary) with replicas on the next
//! `replication - 1` cells around the ring ("ring-buddy" placement, so a
//! single cell loss degrades every chunk's replica set by at most one).
//!
//! The directory is the harness-side ground truth: when recovery reports
//! failed cells, it drops their replicas, promotes a surviving replica to
//! primary, and re-replicates onto live cells. A freshly added replica is
//! *pending* for a modeled copy delay — it receives new writes immediately
//! but does not count as data-holding until the copy completes, so a second
//! fault inside the window can still lose the chunk (and the no-data-loss
//! invariant accounts for that honestly).

/// A placement of chunks onto cells, as seen by the serving shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkPlacement {
    /// Placement epoch; bumped on every reconfiguration.
    pub version: u32,
    /// Per chunk: replica cells, primary first. Empty means the chunk is
    /// lost (all data-holding replicas' cells failed).
    pub replicas: Vec<Vec<u16>>,
    /// Per chunk: whether any of its replicas has ever been lost to a
    /// fault (used to split the latency/error accounting into affected and
    /// unaffected populations).
    pub affected: Vec<bool>,
}

impl ChunkPlacement {
    /// The initial ring-buddy placement.
    ///
    /// # Panics
    ///
    /// Panics if `replication` is zero or exceeds the cell count.
    pub fn initial(chunks: u32, n_cells: usize, replication: usize) -> Self {
        assert!(replication >= 1 && replication <= n_cells);
        let replicas = (0..chunks)
            .map(|c| {
                (0..replication)
                    .map(|r| ((c as usize + r) % n_cells) as u16)
                    .collect()
            })
            .collect();
        ChunkPlacement {
            version: 0,
            replicas,
            affected: vec![false; chunks as usize],
        }
    }

    /// Number of chunks.
    pub fn chunks(&self) -> u32 {
        self.replicas.len() as u32
    }

    /// Whether the chunk has no surviving replica.
    pub fn is_lost(&self, chunk: u32) -> bool {
        self.replicas[chunk as usize].is_empty()
    }

    /// The chunk's primary cell, if any replica survives.
    pub fn primary(&self, chunk: u32) -> Option<u16> {
        self.replicas[chunk as usize].first().copied()
    }
}

/// What one reconfiguration pass did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RepairSummary {
    /// Chunks whose primary moved to a surviving replica.
    pub failovers: u64,
    /// Fresh replicas scheduled for copy onto live cells.
    pub rereplicated: u64,
    /// Chunks that lost their last data-holding replica in this pass.
    pub lost: u64,
    /// Chunks whose replica set changed in this pass.
    pub reconfigured: Vec<u32>,
}

/// The harness-side replication directory: current placement plus pending
/// (still-copying) replicas and lifetime repair counters.
#[derive(Clone, Debug)]
pub struct ChunkDirectory {
    /// Current placement (install into shards after each pass).
    pub placement: ChunkPlacement,
    /// Replicas still copying: `(chunk, cell, ready_at_ns)`. Present in
    /// `placement.replicas` (they receive writes) but not data-holding.
    pending: Vec<(u32, u16, u64)>,
    n_cells: usize,
    replication: usize,
    /// Lifetime count of primary failovers.
    pub failovers: u64,
    /// Lifetime count of replicas scheduled for re-replication.
    pub rereplications: u64,
    /// Lifetime count of chunks lost.
    pub chunks_lost: u64,
}

impl ChunkDirectory {
    /// Creates a directory with the initial ring-buddy placement.
    pub fn new(chunks: u32, n_cells: usize, replication: usize) -> Self {
        ChunkDirectory {
            placement: ChunkPlacement::initial(chunks, n_cells, replication),
            pending: Vec::new(),
            n_cells,
            replication,
            failovers: 0,
            rereplications: 0,
            chunks_lost: 0,
        }
    }

    /// Replica cells of a chunk that actually hold the data (not still
    /// copying as of `now_ns`).
    pub fn data_holding(&self, chunk: u32, now_ns: u64) -> Vec<u16> {
        self.placement.replicas[chunk as usize]
            .iter()
            .copied()
            .filter(|&cell| {
                !self
                    .pending
                    .iter()
                    .any(|&(c, cl, ready)| c == chunk && cl == cell && ready > now_ns)
            })
            .collect()
    }

    /// Reconfigures after recovery reported `failed_cells` (the cumulative
    /// failed set — passing already-processed cells again is harmless):
    /// drops failed replicas, promotes survivors, and re-replicates onto
    /// live cells with copy completion at `now_ns + repair_ns_per_chunk`.
    pub fn on_cells_failed(
        &mut self,
        failed_cells: &[usize],
        now_ns: u64,
        repair_ns_per_chunk: u64,
    ) -> RepairSummary {
        let failed = |cell: u16| failed_cells.contains(&(cell as usize));
        let mut summary = RepairSummary::default();

        // Copies that finished are promoted (dropped from the pending
        // list); copies whose target cell failed are dropped entirely —
        // the survivor filter below removes them from the replica list.
        self.pending
            .retain(|&(_, cell, ready)| ready > now_ns && !failed(cell));

        for c in 0..self.placement.chunks() {
            let ci = c as usize;
            if self.placement.replicas[ci].is_empty() {
                continue; // already lost
            }
            let survivors: Vec<u16> = self.placement.replicas[ci]
                .iter()
                .copied()
                .filter(|&cell| !failed(cell))
                .collect();
            if survivors.len() == self.placement.replicas[ci].len() {
                continue; // untouched by this fault
            }
            self.placement.affected[ci] = true;
            summary.reconfigured.push(c);
            let still_pending = |cell: u16| {
                self.pending
                    .iter()
                    .any(|&(ch, cl, _)| ch == c && cl == cell)
            };
            let data: Vec<u16> = survivors
                .iter()
                .copied()
                .filter(|&cell| !still_pending(cell))
                .collect();
            if data.is_empty() {
                // Every data-holding replica died (a pending copy that
                // never finished cannot serve): the chunk is lost.
                self.placement.replicas[ci].clear();
                self.pending.retain(|&(ch, _, _)| ch != c);
                self.chunks_lost += 1;
                summary.lost += 1;
                continue;
            }
            let old_primary = self.placement.replicas[ci][0];
            if data[0] != old_primary {
                self.failovers += 1;
                summary.failovers += 1;
            }
            // Data-holding survivors first (new primary at the front),
            // then survivors still copying, then fresh replicas from the
            // ring of live cells.
            let mut newlist = data.clone();
            newlist.extend(
                survivors
                    .iter()
                    .copied()
                    .filter(|&cell| still_pending(cell)),
            );
            for off in 0..self.n_cells {
                if newlist.len() >= self.replication {
                    break;
                }
                let cand = ((ci + off) % self.n_cells) as u16;
                if failed(cand) || newlist.contains(&cand) {
                    continue;
                }
                newlist.push(cand);
                self.pending
                    .push((c, cand, now_ns.saturating_add(repair_ns_per_chunk)));
                self.rereplications += 1;
                summary.rereplicated += 1;
            }
            self.placement.replicas[ci] = newlist;
        }

        if !summary.reconfigured.is_empty() {
            self.placement.version += 1;
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_placement_rings_around_cells() {
        let p = ChunkPlacement::initial(8, 4, 2);
        assert_eq!(p.replicas[0], vec![0, 1]);
        assert_eq!(p.replicas[3], vec![3, 0]);
        assert_eq!(p.replicas[5], vec![1, 2]);
        assert_eq!(p.primary(6), Some(2));
        assert!(!p.is_lost(0));
    }

    #[test]
    fn single_cell_loss_fails_over_and_rereplicates() {
        let mut d = ChunkDirectory::new(8, 4, 2);
        let s = d.on_cells_failed(&[1], 1_000, 500);
        // Chunks with primary on cell 1 (1, 5) fail over; chunks with a
        // buddy on cell 1 (0, 4) just re-replicate.
        assert_eq!(s.failovers, 2);
        assert_eq!(s.lost, 0);
        assert!(s.rereplicated >= 4);
        assert_eq!(d.placement.replicas[1][0], 2, "failover to ring buddy");
        // Fresh replicas are pending until the copy delay elapses.
        assert_eq!(d.data_holding(1, 1_100).len(), 1);
        assert_eq!(d.data_holding(1, 2_000).len(), 2);
        assert!(d.placement.affected[1]);
        assert!(!d.placement.affected[2]);
    }

    #[test]
    fn second_fault_inside_copy_window_loses_the_chunk() {
        let mut d = ChunkDirectory::new(4, 4, 2);
        // Chunk 0 lives on cells {0, 1}. Kill cell 0: data survives on
        // cell 1, new copy pending on some live cell.
        d.on_cells_failed(&[0], 1_000, 1_000_000);
        assert_eq!(d.data_holding(0, 2_000), vec![1]);
        // Kill cell 1 before the copy finishes: chunk 0 is lost.
        let s = d.on_cells_failed(&[0, 1], 3_000, 1_000_000);
        assert!(s.lost >= 1);
        assert!(d.placement.is_lost(0));
        assert_eq!(d.chunks_lost as usize, 1);
    }

    #[test]
    fn second_fault_after_copy_window_keeps_the_chunk() {
        let mut d = ChunkDirectory::new(4, 4, 2);
        d.on_cells_failed(&[0], 1_000, 1_000);
        // The copy finished long before the second fault.
        let s = d.on_cells_failed(&[0, 1], 1_000_000, 1_000);
        assert_eq!(s.lost, 0);
        assert!(!d.placement.is_lost(0));
        assert!(d
            .placement
            .replicas
            .iter()
            .all(|r| r.iter().all(|&cell| cell >= 2)));
    }

    #[test]
    fn reprocessing_the_same_failed_set_is_idempotent() {
        let mut d = ChunkDirectory::new(8, 4, 2);
        d.on_cells_failed(&[2], 1_000, 500);
        let before = d.placement.clone();
        let s = d.on_cells_failed(&[2], 5_000, 500);
        assert_eq!(s, RepairSummary::default());
        assert_eq!(d.placement, before);
    }
}
