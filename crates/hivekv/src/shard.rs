//! The per-cell KV serving shard: an open-loop request generator and
//! server, implemented as a processor [`Workload`].
//!
//! Each cell's boot node runs one shard. Clients are modeled as a fixed
//! arrival schedule: the next arrival time is drawn from the seeded RNG
//! *when the previous one is admitted*, so the schedule is a deterministic
//! function of the seed and does not shift when service slows down — if
//! the machine suspends for recovery, arrivals pile up and the measured
//! latency (completion minus scheduled arrival) shows the queueing delay a
//! user would see.
//!
//! A GET issues [`crate::KvConfig::reads_per_get`] coherent reads against
//! the primary replica's chunk lines; a PUT writes one line on every
//! replica (pending copies included) and acks only when all writes
//! complete. A request touching a lost chunk fails immediately; a bus
//! error on any request op fails that request but the shard keeps serving
//! (errors are user-visible, not shard-fatal). Reads that trip over a
//! post-recovery incoherent line are retried after a short page-service
//! delay (the OS reinitializes incoherent pages at recovery completion;
//! the retry models the KV server refetching through the page service).

use crate::config::KvConfig;
use crate::placement::ChunkPlacement;
use crate::zipf::{scramble_rank, ZipfSampler};
use flash_coherence::LineAddr;
use flash_machine::{OpResult, ProcOp, Workload};
use flash_magic::BusError;
use flash_net::NodeId;
use flash_sim::{DetRng, LatencyHistogram, SimDuration, SimTime};

/// Base delay before retrying a read that hit an incoherent line, modeling
/// the OS page service reinitializing the page (paper, Section 4.6).
const INCOHERENT_RETRY_NS: u64 = 100_000;
/// Retries per request before the incoherent access surfaces to the user.
/// Lines held exclusive by a node that dies stay incoherent until the OS
/// pass at recovery completion, so the retry budget (with the exponential
/// backoff below) must span protocol recovery at Table 5-1 scale (~0.5 s
/// at 8 nodes) even when a multi-fault cascade restarts recovery several
/// times back to back: 12.7 ms of doubling steps plus 248 x 12.8 ms capped
/// steps covers ~3.2 s, within the SLO ceiling.
const INCOHERENT_RETRIES: u32 = 256;
/// Backoff doubles per retry up to this shift (100 us << 7 = 12.8 ms), so
/// the overshoot past recovery completion stays small relative to the
/// recovery pause itself.
const INCOHERENT_BACKOFF_MAX_SHIFT: u32 = 7;

/// What kind of operation the shard issued last (routes `on_result`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Issued {
    /// Nothing outstanding.
    None,
    /// A kernel-monitoring read of a peer node (errors absorbed).
    Monitor,
    /// An idle spin until the next scheduled arrival.
    Wait,
    /// An op belonging to the active request.
    Request,
}

/// Which user-level operation a request performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ReqKind {
    Get,
    Put,
}

/// An in-flight request: its remaining ops and accounting identity.
#[derive(Clone, Debug)]
struct ActiveReq {
    arrival_ns: u64,
    chunk: u32,
    kind: ReqKind,
    ops: Vec<ProcOp>,
    next: usize,
    retries: u32,
}

/// Per-shard serving statistics.
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// Requests admitted from the arrival schedule.
    pub arrivals: u64,
    /// Requests completed successfully.
    pub ok: u64,
    /// Requests that surfaced an error to the user.
    pub errors: u64,
    /// PUTs acknowledged on every replica.
    pub acked_puts: u64,
    /// Errors on requests to chunks with no surviving replica.
    pub lost_chunk_errors: u64,
    /// Per-chunk admitted requests.
    pub chunk_arrivals: Vec<u64>,
    /// Per-chunk user-visible errors.
    pub chunk_errors: Vec<u64>,
    /// Latency of successful requests.
    pub lat_ok: LatencyHistogram,
    /// Latency of successful requests to never-affected chunks.
    pub lat_unaffected_ok: LatencyHistogram,
    /// Latency from arrival to error for failed requests.
    pub lat_err: LatencyHistogram,
    /// Latency samples whose completion time preceded the recorded arrival
    /// (clamped to 0ns). Always 0 in a healthy run: a nonzero count means
    /// the shard's scheduling went backwards in time, which previously was
    /// silently hidden by the clamp.
    pub clamped_latency: u64,
}

impl ShardStats {
    fn new(chunks: u32) -> Self {
        ShardStats {
            arrivals: 0,
            ok: 0,
            errors: 0,
            acked_puts: 0,
            lost_chunk_errors: 0,
            chunk_arrivals: vec![0; chunks as usize],
            chunk_errors: vec![0; chunks as usize],
            lat_ok: LatencyHistogram::new(),
            lat_unaffected_ok: LatencyHistogram::new(),
            lat_err: LatencyHistogram::new(),
            clamped_latency: 0,
        }
    }

    /// Latency from `arrival_ns` to `now_ns`, counting (and debug-asserting
    /// against) samples where completion precedes arrival instead of letting
    /// `saturating_sub` silently record 0ns.
    fn latency_since(&mut self, now_ns: u64, arrival_ns: u64) -> SimDuration {
        debug_assert!(
            now_ns >= arrival_ns,
            "request completed at {now_ns}ns before its arrival at {arrival_ns}ns"
        );
        if now_ns < arrival_ns {
            self.clamped_latency += 1;
        }
        SimDuration::from_nanos(now_ns.saturating_sub(arrival_ns))
    }

    /// Requests resolved either way.
    pub fn resolved(&self) -> u64 {
        self.ok + self.errors
    }
}

/// One cell's KV serving shard (a [`Workload`] installed on the cell's
/// boot node).
#[derive(Clone, Debug)]
pub struct KvShard {
    cell: u16,
    chunks: u32,
    lines_per_chunk: u64,
    /// Per cell: first line of the chunk region on that cell's boot node.
    chunk_base: Vec<u64>,
    get_fraction: f64,
    reads_per_get: u32,
    mean_gap_ns: u64,
    budget: u64,
    zipf: ZipfSampler,
    /// Peer kernel lines polled while idle (background monitoring).
    monitor: Vec<u64>,
    placement: ChunkPlacement,
    next_arrival_ns: Option<u64>,
    active: Option<ActiveReq>,
    issued: Issued,
    idle_ticks: u64,
    /// Serving statistics (read by the harness through `as_any`).
    pub stats: ShardStats,
}

impl KvShard {
    /// Creates a shard for `cell` with the given placement view.
    pub fn new(cell: u16, cfg: &KvConfig, chunk_base: Vec<u64>, placement: ChunkPlacement) -> Self {
        assert_eq!(chunk_base.len(), cfg.n_cells);
        assert_eq!(placement.chunks(), cfg.chunks);
        KvShard {
            cell,
            chunks: cfg.chunks,
            lines_per_chunk: cfg.lines_per_chunk,
            chunk_base,
            get_fraction: cfg.get_fraction,
            reads_per_get: cfg.reads_per_get,
            mean_gap_ns: cfg.mean_interarrival_ns(),
            budget: cfg.requests_per_shard,
            zipf: ZipfSampler::new(cfg.keys, cfg.zipf_theta),
            monitor: Vec::new(),
            placement,
            next_arrival_ns: None,
            active: None,
            issued: Issued::None,
            idle_ticks: 0,
            stats: ShardStats::new(cfg.chunks),
        }
    }

    /// Adds peer kernel lines to poll while idle.
    pub fn with_monitor(mut self, lines: Vec<u64>) -> Self {
        self.monitor = lines;
        self
    }

    /// The shard's cell.
    pub fn cell(&self) -> u16 {
        self.cell
    }

    /// Installs a reconfigured placement (after recovery + directory
    /// repair). The active request, if any, keeps its already-computed op
    /// targets — exactly like a server that looked up the old placement
    /// before the epoch bumped.
    pub fn install_placement(&mut self, p: ChunkPlacement) {
        assert_eq!(p.chunks(), self.chunks);
        self.placement = p;
    }

    /// The shard's current placement view.
    pub fn placement(&self) -> &ChunkPlacement {
        &self.placement
    }

    /// Whether every budgeted request has been resolved.
    pub fn drained(&self) -> bool {
        self.stats.resolved() >= self.budget
    }

    fn gap(&self, rng: &mut DetRng) -> u64 {
        rng.range_inclusive(
            self.mean_gap_ns / 2,
            self.mean_gap_ns + self.mean_gap_ns / 2,
        )
    }

    fn line_of(&self, cell: u16, chunk: u32, off: u64) -> LineAddr {
        LineAddr(
            self.chunk_base[cell as usize]
                + chunk as u64 * self.lines_per_chunk
                + off % self.lines_per_chunk,
        )
    }

    /// Builds the op sequence for a request, or `None` if the chunk is
    /// lost.
    fn build_ops(&self, chunk: u32, key: u64, is_get: bool) -> Option<(ReqKind, Vec<ProcOp>)> {
        let reps = &self.placement.replicas[chunk as usize];
        let off = key >> 32;
        if is_get {
            let primary = *reps.first()?;
            let ops = (0..self.reads_per_get as u64)
                .map(|i| ProcOp::Read(self.line_of(primary, chunk, off + i)))
                .collect();
            Some((ReqKind::Get, ops))
        } else {
            if reps.is_empty() {
                return None;
            }
            let ops = reps
                .iter()
                .map(|&cell| ProcOp::Write(self.line_of(cell, chunk, off)))
                .collect();
            Some((ReqKind::Put, ops))
        }
    }

    fn step(&mut self, now_ns: u64, rng: &mut DetRng) -> ProcOp {
        loop {
            if let Some(req) = &self.active {
                self.issued = Issued::Request;
                return req.ops[req.next];
            }
            if self.stats.arrivals >= self.budget {
                return ProcOp::Halt;
            }
            let arrival = match self.next_arrival_ns {
                Some(t) => t,
                None => {
                    let t = now_ns + self.gap(rng);
                    self.next_arrival_ns = Some(t);
                    t
                }
            };
            if arrival > now_ns {
                // Idle until the next client request; poll a peer kernel
                // line now and then (cells monitor each other's kernels,
                // which is also what detects failures while traffic is
                // quiet).
                self.idle_ticks += 1;
                if !self.monitor.is_empty() && self.idle_ticks.is_multiple_of(16) {
                    let i = (self.idle_ticks / 16) as usize % self.monitor.len();
                    self.issued = Issued::Monitor;
                    return ProcOp::Read(LineAddr(self.monitor[i]));
                }
                self.issued = Issued::Wait;
                return ProcOp::Compute(arrival - now_ns);
            }
            // Admit the arrival and schedule the next one (open loop: the
            // schedule never waits for service).
            self.next_arrival_ns = Some(arrival + self.gap(rng));
            let key = scramble_rank(self.zipf.sample(rng));
            let chunk = (key % self.chunks as u64) as u32;
            let is_get = rng.chance(self.get_fraction);
            self.stats.arrivals += 1;
            self.stats.chunk_arrivals[chunk as usize] += 1;
            match self.build_ops(chunk, key, is_get) {
                Some((kind, ops)) => {
                    self.active = Some(ActiveReq {
                        arrival_ns: arrival,
                        chunk,
                        kind,
                        ops,
                        next: 0,
                        retries: 0,
                    });
                }
                None => {
                    // The chunk has no surviving replica: fail fast.
                    self.stats.errors += 1;
                    self.stats.lost_chunk_errors += 1;
                    self.stats.chunk_errors[chunk as usize] += 1;
                    let lat = self.stats.latency_since(now_ns, arrival);
                    self.stats.lat_err.record(lat);
                }
            }
        }
    }

    fn finish_request(&mut self, now_ns: u64, ok: bool) {
        let req = self.active.take().expect("active request");
        let lat = self.stats.latency_since(now_ns, req.arrival_ns);
        if ok {
            self.stats.ok += 1;
            self.stats.lat_ok.record(lat);
            if !self.placement.affected[req.chunk as usize] {
                self.stats.lat_unaffected_ok.record(lat);
            }
            if req.kind == ReqKind::Put {
                self.stats.acked_puts += 1;
            }
        } else {
            self.stats.errors += 1;
            self.stats.chunk_errors[req.chunk as usize] += 1;
            self.stats.lat_err.record(lat);
        }
    }
}

impl Workload for KvShard {
    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn next_op(&mut self, node: NodeId, rng: &mut DetRng) -> ProcOp {
        // Time-blind fallback: behave as if the next arrival is due.
        let now = self.next_arrival_ns.unwrap_or(0);
        self.next_op_at(node, SimTime::from_nanos(now), rng)
    }

    fn next_op_at(&mut self, _node: NodeId, now: SimTime, rng: &mut DetRng) -> ProcOp {
        self.step(now.as_nanos(), rng)
    }

    fn on_result_at(&mut self, _node: NodeId, now: SimTime, result: OpResult) {
        let now_ns = now.as_nanos();
        match std::mem::replace(&mut self.issued, Issued::None) {
            Issued::None => {}
            Issued::Monitor | Issued::Wait => {
                // Monitoring reads of failed peers bus-error; the kernel
                // absorbs those (the trigger fires at the MAGIC level).
            }
            Issued::Request => match result {
                OpResult::Ok(_) => {
                    let req = self.active.as_mut().expect("active request");
                    req.next += 1;
                    if req.next == req.ops.len() {
                        self.finish_request(now_ns, true);
                    }
                }
                OpResult::BusError(BusError::Incoherent) => {
                    let req = self.active.as_mut().expect("active request");
                    if req.retries < INCOHERENT_RETRIES {
                        // Back off and refetch through the OS page
                        // service, which reinitializes incoherent pages
                        // right after recovery.
                        let shift = req.retries.min(INCOHERENT_BACKOFF_MAX_SHIFT);
                        req.retries += 1;
                        req.ops
                            .insert(req.next, ProcOp::Compute(INCOHERENT_RETRY_NS << shift));
                    } else {
                        self.finish_request(now_ns, false);
                    }
                }
                OpResult::BusError(_) => {
                    self.finish_request(now_ns, false);
                }
            },
        }
    }

    fn progress(&self) -> u64 {
        self.stats.resolved()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_shard() -> KvShard {
        let cfg = KvConfig {
            n_cells: 4,
            chunks: 8,
            requests_per_shard: 20,
            ..KvConfig::default()
        };
        let base: Vec<u64> = (0..4).map(|c| c as u64 * 10_000 + 64).collect();
        let placement = ChunkPlacement::initial(8, 4, 2);
        KvShard::new(0, &cfg, base, placement)
    }

    /// Drives the shard as the machine would: strict next_op/on_result
    /// alternation, advancing a fake clock past Compute spins.
    fn drive(shard: &mut KvShard, rng: &mut DetRng, max_ops: u32) -> u64 {
        let mut now = 0u64;
        for _ in 0..max_ops {
            match shard.next_op_at(NodeId(0), SimTime::from_nanos(now), rng) {
                ProcOp::Halt => return now,
                ProcOp::Compute(ns) => {
                    shard.on_result_at(NodeId(0), SimTime::from_nanos(now), OpResult::Ok(None));
                    now += ns;
                }
                ProcOp::Read(_) | ProcOp::Write(_) => {
                    now += 1_000; // fake service time
                    shard.on_result_at(NodeId(0), SimTime::from_nanos(now), OpResult::Ok(Some(0)));
                }
                other => panic!("unexpected op {other:?}"),
            }
        }
        now
    }

    #[test]
    fn serves_the_full_budget_and_halts() {
        let mut s = test_shard();
        let mut rng = DetRng::new(11);
        drive(&mut s, &mut rng, 10_000);
        assert_eq!(s.stats.arrivals, 20);
        assert_eq!(s.stats.ok, 20);
        assert_eq!(s.stats.errors, 0);
        assert!(s.drained());
        assert_eq!(s.stats.lat_ok.total(), 20);
        assert!(s.stats.acked_puts <= 20);
    }

    #[test]
    fn is_deterministic_per_seed() {
        let mut a = test_shard();
        let mut b = test_shard();
        drive(&mut a, &mut DetRng::new(5), 10_000);
        drive(&mut b, &mut DetRng::new(5), 10_000);
        assert_eq!(a.stats.ok, b.stats.ok);
        assert_eq!(a.stats.acked_puts, b.stats.acked_puts);
        assert_eq!(a.stats.lat_ok, b.stats.lat_ok);
    }

    #[test]
    fn requests_to_lost_chunks_fail_fast() {
        let mut s = test_shard();
        // Lose every chunk: all requests must fail without issuing ops.
        let mut p = s.placement().clone();
        for r in &mut p.replicas {
            r.clear();
        }
        for a in &mut p.affected {
            *a = true;
        }
        s.install_placement(p);
        let mut rng = DetRng::new(9);
        let mut now = 0u64;
        for _ in 0..10_000 {
            match s.next_op_at(NodeId(0), SimTime::from_nanos(now), &mut rng) {
                ProcOp::Halt => break,
                ProcOp::Compute(ns) => {
                    s.on_result_at(NodeId(0), SimTime::from_nanos(now), OpResult::Ok(None));
                    now += ns;
                }
                other => panic!("lost chunks must not issue memory ops, got {other:?}"),
            }
        }
        assert_eq!(s.stats.errors, 20);
        assert_eq!(s.stats.lost_chunk_errors, 20);
        assert_eq!(s.stats.ok, 0);
    }

    #[test]
    fn bus_error_fails_one_request_but_serving_continues() {
        let mut s = test_shard();
        let mut rng = DetRng::new(3);
        let mut now = 0u64;
        let mut first_memop_seen = false;
        for _ in 0..10_000 {
            match s.next_op_at(NodeId(0), SimTime::from_nanos(now), &mut rng) {
                ProcOp::Halt => break,
                ProcOp::Compute(ns) => {
                    s.on_result_at(NodeId(0), SimTime::from_nanos(now), OpResult::Ok(None));
                    now += ns;
                }
                ProcOp::Read(_) | ProcOp::Write(_) => {
                    now += 1_000;
                    let result = if !first_memop_seen {
                        first_memop_seen = true;
                        OpResult::BusError(BusError::DeadHome)
                    } else {
                        OpResult::Ok(Some(0))
                    };
                    s.on_result_at(NodeId(0), SimTime::from_nanos(now), result);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(s.stats.errors, 1);
        assert_eq!(s.stats.ok, 19);
        assert_eq!(s.stats.lat_err.total(), 1);
    }

    #[test]
    fn incoherent_reads_are_retried_through_the_page_service() {
        let mut s = test_shard();
        let mut rng = DetRng::new(3);
        let mut now = 0u64;
        let mut incoherent_budget = 1;
        for _ in 0..10_000 {
            match s.next_op_at(NodeId(0), SimTime::from_nanos(now), &mut rng) {
                ProcOp::Halt => break,
                ProcOp::Compute(ns) => {
                    s.on_result_at(NodeId(0), SimTime::from_nanos(now), OpResult::Ok(None));
                    now += ns;
                }
                ProcOp::Read(_) | ProcOp::Write(_) => {
                    now += 1_000;
                    let result = if incoherent_budget > 0 {
                        incoherent_budget -= 1;
                        OpResult::BusError(BusError::Incoherent)
                    } else {
                        OpResult::Ok(Some(0))
                    };
                    s.on_result_at(NodeId(0), SimTime::from_nanos(now), result);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // The transient incoherent access never surfaced to the user.
        assert_eq!(s.stats.errors, 0);
        assert_eq!(s.stats.ok, 20);
    }

    #[test]
    fn open_loop_latency_includes_queueing_backlog() {
        let mut s = test_shard();
        let mut rng = DetRng::new(17);
        // Admit the first request, then stall service for 1 ms before
        // completing it: the recorded latency must reflect the stall.
        let mut now = 0u64;
        loop {
            match s.next_op_at(NodeId(0), SimTime::from_nanos(now), &mut rng) {
                ProcOp::Compute(ns) => {
                    s.on_result_at(NodeId(0), SimTime::from_nanos(now), OpResult::Ok(None));
                    now += ns;
                }
                ProcOp::Read(_) | ProcOp::Write(_) => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        now += 1_000_000; // recovery-like stall
        s.on_result_at(NodeId(0), SimTime::from_nanos(now), OpResult::Ok(Some(0)));
        // Finish the request's remaining ops promptly.
        while s.active.is_some() {
            match s.next_op_at(NodeId(0), SimTime::from_nanos(now), &mut rng) {
                ProcOp::Read(_) | ProcOp::Write(_) => {
                    now += 1_000;
                    s.on_result_at(NodeId(0), SimTime::from_nanos(now), OpResult::Ok(Some(0)));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let resolved = s.stats.resolved();
        assert_eq!(resolved, 1);
        assert!(
            s.stats.lat_ok.quantile_upper_bound(1.0) >= SimDuration::from_nanos(1_000_000),
            "stall must show up in user latency"
        );
    }
}
