//! Deterministic Zipfian key-rank sampling.

use flash_sim::DetRng;

/// A deterministic Zipf-like sampler over ranks `0..n` (rank 0 most
/// popular), using the inverse CDF of a bounded Pareto density `x^-theta`
/// on `[1, n+1)` — the standard O(1) continuous approximation of a Zipfian
/// rank distribution, with no per-construction zeta sum (campaign runs
/// build thousands of shards, so construction must be cheap).
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    n: u64,
    /// `(n+1)^(1-theta)`, precomputed.
    h_pow: f64,
    /// `1/(1-theta)`, precomputed.
    inv_one_minus_theta: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `0..n` with skew `theta` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty rank space");
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0,1), got {theta}"
        );
        let one_minus = 1.0 - theta;
        ZipfSampler {
            n,
            h_pow: ((n + 1) as f64).powf(one_minus),
            inv_one_minus_theta: 1.0 / one_minus,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws a rank in `0..n`, skewed toward low ranks.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        // 53 uniform mantissa bits -> u in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let x = (1.0 + u * (self.h_pow - 1.0)).powf(self.inv_one_minus_theta);
        (x as u64).saturating_sub(1).min(self.n - 1)
    }
}

/// Scrambles a popularity rank into a stable key identity (murmur3
/// finalizer), so hot ranks spread pseudo-uniformly over chunks instead of
/// all landing on chunk 0.
pub fn scramble_rank(rank: u64) -> u64 {
    let mut k = rank.wrapping_add(0x9E37_79B9_7F4A_7C15);
    k ^= k >> 33;
    k = k.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    k ^= k >> 33;
    k = k.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    k ^= k >> 33;
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_range_and_are_deterministic() {
        let z = ZipfSampler::new(1000, 0.99);
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..10_000 {
            let ra = z.sample(&mut a);
            assert!(ra < 1000);
            assert_eq!(ra, z.sample(&mut b));
        }
    }

    #[test]
    fn low_ranks_dominate_under_skew() {
        let z = ZipfSampler::new(1 << 20, 0.99);
        let mut rng = DetRng::new(42);
        let mut top10 = 0;
        let total = 50_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 10 {
                top10 += 1;
            }
        }
        // Under theta=0.99 the ten hottest of a million keys draw a large
        // share; under uniform they would draw ~0.5 of these samples.
        assert!(top10 > total / 10, "top-10 ranks drew only {top10}/{total}");
    }

    #[test]
    fn zero_theta_is_roughly_uniform() {
        let z = ZipfSampler::new(100, 0.0);
        let mut rng = DetRng::new(3);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let (min, max) = counts
            .iter()
            .fold((u32::MAX, 0), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        assert!(min > 700 && max < 1300, "min={min} max={max}");
    }

    #[test]
    fn scramble_is_a_bijection_fragment() {
        let mut seen = std::collections::HashSet::new();
        for r in 0..10_000u64 {
            assert!(seen.insert(scramble_rank(r)));
        }
    }
}
