//! Fault injection: the experiment fault types of Table 5.2.

use flash_net::{NodeId, RouterId};

/// A fault to inject, mirroring Table 5.2 of the paper. Real hardware
/// faults usually manifest as several simultaneous node/link failures;
/// compose with [`FaultSpec::Multi`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultSpec {
    /// MAGIC fails but the router stays up; packets sent to the node
    /// controller are discarded.
    Node(NodeId),
    /// The router fails: any packets sent to it are discarded. The attached
    /// node is cut off and counts as failed.
    Router(RouterId),
    /// A link fails: packets that try to traverse it are dropped; a packet
    /// caught mid-link is truncated.
    Link(RouterId, RouterId),
    /// A MAGIC handler enters an infinite loop: the controller stops
    /// accepting packets and traffic backs up into the interconnect.
    InfiniteLoop(NodeId),
    /// A MAGIC firmware assertion fails: the fail-fast controller raises
    /// the recovery trigger itself and then halts (Table 4.1, Section 4.2).
    FirmwareAssertion(NodeId),
    /// Recovery triggered by an exceptional overload condition in the
    /// absence of any fault; must complete without data loss.
    FalseAlarm(NodeId),
    /// Gray failure: the node's MAGIC controller stays up and correct but
    /// every handler runs `slowdown`× slower (fail-slow). The node is *not*
    /// doomed; detection by timeout is possible but not guaranteed.
    FailSlow(NodeId, u32),
    /// Gray failure: the first `range_pct`% of the node's homed lines are
    /// served from degraded memory — each access costs `extra_ns` more and
    /// some requests are answered with transient NAKs. Data is never
    /// corrupted and the node is not doomed.
    DegradedMemory(NodeId, u8, u64),
    /// Gray failure: the link between two adjacent routers stays up but
    /// drops each crossing packet with probability `drop_ppm` per million
    /// (drawn from the fabric's deterministic loss RNG).
    LossyLink(RouterId, RouterId, u32),
    /// An entire memory-pool unit fails, dooming every compute node in the
    /// pool at once — the inverted blast radius of disaggregated-memory
    /// designs.
    PoolFailure {
        /// The nodes backed by the failed pool.
        pool: Vec<NodeId>,
    },
    /// Several simultaneous faults (e.g. a cabinet power loss).
    Multi(Vec<FaultSpec>),
}

impl FaultSpec {
    /// The nodes this fault removes from service (ground truth for the
    /// oracle); empty for link failures and false alarms. Each doomed node
    /// appears once, even when several members of a [`FaultSpec::Multi`]
    /// hit the same node (e.g. its MAGIC and its router failing together).
    pub fn doomed_nodes(&self) -> Vec<NodeId> {
        match self {
            FaultSpec::Node(n) | FaultSpec::InfiniteLoop(n) | FaultSpec::FirmwareAssertion(n) => {
                vec![*n]
            }
            FaultSpec::Router(r) => vec![NodeId(r.0)],
            // Gray faults degrade a component without removing it from
            // service: nothing is doomed.
            FaultSpec::Link(..)
            | FaultSpec::FalseAlarm(_)
            | FaultSpec::FailSlow(..)
            | FaultSpec::DegradedMemory(..)
            | FaultSpec::LossyLink(..) => vec![],
            FaultSpec::PoolFailure { pool } => {
                let mut doomed = pool.clone();
                doomed.sort_unstable_by_key(|n| n.0);
                doomed.dedup();
                doomed
            }
            FaultSpec::Multi(list) => {
                let mut doomed: Vec<NodeId> = list.iter().flat_map(|f| f.doomed_nodes()).collect();
                doomed.sort_unstable_by_key(|n| n.0);
                doomed.dedup();
                doomed
            }
        }
    }

    /// Stable snake-case label for this fault kind, used by the
    /// observability layer ([`FaultSpec::Multi`] members are recorded
    /// individually).
    pub fn kind_str(&self) -> &'static str {
        match self {
            FaultSpec::Node(_) => "node",
            FaultSpec::Router(_) => "router",
            FaultSpec::Link(..) => "link",
            FaultSpec::InfiniteLoop(_) => "infinite_loop",
            FaultSpec::FirmwareAssertion(_) => "firmware_assertion",
            FaultSpec::FalseAlarm(_) => "false_alarm",
            FaultSpec::FailSlow(..) => "fail_slow",
            FaultSpec::DegradedMemory(..) => "degraded_memory",
            FaultSpec::LossyLink(..) => "lossy_link",
            FaultSpec::PoolFailure { .. } => "pool_failure",
            FaultSpec::Multi(_) => "multi",
        }
    }

    /// Renders the fault as a JSON object (hand-rolled; no serde in the
    /// workspace). The `kind` field always equals [`FaultSpec::kind_str`];
    /// both matches are wildcard-free so a new variant cannot silently miss
    /// one of the two encodings.
    pub fn to_json(&self) -> String {
        match self {
            FaultSpec::Node(n) => format!("{{\"kind\":\"node\",\"node\":{}}}", n.0),
            FaultSpec::Router(r) => format!("{{\"kind\":\"router\",\"router\":{}}}", r.0),
            FaultSpec::Link(a, b) => {
                format!("{{\"kind\":\"link\",\"a\":{},\"b\":{}}}", a.0, b.0)
            }
            FaultSpec::InfiniteLoop(n) => {
                format!("{{\"kind\":\"infinite_loop\",\"node\":{}}}", n.0)
            }
            FaultSpec::FirmwareAssertion(n) => {
                format!("{{\"kind\":\"firmware_assertion\",\"node\":{}}}", n.0)
            }
            FaultSpec::FalseAlarm(n) => {
                format!("{{\"kind\":\"false_alarm\",\"node\":{}}}", n.0)
            }
            FaultSpec::FailSlow(n, slowdown) => {
                format!(
                    "{{\"kind\":\"fail_slow\",\"node\":{},\"slowdown\":{slowdown}}}",
                    n.0
                )
            }
            FaultSpec::DegradedMemory(n, range_pct, extra_ns) => format!(
                "{{\"kind\":\"degraded_memory\",\"node\":{},\"range_pct\":{range_pct},\
                 \"extra_ns\":{extra_ns}}}",
                n.0
            ),
            FaultSpec::LossyLink(a, b, drop_ppm) => format!(
                "{{\"kind\":\"lossy_link\",\"a\":{},\"b\":{},\"drop_ppm\":{drop_ppm}}}",
                a.0, b.0
            ),
            FaultSpec::PoolFailure { pool } => {
                let members: Vec<String> = pool.iter().map(|n| n.0.to_string()).collect();
                format!(
                    "{{\"kind\":\"pool_failure\",\"pool\":[{}]}}",
                    members.join(",")
                )
            }
            FaultSpec::Multi(list) => {
                let members: Vec<String> = list.iter().map(|f| f.to_json()).collect();
                format!("{{\"kind\":\"multi\",\"members\":[{}]}}", members.join(","))
            }
        }
    }

    /// A representative node for trace attribution: the first doomed node,
    /// the false-alarm victim, or a link fault's first endpoint.
    pub fn primary_node(&self) -> u16 {
        match self {
            FaultSpec::Node(n)
            | FaultSpec::InfiniteLoop(n)
            | FaultSpec::FirmwareAssertion(n)
            | FaultSpec::FalseAlarm(n)
            | FaultSpec::FailSlow(n, _)
            | FaultSpec::DegradedMemory(n, _, _) => n.0,
            FaultSpec::Router(r) => r.0,
            FaultSpec::Link(a, _) | FaultSpec::LossyLink(a, _, _) => a.0,
            FaultSpec::PoolFailure { pool } => pool.first().map(|n| n.0).unwrap_or(0),
            FaultSpec::Multi(list) => list.first().map(|f| f.primary_node()).unwrap_or(0),
        }
    }

    /// Whether this is the no-fault false-alarm case.
    pub fn is_false_alarm(&self) -> bool {
        match self {
            FaultSpec::FalseAlarm(_) => true,
            FaultSpec::Multi(list) => list.iter().all(|f| f.is_false_alarm()),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doomed_nodes_per_fault_type() {
        assert_eq!(FaultSpec::Node(NodeId(3)).doomed_nodes(), vec![NodeId(3)]);
        assert_eq!(
            FaultSpec::FirmwareAssertion(NodeId(2)).doomed_nodes(),
            vec![NodeId(2)]
        );
        assert_eq!(
            FaultSpec::InfiniteLoop(NodeId(1)).doomed_nodes(),
            vec![NodeId(1)]
        );
        assert_eq!(
            FaultSpec::Router(RouterId(2)).doomed_nodes(),
            vec![NodeId(2)]
        );
        assert!(FaultSpec::Link(RouterId(0), RouterId(1))
            .doomed_nodes()
            .is_empty());
        assert!(FaultSpec::FalseAlarm(NodeId(0)).doomed_nodes().is_empty());
        let multi = FaultSpec::Multi(vec![
            FaultSpec::Node(NodeId(1)),
            FaultSpec::Link(RouterId(0), RouterId(1)),
            FaultSpec::Router(RouterId(4)),
        ]);
        assert_eq!(multi.doomed_nodes(), vec![NodeId(1), NodeId(4)]);
    }

    #[test]
    fn multi_doomed_nodes_dedup_overlapping_members() {
        // A node's MAGIC and its router failing together doom the node once.
        let multi = FaultSpec::Multi(vec![
            FaultSpec::Node(NodeId(1)),
            FaultSpec::Router(RouterId(1)),
            FaultSpec::InfiniteLoop(NodeId(1)),
        ]);
        assert_eq!(multi.doomed_nodes(), vec![NodeId(1)]);
        // Dedup is order-insensitive and keeps distinct victims sorted.
        let multi = FaultSpec::Multi(vec![
            FaultSpec::Router(RouterId(5)),
            FaultSpec::Node(NodeId(2)),
            FaultSpec::Node(NodeId(5)),
        ]);
        assert_eq!(multi.doomed_nodes(), vec![NodeId(2), NodeId(5)]);
    }

    #[test]
    fn multi_composition_of_link_and_false_alarm_dooms_nobody() {
        let multi = FaultSpec::Multi(vec![
            FaultSpec::Link(RouterId(0), RouterId(1)),
            FaultSpec::FalseAlarm(NodeId(3)),
        ]);
        assert!(multi.doomed_nodes().is_empty());
        // A link failure is a real fault, so the composition is not a
        // false alarm even though it dooms no node.
        assert!(!multi.is_false_alarm());
    }

    #[test]
    fn nested_multi_false_alarm_detection() {
        // Nested Multis of pure false alarms are still a false alarm.
        let nested = FaultSpec::Multi(vec![
            FaultSpec::FalseAlarm(NodeId(0)),
            FaultSpec::Multi(vec![
                FaultSpec::FalseAlarm(NodeId(1)),
                FaultSpec::FalseAlarm(NodeId(2)),
            ]),
        ]);
        assert!(nested.is_false_alarm());
        // One real fault anywhere in the nesting breaks the property.
        let nested = FaultSpec::Multi(vec![
            FaultSpec::FalseAlarm(NodeId(0)),
            FaultSpec::Multi(vec![
                FaultSpec::FalseAlarm(NodeId(1)),
                FaultSpec::Link(RouterId(0), RouterId(1)),
            ]),
        ]);
        assert!(!nested.is_false_alarm());
        // Nested doomed nodes dedup across levels.
        let nested = FaultSpec::Multi(vec![
            FaultSpec::Node(NodeId(4)),
            FaultSpec::Multi(vec![FaultSpec::Router(RouterId(4))]),
        ]);
        assert_eq!(nested.doomed_nodes(), vec![NodeId(4)]);
    }

    /// One value of every `FaultSpec` variant; extend when adding a variant
    /// (the wildcard-free matches in `kind_str`/`to_json` will already have
    /// forced the encodings).
    fn one_of_each() -> Vec<FaultSpec> {
        vec![
            FaultSpec::Node(NodeId(1)),
            FaultSpec::Router(RouterId(2)),
            FaultSpec::Link(RouterId(0), RouterId(1)),
            FaultSpec::InfiniteLoop(NodeId(3)),
            FaultSpec::FirmwareAssertion(NodeId(4)),
            FaultSpec::FalseAlarm(NodeId(5)),
            FaultSpec::FailSlow(NodeId(6), 4),
            FaultSpec::DegradedMemory(NodeId(7), 25, 900),
            FaultSpec::LossyLink(RouterId(1), RouterId(2), 50_000),
            FaultSpec::PoolFailure {
                pool: vec![NodeId(2), NodeId(3)],
            },
            FaultSpec::Multi(vec![FaultSpec::Node(NodeId(1))]),
        ]
    }

    #[test]
    fn to_json_covers_every_variant_and_matches_kind_str() {
        let mut kinds = std::collections::BTreeSet::new();
        for f in one_of_each() {
            let json = f.to_json();
            assert!(
                json.contains(&format!("\"kind\":\"{}\"", f.kind_str())),
                "{json}"
            );
            assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
            kinds.insert(f.kind_str());
        }
        assert_eq!(kinds.len(), 11, "kind labels must be distinct");
    }

    #[test]
    fn gray_faults_doom_nobody_but_pool_failure_dooms_the_pool() {
        assert!(FaultSpec::FailSlow(NodeId(3), 8).doomed_nodes().is_empty());
        assert!(FaultSpec::DegradedMemory(NodeId(2), 50, 500)
            .doomed_nodes()
            .is_empty());
        assert!(FaultSpec::LossyLink(RouterId(0), RouterId(1), 10_000)
            .doomed_nodes()
            .is_empty());
        let pool = FaultSpec::PoolFailure {
            pool: vec![NodeId(4), NodeId(2), NodeId(4), NodeId(3)],
        };
        assert_eq!(
            pool.doomed_nodes(),
            vec![NodeId(2), NodeId(3), NodeId(4)],
            "pool members sorted and deduped"
        );
        // Nested under Multi: gray members contribute nothing, pools their
        // whole membership.
        let multi = FaultSpec::Multi(vec![
            FaultSpec::FailSlow(NodeId(1), 2),
            FaultSpec::Multi(vec![
                FaultSpec::LossyLink(RouterId(0), RouterId(1), 1_000),
                FaultSpec::PoolFailure {
                    pool: vec![NodeId(5), NodeId(6)],
                },
            ]),
            FaultSpec::Node(NodeId(5)),
        ]);
        assert_eq!(multi.doomed_nodes(), vec![NodeId(5), NodeId(6)]);
        assert!(!multi.is_false_alarm());
    }

    #[test]
    fn false_alarm_detection() {
        assert!(FaultSpec::FalseAlarm(NodeId(0)).is_false_alarm());
        assert!(!FaultSpec::Node(NodeId(0)).is_false_alarm());
        assert!(FaultSpec::Multi(vec![FaultSpec::FalseAlarm(NodeId(1))]).is_false_alarm());
        assert!(!FaultSpec::Multi(vec![
            FaultSpec::FalseAlarm(NodeId(1)),
            FaultSpec::Node(NodeId(2))
        ])
        .is_false_alarm());
    }
}
