//! Fault injection: the experiment fault types of Table 5.2.

use flash_net::{NodeId, RouterId};

/// A fault to inject, mirroring Table 5.2 of the paper. Real hardware
/// faults usually manifest as several simultaneous node/link failures;
/// compose with [`FaultSpec::Multi`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultSpec {
    /// MAGIC fails but the router stays up; packets sent to the node
    /// controller are discarded.
    Node(NodeId),
    /// The router fails: any packets sent to it are discarded. The attached
    /// node is cut off and counts as failed.
    Router(RouterId),
    /// A link fails: packets that try to traverse it are dropped; a packet
    /// caught mid-link is truncated.
    Link(RouterId, RouterId),
    /// A MAGIC handler enters an infinite loop: the controller stops
    /// accepting packets and traffic backs up into the interconnect.
    InfiniteLoop(NodeId),
    /// A MAGIC firmware assertion fails: the fail-fast controller raises
    /// the recovery trigger itself and then halts (Table 4.1, Section 4.2).
    FirmwareAssertion(NodeId),
    /// Recovery triggered by an exceptional overload condition in the
    /// absence of any fault; must complete without data loss.
    FalseAlarm(NodeId),
    /// Several simultaneous faults (e.g. a cabinet power loss).
    Multi(Vec<FaultSpec>),
}

impl FaultSpec {
    /// The nodes this fault removes from service (ground truth for the
    /// oracle); empty for link failures and false alarms. Each doomed node
    /// appears once, even when several members of a [`FaultSpec::Multi`]
    /// hit the same node (e.g. its MAGIC and its router failing together).
    pub fn doomed_nodes(&self) -> Vec<NodeId> {
        match self {
            FaultSpec::Node(n) | FaultSpec::InfiniteLoop(n) | FaultSpec::FirmwareAssertion(n) => {
                vec![*n]
            }
            FaultSpec::Router(r) => vec![NodeId(r.0)],
            FaultSpec::Link(..) | FaultSpec::FalseAlarm(_) => vec![],
            FaultSpec::Multi(list) => {
                let mut doomed: Vec<NodeId> = list.iter().flat_map(|f| f.doomed_nodes()).collect();
                doomed.sort_unstable_by_key(|n| n.0);
                doomed.dedup();
                doomed
            }
        }
    }

    /// Stable snake-case label for this fault kind, used by the
    /// observability layer ([`FaultSpec::Multi`] members are recorded
    /// individually).
    pub fn kind_str(&self) -> &'static str {
        match self {
            FaultSpec::Node(_) => "node",
            FaultSpec::Router(_) => "router",
            FaultSpec::Link(..) => "link",
            FaultSpec::InfiniteLoop(_) => "infinite_loop",
            FaultSpec::FirmwareAssertion(_) => "firmware_assertion",
            FaultSpec::FalseAlarm(_) => "false_alarm",
            FaultSpec::Multi(_) => "multi",
        }
    }

    /// A representative node for trace attribution: the first doomed node,
    /// the false-alarm victim, or a link fault's first endpoint.
    pub fn primary_node(&self) -> u16 {
        match self {
            FaultSpec::Node(n)
            | FaultSpec::InfiniteLoop(n)
            | FaultSpec::FirmwareAssertion(n)
            | FaultSpec::FalseAlarm(n) => n.0,
            FaultSpec::Router(r) => r.0,
            FaultSpec::Link(a, _) => a.0,
            FaultSpec::Multi(list) => list.first().map(|f| f.primary_node()).unwrap_or(0),
        }
    }

    /// Whether this is the no-fault false-alarm case.
    pub fn is_false_alarm(&self) -> bool {
        match self {
            FaultSpec::FalseAlarm(_) => true,
            FaultSpec::Multi(list) => list.iter().all(|f| f.is_false_alarm()),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doomed_nodes_per_fault_type() {
        assert_eq!(FaultSpec::Node(NodeId(3)).doomed_nodes(), vec![NodeId(3)]);
        assert_eq!(
            FaultSpec::FirmwareAssertion(NodeId(2)).doomed_nodes(),
            vec![NodeId(2)]
        );
        assert_eq!(
            FaultSpec::InfiniteLoop(NodeId(1)).doomed_nodes(),
            vec![NodeId(1)]
        );
        assert_eq!(
            FaultSpec::Router(RouterId(2)).doomed_nodes(),
            vec![NodeId(2)]
        );
        assert!(FaultSpec::Link(RouterId(0), RouterId(1))
            .doomed_nodes()
            .is_empty());
        assert!(FaultSpec::FalseAlarm(NodeId(0)).doomed_nodes().is_empty());
        let multi = FaultSpec::Multi(vec![
            FaultSpec::Node(NodeId(1)),
            FaultSpec::Link(RouterId(0), RouterId(1)),
            FaultSpec::Router(RouterId(4)),
        ]);
        assert_eq!(multi.doomed_nodes(), vec![NodeId(1), NodeId(4)]);
    }

    #[test]
    fn multi_doomed_nodes_dedup_overlapping_members() {
        // A node's MAGIC and its router failing together doom the node once.
        let multi = FaultSpec::Multi(vec![
            FaultSpec::Node(NodeId(1)),
            FaultSpec::Router(RouterId(1)),
            FaultSpec::InfiniteLoop(NodeId(1)),
        ]);
        assert_eq!(multi.doomed_nodes(), vec![NodeId(1)]);
        // Dedup is order-insensitive and keeps distinct victims sorted.
        let multi = FaultSpec::Multi(vec![
            FaultSpec::Router(RouterId(5)),
            FaultSpec::Node(NodeId(2)),
            FaultSpec::Node(NodeId(5)),
        ]);
        assert_eq!(multi.doomed_nodes(), vec![NodeId(2), NodeId(5)]);
    }

    #[test]
    fn multi_composition_of_link_and_false_alarm_dooms_nobody() {
        let multi = FaultSpec::Multi(vec![
            FaultSpec::Link(RouterId(0), RouterId(1)),
            FaultSpec::FalseAlarm(NodeId(3)),
        ]);
        assert!(multi.doomed_nodes().is_empty());
        // A link failure is a real fault, so the composition is not a
        // false alarm even though it dooms no node.
        assert!(!multi.is_false_alarm());
    }

    #[test]
    fn nested_multi_false_alarm_detection() {
        // Nested Multis of pure false alarms are still a false alarm.
        let nested = FaultSpec::Multi(vec![
            FaultSpec::FalseAlarm(NodeId(0)),
            FaultSpec::Multi(vec![
                FaultSpec::FalseAlarm(NodeId(1)),
                FaultSpec::FalseAlarm(NodeId(2)),
            ]),
        ]);
        assert!(nested.is_false_alarm());
        // One real fault anywhere in the nesting breaks the property.
        let nested = FaultSpec::Multi(vec![
            FaultSpec::FalseAlarm(NodeId(0)),
            FaultSpec::Multi(vec![
                FaultSpec::FalseAlarm(NodeId(1)),
                FaultSpec::Link(RouterId(0), RouterId(1)),
            ]),
        ]);
        assert!(!nested.is_false_alarm());
        // Nested doomed nodes dedup across levels.
        let nested = FaultSpec::Multi(vec![
            FaultSpec::Node(NodeId(4)),
            FaultSpec::Multi(vec![FaultSpec::Router(RouterId(4))]),
        ]);
        assert_eq!(nested.doomed_nodes(), vec![NodeId(4)]);
    }

    #[test]
    fn false_alarm_detection() {
        assert!(FaultSpec::FalseAlarm(NodeId(0)).is_false_alarm());
        assert!(!FaultSpec::Node(NodeId(0)).is_false_alarm());
        assert!(FaultSpec::Multi(vec![FaultSpec::FalseAlarm(NodeId(1))]).is_false_alarm());
        assert!(!FaultSpec::Multi(vec![
            FaultSpec::FalseAlarm(NodeId(1)),
            FaultSpec::Node(NodeId(2))
        ])
        .is_false_alarm());
    }
}
