//! # flash-machine — the assembled FLASH-style machine
//!
//! Wires the substrates together into a runnable cc-NUMA machine model:
//! processors with blocking caches, MAGIC node controllers with all
//! fault-containment features, per-node directory slices, and the
//! interconnect fabric — plus the experiment infrastructure of the paper's
//! Section 5: a fault injector for the five fault types of Table 5.2 and
//! the incoherence oracle used by the validation runs of Table 5.3.
//!
//! The recovery algorithm itself is *not* here: it plugs in through the
//! [`Extension`] trait (implemented by `flash-core`), keeping the paper's
//! contribution separate from the substrate.
//!
//! # Examples
//!
//! ```
//! use flash_machine::{Machine, MachineParams, NullExtension, Script, ProcOp};
//! use flash_coherence::LineAddr;
//! use flash_sim::SimTime;
//! use flash_net::NodeId;
//!
//! // A 4-node machine where node 1 writes a line homed on node 0.
//! let mut m = Machine::new(
//!     MachineParams::tiny(),
//!     |n| {
//!         if n == NodeId(1) {
//!             Box::new(Script::new([ProcOp::Write(LineAddr(100))]))
//!         } else {
//!             Box::new(Script::new([]))
//!         }
//!     },
//!     NullExtension,
//!     42,
//! );
//! m.start();
//! m.run_until(SimTime::MAX);
//! assert!(m.st().nodes[1].cache.lookup(LineAddr(100)).unwrap().exclusive);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fault;
mod machine;
mod node;
mod oracle;
mod params;
mod payload;
mod workload;

pub use fault::FaultSpec;
pub use machine::{
    Checkpoint, Ev, Extension, Machine, MachineState, MachineWorld, NullExtension, ShardPlan,
};
pub use node::{IoDevice, NodeCtx, OutPkt, ProcState};
pub use oracle::{Oracle, ValidationReport};
pub use params::{MachineParams, TopologyKind};
pub use payload::{Payload, UncMsg};
pub use workload::{Idle, OpResult, ProcOp, RandomFill, Script, Workload};
