//! The assembled machine: nodes + interconnect + event dispatch, with an
//! extension hook for the recovery algorithm.
//!
//! [`MachineState`] owns all simulated hardware; [`Machine`] couples it to
//! the event engine and to an [`Extension`] — the recovery algorithm is an
//! extension supplied by the `flash-core` crate, keeping the substrate and
//! the paper's contribution cleanly separated.
//!
//! ## Modeling notes
//!
//! * Every message (including node-local misses) traverses the fabric, so a
//!   local miss loops through the node's own router. This slightly inflates
//!   local miss latency but keeps one uniform code path.
//! * The range check is evaluated at the issuing node: the protected-region
//!   boundary is a global boot-time constant, so the local MAGIC can reject
//!   the write immediately with a bus error (paper, Section 3.3).

use crate::fault::FaultSpec;
use crate::node::{NodeCtx, OutPkt, ProcState};
use crate::oracle::{Oracle, ValidationReport};
use crate::params::{MachineParams, TopologyKind};
use crate::payload::{Payload, UncMsg};
use crate::workload::{OpResult, ProcOp, Workload};
use flash_coherence::{CohMsg, DirState, HomeIn, LineAddr, MemLayout, NodeSet};
use flash_magic::{BusError, MagicMode, Trigger};
use flash_net::{
    DeliveryNote, Fabric, Hypercube, Lane, Mesh2D, NetEv, NodeId, Packet, RouterId, Topology,
};
use flash_sim::{Counters, DetRng, Engine, RunOutcome, Scheduler, SimDuration, SimTime, World};

/// Events driving the machine, generic over the extension's event type `E`.
#[derive(Clone, Debug)]
pub enum Ev<E> {
    /// Interconnect event.
    Net(NetEv),
    /// Service the node controller's input queues.
    NodeWake(u16),
    /// The processor issues (or finishes) an operation.
    ProcNext(u16),
    /// Memory-operation timeout check.
    Timeout {
        /// Node whose operation may have timed out.
        node: u16,
        /// Issue epoch the timeout belongs to.
        epoch: u64,
    },
    /// Retry of a NAK'd request.
    NakRetry {
        /// Retrying node.
        node: u16,
        /// Issue epoch the retry belongs to.
        epoch: u64,
    },
    /// Drain a node's outbound queue into the fabric.
    Pump {
        /// Node to pump.
        node: u16,
        /// Lane index to pump.
        lane: u8,
    },
    /// Inject a fault.
    Fault(FaultSpec),
    /// Route a hardware trigger to the extension on the next dispatch.
    TriggerNow {
        /// Node the trigger fired on.
        node: u16,
        /// The trigger.
        trig: Trigger,
    },
    /// An extension (recovery-algorithm) event.
    Ext(E),
}

/// The recovery-algorithm hook. `flash-core` implements this; tests can use
/// [`NullExtension`].
pub trait Extension: std::fmt::Debug + Sized {
    /// Wire messages carried on the recovery virtual lanes.
    type Msg: Clone + std::fmt::Debug;
    /// Timed events private to the extension.
    type Ev: Clone + std::fmt::Debug;

    /// A hardware trigger fired on `node` (Table 4.1).
    fn on_trigger(
        &mut self,
        st: &mut MachineState<Self::Msg>,
        node: NodeId,
        trig: Trigger,
        sched: &mut Scheduler<'_, Ev<Self::Ev>>,
    );

    /// A timed extension event fired.
    fn on_event(
        &mut self,
        st: &mut MachineState<Self::Msg>,
        ev: Self::Ev,
        sched: &mut Scheduler<'_, Ev<Self::Ev>>,
    );

    /// A recovery-lane message was delivered to `at`.
    fn on_recovery_msg(
        &mut self,
        st: &mut MachineState<Self::Msg>,
        at: NodeId,
        from: NodeId,
        msg: Self::Msg,
        sched: &mut Scheduler<'_, Ev<Self::Ev>>,
    );
}

/// An extension that ignores all triggers; useful for fault-free tests and
/// normal-mode benchmarks.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullExtension;

impl Extension for NullExtension {
    type Msg = ();
    type Ev = ();
    fn on_trigger(
        &mut self,
        st: &mut MachineState<()>,
        _node: NodeId,
        _trig: Trigger,
        _sched: &mut Scheduler<'_, Ev<()>>,
    ) {
        st.counters.incr("ignored_triggers");
    }
    fn on_event(
        &mut self,
        _st: &mut MachineState<()>,
        _ev: (),
        _sched: &mut Scheduler<'_, Ev<()>>,
    ) {
    }
    fn on_recovery_msg(
        &mut self,
        _st: &mut MachineState<()>,
        _at: NodeId,
        _from: NodeId,
        _msg: (),
        _sched: &mut Scheduler<'_, Ev<()>>,
    ) {
    }
}

/// A notable machine-level event retained in the debug trace.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A fault was injected.
    Fault(FaultSpec),
    /// A hardware recovery trigger fired on a node.
    Trigger {
        /// The detecting node.
        node: NodeId,
        /// The trigger kind.
        trig: Trigger,
    },
    /// A bus error was raised to a processor.
    BusErrorRaised {
        /// The erroring node.
        node: NodeId,
        /// The cause.
        err: BusError,
    },
    /// Free-form annotation (recovery phases, experiment markers).
    Note(&'static str, u64),
}

/// All simulated hardware state.
#[derive(Debug)]
pub struct MachineState<R> {
    /// Configuration.
    pub params: MachineParams,
    /// Memory layout.
    pub layout: MemLayout,
    /// The interconnect.
    pub fabric: Fabric<Payload<R>>,
    /// Per-node state.
    pub nodes: Vec<NodeCtx<R>>,
    /// The validation oracle.
    pub oracle: Oracle,
    /// Machine-level statistics.
    pub counters: Counters,
    /// Ground-truth set of failed nodes (fault injector's view).
    pub failed_nodes: NodeSet,
    /// Debug trace of notable events (bounded; see
    /// [`flash_sim::TraceBuffer`]).
    pub trace: flash_sim::TraceBuffer<TraceEvent>,
    next_unc_tag: u64,
}

impl<R: Clone + std::fmt::Debug> MachineState<R> {
    fn new(
        params: MachineParams,
        mut make_workload: impl FnMut(NodeId) -> Box<dyn Workload>,
        seed: u64,
    ) -> Self {
        let layout = params.layout();
        let fabric = match params.topology {
            TopologyKind::Mesh2D => {
                let topo = Mesh2D::roughly_square(params.n_nodes);
                assert_eq!(
                    topo.num_nodes(),
                    params.n_nodes,
                    "n_nodes must factor into a mesh"
                );
                Fabric::new(&topo, params.net)
            }
            TopologyKind::Hypercube => {
                let topo = Hypercube::at_least(params.n_nodes);
                assert_eq!(
                    topo.num_nodes(),
                    params.n_nodes,
                    "n_nodes must be a power of two for a hypercube"
                );
                Fabric::new(&topo, params.net)
            }
        };
        let mut root_rng = DetRng::new(seed);
        let nodes = (0..params.n_nodes)
            .map(|i| {
                let id = NodeId(i as u16);
                NodeCtx::new(
                    id,
                    &params,
                    layout,
                    make_workload(id),
                    root_rng.fork(i as u64),
                )
            })
            .collect();
        MachineState {
            params,
            layout,
            fabric,
            nodes,
            oracle: Oracle::new(),
            counters: Counters::new(),
            failed_nodes: NodeSet::new(),
            trace: flash_sim::TraceBuffer::new(512),
            next_unc_tag: 0,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Reports a broken internal invariant: dumps the recent event trace to
    /// stderr (the post-mortem a bare `unwrap` would discard) and panics
    /// with `what`. Used by the hot-path and recovery-path accessors below
    /// in place of silent `expect`s.
    #[track_caller]
    pub fn invariant_failure(&self, what: &str) -> ! {
        eprintln!("machine invariant violated: {what}");
        eprintln!(
            "--- recent trace (oldest first) ---\n{}",
            self.trace.render()
        );
        panic!("machine invariant violated: {what}");
    }

    /// Unwraps an `Option` that an invariant guarantees is `Some`; on
    /// violation, dumps the trace and panics with `what`.
    #[track_caller]
    pub fn invariant_some<T>(&self, value: Option<T>, what: &str) -> T {
        match value {
            Some(v) => v,
            None => self.invariant_failure(what),
        }
    }

    /// Nodes that are operational according to ground truth.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().filter(|n| n.is_alive()).map(|n| n.id)
    }

    /// Queues a payload for transmission; the per-lane pump drains it into
    /// the fabric, retrying when the injection queue is full.
    pub fn queue_send<E>(
        &mut self,
        from: NodeId,
        pkt: OutPkt<R>,
        sched: &mut Scheduler<'_, Ev<E>>,
    ) {
        let lane_idx = pkt.lane.index();
        let node = &mut self.nodes[from.index()];
        node.outbox[lane_idx].push_back(pkt);
        if !node.pump_scheduled[lane_idx] {
            node.pump_scheduled[lane_idx] = true;
            // Messages produced by a handler leave the controller when the
            // handler completes — handler occupancy (e.g. the firewall's
            // ACL check) is therefore part of the reply latency.
            let at = node.occupancy.busy_until().max(sched.now());
            sched.at(
                at,
                Ev::Pump {
                    node: from.0,
                    lane: lane_idx as u8,
                },
            );
        }
    }

    /// Queues a coherence message (table-routed, on its protocol lane).
    pub fn send_coh<E>(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: CohMsg,
        sched: &mut Scheduler<'_, Ev<E>>,
    ) {
        let pkt = OutPkt {
            dst: to,
            flits: msg.flits(),
            lane: msg.lane(),
            payload: Payload::Coh(msg),
            route: None,
        };
        self.queue_send(from, pkt, sched);
    }

    /// Queues an uncached message (table-routed).
    pub fn send_unc<E>(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: UncMsg,
        sched: &mut Scheduler<'_, Ev<E>>,
    ) {
        let lane = if msg.is_reply() {
            Lane::Reply
        } else {
            Lane::Request
        };
        let pkt = OutPkt {
            dst: to,
            flits: msg.flits(),
            lane,
            payload: Payload::Unc(msg),
            route: None,
        };
        self.queue_send(from, pkt, sched);
    }

    /// Queues a source-routed recovery message on the given recovery lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is not a recovery lane.
    pub fn send_recovery<E>(
        &mut self,
        from: NodeId,
        to: NodeId,
        hops: Vec<RouterId>,
        lane: Lane,
        msg: R,
        sched: &mut Scheduler<'_, Ev<E>>,
    ) {
        assert!(
            !lane.is_coherence(),
            "recovery traffic uses dedicated lanes"
        );
        let pkt = OutPkt {
            dst: to,
            flits: 1,
            lane,
            payload: Payload::Rec(msg),
            route: Some(hops),
        };
        self.queue_send(from, pkt, sched);
    }

    /// Allocates a fresh uncached-operation tag.
    pub fn fresh_unc_tag(&mut self) -> u64 {
        let t = self.next_unc_tag;
        self.next_unc_tag += 1;
        t
    }

    /// Switches a node controller into recovery-drain mode and snapshots its
    /// directory for the oracle's may-become-incoherent set: from this
    /// moment the home issues no new grants, so the set is stable (see
    /// `crate::oracle`).
    pub fn enter_recovery_mode(&mut self, node: NodeId) {
        let prev = self.nodes[node.index()].mode;
        if matches!(prev, MagicMode::Normal) {
            self.nodes[node.index()].mode = MagicMode::RecoveryDrain;
        }
        self.snapshot_home_for_oracle(node);
    }

    /// Extends the oracle's may-become-incoherent set with this home's
    /// currently endangered lines: dirty-remote lines whose owner is failed
    /// or no longer holds the copy (grant or writeback in flight). Called at
    /// every recovery (re)start so restarts triggered by additional faults
    /// account for the newly lost owners. Additive and idempotent.
    pub fn snapshot_home_for_oracle(&mut self, node: NodeId) {
        if !self.nodes[node.index()].is_alive() {
            return;
        }
        let entries: Vec<(LineAddr, NodeId)> = self.nodes[node.index()]
            .dir
            .iter_states()
            .filter_map(|(line, s)| match s {
                DirState::Exclusive(o) => Some((line, o)),
                DirState::PendingRecall { owner, .. } => Some((line, owner)),
                _ => None,
            })
            .collect();
        for (line, owner) in entries {
            let owner_failed =
                self.failed_nodes.contains(owner) || !self.nodes[owner.index()].is_alive();
            // A shared-flagged copy does not satisfy the flush (only dirty
            // lines are written back), so an owner holding the line merely
            // shared — an upgrade grant still in flight — counts as lacking.
            let owner_lacks = !self.nodes[owner.index()]
                .cache
                .lookup(line)
                .map(|l| l.exclusive)
                .unwrap_or(false);
            if owner_failed || owner_lacks {
                self.oracle.allow_incoherent(line);
            }
        }
        self.oracle.finish_snapshot();
    }

    /// Unstalls the processor for recovery: pending cacheable operations are
    /// NAK'd (to be reissued after recovery); a pending uncached read is
    /// terminated but its result is saved for exactly-once emulation
    /// (paper, Section 4.2).
    pub fn drop_processor_into_recovery(&mut self, node: NodeId) {
        let n = &mut self.nodes[node.index()];
        match n.proc {
            ProcState::Dead => return,
            ProcState::WaitMiss { .. } => {
                // The request will be reissued from `current_op` on resume.
                n.proc = ProcState::InRecovery;
            }
            ProcState::WaitUncached { write, .. } => {
                if !write {
                    n.saved_unc_read = n.uncached.on_recovery_initiation();
                }
                n.proc = ProcState::InRecovery;
            }
            ProcState::Ready | ProcState::Halted => {
                if !matches!(n.proc, ProcState::Halted) {
                    n.proc = ProcState::InRecovery;
                }
            }
            ProcState::InRecovery => {}
        }
        n.naks.reset();
        // Any buffered interventions are moot: recovery flushes all caches
        // and resets the directory state.
        n.pending_remote.clear();
    }

    /// The state a node's processor is in (test access).
    pub fn proc_state(&self, node: NodeId) -> ProcState {
        self.nodes[node.index()].proc
    }

    /// Applies a fault (ground-truth mutation + oracle bookkeeping).
    /// False alarms are *not* applied here — the dispatcher routes them to
    /// the extension as a [`Trigger::FalseAlarm`].
    pub fn apply_fault(&mut self, spec: &FaultSpec, now: SimTime) {
        for victim in spec.doomed_nodes() {
            // Every line held exclusive (dirty) by the victim may become
            // incoherent, whatever the relative timing of snapshots and
            // recovery phases.
            let dirty: Vec<LineAddr> = self.nodes[victim.index()]
                .cache
                .iter()
                .filter(|l| l.exclusive)
                .map(|l| l.addr)
                .collect();
            for line in dirty {
                self.oracle.allow_incoherent(line);
            }
        }
        match spec {
            FaultSpec::Node(n) => {
                self.failed_nodes.insert(*n);
                let node = &mut self.nodes[n.index()];
                node.mode = MagicMode::Dead;
                node.proc = ProcState::Dead;
                self.fabric.set_node_sink(*n, true);
            }
            FaultSpec::Router(r) => {
                self.fabric.fail_router(*r, now);
                let nid = NodeId(r.0);
                self.failed_nodes.insert(nid);
                let node = &mut self.nodes[nid.index()];
                node.mode = MagicMode::Dead;
                node.proc = ProcState::Dead;
                self.fabric.set_node_sink(nid, true);
            }
            FaultSpec::Link(a, b) => {
                let ok = self.fabric.fail_link_between(*a, *b, now);
                assert!(ok, "link fault on non-adjacent routers");
            }
            FaultSpec::InfiniteLoop(n) => {
                self.failed_nodes.insert(*n);
                let node = &mut self.nodes[n.index()];
                node.mode = MagicMode::InfiniteLoop;
                // The processor spins forever on its current access.
            }
            FaultSpec::FirmwareAssertion(_) => {
                // Physical effect applied by the dispatcher after the
                // fail-fast controller has raised its own trigger.
            }
            FaultSpec::FalseAlarm(_) => {}
            FaultSpec::Multi(list) => {
                for f in list {
                    self.apply_fault(f, now);
                }
            }
        }
    }

    /// The recovery cache flush (paper, Section 4.5): empties the node's
    /// cache and queues writebacks of all dirty lines to their homes, except
    /// lines homed on nodes marked failed in the node map (those are gone
    /// with their homes). Returns the number of writebacks queued.
    pub fn flush_cache_for_recovery<E>(
        &mut self,
        node: NodeId,
        sched: &mut Scheduler<'_, Ev<E>>,
    ) -> usize {
        let dirty = self.nodes[node.index()].cache.flush_all();
        let mut sent = 0;
        for l in dirty {
            let home = self.layout.home_of(l.addr);
            if self.nodes[node.index()].node_map.is_available(home) {
                let put = CohMsg::Put {
                    line: l.addr,
                    version: l.version,
                    keep_shared: false,
                };
                self.send_coh(node, home, put, sched);
                sent += 1;
            }
        }
        sent
    }

    /// Installs one router's row of a freshly computed routing table (each
    /// node reprograms its own router during interconnect recovery).
    pub fn install_router_row(&mut self, router: RouterId, tables: &flash_net::RoutingTables) {
        let n = self.fabric.num_routers();
        for d in 0..n as u16 {
            let hop = tables.hop(router, RouterId(d));
            self.fabric.tables_mut().set(router, RouterId(d), hop);
        }
    }

    /// The isolation step of interconnect recovery, executed by each live
    /// node for its own router: program table entries toward dead
    /// destinations to discard, and make the local ejection port of any
    /// adjacent dead-controller node sink its traffic.
    pub fn apply_isolation_for(&mut self, node: NodeId, dead: &NodeSet) {
        let router = RouterId(node.0);
        let n = self.fabric.num_routers();
        for d in 0..n as u16 {
            if dead.contains(NodeId(d)) {
                self.fabric
                    .tables_mut()
                    .set(router, RouterId(d), flash_net::Hop::Discard);
            }
        }
        // Neighboring dead-controller nodes (router alive, MAGIC dead or
        // spinning): their ejection port is reprogrammed to discard so the
        // congestion tree can drain.
        let nbrs: Vec<NodeId> = self
            .fabric
            .neighbors(router)
            .iter()
            .map(|nb| NodeId(nb.router.0))
            .collect();
        for nb in nbrs {
            if dead.contains(nb) && self.fabric.router_alive(RouterId(nb.0)) {
                self.fabric.set_node_sink(nb, true);
            }
        }
    }

    /// Resumes normal operation on a node after recovery completes: the
    /// controller returns to normal dispatch, the OS-recovery interrupt is
    /// raised, and the processor re-executes its interrupted operation
    /// (NAK'd cacheable ops are reissued; a saved uncached read is emulated
    /// from its buffer — paper, Sections 4.2 and 4.6).
    pub fn resume_after_recovery<E>(&mut self, node: NodeId, sched: &mut Scheduler<'_, Ev<E>>) {
        let i = node.index();
        if !self.nodes[i].is_alive() {
            return;
        }
        self.nodes[i].mode = MagicMode::Normal;
        self.nodes[i].os_interrupt_pending = true;
        if !matches!(self.nodes[i].proc, ProcState::InRecovery) {
            return;
        }
        // Saved uncached read emulation.
        if let Some(tag) = self.nodes[i].saved_unc_read.take() {
            let saved = self.nodes[i].uncached.take_saved(tag);
            let node_ref = &mut self.nodes[i];
            node_ref.proc = ProcState::Ready;
            node_ref.current_op = None;
            match saved {
                Some(flash_magic::SavedRead::Arrived(v)) => {
                    node_ref.workload.on_result(node, OpResult::Ok(Some(v)));
                }
                _ => {
                    node_ref.bus_errors += 1;
                    node_ref
                        .workload
                        .on_result(node, OpResult::BusError(BusError::UncachedUnresolved));
                }
            }
            sched.immediately(Ev::ProcNext(node.0));
            return;
        }
        let node_ref = &mut self.nodes[i];
        match node_ref.current_op {
            Some(ProcOp::UncachedWrite { .. }) => {
                // A pending uncached write's ack was lost in recovery; the
                // write is nonidempotent and must not be retried — treat it
                // as completed (see DESIGN.md).
                node_ref.proc = ProcState::Ready;
                node_ref.current_op = None;
                node_ref.workload.on_result(node, OpResult::Ok(None));
            }
            _ => {
                // Cacheable ops (or none): reissue from current_op.
                node_ref.proc = ProcState::Ready;
            }
        }
        sched.immediately(Ev::ProcNext(node.0));
    }

    /// Post-recovery validation against the oracle (the check of Table 5.3):
    /// no over-marking, no silent corruption. The machine should be
    /// quiescent (no in-flight coherence traffic); a line's effective data
    /// is the exclusive cached copy if one exists, else the home memory
    /// image.
    pub fn validate(&self) -> ValidationReport {
        // Lines whose only valid copy was lost inside the interconnect
        // (dropped writebacks / exclusive grants) may legitimately be
        // marked incoherent even when they postdate the per-home oracle
        // snapshot.
        let mut lost_in_transit: std::collections::HashSet<LineAddr> =
            std::collections::HashSet::new();
        for pkt in self.fabric.dropped_packets() {
            if let Payload::Coh(msg) = &pkt.payload {
                if msg.carries_sole_copy() {
                    lost_in_transit.insert(msg.line());
                }
            }
        }
        // Collect exclusive (dirty) copies from all live caches.
        let mut dirty: std::collections::HashMap<LineAddr, flash_coherence::Version> =
            std::collections::HashMap::new();
        for node in &self.nodes {
            if !node.is_alive() {
                continue;
            }
            for l in node.cache.iter() {
                if l.exclusive {
                    dirty.insert(l.addr, l.version);
                }
            }
        }
        let mut report = ValidationReport::default();
        for node in &self.nodes {
            if self.failed_nodes.contains(node.id) {
                report.inaccessible += self.layout.lines_per_node();
                continue;
            }
            for (line, state) in node.dir.iter_states() {
                report.lines_checked += 1;
                match state {
                    DirState::Incoherent => {
                        report.marked_incoherent += 1;
                        if !self.oracle.may_be_incoherent(line) && !lost_in_transit.contains(&line)
                        {
                            report.overmarked.push(line);
                        }
                    }
                    _ => {
                        let effective = dirty
                            .get(&line)
                            .copied()
                            .unwrap_or(node.dir.mem_version(line));
                        if effective != self.oracle.expected_version(line) {
                            report.corrupted.push(line);
                        }
                    }
                }
            }
        }
        report
    }
}

/// The [`World`] implementation: machine state + extension.
#[derive(Debug)]
pub struct MachineWorld<X: Extension> {
    /// Hardware state.
    pub st: MachineState<X::Msg>,
    /// The recovery extension.
    pub ext: X,
}

impl<X: Extension> World for MachineWorld<X> {
    type Ev = Ev<X::Ev>;

    fn dispatch(&mut self, ev: Ev<X::Ev>, sched: &mut Scheduler<'_, Ev<X::Ev>>) {
        match ev {
            Ev::Net(e) => {
                let mut out = Vec::new();
                let mut del: Vec<DeliveryNote> = Vec::new();
                self.st.fabric.handle(e, sched.now(), &mut out, &mut del);
                for (d, e) in out {
                    sched.after(d, Ev::Net(e));
                }
                for note in del {
                    sched.immediately(Ev::NodeWake(note.node.0));
                }
            }
            Ev::NodeWake(n) => node_wake(&mut self.st, &mut self.ext, n, sched),
            Ev::ProcNext(n) => proc_next(&mut self.st, n, sched),
            Ev::Timeout { node, epoch } => {
                let proc = self.st.nodes[node as usize].proc;
                let alive = self.st.nodes[node as usize].is_alive();
                let fire = match proc {
                    ProcState::WaitMiss { epoch: e, .. } => e == epoch,
                    ProcState::WaitUncached { epoch: e, .. } => e == epoch,
                    _ => false,
                };
                if fire && alive {
                    let line = match proc {
                        ProcState::WaitMiss { line, .. } => line,
                        _ => LineAddr(0),
                    };
                    self.st.counters.incr("timeout_triggers");
                    self.st.trace.record(
                        sched.now(),
                        TraceEvent::Trigger {
                            node: NodeId(node),
                            trig: Trigger::MemOpTimeout { line },
                        },
                    );
                    self.ext.on_trigger(
                        &mut self.st,
                        NodeId(node),
                        Trigger::MemOpTimeout { line },
                        sched,
                    );
                }
            }
            Ev::NakRetry { node, epoch } => {
                let proc = self.st.nodes[node as usize].proc;
                if !self.st.nodes[node as usize].is_alive() {
                    return;
                }
                if let ProcState::WaitMiss {
                    line,
                    write,
                    epoch: e,
                } = proc
                {
                    if e == epoch {
                        resend_miss(&mut self.st, node, line, write, sched);
                    }
                }
            }
            Ev::Pump { node, lane } => pump(&mut self.st, node, lane, sched),
            Ev::Fault(spec) => {
                self.st.counters.incr("faults_injected");
                self.st
                    .trace
                    .record(sched.now(), TraceEvent::Fault(spec.clone()));
                self.st.apply_fault(&spec, sched.now());
                let mut singles: Vec<&FaultSpec> = Vec::new();
                match &spec {
                    FaultSpec::Multi(list) => singles.extend(list.iter()),
                    other => singles.push(other),
                }
                for f in singles {
                    match f {
                        FaultSpec::FalseAlarm(n) => {
                            self.ext
                                .on_trigger(&mut self.st, *n, Trigger::FalseAlarm, sched);
                        }
                        FaultSpec::FirmwareAssertion(n) => {
                            // Fail-fast: the controller raises the trigger,
                            // its dying-gasp pings spread the wave, and a
                            // microsecond later it halts for good.
                            self.ext
                                .on_trigger(&mut self.st, *n, Trigger::AssertionFailure, sched);
                            sched
                                .after(SimDuration::from_micros(1), Ev::Fault(FaultSpec::Node(*n)));
                        }
                        _ => {}
                    }
                }
            }
            Ev::TriggerNow { node, trig } => {
                if self.st.nodes[node as usize].is_alive() {
                    self.st.trace.record(
                        sched.now(),
                        TraceEvent::Trigger {
                            node: NodeId(node),
                            trig,
                        },
                    );
                    self.ext.on_trigger(&mut self.st, NodeId(node), trig, sched);
                }
            }
            Ev::Ext(e) => self.ext.on_event(&mut self.st, e, sched),
        }
    }
}

/// Services one input packet on a node controller, if idle and available.
fn node_wake<X: Extension>(
    st: &mut MachineState<X::Msg>,
    ext: &mut X,
    n: u16,
    sched: &mut Scheduler<'_, Ev<X::Ev>>,
) {
    let now = sched.now();
    {
        let node = &st.nodes[n as usize];
        if !node.is_alive() {
            return;
        }
        if !node.occupancy.idle_at(now) {
            sched.at(node.occupancy.busy_until(), Ev::NodeWake(n));
            return;
        }
    }
    // Service priority: replies first (always sinkable), then requests,
    // then the recovery lanes.
    let lanes = [Lane::Reply, Lane::Request, Lane::Recovery0, Lane::Recovery1];
    let mut pkt = None;
    for lane in lanes {
        if let Some(p) = st.fabric.pop_input(NodeId(n), lane) {
            pkt = Some(p);
            break;
        }
    }
    let Some(pkt) = pkt else { return };
    process_packet(st, ext, n, pkt, sched);
    // More input may be waiting; wake again when the handler completes.
    let busy_until = st.nodes[n as usize].occupancy.busy_until();
    let more: bool = Lane::ALL
        .iter()
        .any(|&l| st.fabric.input_len(NodeId(n), l) > 0);
    if more {
        sched.at(busy_until.max(now), Ev::NodeWake(n));
    }
}

fn process_packet<X: Extension>(
    st: &mut MachineState<X::Msg>,
    ext: &mut X,
    n: u16,
    pkt: Packet<Payload<X::Msg>>,
    sched: &mut Scheduler<'_, Ev<X::Ev>>,
) {
    let now = sched.now();
    let costs = st.params.magic.costs;
    // A truncated packet dispatches the error handler and triggers recovery
    // (paper, Sections 3.1 and 4.2); the payload is not interpreted.
    if pkt.truncated {
        st.nodes[n as usize]
            .occupancy
            .occupy(now, SimDuration::from_nanos(costs.error_ns));
        st.counters.incr("truncated_dispatches");
        // A data-carrying coherence packet that was truncated names the line
        // whose data flits were lost; it can be marked directly.
        if let Payload::Coh(CohMsg::Put { line, .. } | CohMsg::Data { line, .. }) = pkt.payload {
            st.oracle.allow_incoherent(line);
        }
        ext.on_trigger(st, NodeId(n), Trigger::TruncatedPacket, sched);
        return;
    }
    match pkt.payload {
        Payload::Rec(msg) => {
            st.nodes[n as usize]
                .occupancy
                .occupy(now, SimDuration::from_nanos(costs.recovery_msg_ns));
            ext.on_recovery_msg(st, NodeId(n), pkt.src, msg, sched);
        }
        Payload::Coh(msg) => process_coh(st, n, pkt.src, msg, sched),
        Payload::Unc(msg) => process_unc(st, n, pkt.src, msg, sched),
    }
}

fn process_coh<R: Clone + std::fmt::Debug, E: Clone + std::fmt::Debug>(
    st: &mut MachineState<R>,
    n: u16,
    from: NodeId,
    msg: CohMsg,
    sched: &mut Scheduler<'_, Ev<E>>,
) {
    let now = sched.now();
    let costs = st.params.magic.costs;
    let line = msg.line();
    let home = st.layout.home_of(line);
    let at_home = home.0 == n;
    let mode = st.nodes[n as usize].mode;

    if at_home
        && matches!(
            msg,
            CohMsg::Get { .. }
                | CohMsg::GetX { .. }
                | CohMsg::UpgradeReq { .. }
                | CohMsg::Put { .. }
                | CohMsg::InvalAck { .. }
        )
    {
        match mode {
            MagicMode::Normal => {
                // Firewall: exclusive fetches need write permission for the
                // page (adds the ACL-check cost to the handler).
                if matches!(msg, CohMsg::GetX { .. } | CohMsg::UpgradeReq { .. }) {
                    let fw_cost = if st.nodes[n as usize].firewall.enabled() {
                        costs.firewall_check_ns
                    } else {
                        0
                    };
                    st.nodes[n as usize]
                        .occupancy
                        .occupy(now, SimDuration::from_nanos(costs.getx_ns + fw_cost));
                    if !st.nodes[n as usize].firewall.may_write(line.page(), from) {
                        st.counters.incr("firewall_denials");
                        st.send_coh(NodeId(n), from, CohMsg::FirewallErr { line }, sched);
                        return;
                    }
                } else {
                    let cost = match msg {
                        CohMsg::Get { .. } => costs.get_ns,
                        CohMsg::Put { .. } => costs.put_ns + costs.mem_access_ns,
                        CohMsg::InvalAck { .. } => costs.inval_ack_ns,
                        _ => costs.get_ns,
                    };
                    st.nodes[n as usize]
                        .occupancy
                        .occupy(now, SimDuration::from_nanos(cost));
                }
                let input = match msg {
                    CohMsg::Get { .. } => HomeIn::Get { from },
                    CohMsg::GetX { .. } => HomeIn::GetX { from },
                    CohMsg::UpgradeReq { .. } => HomeIn::Upgrade { from },
                    CohMsg::Put {
                        version,
                        keep_shared,
                        ..
                    } => HomeIn::Put {
                        from,
                        version,
                        keep_shared,
                    },
                    CohMsg::InvalAck { .. } => HomeIn::InvalAck { from },
                    other => st.invariant_failure(&format!(
                        "home-side dispatch reached a cache-side message: {other:?}"
                    )),
                };
                let outcome = st.nodes[n as usize].dir.handle(line, input);
                for (dst, reply) in outcome.sends {
                    st.send_coh(NodeId(n), dst, reply, sched);
                }
            }
            MagicMode::RecoveryDrain | MagicMode::Recovery => {
                // Field the message without generating replies or
                // invalidations (paper, Section 4.4); writebacks are
                // absorbed so their data is not lost.
                st.nodes[n as usize]
                    .occupancy
                    .occupy(now, SimDuration::from_nanos(costs.put_ns));
                if let CohMsg::Put { version, .. } = msg {
                    st.nodes[n as usize].dir.recovery_put(line, version);
                    st.counters.incr("recovery_puts_absorbed");
                } else {
                    st.counters.incr("drained_requests");
                }
            }
            MagicMode::Dead | MagicMode::InfiniteLoop => {
                st.invariant_failure("coherence message serviced by a dead or looping MAGIC")
            }
        }
        return;
    }

    // Cache-side message.
    match msg {
        CohMsg::Data {
            line,
            version,
            exclusive,
        } => {
            st.nodes[n as usize]
                .occupancy
                .occupy(now, SimDuration::from_nanos(costs.data_ns));
            on_data_reply(st, n, line, version, exclusive, sched);
        }
        CohMsg::Nak { line } => {
            st.nodes[n as usize]
                .occupancy
                .occupy(now, SimDuration::from_nanos(costs.nak_ns));
            on_nak(st, n, line, sched);
        }
        CohMsg::Inval { line } => {
            st.nodes[n as usize]
                .occupancy
                .occupy(now, SimDuration::from_nanos(costs.inval_ns));
            if st.nodes[n as usize].mode == MagicMode::Normal {
                let node = &mut st.nodes[n as usize];
                if node.cache.invalidate(line).is_none() {
                    // Our copy may still be an in-flight grant: buffer the
                    // invalidation so it is honored when the data installs
                    // (otherwise a stale shared copy could linger).
                    if matches!(node.proc, ProcState::WaitMiss { line: l, .. } if l == line) {
                        node.pending_remote
                            .insert(line, crate::node::PendingRemote::Inval);
                    }
                }
                st.send_coh(NodeId(n), home, CohMsg::InvalAck { line }, sched);
            }
        }
        CohMsg::Fetch { line, for_write } => {
            st.nodes[n as usize]
                .occupancy
                .occupy(now, SimDuration::from_nanos(costs.inval_ns));
            if st.nodes[n as usize].mode != MagicMode::Normal {
                return;
            }
            let node = &mut st.nodes[n as usize];
            if for_write {
                if let Some(l) = node.cache.invalidate(line) {
                    // A clean (shared) copy can also answer a recall: its
                    // version equals memory, so the home completes the
                    // recall consistently (this arises when an upgrade's
                    // acknowledgment was lost across a recovery).
                    let put = CohMsg::Put {
                        line,
                        version: l.version,
                        keep_shared: false,
                    };
                    st.send_coh(NodeId(n), home, put, sched);
                    return;
                }
            } else if let Some(version) = node.cache.downgrade(line) {
                let put = CohMsg::Put {
                    line,
                    version,
                    keep_shared: true,
                };
                st.send_coh(NodeId(n), home, put, sched);
                return;
            } else if let Some(l) = node.cache.lookup(line).copied() {
                // Already shared (downgrade returned None): answer the read
                // recall from the clean copy we keep.
                let put = CohMsg::Put {
                    line,
                    version: l.version,
                    keep_shared: true,
                };
                st.send_coh(NodeId(n), home, put, sched);
                return;
            }
            // Absent line: either a voluntary writeback crossed the recall
            // (the home completes the recall from that writeback), or our
            // exclusive grant is still in flight — in that case buffer the
            // recall and honor it at install time, else the home deadlocks
            // in PendingRecall.
            let node = &mut st.nodes[n as usize];
            if matches!(node.proc, ProcState::WaitMiss { line: l, .. } if l == line) {
                node.pending_remote
                    .insert(line, crate::node::PendingRemote::Fetch { for_write });
            }
        }
        CohMsg::UpgradeAck { line } => {
            st.nodes[n as usize]
                .occupancy
                .occupy(now, SimDuration::from_nanos(costs.nak_ns));
            on_upgrade_ack(st, n, line, sched);
        }
        CohMsg::PutAck { .. } => {
            st.nodes[n as usize]
                .occupancy
                .occupy(now, SimDuration::from_nanos(costs.nak_ns));
        }
        CohMsg::IncoherentErr { line } => {
            st.nodes[n as usize]
                .occupancy
                .occupy(now, SimDuration::from_nanos(costs.nak_ns));
            bus_error_completion(st, n, line, BusError::Incoherent, sched);
        }
        CohMsg::FirewallErr { line } => {
            st.nodes[n as usize]
                .occupancy
                .occupy(now, SimDuration::from_nanos(costs.nak_ns));
            bus_error_completion(st, n, line, BusError::FirewallDenied, sched);
        }
        CohMsg::Get { .. }
        | CohMsg::GetX { .. }
        | CohMsg::UpgradeReq { .. }
        | CohMsg::Put { .. }
        | CohMsg::InvalAck { .. } => {
            // Misrouted home message (should not happen).
            st.counters.incr("misrouted_coh");
        }
    }
}

/// A data reply fills the cache and completes the blocked access.
fn on_data_reply<R: Clone + std::fmt::Debug, E: Clone + std::fmt::Debug>(
    st: &mut MachineState<R>,
    n: u16,
    line: LineAddr,
    version: flash_coherence::Version,
    exclusive: bool,
    sched: &mut Scheduler<'_, Ev<E>>,
) {
    let home = st.layout.home_of(line);
    let (expecting, write) = match st.nodes[n as usize].proc {
        ProcState::WaitMiss { line: l, write, .. } => (l == line, write),
        _ => (false, false),
    };
    if !expecting || st.nodes[n as usize].mode != MagicMode::Normal {
        st.counters.incr("stale_data_replies");
        // The request this reply answers was cancelled (NAK'd at recovery
        // initiation, or bus-errored). An *exclusive* reply carries the only
        // trusted copy — MAGIC returns it to the home as a writeback instead
        // of dropping it, so a false alarm loses no data (paper, §4.1).
        if exclusive {
            let put = CohMsg::Put {
                line,
                version,
                keep_shared: false,
            };
            st.send_coh(NodeId(n), home, put, sched);
        }
        return;
    }
    let node = &mut st.nodes[n as usize];
    // Replace any stale copy, then install.
    node.cache.invalidate(line);
    let evicted = node.cache.insert(line, exclusive, version);
    if let flash_coherence::InsertOutcome::EvictedDirty(victim) = evicted {
        let victim_home = st.layout.home_of(victim.addr);
        // Writebacks to failed homes are dropped (node map check).
        if st.nodes[n as usize].node_map.is_available(victim_home) {
            let put = CohMsg::Put {
                line: victim.addr,
                version: victim.version,
                keep_shared: false,
            };
            st.send_coh(NodeId(n), victim_home, put, sched);
        }
    }
    let speculative = st.nodes[n as usize].current_is_speculative;
    if write && !speculative {
        debug_assert!(exclusive, "store completion requires an exclusive grant");
        let stored = st.nodes[n as usize].cache.store(line);
        let v = st.invariant_some(stored, "data reply: exclusive line must accept the store");
        st.oracle.record_store(line, v);
    }
    // A speculative grant installs exclusive with unmodified data: the
    // processor discarded the wrong-path store, but the node now holds the
    // only trusted copy (Section 3.3's hazard).
    st.counters.add(
        "speculative_exclusive_grants",
        u64::from(write && speculative),
    );
    let node = &mut st.nodes[n as usize];
    let latency = sched.now().since(node.op_issued_at);
    if write {
        node.lat_write.record(latency);
    } else {
        node.lat_read.record(latency);
    }
    node.naks.reset();
    node.proc = ProcState::Ready;
    node.workload.on_result(NodeId(n), OpResult::Ok(None));
    node.current_op = None;
    let resume = node.occupancy.busy_until();
    // Honor any intervention that raced with this grant.
    let pending = node.pending_remote.remove(&line);
    #[allow(clippy::collapsible_match)]
    match pending {
        Some(crate::node::PendingRemote::Inval) => {
            // The ack was already sent when the invalidation arrived. If
            // the grant that just installed is *shared*, the invalidation
            // is for this very copy: drop it (the processor consumed its
            // value, ordered before the writer). If the grant is
            // *exclusive*, the buffered invalidation belongs to an older
            // sharer epoch — the home processed our GetX after that
            // invalidation round — and must be discarded, or it would
            // destroy the freshly committed store.
            if !exclusive {
                st.nodes[n as usize].cache.invalidate(line);
            }
        }
        Some(crate::node::PendingRemote::Fetch { for_write }) => {
            let node = &mut st.nodes[n as usize];
            if for_write {
                if let Some(l) = node.cache.invalidate(line) {
                    if l.exclusive {
                        let put = CohMsg::Put {
                            line,
                            version: l.version,
                            keep_shared: false,
                        };
                        st.send_coh(NodeId(n), home, put, sched);
                    }
                }
            } else if let Some(v) = node.cache.downgrade(line) {
                let put = CohMsg::Put {
                    line,
                    version: v,
                    keep_shared: true,
                };
                st.send_coh(NodeId(n), home, put, sched);
            }
        }
        None => {}
    }
    sched.at(resume, Ev::ProcNext(n));
}

fn on_nak<R: Clone + std::fmt::Debug, E: Clone + std::fmt::Debug>(
    st: &mut MachineState<R>,
    n: u16,
    line: LineAddr,
    sched: &mut Scheduler<'_, Ev<E>>,
) {
    let threshold = st.params.magic.nak_threshold;
    let node = &mut st.nodes[n as usize];
    let epoch = match node.proc {
        ProcState::WaitMiss { line: l, epoch, .. } if l == line => epoch,
        _ => {
            st.counters.incr("stale_naks");
            return;
        }
    };
    if node.naks.record_nak(threshold) {
        st.counters.incr("nak_overflows");
        sched.immediately(Ev::TriggerNow {
            node: n,
            trig: Trigger::NakOverflow { line },
        });
    } else {
        sched.after(
            SimDuration::from_nanos(st.params.magic.nak_retry_ns),
            Ev::NakRetry { node: n, epoch },
        );
    }
}

/// Completes the blocked access with a bus error (node-map miss, incoherent
/// line, firewall or range denial).
fn bus_error_completion<R: Clone + std::fmt::Debug, E: Clone + std::fmt::Debug>(
    st: &mut MachineState<R>,
    n: u16,
    line: LineAddr,
    err: BusError,
    sched: &mut Scheduler<'_, Ev<E>>,
) {
    let speculative = st.nodes[n as usize].current_is_speculative;
    let node = &mut st.nodes[n as usize];
    let matches_line = matches!(node.proc, ProcState::WaitMiss { line: l, .. } if l == line);
    if !matches_line {
        st.counters.incr("stale_error_replies");
        return;
    }
    if speculative {
        // Faults on incorrectly speculated references are discarded by the
        // processor (the firewall/error reply did its containment job).
        complete_discarded_speculation(st, n, sched);
        return;
    }
    node.bus_errors += 1;
    node.naks.reset();
    node.proc = ProcState::Ready;
    node.current_op = None;
    node.workload.on_result(NodeId(n), OpResult::BusError(err));
    st.counters.incr("bus_errors");
    st.trace.record(
        sched.now(),
        TraceEvent::BusErrorRaised {
            node: NodeId(n),
            err,
        },
    );
    let resume = st.nodes[n as usize].occupancy.busy_until();
    sched.at(resume, Ev::ProcNext(n));
}

fn process_unc<R: Clone + std::fmt::Debug, E: Clone + std::fmt::Debug>(
    st: &mut MachineState<R>,
    n: u16,
    from: NodeId,
    msg: UncMsg,
    sched: &mut Scheduler<'_, Ev<E>>,
) {
    let now = sched.now();
    let costs = st.params.magic.costs;
    st.nodes[n as usize]
        .occupancy
        .occupy(now, SimDuration::from_nanos(costs.uncached_ns));
    match msg {
        UncMsg::ReadReq { tag } => {
            if st.nodes[n as usize].mode != MagicMode::Normal {
                return; // consumed during recovery; requester is saved-read
            }
            if !st.nodes[n as usize].io_guard.allows(from) {
                st.counters.incr("io_guard_denials");
                st.send_unc(NodeId(n), from, UncMsg::IoDenied { tag }, sched);
                return;
            }
            let value = st.nodes[n as usize].io_dev.read();
            st.send_unc(NodeId(n), from, UncMsg::ReadReply { tag, value }, sched);
        }
        UncMsg::WriteReq { tag, value } => {
            if st.nodes[n as usize].mode != MagicMode::Normal {
                return;
            }
            if !st.nodes[n as usize].io_guard.allows(from) {
                st.counters.incr("io_guard_denials");
                st.send_unc(NodeId(n), from, UncMsg::IoDenied { tag }, sched);
                return;
            }
            st.nodes[n as usize].io_dev.write(value);
            st.send_unc(NodeId(n), from, UncMsg::WriteAck { tag }, sched);
        }
        UncMsg::ReadReply { tag, value } => {
            let node = &mut st.nodes[n as usize];
            let waiting = matches!(node.proc, ProcState::WaitUncached { tag: t, write: false, .. } if t == tag);
            if waiting {
                node.uncached.complete_read(tag);
                let latency = sched.now().since(node.op_issued_at);
                node.lat_uncached.record(latency);
                node.proc = ProcState::Ready;
                node.current_op = None;
                node.workload
                    .on_result(NodeId(n), OpResult::Ok(Some(value)));
                let resume = node.occupancy.busy_until();
                sched.at(resume, Ev::ProcNext(n));
            } else if node.uncached.deliver_late(tag, value) {
                st.counters.incr("late_uncached_replies_saved");
            } else {
                st.counters.incr("stale_uncached_replies");
            }
        }
        UncMsg::WriteAck { tag } => {
            let node = &mut st.nodes[n as usize];
            let waiting = matches!(node.proc, ProcState::WaitUncached { tag: t, write: true, .. } if t == tag);
            if waiting {
                node.proc = ProcState::Ready;
                node.current_op = None;
                node.workload.on_result(NodeId(n), OpResult::Ok(None));
                let resume = node.occupancy.busy_until();
                sched.at(resume, Ev::ProcNext(n));
            }
        }
        UncMsg::IoDenied { tag } => {
            let node = &mut st.nodes[n as usize];
            let waiting = matches!(node.proc, ProcState::WaitUncached { tag: t, .. } if t == tag);
            if waiting {
                node.bus_errors += 1;
                node.proc = ProcState::Ready;
                node.current_op = None;
                node.workload
                    .on_result(NodeId(n), OpResult::BusError(BusError::ForeignUncachedIo));
                st.counters.incr("bus_errors");
                let resume = node.occupancy.busy_until();
                sched.at(resume, Ev::ProcNext(n));
            }
        }
    }
}

/// The processor issues its next (or retained) operation.
fn proc_next<R: Clone + std::fmt::Debug, E: Clone + std::fmt::Debug>(
    st: &mut MachineState<R>,
    n: u16,
    sched: &mut Scheduler<'_, Ev<E>>,
) {
    let now = sched.now();
    {
        let node = &mut st.nodes[n as usize];
        if !matches!(node.proc, ProcState::Ready) {
            return;
        }
        if node.current_op.is_none() {
            let node_id = node.id;
            let op = node.workload.next_op(node_id, &mut node.rng);
            node.current_op = Some(op);
        }
    }
    let op = st.invariant_some(
        st.nodes[n as usize].current_op,
        "proc step: current_op must be populated before dispatch",
    );
    let issue = SimDuration::from_nanos(st.params.proc_issue_ns);
    match op {
        ProcOp::Halt => {
            st.nodes[n as usize].proc = ProcState::Halted;
            st.nodes[n as usize].current_op = None;
        }
        ProcOp::Compute(ns) => {
            let node = &mut st.nodes[n as usize];
            node.current_op = None;
            node.workload.on_result(NodeId(n), OpResult::Ok(None));
            sched.after(SimDuration::from_nanos(ns) + issue, Ev::ProcNext(n));
        }
        ProcOp::Read(raw) | ProcOp::Write(raw) | ProcOp::SpeculativeWrite(raw) => {
            let speculative = matches!(op, ProcOp::SpeculativeWrite(_));
            let write = matches!(op, ProcOp::Write(_) | ProcOp::SpeculativeWrite(_));
            st.nodes[n as usize].current_is_speculative = speculative;
            let line = st.nodes[n as usize].remap.remap(raw);
            // Range check at the issuing MAGIC (global boot-time constant).
            if write {
                let local = st.layout.local_index(line) as u64;
                if !st.nodes[n as usize].range_check.write_allowed(local) {
                    if speculative {
                        complete_discarded_speculation(st, n, sched);
                    } else {
                        complete_local_bus_error(st, n, BusError::RangeViolation, sched);
                    }
                    return;
                }
            }
            // Cache hit?
            let (hit, exclusive_store_refused) = {
                let node = &mut st.nodes[n as usize];
                match node.cache.touch(line) {
                    Some(l) if !write => (Some(l.version), false),
                    Some(l) if speculative && l.exclusive => (Some(l.version), false),
                    Some(l) if write && l.exclusive => match node.cache.store(line) {
                        Some(v) => (Some(v), false),
                        None => (None, true),
                    },
                    Some(_) if write => (None, false), // shared copy: upgrade below
                    _ => (None, false),
                }
            };
            if exclusive_store_refused {
                st.invariant_failure("cache hit: exclusive line must accept the store");
            }
            if let Some(v) = hit {
                if write && !speculative {
                    st.oracle.record_store(line, v);
                }
                let node = &mut st.nodes[n as usize];
                node.current_op = None;
                node.workload.on_result(NodeId(n), OpResult::Ok(None));
                sched.after(
                    SimDuration::from_nanos(st.params.l2_hit_ns) + issue,
                    Ev::ProcNext(n),
                );
                return;
            }
            // Miss path: node-map check, then request to the home.
            let home = st.layout.home_of(line);
            if !st.nodes[n as usize].node_map.is_available(home) {
                st.counters.incr("node_map_bus_errors");
                if speculative {
                    complete_discarded_speculation(st, n, sched);
                } else {
                    complete_local_bus_error(st, n, BusError::DeadHome, sched);
                }
                return;
            }
            let epoch = {
                let node = &mut st.nodes[n as usize];
                node.op_epoch += 1;
                node.naks.reset();
                node.op_issued_at = now;
                node.proc = ProcState::WaitMiss {
                    line,
                    write,
                    epoch: node.op_epoch,
                };
                node.op_epoch
            };
            sched.after(
                SimDuration::from_nanos(st.params.magic.mem_op_timeout_ns),
                Ev::Timeout { node: n, epoch },
            );
            let msg = write_request_for(st, n, line, write);
            st.send_coh(NodeId(n), home, msg, sched);
        }
        ProcOp::UncachedRead { dev } | ProcOp::UncachedWrite { dev, .. } => {
            let write = matches!(op, ProcOp::UncachedWrite { .. });
            if dev.0 == n {
                // Local device access: immediate.
                let node = &mut st.nodes[n as usize];
                let value = if write {
                    if let ProcOp::UncachedWrite { value, .. } = op {
                        node.io_dev.write(value);
                    }
                    None
                } else {
                    Some(node.io_dev.read())
                };
                node.current_op = None;
                node.workload.on_result(NodeId(n), OpResult::Ok(value));
                sched.after(
                    SimDuration::from_nanos(st.params.magic.costs.uncached_ns) + issue,
                    Ev::ProcNext(n),
                );
                return;
            }
            if !st.nodes[n as usize].node_map.is_available(dev) {
                st.counters.incr("node_map_bus_errors");
                complete_local_bus_error(st, n, BusError::DeadHome, sched);
                return;
            }
            let tag = st.fresh_unc_tag();
            let epoch = {
                let node = &mut st.nodes[n as usize];
                node.op_epoch += 1;
                node.op_issued_at = now;
                node.proc = ProcState::WaitUncached {
                    tag,
                    dev,
                    write,
                    epoch: node.op_epoch,
                };
                if !write {
                    node.uncached.begin_read(tag);
                }
                node.op_epoch
            };
            sched.after(
                SimDuration::from_nanos(st.params.magic.mem_op_timeout_ns),
                Ev::Timeout { node: n, epoch },
            );
            let msg = if write {
                let value = match op {
                    ProcOp::UncachedWrite { value, .. } => value,
                    _ => 0,
                };
                UncMsg::WriteReq { tag, value }
            } else {
                UncMsg::ReadReq { tag }
            };
            st.send_unc(NodeId(n), dev, msg, sched);
        }
    }
    let _ = now;
}

/// Completes an incorrectly speculated reference whose fault the processor
/// discards: the workload sees a normal completion.
fn complete_discarded_speculation<R: Clone + std::fmt::Debug, E: Clone + std::fmt::Debug>(
    st: &mut MachineState<R>,
    n: u16,
    sched: &mut Scheduler<'_, Ev<E>>,
) {
    let node = &mut st.nodes[n as usize];
    node.naks.reset();
    node.current_op = None;
    node.current_is_speculative = false;
    node.proc = ProcState::Ready;
    node.workload.on_result(NodeId(n), OpResult::Ok(None));
    st.counters.incr("speculative_faults_discarded");
    let resume = st.nodes[n as usize].occupancy.busy_until().max(sched.now());
    sched.at(resume, Ev::ProcNext(n));
}

fn complete_local_bus_error<R: Clone + std::fmt::Debug, E: Clone + std::fmt::Debug>(
    st: &mut MachineState<R>,
    n: u16,
    err: BusError,
    sched: &mut Scheduler<'_, Ev<E>>,
) {
    let node = &mut st.nodes[n as usize];
    node.bus_errors += 1;
    node.current_op = None;
    node.proc = ProcState::Ready;
    node.workload.on_result(NodeId(n), OpResult::BusError(err));
    st.counters.incr("bus_errors");
    sched.after(
        SimDuration::from_nanos(st.params.proc_issue_ns),
        Ev::ProcNext(n),
    );
}

/// Reissues a NAK'd miss.
fn resend_miss<R: Clone + std::fmt::Debug, E: Clone + std::fmt::Debug>(
    st: &mut MachineState<R>,
    n: u16,
    line: LineAddr,
    write: bool,
    sched: &mut Scheduler<'_, Ev<E>>,
) {
    let home = st.layout.home_of(line);
    if !st.nodes[n as usize].node_map.is_available(home) {
        st.counters.incr("node_map_bus_errors");
        complete_local_bus_error(st, n, BusError::DeadHome, sched);
        return;
    }
    let msg = write_request_for(st, n, line, write);
    st.send_coh(NodeId(n), home, msg, sched);
}

/// Chooses the request message for a (re)issued miss: reads use `Get`;
/// writes use the 1-flit ownership `UpgradeReq` when a shared copy is still
/// held (the home falls back to the full-data path if we are no longer a
/// listed sharer), else a full `GetX`.
fn write_request_for<R: Clone + std::fmt::Debug>(
    st: &mut MachineState<R>,
    n: u16,
    line: LineAddr,
    write: bool,
) -> CohMsg {
    if !write {
        return CohMsg::Get { line };
    }
    match st.nodes[n as usize].cache.lookup(line) {
        Some(l) if !l.exclusive && st.params.upgrades_enabled => {
            st.counters.incr("upgrade_requests");
            CohMsg::UpgradeReq { line }
        }
        Some(l) if !l.exclusive => {
            // Upgrades disabled (ablation): drop the copy and refetch.
            st.nodes[n as usize].cache.invalidate(line);
            CohMsg::GetX { line }
        }
        _ => CohMsg::GetX { line },
    }
}

/// Completes a blocked store whose held shared copy was upgraded in place.
fn on_upgrade_ack<R: Clone + std::fmt::Debug, E: Clone + std::fmt::Debug>(
    st: &mut MachineState<R>,
    n: u16,
    line: LineAddr,
    sched: &mut Scheduler<'_, Ev<E>>,
) {
    let expecting = matches!(
        st.nodes[n as usize].proc,
        ProcState::WaitMiss { line: l, write: true, .. } if l == line
    );
    if !expecting || st.nodes[n as usize].mode != MagicMode::Normal {
        // The upgrade was cancelled (recovery initiation): the home made us
        // the owner, and our clean shared copy is now the only trusted one.
        // Return it as a writeback so no data is ever stranded (mirrors the
        // cancelled exclusive-grant bounce).
        st.counters.incr("stale_upgrade_acks");
        let version = st.nodes[n as usize]
            .cache
            .invalidate(line)
            .map(|l| l.version);
        if let Some(version) = version {
            let home = st.layout.home_of(line);
            let put = CohMsg::Put {
                line,
                version,
                keep_shared: false,
            };
            st.send_coh(NodeId(n), home, put, sched);
        }
        return;
    }
    let speculative = st.nodes[n as usize].current_is_speculative;
    match st.nodes[n as usize].cache.upgrade(line) {
        Some(_) => {
            if !speculative {
                let stored = st.nodes[n as usize].cache.store(line);
                let v =
                    st.invariant_some(stored, "upgrade ack: line must be exclusive after upgrade");
                st.oracle.record_store(line, v);
            }
        }
        None => {
            // Our copy vanished between request and grant (cannot normally
            // happen — the home only acks listed sharers); recover by
            // refetching in full.
            st.counters.incr("upgrade_ack_without_copy");
            let home = st.layout.home_of(line);
            st.send_coh(NodeId(n), home, CohMsg::GetX { line }, sched);
            return;
        }
    }
    let node = &mut st.nodes[n as usize];
    let latency = sched.now().since(node.op_issued_at);
    node.lat_write.record(latency);
    node.naks.reset();
    node.proc = ProcState::Ready;
    node.current_op = None;
    node.workload.on_result(NodeId(n), OpResult::Ok(None));
    let resume = node.occupancy.busy_until();
    // Honor an intervention that raced with the upgrade grant: same rules
    // as for exclusive data grants (a buffered Inval is from an older
    // epoch; a buffered Fetch is for our new ownership).
    let pending = node.pending_remote.remove(&line);
    match pending {
        Some(crate::node::PendingRemote::Fetch { for_write }) => {
            let home = st.layout.home_of(line);
            let node = &mut st.nodes[n as usize];
            if for_write {
                if let Some(l) = node.cache.invalidate(line) {
                    let put = CohMsg::Put {
                        line,
                        version: l.version,
                        keep_shared: false,
                    };
                    st.send_coh(NodeId(n), home, put, sched);
                }
            } else if let Some(v) = node.cache.downgrade(line) {
                let put = CohMsg::Put {
                    line,
                    version: v,
                    keep_shared: true,
                };
                st.send_coh(NodeId(n), home, put, sched);
            }
        }
        Some(crate::node::PendingRemote::Inval) | None => {}
    }
    sched.at(resume, Ev::ProcNext(n));
}

/// Drains a node's outbound lane queue into the fabric.
fn pump<R: Clone + std::fmt::Debug, E: Clone + std::fmt::Debug>(
    st: &mut MachineState<R>,
    n: u16,
    lane_idx: u8,
    sched: &mut Scheduler<'_, Ev<E>>,
) {
    let now = sched.now();
    let lane = Lane::from_index(lane_idx as usize);
    loop {
        let head = {
            let node = &mut st.nodes[n as usize];
            if !node.is_alive() {
                node.outbox[lane_idx as usize].clear();
                node.pump_scheduled[lane_idx as usize] = false;
                return;
            }
            match node.outbox[lane_idx as usize].pop_front() {
                Some(head) => head,
                None => {
                    node.pump_scheduled[lane_idx as usize] = false;
                    return;
                }
            }
        };
        let packet = match &head.route {
            Some(hops) => Packet::source_routed(
                NodeId(n),
                head.dst,
                hops.clone(),
                lane,
                head.flits,
                head.payload.clone(),
            ),
            None => {
                Packet::table_routed(NodeId(n), head.dst, lane, head.flits, head.payload.clone())
            }
        };
        let mut out = Vec::new();
        match st.fabric.try_send(NodeId(n), packet, now, &mut out) {
            Ok(_) => {
                for (d, e) in out {
                    sched.after(d, Ev::Net(e));
                }
            }
            Err(_) => {
                // Injection queue full: put the packet back and retry later.
                st.nodes[n as usize].outbox[lane_idx as usize].push_front(head);
                sched.after(
                    SimDuration::from_nanos(st.params.net.retry_ns),
                    Ev::Pump {
                        node: n,
                        lane: lane_idx,
                    },
                );
                return;
            }
        }
    }
}

/// A complete simulated machine with its event engine.
#[derive(Debug)]
pub struct Machine<X: Extension> {
    world: MachineWorld<X>,
    engine: Engine<Ev<X::Ev>>,
}

impl<X: Extension> Machine<X> {
    /// Builds a machine. `make_workload` supplies each node's workload;
    /// `seed` drives all randomness.
    pub fn new(
        params: MachineParams,
        make_workload: impl FnMut(NodeId) -> Box<dyn Workload>,
        ext: X,
        seed: u64,
    ) -> Self {
        let st = MachineState::new(params, make_workload, seed);
        Machine {
            world: MachineWorld { st, ext },
            engine: Engine::new(),
        }
    }

    /// Starts every processor (schedules the first `ProcNext` per node).
    pub fn start(&mut self) {
        for i in 0..self.world.st.num_nodes() {
            self.engine
                .schedule_at(SimTime::from_nanos(i as u64), Ev::ProcNext(i as u16));
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Runs until the horizon passes or the event queue drains.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        self.engine.run(&mut self.world, horizon)
    }

    /// Runs for the given additional duration.
    pub fn run_for(&mut self, d: SimDuration) -> RunOutcome {
        let h = self.engine.now() + d;
        self.engine.run(&mut self.world, h)
    }

    /// Schedules a fault at an absolute time.
    pub fn schedule_fault(&mut self, at: SimTime, spec: FaultSpec) {
        self.engine.schedule_at(at, Ev::Fault(spec));
    }

    /// Schedules an extension event at an absolute time.
    pub fn schedule_ext(&mut self, at: SimTime, ev: X::Ev) {
        self.engine.schedule_at(at, Ev::Ext(ev));
    }

    /// Read access to the machine state.
    pub fn st(&self) -> &MachineState<X::Msg> {
        &self.world.st
    }

    /// Mutable access to the machine state (experiment setup).
    pub fn st_mut(&mut self) -> &mut MachineState<X::Msg> {
        &mut self.world.st
    }

    /// Read access to the extension.
    pub fn ext(&self) -> &X {
        &self.world.ext
    }

    /// Mutable access to the extension.
    pub fn ext_mut(&mut self) -> &mut X {
        &mut self.world.ext
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.engine.events_processed()
    }

    /// Sets the engine's livelock guard.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.engine.set_event_budget(budget);
    }

    /// Whether all live processors are quiescent (halted or dead) and no
    /// events remain below the given horizon — used by experiments to
    /// detect workload completion.
    pub fn is_quiescent(&self) -> bool {
        self.engine.pending() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{RandomFill, Script};

    fn quiesce<X: Extension>(m: &mut Machine<X>) {
        m.run_until(SimTime::MAX);
    }

    fn tiny_machine(
        make: impl FnMut(NodeId) -> Box<dyn Workload>,
        seed: u64,
    ) -> Machine<NullExtension> {
        let mut m = Machine::new(MachineParams::tiny(), make, NullExtension, seed);
        m.start();
        m
    }

    #[test]
    fn read_miss_roundtrip_installs_line() {
        let mut m = tiny_machine(
            |n| {
                if n == NodeId(0) {
                    Box::new(Script::new([ProcOp::Read(LineAddr(100))]))
                } else {
                    Box::new(Script::new([]))
                }
            },
            1,
        );
        quiesce(&mut m);
        assert!(m.st().nodes[0].cache.lookup(LineAddr(100)).is_some());
        // Home is node 0 (tiny: 8192 lines per node) — line 100 is local.
        assert_eq!(m.st().layout.home_of(LineAddr(100)), NodeId(0));
        assert!(m.now() > SimTime::ZERO);
    }

    #[test]
    fn remote_write_creates_dirty_exclusive() {
        // Node 1 writes a line homed on node 0.
        let mut m = tiny_machine(
            |n| {
                if n == NodeId(1) {
                    Box::new(Script::new([ProcOp::Write(LineAddr(200))]))
                } else {
                    Box::new(Script::new([]))
                }
            },
            2,
        );
        quiesce(&mut m);
        let line = LineAddr(200);
        let cached = m.st().nodes[1].cache.lookup(line).expect("installed");
        assert!(cached.exclusive);
        assert_eq!(cached.version.0, 1);
        assert_eq!(
            m.st().nodes[0].dir.state(line),
            DirState::Exclusive(NodeId(1))
        );
        assert_eq!(m.st().oracle.expected_version(line).0, 1);
    }

    #[test]
    fn read_write_sharing_transfers_data() {
        // Node 1 writes, node 2 then reads the same line: the recall path
        // must return version 1 to node 2.
        let mut m = tiny_machine(
            |n| match n.0 {
                1 => Box::new(Script::new([ProcOp::Write(LineAddr(300))])),
                2 => Box::new(Script::new([
                    ProcOp::Compute(50_000), // let the write land first
                    ProcOp::Read(LineAddr(300)),
                ])),
                _ => Box::new(Script::new([])),
            },
            3,
        );
        quiesce(&mut m);
        let line = LineAddr(300);
        let c2 = m.st().nodes[2].cache.lookup(line).expect("read installed");
        assert!(!c2.exclusive);
        assert_eq!(c2.version.0, 1);
        // Home memory was updated by the recall writeback.
        assert_eq!(m.st().nodes[0].dir.mem_version(line).0, 1);
        match m.st().nodes[0].dir.state(line) {
            DirState::Shared(s) => {
                assert!(s.contains(NodeId(1)) && s.contains(NodeId(2)));
            }
            other => panic!("expected shared, got {other:?}"),
        }
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let line = LineAddr(400);
        let mut m = tiny_machine(
            |n| match n.0 {
                1 => Box::new(Script::new([ProcOp::Read(line)])),
                2 => Box::new(Script::new([ProcOp::Read(line)])),
                3 => Box::new(Script::new([ProcOp::Compute(100_000), ProcOp::Write(line)])),
                _ => Box::new(Script::new([])),
            },
            4,
        );
        quiesce(&mut m);
        assert!(
            m.st().nodes[1].cache.lookup(line).is_none(),
            "sharer 1 invalidated"
        );
        assert!(
            m.st().nodes[2].cache.lookup(line).is_none(),
            "sharer 2 invalidated"
        );
        assert_eq!(
            m.st().nodes[0].dir.state(line),
            DirState::Exclusive(NodeId(3))
        );
        assert_eq!(m.st().oracle.expected_version(line).0, 1);
    }

    #[test]
    fn random_fill_has_no_corruption_without_faults() {
        let params = MachineParams::tiny();
        let (layout, prot) = (params.layout(), params.protected_lines);
        let mut m = tiny_machine(
            move |_| Box::new(RandomFill::valid_system_range(200, 0.4, layout, prot)),
            5,
        );
        quiesce(&mut m);
        // Flush everything home via validation of memory versions: without
        // faults, dirty lines still live in caches, so validate() compares
        // memory versions — check instead that no bus errors occurred and
        // all ops completed.
        for node in &m.st().nodes {
            assert_eq!(node.bus_errors, 0);
            assert!(matches!(node.proc, ProcState::Halted));
        }
        assert_eq!(m.st().counters.get("bus_errors"), 0);
    }

    #[test]
    fn uncached_io_roundtrip_is_exactly_once() {
        let mut m = tiny_machine(
            |n| {
                if n == NodeId(2) {
                    Box::new(Script::new([
                        ProcOp::UncachedRead { dev: NodeId(0) },
                        ProcOp::UncachedWrite {
                            dev: NodeId(0),
                            value: 55,
                        },
                        ProcOp::UncachedRead { dev: NodeId(0) },
                    ]))
                } else {
                    Box::new(Script::new([]))
                }
            },
            6,
        );
        quiesce(&mut m);
        let dev = &m.st().nodes[0].io_dev;
        assert_eq!(dev.reads, 2);
        assert_eq!(dev.writes, 1);
        // First read returned 0, then write(55), then read returned 55.
        assert_eq!(dev.register(), 56);
    }

    #[test]
    fn io_guard_denies_foreign_uncached() {
        let mut m = tiny_machine(
            |n| {
                if n == NodeId(3) {
                    Box::new(Script::new([ProcOp::UncachedRead { dev: NodeId(0) }]))
                } else {
                    Box::new(Script::new([]))
                }
            },
            7,
        );
        // Restrict node 0's device to node 0 only.
        m.st_mut().nodes[0]
            .io_guard
            .set_allowed(NodeSet::singleton(NodeId(0)));
        quiesce(&mut m);
        assert_eq!(m.st().nodes[3].bus_errors, 1);
        assert_eq!(m.st().counters.get("io_guard_denials"), 1);
        assert_eq!(m.st().nodes[0].io_dev.reads, 0, "device untouched");
    }

    #[test]
    fn firewall_denies_unauthorized_exclusive_fetch() {
        let line = LineAddr(500);
        let mut m = tiny_machine(
            |n| {
                if n == NodeId(2) {
                    Box::new(Script::new([ProcOp::Write(line)]))
                } else {
                    Box::new(Script::new([]))
                }
            },
            8,
        );
        m.st_mut().nodes[0]
            .firewall
            .restrict(line.page(), NodeSet::singleton(NodeId(0)));
        quiesce(&mut m);
        assert_eq!(m.st().nodes[2].bus_errors, 1);
        assert_eq!(m.st().counters.get("firewall_denials"), 1);
        assert!(m.st().nodes[2].cache.lookup(line).is_none());
        // Reads are unaffected by the firewall.
        assert_eq!(m.st().nodes[0].dir.state(line), DirState::Uncached);
    }

    #[test]
    fn range_check_bus_errors_wild_writes() {
        // The protected region is the top `protected_lines` of each node's
        // slice; tiny() => lines-per-node 8192, protected 64 => local index
        // 8191 is protected.
        let protected = LineAddr(8191);
        let mut m = tiny_machine(
            |n| {
                if n == NodeId(0) {
                    Box::new(Script::new([
                        ProcOp::Write(protected),
                        ProcOp::Read(protected),
                    ]))
                } else {
                    Box::new(Script::new([]))
                }
            },
            9,
        );
        quiesce(&mut m);
        assert_eq!(m.st().nodes[0].bus_errors, 1, "write denied, read allowed");
    }

    #[test]
    fn vector_range_accesses_stay_local() {
        // Node 2 reads line 3 (vector range): remapped into node 2's slice.
        let mut m = tiny_machine(
            |n| {
                if n == NodeId(2) {
                    Box::new(Script::new([ProcOp::Read(LineAddr(3))]))
                } else {
                    Box::new(Script::new([]))
                }
            },
            10,
        );
        quiesce(&mut m);
        let remapped = LineAddr(2 * 8192 + 3);
        assert!(m.st().nodes[2].cache.lookup(remapped).is_some());
        // Node 0's directory never saw the access.
        assert_eq!(m.st().nodes[0].dir.state(LineAddr(3)), DirState::Uncached);
    }

    #[test]
    fn node_map_blocks_requests_to_failed_homes() {
        let line = LineAddr(3 * 8192 + 7); // homed on node 3
        let mut m = tiny_machine(
            |n| {
                if n == NodeId(0) {
                    Box::new(Script::new([ProcOp::Read(line)]))
                } else {
                    Box::new(Script::new([]))
                }
            },
            11,
        );
        m.st_mut().nodes[0].node_map.set_available(NodeId(3), false);
        quiesce(&mut m);
        assert_eq!(m.st().nodes[0].bus_errors, 1);
        assert_eq!(m.st().counters.get("node_map_bus_errors"), 1);
    }

    #[test]
    fn dead_node_makes_requests_time_out() {
        let line = LineAddr(3 * 8192 + 7);
        let mut m = tiny_machine(
            |n| {
                if n == NodeId(0) {
                    Box::new(Script::new([ProcOp::Compute(1_000), ProcOp::Read(line)]))
                } else {
                    Box::new(Script::new([]))
                }
            },
            12,
        );
        m.schedule_fault(SimTime::from_nanos(500), FaultSpec::Node(NodeId(3)));
        quiesce(&mut m);
        // NullExtension just counts the trigger.
        assert_eq!(m.st().counters.get("timeout_triggers"), 1);
        assert_eq!(m.st().counters.get("ignored_triggers"), 1);
        assert!(m.st().failed_nodes.contains(NodeId(3)));
    }

    #[test]
    fn infinite_loop_congests_but_triggers_timeout() {
        let line = LineAddr(8192 + 7); // homed on node 1
        let mut m = tiny_machine(
            |n| {
                if n == NodeId(0) {
                    Box::new(Script::new([ProcOp::Compute(1_000), ProcOp::Read(line)]))
                } else {
                    Box::new(Script::new([]))
                }
            },
            13,
        );
        m.schedule_fault(SimTime::from_nanos(500), FaultSpec::InfiniteLoop(NodeId(1)));
        quiesce(&mut m);
        assert_eq!(m.st().counters.get("timeout_triggers"), 1);
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed| {
            let params = MachineParams::tiny();
            let (layout, prot) = (params.layout(), params.protected_lines);
            let mut m = tiny_machine(
                move |_| Box::new(RandomFill::valid_system_range(100, 0.5, layout, prot)),
                seed,
            );
            quiesce(&mut m);
            (
                m.now(),
                m.events_processed(),
                m.st().counters.get("bus_errors"),
            )
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).1, 0);
    }
}
