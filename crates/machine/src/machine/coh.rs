//! Coherence-protocol handlers: the home-side directory dispatch and the
//! cache-side completion paths (data grants, NAKs, upgrades, recalls and
//! error replies).

use super::proc::ProcHandlers;
use super::{Ev, MachineState};
use crate::node::ProcState;
use crate::workload::OpResult;
use flash_coherence::{CohMsg, HomeIn, LineAddr};
use flash_magic::{BusError, MagicMode, Trigger};
use flash_net::NodeId;
use flash_obs::{Domain, TraceEvent};
use flash_sim::{Scheduler, SimDuration};

/// Coherence-message servicing, implemented on [`MachineState`]: the
/// dispatch loop hands every delivered [`CohMsg`] to [`process_coh`]
/// (home-side messages go through the directory, cache-side messages
/// complete or intervene on the local processor's miss).
///
/// [`process_coh`]: CohHandlers::process_coh
pub(crate) trait CohHandlers {
    /// Services one delivered coherence message on node `n`.
    fn process_coh<E: Clone + std::fmt::Debug>(
        &mut self,
        n: u16,
        from: NodeId,
        msg: CohMsg,
        sched: &mut Scheduler<'_, Ev<E>>,
    );

    /// A data reply fills the cache and completes the blocked access.
    fn on_data_reply<E: Clone + std::fmt::Debug>(
        &mut self,
        n: u16,
        line: LineAddr,
        version: flash_coherence::Version,
        exclusive: bool,
        sched: &mut Scheduler<'_, Ev<E>>,
    );

    /// A NAK backs the blocked miss off (or overflows into a trigger).
    fn on_nak<E: Clone + std::fmt::Debug>(
        &mut self,
        n: u16,
        line: LineAddr,
        sched: &mut Scheduler<'_, Ev<E>>,
    );

    /// Completes a blocked store whose held shared copy was upgraded in
    /// place.
    fn on_upgrade_ack<E: Clone + std::fmt::Debug>(
        &mut self,
        n: u16,
        line: LineAddr,
        sched: &mut Scheduler<'_, Ev<E>>,
    );

    /// Completes the blocked access with a bus error (node-map miss,
    /// incoherent line, firewall or range denial).
    fn bus_error_completion<E: Clone + std::fmt::Debug>(
        &mut self,
        n: u16,
        line: LineAddr,
        err: BusError,
        sched: &mut Scheduler<'_, Ev<E>>,
    );
}

impl<R: Clone + std::fmt::Debug> CohHandlers for MachineState<R> {
    fn process_coh<E: Clone + std::fmt::Debug>(
        &mut self,
        n: u16,
        from: NodeId,
        msg: CohMsg,
        sched: &mut Scheduler<'_, Ev<E>>,
    ) {
        let st = self;
        let now = sched.now();
        let costs = st.params.magic.costs;
        let line = msg.line();
        let home = st.layout.home_of(line);
        let at_home = home.0 == n;
        let mode = st.nodes[n as usize].mode;

        if at_home
            && matches!(
                msg,
                CohMsg::Get { .. }
                    | CohMsg::GetX { .. }
                    | CohMsg::UpgradeReq { .. }
                    | CohMsg::Put { .. }
                    | CohMsg::InvalAck { .. }
            )
        {
            match mode {
                MagicMode::Normal => {
                    // Degraded-memory gray fault: accesses into the bad
                    // range cost extra service time, and every fourth one
                    // draws a transient NAK. Only requests are refused —
                    // writebacks and acks always land (refusing a Put would
                    // lose the sole copy of the data).
                    let lpn = st.layout.lines_per_node();
                    let mut degraded_extra = None;
                    if let Some(d) = st.nodes[n as usize].degraded.as_mut() {
                        if line.0 % lpn < d.lines {
                            d.accesses += 1;
                            degraded_extra = Some((d.extra_ns, d.accesses.is_multiple_of(4)));
                        }
                    }
                    if let Some((extra, nak_turn)) = degraded_extra {
                        st.nodes[n as usize]
                            .occupancy
                            .occupy(now, SimDuration::from_nanos(extra));
                        st.counters.incr("degraded_accesses");
                        if nak_turn
                            && matches!(
                                msg,
                                CohMsg::Get { .. }
                                    | CohMsg::GetX { .. }
                                    | CohMsg::UpgradeReq { .. }
                            )
                        {
                            st.counters.incr("degraded_naks");
                            st.send_coh(NodeId(n), from, CohMsg::Nak { line }, sched);
                            return;
                        }
                    }
                    // Firewall: exclusive fetches need write permission for
                    // the page (adds the ACL-check cost to the handler).
                    if matches!(msg, CohMsg::GetX { .. } | CohMsg::UpgradeReq { .. }) {
                        let fw_cost = if st.nodes[n as usize].firewall.enabled() {
                            costs.firewall_check_ns
                        } else {
                            0
                        };
                        st.nodes[n as usize]
                            .occupancy
                            .occupy(now, SimDuration::from_nanos(costs.getx_ns + fw_cost));
                        if !st.nodes[n as usize].firewall.may_write(line.page(), from) {
                            st.counters.incr("firewall_denials");
                            st.obs.record(
                                Domain::Coherence,
                                now,
                                TraceEvent::CohTransition {
                                    node: n,
                                    line: line.0,
                                    what: "firewall_denied",
                                },
                            );
                            st.send_coh(NodeId(n), from, CohMsg::FirewallErr { line }, sched);
                            return;
                        }
                    } else {
                        let cost = match msg {
                            CohMsg::Get { .. } => costs.get_ns,
                            CohMsg::Put { .. } => costs.put_ns + costs.mem_access_ns,
                            CohMsg::InvalAck { .. } => costs.inval_ack_ns,
                            _ => costs.get_ns,
                        };
                        st.nodes[n as usize]
                            .occupancy
                            .occupy(now, SimDuration::from_nanos(cost));
                    }
                    let input = match msg {
                        CohMsg::Get { .. } => HomeIn::Get { from },
                        CohMsg::GetX { .. } => HomeIn::GetX { from },
                        CohMsg::UpgradeReq { .. } => HomeIn::Upgrade { from },
                        CohMsg::Put {
                            version,
                            keep_shared,
                            ..
                        } => HomeIn::Put {
                            from,
                            version,
                            keep_shared,
                        },
                        CohMsg::InvalAck { .. } => HomeIn::InvalAck { from },
                        other => st.invariant_failure(&format!(
                            "home-side dispatch reached a cache-side message: {other:?}"
                        )),
                    };
                    let outcome = st.nodes[n as usize].dir.handle(line, input);
                    for (dst, reply) in outcome.sends {
                        st.send_coh(NodeId(n), dst, reply, sched);
                    }
                }
                MagicMode::RecoveryDrain | MagicMode::Recovery => {
                    // Field the message without generating replies or
                    // invalidations (paper, Section 4.4); writebacks are
                    // absorbed so their data is not lost.
                    st.nodes[n as usize]
                        .occupancy
                        .occupy(now, SimDuration::from_nanos(costs.put_ns));
                    if let CohMsg::Put { version, .. } = msg {
                        st.nodes[n as usize].dir.recovery_put(line, version);
                        st.counters.incr("recovery_puts_absorbed");
                    } else {
                        st.counters.incr("drained_requests");
                    }
                }
                MagicMode::Dead | MagicMode::InfiniteLoop => {
                    st.invariant_failure("coherence message serviced by a dead or looping MAGIC")
                }
            }
            return;
        }

        // Cache-side message.
        match msg {
            CohMsg::Data {
                line,
                version,
                exclusive,
            } => {
                st.nodes[n as usize]
                    .occupancy
                    .occupy(now, SimDuration::from_nanos(costs.data_ns));
                st.on_data_reply(n, line, version, exclusive, sched);
            }
            CohMsg::Nak { line } => {
                st.nodes[n as usize]
                    .occupancy
                    .occupy(now, SimDuration::from_nanos(costs.nak_ns));
                st.on_nak(n, line, sched);
            }
            CohMsg::Inval { line } => {
                st.nodes[n as usize]
                    .occupancy
                    .occupy(now, SimDuration::from_nanos(costs.inval_ns));
                if st.nodes[n as usize].mode == MagicMode::Normal {
                    let node = &mut st.nodes[n as usize];
                    if node.cache.invalidate(line).is_none() {
                        // Our copy may still be an in-flight grant: buffer
                        // the invalidation so it is honored when the data
                        // installs (otherwise a stale shared copy could
                        // linger).
                        if matches!(node.proc, ProcState::WaitMiss { line: l, .. } if l == line) {
                            node.pending_remote
                                .insert(line, crate::node::PendingRemote::Inval);
                        }
                    }
                    st.send_coh(NodeId(n), home, CohMsg::InvalAck { line }, sched);
                }
            }
            CohMsg::Fetch { line, for_write } => {
                st.nodes[n as usize]
                    .occupancy
                    .occupy(now, SimDuration::from_nanos(costs.inval_ns));
                if st.nodes[n as usize].mode != MagicMode::Normal {
                    return;
                }
                let node = &mut st.nodes[n as usize];
                if for_write {
                    if let Some(l) = node.cache.invalidate(line) {
                        // A clean (shared) copy can also answer a recall:
                        // its version equals memory, so the home completes
                        // the recall consistently (this arises when an
                        // upgrade's acknowledgment was lost across a
                        // recovery).
                        let put = CohMsg::Put {
                            line,
                            version: l.version,
                            keep_shared: false,
                        };
                        st.send_coh(NodeId(n), home, put, sched);
                        return;
                    }
                } else if let Some(version) = node.cache.downgrade(line) {
                    let put = CohMsg::Put {
                        line,
                        version,
                        keep_shared: true,
                    };
                    st.send_coh(NodeId(n), home, put, sched);
                    return;
                } else if let Some(l) = node.cache.lookup(line).copied() {
                    // Already shared (downgrade returned None): answer the
                    // read recall from the clean copy we keep.
                    let put = CohMsg::Put {
                        line,
                        version: l.version,
                        keep_shared: true,
                    };
                    st.send_coh(NodeId(n), home, put, sched);
                    return;
                }
                // Absent line: either a voluntary writeback crossed the
                // recall (the home completes the recall from that
                // writeback), or our exclusive grant is still in flight —
                // in that case buffer the recall and honor it at install
                // time, else the home deadlocks in PendingRecall.
                let node = &mut st.nodes[n as usize];
                if matches!(node.proc, ProcState::WaitMiss { line: l, .. } if l == line) {
                    node.pending_remote
                        .insert(line, crate::node::PendingRemote::Fetch { for_write });
                }
            }
            CohMsg::UpgradeAck { line } => {
                st.nodes[n as usize]
                    .occupancy
                    .occupy(now, SimDuration::from_nanos(costs.nak_ns));
                st.on_upgrade_ack(n, line, sched);
            }
            CohMsg::PutAck { .. } => {
                st.nodes[n as usize]
                    .occupancy
                    .occupy(now, SimDuration::from_nanos(costs.nak_ns));
            }
            CohMsg::IncoherentErr { line } => {
                st.nodes[n as usize]
                    .occupancy
                    .occupy(now, SimDuration::from_nanos(costs.nak_ns));
                st.bus_error_completion(n, line, BusError::Incoherent, sched);
            }
            CohMsg::FirewallErr { line } => {
                st.nodes[n as usize]
                    .occupancy
                    .occupy(now, SimDuration::from_nanos(costs.nak_ns));
                st.bus_error_completion(n, line, BusError::FirewallDenied, sched);
            }
            CohMsg::Get { .. }
            | CohMsg::GetX { .. }
            | CohMsg::UpgradeReq { .. }
            | CohMsg::Put { .. }
            | CohMsg::InvalAck { .. } => {
                // Misrouted home message (should not happen).
                st.counters.incr("misrouted_coh");
            }
        }
    }

    fn on_data_reply<E: Clone + std::fmt::Debug>(
        &mut self,
        n: u16,
        line: LineAddr,
        version: flash_coherence::Version,
        exclusive: bool,
        sched: &mut Scheduler<'_, Ev<E>>,
    ) {
        let st = self;
        let home = st.layout.home_of(line);
        let (expecting, write) = match st.nodes[n as usize].proc {
            ProcState::WaitMiss { line: l, write, .. } => (l == line, write),
            _ => (false, false),
        };
        if !expecting || st.nodes[n as usize].mode != MagicMode::Normal {
            st.counters.incr("stale_data_replies");
            // The request this reply answers was cancelled (NAK'd at
            // recovery initiation, or bus-errored). An *exclusive* reply
            // carries the only trusted copy — MAGIC returns it to the home
            // as a writeback instead of dropping it, so a false alarm loses
            // no data (paper, §4.1).
            if exclusive {
                let put = CohMsg::Put {
                    line,
                    version,
                    keep_shared: false,
                };
                st.send_coh(NodeId(n), home, put, sched);
            }
            return;
        }
        let node = &mut st.nodes[n as usize];
        // Replace any stale copy, then install.
        node.cache.invalidate(line);
        let evicted = node.cache.insert(line, exclusive, version);
        if let flash_coherence::InsertOutcome::EvictedDirty(victim) = evicted {
            let victim_home = st.layout.home_of(victim.addr);
            // Writebacks to failed homes are dropped (node map check).
            if st.nodes[n as usize].node_map.is_available(victim_home) {
                let put = CohMsg::Put {
                    line: victim.addr,
                    version: victim.version,
                    keep_shared: false,
                };
                st.send_coh(NodeId(n), victim_home, put, sched);
            }
        }
        let speculative = st.nodes[n as usize].current_is_speculative;
        if write && !speculative {
            debug_assert!(exclusive, "store completion requires an exclusive grant");
            let stored = st.nodes[n as usize].cache.store(line);
            let v = st.invariant_some(stored, "data reply: exclusive line must accept the store");
            st.oracle.record_store(line, v);
        }
        // A speculative grant installs exclusive with unmodified data: the
        // processor discarded the wrong-path store, but the node now holds
        // the only trusted copy (Section 3.3's hazard).
        st.counters.add(
            "speculative_exclusive_grants",
            u64::from(write && speculative),
        );
        let node = &mut st.nodes[n as usize];
        let latency = sched.now().since(node.op_issued_at);
        if write {
            node.lat_write.record(latency);
        } else {
            node.lat_read.record(latency);
        }
        node.naks.reset();
        node.proc = ProcState::Ready;
        node.workload
            .on_result_at(NodeId(n), sched.now(), OpResult::Ok(None));
        node.current_op = None;
        let resume = node.occupancy.busy_until();
        // Honor any intervention that raced with this grant.
        let pending = node.pending_remote.remove(&line);
        #[allow(clippy::collapsible_match)]
        match pending {
            Some(crate::node::PendingRemote::Inval) => {
                // The ack was already sent when the invalidation arrived. If
                // the grant that just installed is *shared*, the
                // invalidation is for this very copy: drop it (the processor
                // consumed its value, ordered before the writer). If the
                // grant is *exclusive*, the buffered invalidation belongs to
                // an older sharer epoch — the home processed our GetX after
                // that invalidation round — and must be discarded, or it
                // would destroy the freshly committed store.
                if !exclusive {
                    st.nodes[n as usize].cache.invalidate(line);
                }
            }
            Some(crate::node::PendingRemote::Fetch { for_write }) => {
                let node = &mut st.nodes[n as usize];
                if for_write {
                    if let Some(l) = node.cache.invalidate(line) {
                        if l.exclusive {
                            let put = CohMsg::Put {
                                line,
                                version: l.version,
                                keep_shared: false,
                            };
                            st.send_coh(NodeId(n), home, put, sched);
                        }
                    }
                } else if let Some(v) = node.cache.downgrade(line) {
                    let put = CohMsg::Put {
                        line,
                        version: v,
                        keep_shared: true,
                    };
                    st.send_coh(NodeId(n), home, put, sched);
                }
            }
            None => {}
        }
        sched.at(resume, Ev::ProcNext(n));
    }

    fn on_nak<E: Clone + std::fmt::Debug>(
        &mut self,
        n: u16,
        line: LineAddr,
        sched: &mut Scheduler<'_, Ev<E>>,
    ) {
        let threshold = self.params.magic.nak_threshold;
        let node = &mut self.nodes[n as usize];
        let epoch = match node.proc {
            ProcState::WaitMiss { line: l, epoch, .. } if l == line => epoch,
            _ => {
                self.counters.incr("stale_naks");
                return;
            }
        };
        if node.naks.record_nak(threshold) {
            self.counters.incr("nak_overflows");
            sched.immediately(Ev::TriggerNow {
                node: n,
                trig: Trigger::NakOverflow { line },
            });
        } else {
            sched.after(
                SimDuration::from_nanos(self.params.magic.nak_retry_ns),
                Ev::NakRetry { node: n, epoch },
            );
        }
    }

    fn on_upgrade_ack<E: Clone + std::fmt::Debug>(
        &mut self,
        n: u16,
        line: LineAddr,
        sched: &mut Scheduler<'_, Ev<E>>,
    ) {
        let st = self;
        let expecting = matches!(
            st.nodes[n as usize].proc,
            ProcState::WaitMiss { line: l, write: true, .. } if l == line
        );
        if !expecting || st.nodes[n as usize].mode != MagicMode::Normal {
            // The upgrade was cancelled (recovery initiation): the home made
            // us the owner, and our clean shared copy is now the only
            // trusted one. Return it as a writeback so no data is ever
            // stranded (mirrors the cancelled exclusive-grant bounce).
            st.counters.incr("stale_upgrade_acks");
            let version = st.nodes[n as usize]
                .cache
                .invalidate(line)
                .map(|l| l.version);
            if let Some(version) = version {
                let home = st.layout.home_of(line);
                let put = CohMsg::Put {
                    line,
                    version,
                    keep_shared: false,
                };
                st.send_coh(NodeId(n), home, put, sched);
            }
            return;
        }
        let speculative = st.nodes[n as usize].current_is_speculative;
        match st.nodes[n as usize].cache.upgrade(line) {
            Some(_) => {
                if !speculative {
                    let stored = st.nodes[n as usize].cache.store(line);
                    let v = st.invariant_some(
                        stored,
                        "upgrade ack: line must be exclusive after upgrade",
                    );
                    st.oracle.record_store(line, v);
                }
            }
            None => {
                // Our copy vanished between request and grant (cannot
                // normally happen — the home only acks listed sharers);
                // recover by refetching in full.
                st.counters.incr("upgrade_ack_without_copy");
                let home = st.layout.home_of(line);
                st.send_coh(NodeId(n), home, CohMsg::GetX { line }, sched);
                return;
            }
        }
        let node = &mut st.nodes[n as usize];
        let latency = sched.now().since(node.op_issued_at);
        node.lat_write.record(latency);
        node.naks.reset();
        node.proc = ProcState::Ready;
        node.current_op = None;
        node.workload
            .on_result_at(NodeId(n), sched.now(), OpResult::Ok(None));
        let resume = node.occupancy.busy_until();
        // Honor an intervention that raced with the upgrade grant: same
        // rules as for exclusive data grants (a buffered Inval is from an
        // older epoch; a buffered Fetch is for our new ownership).
        let pending = node.pending_remote.remove(&line);
        match pending {
            Some(crate::node::PendingRemote::Fetch { for_write }) => {
                let home = st.layout.home_of(line);
                let node = &mut st.nodes[n as usize];
                if for_write {
                    if let Some(l) = node.cache.invalidate(line) {
                        let put = CohMsg::Put {
                            line,
                            version: l.version,
                            keep_shared: false,
                        };
                        st.send_coh(NodeId(n), home, put, sched);
                    }
                } else if let Some(v) = node.cache.downgrade(line) {
                    let put = CohMsg::Put {
                        line,
                        version: v,
                        keep_shared: true,
                    };
                    st.send_coh(NodeId(n), home, put, sched);
                }
            }
            Some(crate::node::PendingRemote::Inval) | None => {}
        }
        sched.at(resume, Ev::ProcNext(n));
    }

    fn bus_error_completion<E: Clone + std::fmt::Debug>(
        &mut self,
        n: u16,
        line: LineAddr,
        err: BusError,
        sched: &mut Scheduler<'_, Ev<E>>,
    ) {
        let st = self;
        let speculative = st.nodes[n as usize].current_is_speculative;
        let node = &mut st.nodes[n as usize];
        let matches_line = matches!(node.proc, ProcState::WaitMiss { line: l, .. } if l == line);
        if !matches_line {
            st.counters.incr("stale_error_replies");
            return;
        }
        if speculative {
            // Faults on incorrectly speculated references are discarded by
            // the processor (the firewall/error reply did its containment
            // job).
            st.complete_discarded_speculation(n, sched);
            return;
        }
        node.bus_errors += 1;
        node.naks.reset();
        node.proc = ProcState::Ready;
        node.current_op = None;
        node.workload
            .on_result_at(NodeId(n), sched.now(), OpResult::BusError(err));
        st.counters.incr("bus_errors");
        st.obs.record(
            Domain::Machine,
            sched.now(),
            TraceEvent::BusErrorRaised {
                node: n,
                err: err.kind_str(),
            },
        );
        let resume = st.nodes[n as usize].occupancy.busy_until();
        sched.at(resume, Ev::ProcNext(n));
    }
}
