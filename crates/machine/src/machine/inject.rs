//! Fault arming: the injector's ground-truth mutation of the machine
//! ([`MachineState::apply_fault`]) and the dispatch-side handler that
//! routes the accompanying triggers to the extension.

use super::world::MachineWorld;
use super::{Ev, Extension, MachineState};
use crate::fault::FaultSpec;
use crate::node::ProcState;
use flash_coherence::LineAddr;
use flash_magic::{MagicMode, Trigger};
use flash_net::NodeId;
use flash_obs::{Domain, TraceEvent};
use flash_sim::{Scheduler, SimDuration, SimTime};

impl<R: Clone + std::fmt::Debug> MachineState<R> {
    /// Applies a fault (ground-truth mutation + oracle bookkeeping).
    /// False alarms are *not* applied here — the dispatcher routes them to
    /// the extension as a [`Trigger::FalseAlarm`].
    pub fn apply_fault(&mut self, spec: &FaultSpec, now: SimTime) {
        for victim in spec.doomed_nodes() {
            // Every line held exclusive (dirty) by the victim may become
            // incoherent, whatever the relative timing of snapshots and
            // recovery phases.
            let dirty: Vec<LineAddr> = self.nodes[victim.index()]
                .cache
                .iter()
                .filter(|l| l.exclusive)
                .map(|l| l.addr)
                .collect();
            for line in dirty {
                self.oracle.allow_incoherent(line);
            }
        }
        match spec {
            FaultSpec::Node(n) => {
                self.failed_nodes.insert(*n);
                let node = &mut self.nodes[n.index()];
                node.mode = MagicMode::Dead;
                node.proc = ProcState::Dead;
                self.fabric.set_node_sink(*n, true);
            }
            FaultSpec::Router(r) => {
                self.fabric.fail_router(*r, now);
                let nid = NodeId(r.0);
                self.failed_nodes.insert(nid);
                let node = &mut self.nodes[nid.index()];
                node.mode = MagicMode::Dead;
                node.proc = ProcState::Dead;
                self.fabric.set_node_sink(nid, true);
            }
            FaultSpec::Link(a, b) => {
                let ok = self.fabric.fail_link_between(*a, *b, now);
                assert!(ok, "link fault on non-adjacent routers");
            }
            FaultSpec::InfiniteLoop(n) => {
                self.failed_nodes.insert(*n);
                let node = &mut self.nodes[n.index()];
                node.mode = MagicMode::InfiniteLoop;
                // The processor spins forever on its current access.
            }
            FaultSpec::FirmwareAssertion(_) => {
                // Physical effect applied by the dispatcher after the
                // fail-fast controller has raised its own trigger.
            }
            FaultSpec::FalseAlarm(_) => {}
            FaultSpec::Multi(list) => {
                for f in list {
                    self.apply_fault(f, now);
                }
            }
        }
    }
}

/// Fault-injection event handling, implemented on [`MachineWorld`] (the
/// injected fault's triggers are delivered to the extension).
pub(crate) trait FaultHandlers<X: Extension> {
    /// Services an `Ev::Fault`: applies the physical effect and raises the
    /// triggers the fault's detection produces.
    fn handle_fault(&mut self, spec: FaultSpec, sched: &mut Scheduler<'_, Ev<X::Ev>>);
}

impl<X: Extension> FaultHandlers<X> for MachineWorld<X> {
    fn handle_fault(&mut self, spec: FaultSpec, sched: &mut Scheduler<'_, Ev<X::Ev>>) {
        self.st.counters.incr("faults_injected");
        let mut singles: Vec<&FaultSpec> = Vec::new();
        match &spec {
            FaultSpec::Multi(list) => singles.extend(list.iter()),
            other => singles.push(other),
        }
        for f in &singles {
            self.st.obs.record(
                Domain::Machine,
                sched.now(),
                TraceEvent::FaultInjected {
                    kind: f.kind_str(),
                    node: f.primary_node(),
                },
            );
        }
        self.st.apply_fault(&spec, sched.now());
        for f in singles {
            match f {
                FaultSpec::FalseAlarm(n) => {
                    self.ext
                        .on_trigger(&mut self.st, *n, Trigger::FalseAlarm, sched);
                }
                FaultSpec::FirmwareAssertion(n) => {
                    // Fail-fast: the controller raises the trigger, its
                    // dying-gasp pings spread the wave, and a microsecond
                    // later it halts for good.
                    self.ext
                        .on_trigger(&mut self.st, *n, Trigger::AssertionFailure, sched);
                    sched.after(SimDuration::from_micros(1), Ev::Fault(FaultSpec::Node(*n)));
                }
                _ => {}
            }
        }
    }
}
