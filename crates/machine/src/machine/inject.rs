//! Fault arming: the injector's ground-truth mutation of the machine
//! ([`MachineState::apply_fault`]) and the dispatch-side handler that
//! routes the accompanying triggers to the extension.

use super::world::MachineWorld;
use super::{Ev, Extension, MachineState};
use crate::fault::FaultSpec;
use crate::node::{DegradedRange, ProcState};
use flash_coherence::LineAddr;
use flash_magic::{MagicMode, Trigger};
use flash_net::NodeId;
use flash_obs::{Domain, TraceEvent};
use flash_sim::{Scheduler, SimDuration, SimTime};

impl<R: Clone + std::fmt::Debug> MachineState<R> {
    /// Applies a fault (ground-truth mutation + oracle bookkeeping).
    /// False alarms are *not* applied here — the dispatcher routes them to
    /// the extension as a [`Trigger::FalseAlarm`].
    pub fn apply_fault(&mut self, spec: &FaultSpec, now: SimTime) {
        for victim in spec.doomed_nodes() {
            // Every line held exclusive (dirty) by the victim may become
            // incoherent, whatever the relative timing of snapshots and
            // recovery phases.
            let dirty: Vec<LineAddr> = self.nodes[victim.index()]
                .cache
                .iter()
                .filter(|l| l.exclusive)
                .map(|l| l.addr)
                .collect();
            for line in dirty {
                self.oracle.allow_incoherent(line);
            }
        }
        match spec {
            FaultSpec::Node(n) => {
                self.kill_node(*n);
            }
            FaultSpec::Router(r) => {
                self.fabric.fail_router(*r, now);
                self.kill_node(NodeId(r.0));
            }
            FaultSpec::Link(a, b) => {
                let ok = self.fabric.fail_link_between(*a, *b, now);
                assert!(ok, "link fault on non-adjacent routers");
            }
            FaultSpec::InfiniteLoop(n) => {
                self.failed_nodes.insert(*n);
                let node = &mut self.nodes[n.index()];
                node.mode = MagicMode::InfiniteLoop;
                // The processor spins forever on its current access.
            }
            FaultSpec::FirmwareAssertion(_) => {
                // Physical effect applied by the dispatcher after the
                // fail-fast controller has raised its own trigger.
            }
            FaultSpec::FalseAlarm(_) => {}
            FaultSpec::FailSlow(n, factor) => {
                // Gray fault: the node stays alive and coherent, but every
                // MAGIC service it performs takes `factor`× as long. Factor
                // below 2 would be indistinguishable from nominal jitter.
                self.nodes[n.index()]
                    .occupancy
                    .set_slowdown((*factor).max(2));
            }
            FaultSpec::DegradedMemory(n, pct, extra_ns) => {
                let lpn = self.layout.lines_per_node();
                let lines = (lpn * u64::from((*pct).min(100))).div_ceil(100).max(1);
                self.nodes[n.index()].degraded = Some(DegradedRange {
                    lines,
                    extra_ns: *extra_ns,
                    accesses: 0,
                });
            }
            FaultSpec::LossyLink(a, b, ppm) => {
                let ok = self.fabric.set_link_loss_between(*a, *b, *ppm);
                assert!(ok, "lossy-link fault on non-adjacent routers");
            }
            FaultSpec::PoolFailure { pool } => {
                // One failed memory pool dooms every compute node attached
                // to it — the inverted blast radius of disaggregated memory.
                for n in pool {
                    self.kill_node(*n);
                }
            }
            FaultSpec::Multi(list) => {
                for f in list {
                    self.apply_fault(f, now);
                }
            }
        }
    }

    /// Fail-stop one node: ground-truth bookkeeping, MAGIC + processor dead,
    /// and the fabric swallows traffic addressed to it.
    fn kill_node(&mut self, n: NodeId) {
        self.failed_nodes.insert(n);
        let node = &mut self.nodes[n.index()];
        node.mode = MagicMode::Dead;
        node.proc = ProcState::Dead;
        self.fabric.set_node_sink(n, true);
    }
}

/// Fault-injection event handling, implemented on [`MachineWorld`] (the
/// injected fault's triggers are delivered to the extension).
pub(crate) trait FaultHandlers<X: Extension> {
    /// Services an `Ev::Fault`: applies the physical effect and raises the
    /// triggers the fault's detection produces.
    fn handle_fault(&mut self, spec: FaultSpec, sched: &mut Scheduler<'_, Ev<X::Ev>>);
}

impl<X: Extension> FaultHandlers<X> for MachineWorld<X> {
    fn handle_fault(&mut self, spec: FaultSpec, sched: &mut Scheduler<'_, Ev<X::Ev>>) {
        self.st.counters.incr("faults_injected");
        let mut singles: Vec<&FaultSpec> = Vec::new();
        match &spec {
            FaultSpec::Multi(list) => singles.extend(list.iter()),
            other => singles.push(other),
        }
        for f in &singles {
            self.st.obs.record(
                Domain::Machine,
                sched.now(),
                TraceEvent::FaultInjected {
                    kind: f.kind_str(),
                    node: f.primary_node(),
                },
            );
        }
        self.st.apply_fault(&spec, sched.now());
        for f in singles {
            match f {
                FaultSpec::FalseAlarm(n) => {
                    self.ext
                        .on_trigger(&mut self.st, *n, Trigger::FalseAlarm, sched);
                }
                FaultSpec::FirmwareAssertion(n) => {
                    // Fail-fast: the controller raises the trigger, its
                    // dying-gasp pings spread the wave, and a microsecond
                    // later it halts for good.
                    self.ext
                        .on_trigger(&mut self.st, *n, Trigger::AssertionFailure, sched);
                    sched.after(SimDuration::from_micros(1), Ev::Fault(FaultSpec::Node(*n)));
                }
                _ => {}
            }
        }
        // A node-dooming fault arms a heartbeat audit: even when no
        // outstanding memory operation will ever reference the victims
        // (workload drained, or every trigger was swallowed by a dead
        // controller), the peers' periodic MAGIC-to-MAGIC pings notice the
        // failure within one heartbeat period (Section 4.2).
        let victims: Vec<u16> = spec.doomed_nodes().iter().map(|n| n.0).collect();
        if !victims.is_empty() {
            let period = SimDuration::from_nanos(self.st.params.magic.heartbeat_timeout_ns.max(1));
            sched.after(period, Ev::Heartbeat { victims });
        }
    }
}
