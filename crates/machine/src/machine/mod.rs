//! The assembled machine: nodes + interconnect + event dispatch, with an
//! extension hook for the recovery algorithm.
//!
//! [`MachineState`] owns all simulated hardware; [`Machine`] couples it to
//! the event engine and to an [`Extension`] — the recovery algorithm is an
//! extension supplied by the `flash-core` crate, keeping the substrate and
//! the paper's contribution cleanly separated.
//!
//! The module is split by subsystem, with the event dispatch loop in
//! [`world`] delegating to per-subsystem handler traits:
//!
//! * [`world`] — the [`MachineWorld`] dispatch loop, node-controller input
//!   servicing and the outbound packet pump;
//! * [`coh`] — coherence-protocol handlers (home and cache side);
//! * [`proc`] — processor issue, uncached I/O and miss completion;
//! * [`recovery`] — the recovery-support operations the extension drives
//!   (mode switches, cache flush, router reprogramming, resume);
//! * [`inject`] — fault arming and ground-truth mutation;
//! * [`stats`] — the post-recovery validation pass.
//!
//! Notable events are recorded through the [`flash_obs::Recorder`] owned by
//! [`MachineState`]; exporters in `flash-obs` turn it into Chrome-trace JSON
//! and per-node recovery timelines.
//!
//! ## Modeling notes
//!
//! * Every message (including node-local misses) traverses the fabric, so a
//!   local miss loops through the node's own router. This slightly inflates
//!   local miss latency but keeps one uniform code path.
//! * The range check is evaluated at the issuing node: the protected-region
//!   boundary is a global boot-time constant, so the local MAGIC can reject
//!   the write immediately with a bus error (paper, Section 3.3).

mod coh;
mod inject;
mod proc;
mod recovery;
mod sharded;
mod stats;
#[cfg(test)]
mod tests;
mod world;

pub use sharded::ShardPlan;
pub use world::MachineWorld;

use crate::fault::FaultSpec;
use crate::node::{NodeCtx, OutPkt, ProcState};
use crate::oracle::Oracle;
use crate::params::{MachineParams, TopologyKind};
use crate::payload::{Payload, UncMsg};
use crate::workload::Workload;
use flash_coherence::{CohMsg, MemLayout, NodeSet};
use flash_magic::Trigger;
use flash_net::{Fabric, Hypercube, Lane, Mesh2D, NodeId, SourceRoute, Topology};
use flash_sim::{Counters, DetRng, Engine, RunOutcome, Scheduler, SimDuration, SimTime};

/// Events driving the machine, generic over the extension's event type `E`.
#[derive(Clone, Debug)]
pub enum Ev<E> {
    /// Interconnect event.
    Net(flash_net::NetEv),
    /// Service the node controller's input queues.
    NodeWake(u16),
    /// The processor issues (or finishes) an operation.
    ProcNext(u16),
    /// Memory-operation timeout check.
    Timeout {
        /// Node whose operation may have timed out.
        node: u16,
        /// Issue epoch the timeout belongs to.
        epoch: u64,
    },
    /// Retry of a NAK'd request.
    NakRetry {
        /// Retrying node.
        node: u16,
        /// Issue epoch the retry belongs to.
        epoch: u64,
    },
    /// Drain a node's outbound queue into the fabric.
    Pump {
        /// Node to pump.
        node: u16,
        /// Lane index to pump.
        lane: u8,
    },
    /// Inject a fault.
    Fault(FaultSpec),
    /// Heartbeat audit, armed one heartbeat period after a fault dooms
    /// nodes: if any victim's failure is still unnoticed by the extension,
    /// a surviving controller raises [`Trigger::HeartbeatTimeout`] and the
    /// audit re-arms for the next period.
    Heartbeat {
        /// The doomed nodes the audit watches.
        victims: Vec<u16>,
    },
    /// Route a hardware trigger to the extension on the next dispatch.
    TriggerNow {
        /// Node the trigger fired on.
        node: u16,
        /// The trigger.
        trig: Trigger,
    },
    /// An extension (recovery-algorithm) event.
    Ext(E),
}

/// The recovery-algorithm hook. `flash-core` implements this; tests can use
/// [`NullExtension`].
pub trait Extension: std::fmt::Debug + Sized {
    /// Wire messages carried on the recovery virtual lanes.
    type Msg: Clone + std::fmt::Debug;
    /// Timed events private to the extension.
    type Ev: Clone + std::fmt::Debug;

    /// A hardware trigger fired on `node` (Table 4.1).
    fn on_trigger(
        &mut self,
        st: &mut MachineState<Self::Msg>,
        node: NodeId,
        trig: Trigger,
        sched: &mut Scheduler<'_, Ev<Self::Ev>>,
    );

    /// A timed extension event fired.
    fn on_event(
        &mut self,
        st: &mut MachineState<Self::Msg>,
        ev: Self::Ev,
        sched: &mut Scheduler<'_, Ev<Self::Ev>>,
    );

    /// A recovery-lane message was delivered to `at`.
    fn on_recovery_msg(
        &mut self,
        st: &mut MachineState<Self::Msg>,
        at: NodeId,
        from: NodeId,
        msg: Self::Msg,
        sched: &mut Scheduler<'_, Ev<Self::Ev>>,
    );

    /// Whether `node`'s failure has gone unnoticed: no live node's failure
    /// view accounts for it yet. The heartbeat audit keeps raising
    /// [`Trigger::HeartbeatTimeout`] while this holds, modeling the paper's
    /// periodic MAGIC-to-MAGIC pings. The default (`false`) opts extensions
    /// that do not track peer liveness out of heartbeat detection entirely.
    fn unnoticed_failure(&self, st: &MachineState<Self::Msg>, node: NodeId) -> bool {
        let _ = (st, node);
        false
    }
}

/// An extension that ignores all triggers; useful for fault-free tests and
/// normal-mode benchmarks.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullExtension;

impl Extension for NullExtension {
    type Msg = ();
    type Ev = ();
    fn on_trigger(
        &mut self,
        st: &mut MachineState<()>,
        _node: NodeId,
        _trig: Trigger,
        _sched: &mut Scheduler<'_, Ev<()>>,
    ) {
        st.counters.incr("ignored_triggers");
    }
    fn on_event(
        &mut self,
        _st: &mut MachineState<()>,
        _ev: (),
        _sched: &mut Scheduler<'_, Ev<()>>,
    ) {
    }
    fn on_recovery_msg(
        &mut self,
        _st: &mut MachineState<()>,
        _at: NodeId,
        _from: NodeId,
        _msg: (),
        _sched: &mut Scheduler<'_, Ev<()>>,
    ) {
    }
}

/// All simulated hardware state.
///
/// Cloning (for checkpoint/fork) deep-copies every node, the fabric, the
/// oracle and the recorder; see [`Machine::checkpoint`].
#[derive(Clone, Debug)]
pub struct MachineState<R> {
    /// Configuration.
    pub params: MachineParams,
    /// Memory layout.
    pub layout: MemLayout,
    /// The interconnect.
    pub fabric: Fabric<Payload<R>>,
    /// Per-node state.
    pub nodes: Vec<NodeCtx<R>>,
    /// The validation oracle.
    pub oracle: Oracle,
    /// Machine-level statistics.
    pub counters: Counters,
    /// Ground-truth set of failed nodes (fault injector's view).
    pub failed_nodes: NodeSet,
    /// Structured event recorder + metrics (bounded per-domain rings; see
    /// [`flash_obs::Recorder`]).
    pub obs: flash_obs::Recorder,
    next_unc_tag: u64,
}

impl<R: Clone + std::fmt::Debug> MachineState<R> {
    fn new(
        params: MachineParams,
        mut make_workload: impl FnMut(NodeId) -> Box<dyn Workload>,
        seed: u64,
    ) -> Self {
        let layout = params.layout();
        let mut fabric = match params.topology {
            TopologyKind::Mesh2D => {
                let topo = Mesh2D::roughly_square(params.n_nodes);
                assert_eq!(
                    topo.num_nodes(),
                    params.n_nodes,
                    "n_nodes must factor into a mesh"
                );
                Fabric::new(&topo, params.net)
            }
            TopologyKind::Hypercube => {
                let topo = Hypercube::at_least(params.n_nodes);
                assert_eq!(
                    topo.num_nodes(),
                    params.n_nodes,
                    "n_nodes must be a power of two for a hypercube"
                );
                Fabric::new(&topo, params.net)
            }
        };
        let mut root_rng = DetRng::new(seed);
        let nodes = (0..params.n_nodes)
            .map(|i| {
                let id = NodeId(i as u16);
                NodeCtx::new(
                    id,
                    &params,
                    layout,
                    make_workload(id),
                    root_rng.fork(i as u64),
                )
            })
            .collect();
        // Forked *after* the per-node streams so existing node RNG
        // sequences are unchanged by the lossy-link feature.
        fabric.seed_loss_rng(root_rng.fork(0x1055));
        MachineState {
            params,
            layout,
            fabric,
            nodes,
            oracle: Oracle::new(),
            counters: Counters::new(),
            failed_nodes: NodeSet::new(),
            obs: flash_obs::Recorder::new(),
            next_unc_tag: 0,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Reports a broken internal invariant: dumps the recent event trace to
    /// stderr (the post-mortem a bare `unwrap` would discard) and panics
    /// with `what`. Used by the hot-path and recovery-path accessors below
    /// in place of silent `expect`s.
    #[track_caller]
    pub fn invariant_failure(&self, what: &str) -> ! {
        eprintln!("machine invariant violated: {what}");
        eprintln!("--- recent trace (oldest first) ---\n{}", self.obs.render());
        panic!("machine invariant violated: {what}");
    }

    /// Unwraps an `Option` that an invariant guarantees is `Some`; on
    /// violation, dumps the trace and panics with `what`.
    #[track_caller]
    pub fn invariant_some<T>(&self, value: Option<T>, what: &str) -> T {
        match value {
            Some(v) => v,
            None => self.invariant_failure(what),
        }
    }

    /// Nodes that are operational according to ground truth.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().filter(|n| n.is_alive()).map(|n| n.id)
    }

    /// Queues a payload for transmission; the per-lane pump drains it into
    /// the fabric, retrying when the injection queue is full.
    pub fn queue_send<E>(
        &mut self,
        from: NodeId,
        pkt: OutPkt<R>,
        sched: &mut Scheduler<'_, Ev<E>>,
    ) {
        let lane_idx = pkt.lane.index();
        let node = &mut self.nodes[from.index()];
        node.outbox[lane_idx].push_back(pkt);
        if !node.pump_scheduled[lane_idx] {
            node.pump_scheduled[lane_idx] = true;
            // Messages produced by a handler leave the controller when the
            // handler completes — handler occupancy (e.g. the firewall's
            // ACL check) is therefore part of the reply latency.
            let at = node.occupancy.busy_until().max(sched.now());
            sched.at(
                at,
                Ev::Pump {
                    node: from.0,
                    lane: lane_idx as u8,
                },
            );
        }
    }

    /// Queues a coherence message (table-routed, on its protocol lane).
    pub fn send_coh<E>(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: CohMsg,
        sched: &mut Scheduler<'_, Ev<E>>,
    ) {
        let pkt = OutPkt {
            dst: to,
            flits: msg.flits(),
            lane: msg.lane(),
            payload: Payload::Coh(msg),
            route: None,
        };
        self.queue_send(from, pkt, sched);
    }

    /// Queues an uncached message (table-routed).
    pub fn send_unc<E>(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: UncMsg,
        sched: &mut Scheduler<'_, Ev<E>>,
    ) {
        let lane = if msg.is_reply() {
            Lane::Reply
        } else {
            Lane::Request
        };
        let pkt = OutPkt {
            dst: to,
            flits: msg.flits(),
            lane,
            payload: Payload::Unc(msg),
            route: None,
        };
        self.queue_send(from, pkt, sched);
    }

    /// Queues a source-routed recovery message on the given recovery lane.
    /// The hop list is stored inline ([`SourceRoute`]), so the packet incurs
    /// no allocation on its way through the fabric.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is not a recovery lane, or if `hops` is empty or
    /// longer than [`flash_net::MAX_SOURCE_HOPS`].
    pub fn send_recovery<E>(
        &mut self,
        from: NodeId,
        to: NodeId,
        hops: impl Into<SourceRoute>,
        lane: Lane,
        msg: R,
        sched: &mut Scheduler<'_, Ev<E>>,
    ) {
        assert!(
            !lane.is_coherence(),
            "recovery traffic uses dedicated lanes"
        );
        let pkt = OutPkt {
            dst: to,
            flits: 1,
            lane,
            payload: Payload::Rec(msg),
            route: Some(hops.into()),
        };
        self.queue_send(from, pkt, sched);
    }

    /// Allocates a fresh uncached-operation tag.
    pub fn fresh_unc_tag(&mut self) -> u64 {
        let t = self.next_unc_tag;
        self.next_unc_tag += 1;
        t
    }

    /// The state a node's processor is in (test access).
    pub fn proc_state(&self, node: NodeId) -> ProcState {
        self.nodes[node.index()].proc
    }

    /// Records a handler dispatch in the Magic trace domain and feeds the
    /// handler-cost histogram. No-ops cheaply when the domain and metrics
    /// are disabled (the default for the Magic domain).
    pub(crate) fn record_dispatch(
        &mut self,
        node: u16,
        handler: &'static str,
        cost_ns: u64,
        now: SimTime,
    ) {
        self.obs.record(
            flash_obs::Domain::Magic,
            now,
            flash_obs::TraceEvent::HandlerDispatch {
                node,
                handler,
                cost_ns,
            },
        );
        self.obs
            .metrics
            .observe("magic_handler_ns", SimDuration::from_nanos(cost_ns));
    }

    /// Total controller busy time and services across all nodes, for
    /// end-of-run occupancy attribution.
    pub fn occupancy_totals(&self) -> (u64, u64) {
        self.nodes.iter().fold((0, 0), |(b, s), n| {
            (b + n.occupancy.busy_ns(), s + n.occupancy.services())
        })
    }
}

/// A complete simulated machine with its event engine.
///
/// When the extension is `Clone`, the whole machine is: see
/// [`Machine::checkpoint`] for the warm-state snapshot API.
#[derive(Clone, Debug)]
pub struct Machine<X: Extension> {
    world: MachineWorld<X>,
    engine: Engine<Ev<X::Ev>>,
}

/// A warm-state snapshot of a whole machine, taken with
/// [`Machine::checkpoint`] and re-instantiated with [`Checkpoint::fork`].
///
/// A checkpoint captures *everything* that determines future behavior: the
/// event queue (pending events, insertion order, window position), the
/// simulation clock, every node's cache/directory/controller/workload
/// cursor/RNG, the fabric's queues and packet slab, the oracle, the
/// recorder (sequence counter included) and the extension. A fork therefore
/// replays bit-identically: running a fork produces the same merged trace —
/// and so the same [`flash_obs::Recorder::merged_hash`] — as running the
/// original from the same point.
///
/// Checkpoints may be taken at any event boundary, including mid-recovery
/// (between recovery phases): in-flight recovery messages and timed
/// extension events live in the cloned event queue and extension state, so
/// they are part of the snapshot.
#[derive(Clone, Debug)]
pub struct Checkpoint<X: Extension + Clone>(Machine<X>);

impl<X: Extension + Clone> Checkpoint<X> {
    /// Instantiates a fresh runnable machine from the snapshot. May be
    /// called any number of times; forks are independent.
    pub fn fork(&self) -> Machine<X> {
        self.0.clone()
    }

    /// Simulated time at which the snapshot was taken.
    pub fn taken_at(&self) -> SimTime {
        self.0.now()
    }

    /// Read access to the snapshotted machine state (inspection only).
    pub fn st(&self) -> &MachineState<X::Msg> {
        self.0.st()
    }
}

impl<X: Extension + Clone> Machine<X> {
    /// Takes a warm-state snapshot of the whole machine — event queue,
    /// clock, nodes, fabric, oracle, recorder and extension — from which
    /// any number of independent runs can be [`Checkpoint::fork`]ed.
    pub fn checkpoint(&self) -> Checkpoint<X> {
        Checkpoint(self.clone())
    }
}

impl<X: Extension> Machine<X> {
    /// Builds a machine. `make_workload` supplies each node's workload;
    /// `seed` drives all randomness.
    pub fn new(
        params: MachineParams,
        make_workload: impl FnMut(NodeId) -> Box<dyn Workload>,
        ext: X,
        seed: u64,
    ) -> Self {
        let st = MachineState::new(params, make_workload, seed);
        Machine {
            world: MachineWorld::new(st, ext),
            engine: Engine::new(),
        }
    }

    /// Starts every processor (schedules the first `ProcNext` per node).
    pub fn start(&mut self) {
        for i in 0..self.world.st.num_nodes() {
            self.engine
                .schedule_at(SimTime::from_nanos(i as u64), Ev::ProcNext(i as u16));
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Runs until the horizon passes or the event queue drains.
    ///
    /// Uses the engine's batched runner: bursts of same-instant events (a
    /// pump draining a queue, a delivery waking several handlers) are popped
    /// without re-consulting the far-horizon structure between them.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        self.sample_queue_depth();
        self.engine.run_batched(&mut self.world, horizon)
    }

    /// Runs for the given additional duration.
    pub fn run_for(&mut self, d: SimDuration) -> RunOutcome {
        let h = self.engine.now() + d;
        self.sample_queue_depth();
        self.engine.run_batched(&mut self.world, h)
    }

    /// Feeds the engine's pending-event count into the queue-depth
    /// histogram (one sample per run slice — cheap, not per event).
    fn sample_queue_depth(&mut self) {
        self.world
            .st
            .obs
            .metrics
            .observe_count("engine_queue_depth", self.engine.pending() as u64);
    }

    /// Schedules a fault at an absolute time.
    pub fn schedule_fault(&mut self, at: SimTime, spec: FaultSpec) {
        self.engine.schedule_at(at, Ev::Fault(spec));
    }

    /// Schedules an extension event at an absolute time.
    pub fn schedule_ext(&mut self, at: SimTime, ev: X::Ev) {
        self.engine.schedule_at(at, Ev::Ext(ev));
    }

    /// Read access to the machine state.
    pub fn st(&self) -> &MachineState<X::Msg> {
        &self.world.st
    }

    /// Mutable access to the machine state (experiment setup).
    pub fn st_mut(&mut self) -> &mut MachineState<X::Msg> {
        &mut self.world.st
    }

    /// Read access to the extension.
    pub fn ext(&self) -> &X {
        &self.world.ext
    }

    /// Mutable access to the extension.
    pub fn ext_mut(&mut self) -> &mut X {
        &mut self.world.ext
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.engine.events_processed()
    }

    /// How many handler schedules asked for a past time and were clamped to
    /// "now" (see [`flash_sim::Scheduler::at`]).
    pub fn clamped_schedules(&self) -> u64 {
        self.engine.clamped_schedules()
    }

    /// Sets the engine's livelock guard.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.engine.set_event_budget(budget);
    }

    /// Whether all live processors are quiescent (halted or dead) and no
    /// events remain below the given horizon — used by experiments to
    /// detect workload completion.
    pub fn is_quiescent(&self) -> bool {
        self.engine.pending() == 0
    }
}
