//! Processor-side handlers: operation issue, the uncached I/O protocol and
//! local miss completion (discarded speculation, local bus errors, NAK'd
//! reissue).

use super::{Ev, MachineState};
use crate::node::ProcState;
use crate::payload::UncMsg;
use crate::workload::{OpResult, ProcOp};
use flash_coherence::{CohMsg, LineAddr};
use flash_magic::{BusError, MagicMode};
use flash_net::NodeId;
use flash_sim::{Scheduler, SimDuration};

/// Processor and uncached-I/O servicing, implemented on [`MachineState`].
pub(crate) trait ProcHandlers {
    /// The processor issues its next (or retained) operation.
    fn proc_next<E: Clone + std::fmt::Debug>(&mut self, n: u16, sched: &mut Scheduler<'_, Ev<E>>);

    /// Services one delivered uncached-I/O message on node `n`.
    fn process_unc<E: Clone + std::fmt::Debug>(
        &mut self,
        n: u16,
        from: NodeId,
        msg: UncMsg,
        sched: &mut Scheduler<'_, Ev<E>>,
    );

    /// Reissues a NAK'd miss.
    fn resend_miss<E: Clone + std::fmt::Debug>(
        &mut self,
        n: u16,
        line: LineAddr,
        write: bool,
        sched: &mut Scheduler<'_, Ev<E>>,
    );

    /// Completes an incorrectly speculated reference whose fault the
    /// processor discards: the workload sees a normal completion.
    fn complete_discarded_speculation<E: Clone + std::fmt::Debug>(
        &mut self,
        n: u16,
        sched: &mut Scheduler<'_, Ev<E>>,
    );

    /// Completes the current operation with a locally raised bus error.
    fn complete_local_bus_error<E: Clone + std::fmt::Debug>(
        &mut self,
        n: u16,
        err: BusError,
        sched: &mut Scheduler<'_, Ev<E>>,
    );

    /// Chooses the request message for a (re)issued miss: reads use `Get`;
    /// writes use the 1-flit ownership `UpgradeReq` when a shared copy is
    /// still held (the home falls back to the full-data path if we are no
    /// longer a listed sharer), else a full `GetX`.
    fn write_request_for(&mut self, n: u16, line: LineAddr, write: bool) -> CohMsg;
}

impl<R: Clone + std::fmt::Debug> ProcHandlers for MachineState<R> {
    fn proc_next<E: Clone + std::fmt::Debug>(&mut self, n: u16, sched: &mut Scheduler<'_, Ev<E>>) {
        let st = self;
        let now = sched.now();
        {
            let node = &mut st.nodes[n as usize];
            if !matches!(node.proc, ProcState::Ready) {
                return;
            }
            if node.current_op.is_none() {
                let node_id = node.id;
                let op = node.workload.next_op_at(node_id, now, &mut node.rng);
                node.current_op = Some(op);
            }
        }
        let op = st.invariant_some(
            st.nodes[n as usize].current_op,
            "proc step: current_op must be populated before dispatch",
        );
        let issue = SimDuration::from_nanos(st.params.proc_issue_ns);
        match op {
            ProcOp::Halt => {
                st.nodes[n as usize].proc = ProcState::Halted;
                st.nodes[n as usize].current_op = None;
            }
            ProcOp::Compute(ns) => {
                let node = &mut st.nodes[n as usize];
                node.current_op = None;
                node.workload
                    .on_result_at(NodeId(n), now, OpResult::Ok(None));
                sched.after(SimDuration::from_nanos(ns) + issue, Ev::ProcNext(n));
            }
            ProcOp::Read(raw) | ProcOp::Write(raw) | ProcOp::SpeculativeWrite(raw) => {
                let speculative = matches!(op, ProcOp::SpeculativeWrite(_));
                let write = matches!(op, ProcOp::Write(_) | ProcOp::SpeculativeWrite(_));
                st.nodes[n as usize].current_is_speculative = speculative;
                let line = st.nodes[n as usize].remap.remap(raw);
                // Range check at the issuing MAGIC (global boot-time
                // constant).
                if write {
                    let local = st.layout.local_index(line) as u64;
                    if !st.nodes[n as usize].range_check.write_allowed(local) {
                        if speculative {
                            st.complete_discarded_speculation(n, sched);
                        } else {
                            st.complete_local_bus_error(n, BusError::RangeViolation, sched);
                        }
                        return;
                    }
                }
                // Cache hit?
                let (hit, exclusive_store_refused) = {
                    let node = &mut st.nodes[n as usize];
                    match node.cache.touch(line) {
                        Some(l) if !write => (Some(l.version), false),
                        Some(l) if speculative && l.exclusive => (Some(l.version), false),
                        Some(l) if write && l.exclusive => match node.cache.store(line) {
                            Some(v) => (Some(v), false),
                            None => (None, true),
                        },
                        Some(_) if write => (None, false), // shared copy: upgrade below
                        _ => (None, false),
                    }
                };
                if exclusive_store_refused {
                    st.invariant_failure("cache hit: exclusive line must accept the store");
                }
                if let Some(v) = hit {
                    if write && !speculative {
                        st.oracle.record_store(line, v);
                    }
                    let node = &mut st.nodes[n as usize];
                    node.current_op = None;
                    node.workload
                        .on_result_at(NodeId(n), now, OpResult::Ok(None));
                    sched.after(
                        SimDuration::from_nanos(st.params.l2_hit_ns) + issue,
                        Ev::ProcNext(n),
                    );
                    return;
                }
                // Miss path: node-map check, then request to the home.
                let home = st.layout.home_of(line);
                if !st.nodes[n as usize].node_map.is_available(home) {
                    st.counters.incr("node_map_bus_errors");
                    if speculative {
                        st.complete_discarded_speculation(n, sched);
                    } else {
                        st.complete_local_bus_error(n, BusError::DeadHome, sched);
                    }
                    return;
                }
                let epoch = {
                    let node = &mut st.nodes[n as usize];
                    node.op_epoch += 1;
                    node.naks.reset();
                    node.op_issued_at = now;
                    node.proc = ProcState::WaitMiss {
                        line,
                        write,
                        epoch: node.op_epoch,
                    };
                    node.op_epoch
                };
                sched.after(
                    SimDuration::from_nanos(st.params.magic.mem_op_timeout_ns),
                    Ev::Timeout { node: n, epoch },
                );
                let msg = st.write_request_for(n, line, write);
                st.send_coh(NodeId(n), home, msg, sched);
            }
            ProcOp::UncachedRead { dev } | ProcOp::UncachedWrite { dev, .. } => {
                let write = matches!(op, ProcOp::UncachedWrite { .. });
                if dev.0 == n {
                    // Local device access: immediate.
                    let node = &mut st.nodes[n as usize];
                    let value = if write {
                        if let ProcOp::UncachedWrite { value, .. } = op {
                            node.io_dev.write(value);
                        }
                        None
                    } else {
                        Some(node.io_dev.read())
                    };
                    node.current_op = None;
                    node.workload
                        .on_result_at(NodeId(n), now, OpResult::Ok(value));
                    sched.after(
                        SimDuration::from_nanos(st.params.magic.costs.uncached_ns) + issue,
                        Ev::ProcNext(n),
                    );
                    return;
                }
                if !st.nodes[n as usize].node_map.is_available(dev) {
                    st.counters.incr("node_map_bus_errors");
                    st.complete_local_bus_error(n, BusError::DeadHome, sched);
                    return;
                }
                let tag = st.fresh_unc_tag();
                let epoch = {
                    let node = &mut st.nodes[n as usize];
                    node.op_epoch += 1;
                    node.op_issued_at = now;
                    node.proc = ProcState::WaitUncached {
                        tag,
                        dev,
                        write,
                        epoch: node.op_epoch,
                    };
                    if !write {
                        node.uncached.begin_read(tag);
                    }
                    node.op_epoch
                };
                sched.after(
                    SimDuration::from_nanos(st.params.magic.mem_op_timeout_ns),
                    Ev::Timeout { node: n, epoch },
                );
                let msg = if write {
                    let value = match op {
                        ProcOp::UncachedWrite { value, .. } => value,
                        _ => 0,
                    };
                    UncMsg::WriteReq { tag, value }
                } else {
                    UncMsg::ReadReq { tag }
                };
                st.send_unc(NodeId(n), dev, msg, sched);
            }
        }
        let _ = now;
    }

    fn process_unc<E: Clone + std::fmt::Debug>(
        &mut self,
        n: u16,
        from: NodeId,
        msg: UncMsg,
        sched: &mut Scheduler<'_, Ev<E>>,
    ) {
        let st = self;
        let now = sched.now();
        let costs = st.params.magic.costs;
        st.nodes[n as usize]
            .occupancy
            .occupy(now, SimDuration::from_nanos(costs.uncached_ns));
        match msg {
            UncMsg::ReadReq { tag } => {
                if st.nodes[n as usize].mode != MagicMode::Normal {
                    return; // consumed during recovery; requester is saved-read
                }
                if !st.nodes[n as usize].io_guard.allows(from) {
                    st.counters.incr("io_guard_denials");
                    st.send_unc(NodeId(n), from, UncMsg::IoDenied { tag }, sched);
                    return;
                }
                let value = st.nodes[n as usize].io_dev.read();
                st.send_unc(NodeId(n), from, UncMsg::ReadReply { tag, value }, sched);
            }
            UncMsg::WriteReq { tag, value } => {
                if st.nodes[n as usize].mode != MagicMode::Normal {
                    return;
                }
                if !st.nodes[n as usize].io_guard.allows(from) {
                    st.counters.incr("io_guard_denials");
                    st.send_unc(NodeId(n), from, UncMsg::IoDenied { tag }, sched);
                    return;
                }
                st.nodes[n as usize].io_dev.write(value);
                st.send_unc(NodeId(n), from, UncMsg::WriteAck { tag }, sched);
            }
            UncMsg::ReadReply { tag, value } => {
                let node = &mut st.nodes[n as usize];
                let waiting = matches!(node.proc, ProcState::WaitUncached { tag: t, write: false, .. } if t == tag);
                if waiting {
                    node.uncached.complete_read(tag);
                    let latency = sched.now().since(node.op_issued_at);
                    node.lat_uncached.record(latency);
                    node.proc = ProcState::Ready;
                    node.current_op = None;
                    node.workload
                        .on_result_at(NodeId(n), sched.now(), OpResult::Ok(Some(value)));
                    let resume = node.occupancy.busy_until();
                    sched.at(resume, Ev::ProcNext(n));
                } else if node.uncached.deliver_late(tag, value) {
                    st.counters.incr("late_uncached_replies_saved");
                } else {
                    st.counters.incr("stale_uncached_replies");
                }
            }
            UncMsg::WriteAck { tag } => {
                let node = &mut st.nodes[n as usize];
                let waiting = matches!(node.proc, ProcState::WaitUncached { tag: t, write: true, .. } if t == tag);
                if waiting {
                    node.proc = ProcState::Ready;
                    node.current_op = None;
                    node.workload
                        .on_result_at(NodeId(n), sched.now(), OpResult::Ok(None));
                    let resume = node.occupancy.busy_until();
                    sched.at(resume, Ev::ProcNext(n));
                }
            }
            UncMsg::IoDenied { tag } => {
                let node = &mut st.nodes[n as usize];
                let waiting =
                    matches!(node.proc, ProcState::WaitUncached { tag: t, .. } if t == tag);
                if waiting {
                    node.bus_errors += 1;
                    node.proc = ProcState::Ready;
                    node.current_op = None;
                    node.workload.on_result_at(
                        NodeId(n),
                        sched.now(),
                        OpResult::BusError(BusError::ForeignUncachedIo),
                    );
                    st.counters.incr("bus_errors");
                    let resume = node.occupancy.busy_until();
                    sched.at(resume, Ev::ProcNext(n));
                }
            }
        }
    }

    fn resend_miss<E: Clone + std::fmt::Debug>(
        &mut self,
        n: u16,
        line: LineAddr,
        write: bool,
        sched: &mut Scheduler<'_, Ev<E>>,
    ) {
        let home = self.layout.home_of(line);
        if !self.nodes[n as usize].node_map.is_available(home) {
            self.counters.incr("node_map_bus_errors");
            self.complete_local_bus_error(n, BusError::DeadHome, sched);
            return;
        }
        let msg = self.write_request_for(n, line, write);
        self.send_coh(NodeId(n), home, msg, sched);
    }

    fn complete_discarded_speculation<E: Clone + std::fmt::Debug>(
        &mut self,
        n: u16,
        sched: &mut Scheduler<'_, Ev<E>>,
    ) {
        let node = &mut self.nodes[n as usize];
        node.naks.reset();
        node.current_op = None;
        node.current_is_speculative = false;
        node.proc = ProcState::Ready;
        node.workload
            .on_result_at(NodeId(n), sched.now(), OpResult::Ok(None));
        self.counters.incr("speculative_faults_discarded");
        let resume = self.nodes[n as usize]
            .occupancy
            .busy_until()
            .max(sched.now());
        sched.at(resume, Ev::ProcNext(n));
    }

    fn complete_local_bus_error<E: Clone + std::fmt::Debug>(
        &mut self,
        n: u16,
        err: BusError,
        sched: &mut Scheduler<'_, Ev<E>>,
    ) {
        let node = &mut self.nodes[n as usize];
        node.bus_errors += 1;
        node.current_op = None;
        node.proc = ProcState::Ready;
        node.workload
            .on_result_at(NodeId(n), sched.now(), OpResult::BusError(err));
        self.counters.incr("bus_errors");
        sched.after(
            SimDuration::from_nanos(self.params.proc_issue_ns),
            Ev::ProcNext(n),
        );
    }

    fn write_request_for(&mut self, n: u16, line: LineAddr, write: bool) -> CohMsg {
        if !write {
            return CohMsg::Get { line };
        }
        match self.nodes[n as usize].cache.lookup(line) {
            Some(l) if !l.exclusive && self.params.upgrades_enabled => {
                self.counters.incr("upgrade_requests");
                CohMsg::UpgradeReq { line }
            }
            Some(l) if !l.exclusive => {
                // Upgrades disabled (ablation): drop the copy and refetch.
                self.nodes[n as usize].cache.invalidate(line);
                CohMsg::GetX { line }
            }
            _ => CohMsg::GetX { line },
        }
    }
}
