//! Recovery-support operations driven by the extension: mode switches and
//! oracle snapshots at recovery initiation, the cache flush of the rebuild
//! phase, router reprogramming and isolation for interconnect recovery, and
//! the post-recovery resume (paper, Sections 4.2 and 4.4–4.6).

use super::{Ev, MachineState};
use crate::node::ProcState;
use crate::workload::{OpResult, ProcOp};
use flash_coherence::{CohMsg, DirState, LineAddr, NodeSet};
use flash_magic::{BusError, MagicMode};
use flash_net::{NodeId, RouterId};
use flash_sim::Scheduler;

impl<R: Clone + std::fmt::Debug> MachineState<R> {
    /// Switches a node controller into recovery-drain mode and snapshots its
    /// directory for the oracle's may-become-incoherent set: from this
    /// moment the home issues no new grants, so the set is stable (see
    /// `crate::oracle`).
    pub fn enter_recovery_mode(&mut self, node: NodeId) {
        let prev = self.nodes[node.index()].mode;
        if matches!(prev, MagicMode::Normal) {
            self.nodes[node.index()].mode = MagicMode::RecoveryDrain;
        }
        self.snapshot_home_for_oracle(node);
    }

    /// Extends the oracle's may-become-incoherent set with this home's
    /// currently endangered lines: dirty-remote lines whose owner is failed
    /// or no longer holds the copy (grant or writeback in flight). Called at
    /// every recovery (re)start so restarts triggered by additional faults
    /// account for the newly lost owners. Additive and idempotent.
    pub fn snapshot_home_for_oracle(&mut self, node: NodeId) {
        if !self.nodes[node.index()].is_alive() {
            return;
        }
        let entries: Vec<(LineAddr, NodeId)> = self.nodes[node.index()]
            .dir
            .iter_states()
            .filter_map(|(line, s)| match s {
                DirState::Exclusive(o) => Some((line, o)),
                DirState::PendingRecall { owner, .. } => Some((line, owner)),
                _ => None,
            })
            .collect();
        for (line, owner) in entries {
            let owner_failed =
                self.failed_nodes.contains(owner) || !self.nodes[owner.index()].is_alive();
            // A shared-flagged copy does not satisfy the flush (only dirty
            // lines are written back), so an owner holding the line merely
            // shared — an upgrade grant still in flight — counts as lacking.
            let owner_lacks = !self.nodes[owner.index()]
                .cache
                .lookup(line)
                .map(|l| l.exclusive)
                .unwrap_or(false);
            if owner_failed || owner_lacks {
                self.oracle.allow_incoherent(line);
            }
        }
        self.oracle.finish_snapshot();
    }

    /// Unstalls the processor for recovery: pending cacheable operations are
    /// NAK'd (to be reissued after recovery); a pending uncached read is
    /// terminated but its result is saved for exactly-once emulation
    /// (paper, Section 4.2).
    pub fn drop_processor_into_recovery(&mut self, node: NodeId) {
        let n = &mut self.nodes[node.index()];
        match n.proc {
            ProcState::Dead => return,
            ProcState::WaitMiss { .. } => {
                // The request will be reissued from `current_op` on resume.
                n.proc = ProcState::InRecovery;
            }
            ProcState::WaitUncached { write, .. } => {
                if !write {
                    n.saved_unc_read = n.uncached.on_recovery_initiation();
                }
                n.proc = ProcState::InRecovery;
            }
            ProcState::Ready | ProcState::Halted => {
                if !matches!(n.proc, ProcState::Halted) {
                    n.proc = ProcState::InRecovery;
                }
            }
            ProcState::InRecovery => {}
        }
        n.naks.reset();
        // Any buffered interventions are moot: recovery flushes all caches
        // and resets the directory state.
        n.pending_remote.clear();
    }

    /// The recovery cache flush (paper, Section 4.5): empties the node's
    /// cache and queues writebacks of all dirty lines to their homes, except
    /// lines homed on nodes marked failed in the node map (those are gone
    /// with their homes). Returns the number of writebacks queued.
    pub fn flush_cache_for_recovery<E>(
        &mut self,
        node: NodeId,
        sched: &mut Scheduler<'_, Ev<E>>,
    ) -> usize {
        let dirty = self.nodes[node.index()].cache.flush_all();
        let mut sent = 0;
        for l in dirty {
            let home = self.layout.home_of(l.addr);
            if self.nodes[node.index()].node_map.is_available(home) {
                let put = CohMsg::Put {
                    line: l.addr,
                    version: l.version,
                    keep_shared: false,
                };
                self.send_coh(node, home, put, sched);
                sent += 1;
            }
        }
        sent
    }

    /// Installs one router's row of a freshly computed routing table (each
    /// node reprograms its own router during interconnect recovery).
    pub fn install_router_row(&mut self, router: RouterId, tables: &flash_net::RoutingTables) {
        let n = self.fabric.num_routers();
        for d in 0..n as u16 {
            let hop = tables.hop(router, RouterId(d));
            self.fabric.tables_mut().set(router, RouterId(d), hop);
        }
    }

    /// The isolation step of interconnect recovery, executed by each live
    /// node for its own router: program table entries toward dead
    /// destinations to discard, and make the local ejection port of any
    /// adjacent dead-controller node sink its traffic.
    pub fn apply_isolation_for(&mut self, node: NodeId, dead: &NodeSet) {
        let router = RouterId(node.0);
        let n = self.fabric.num_routers();
        for d in 0..n as u16 {
            if dead.contains(NodeId(d)) {
                self.fabric
                    .tables_mut()
                    .set(router, RouterId(d), flash_net::Hop::Discard);
            }
        }
        // Neighboring dead-controller nodes (router alive, MAGIC dead or
        // spinning): their ejection port is reprogrammed to discard so the
        // congestion tree can drain.
        let nbrs: Vec<NodeId> = self
            .fabric
            .neighbors(router)
            .iter()
            .map(|nb| NodeId(nb.router.0))
            .collect();
        for nb in nbrs {
            if dead.contains(nb) && self.fabric.router_alive(RouterId(nb.0)) {
                self.fabric.set_node_sink(nb, true);
            }
        }
    }

    /// Resumes normal operation on a node after recovery completes: the
    /// controller returns to normal dispatch, the OS-recovery interrupt is
    /// raised, and the processor re-executes its interrupted operation
    /// (NAK'd cacheable ops are reissued; a saved uncached read is emulated
    /// from its buffer — paper, Sections 4.2 and 4.6).
    pub fn resume_after_recovery<E>(&mut self, node: NodeId, sched: &mut Scheduler<'_, Ev<E>>) {
        let i = node.index();
        if !self.nodes[i].is_alive() {
            return;
        }
        let now = sched.now();
        self.nodes[i].mode = MagicMode::Normal;
        self.nodes[i].os_interrupt_pending = true;
        if !matches!(self.nodes[i].proc, ProcState::InRecovery) {
            return;
        }
        // Saved uncached read emulation.
        if let Some(tag) = self.nodes[i].saved_unc_read.take() {
            let saved = self.nodes[i].uncached.take_saved(tag);
            let node_ref = &mut self.nodes[i];
            node_ref.proc = ProcState::Ready;
            node_ref.current_op = None;
            match saved {
                Some(flash_magic::SavedRead::Arrived(v)) => {
                    node_ref
                        .workload
                        .on_result_at(node, now, OpResult::Ok(Some(v)));
                }
                _ => {
                    node_ref.bus_errors += 1;
                    node_ref.workload.on_result_at(
                        node,
                        now,
                        OpResult::BusError(BusError::UncachedUnresolved),
                    );
                }
            }
            sched.immediately(Ev::ProcNext(node.0));
            return;
        }
        let node_ref = &mut self.nodes[i];
        match node_ref.current_op {
            Some(ProcOp::UncachedWrite { .. }) => {
                // A pending uncached write's ack was lost in recovery; the
                // write is nonidempotent and must not be retried — treat it
                // as completed (see DESIGN.md).
                node_ref.proc = ProcState::Ready;
                node_ref.current_op = None;
                node_ref
                    .workload
                    .on_result_at(node, now, OpResult::Ok(None));
            }
            _ => {
                // Cacheable ops (or none): reissue from current_op.
                node_ref.proc = ProcState::Ready;
            }
        }
        sched.immediately(Ev::ProcNext(node.0));
    }
}
