//! The sharded (intra-run parallel) machine executor.
//!
//! [`Machine::run_until_sharded`] partitions the mesh into contiguous
//! router regions ([`RegionMap`]) and advances them in conservative
//! lookahead windows on a [`ShardSim`]: each region owns a fabric replica
//! plus the nodes attached to its routers, and packets crossing a region
//! boundary travel through the shard mailboxes as
//! [`BoundaryHop`]s, merged deterministically at each window barrier.
//!
//! ## Determinism contract
//!
//! The *shard plan* — the region count — is part of the run's identity:
//! two runs with the same plan dispatch the same events in the same
//! order and produce bit-identical traces **for any worker count**,
//! because every control decision below (serial-vs-sharded legs, stretch
//! stops, hysteresis) depends only on the event stream, never on thread
//! timing. A plan with a different region count is a *different*
//! (equally valid) discretization: boundary handoffs apply at window
//! barriers, deferring cross-region deliveries and extension calls by at
//! most one lookahead window relative to the serial engine.
//!
//! ## Structure
//!
//! Machine events classify by owner: fabric events belong to the region
//! of their queue, node events to the region of their node, and the
//! *global* events — fault injection, the heartbeat audit, extension
//! events — to no region at all. Globals always run on the serial
//! engine: the executor alternates *serial legs* (run whenever a global
//! is imminent) with *sharded stretches* (windows strictly before the
//! next global). Extension calls raised inside a stretch (timeouts,
//! truncated packets, recovery messages) are captured by [`DeferExt`]
//! and replayed serially at the stretch fold, at most one window late;
//! a stretch stops at the first barrier that observes a deferred call,
//! so recovery work never stalls behind a long stretch.

use super::{Ev, Extension, Machine, MachineState, MachineWorld};
use crate::node::NodeCtx;
use crate::params::MachineParams;
use crate::payload::Payload;
use crate::workload::Idle;
use flash_coherence::{MemLayout, LINES_PER_PAGE};
use flash_magic::Trigger;
use flash_net::{BoundaryHop, NetEv, NodeId, RegionMap};
use flash_sim::{
    Counters, DetRng, RunOutcome, Scheduler, ShardControl, ShardCtx, ShardHook, ShardSim,
    ShardWorld, SimDuration, SimTime, World,
};

/// Windows a stretch must survive to be considered profitable; stopping
/// earlier (a deferred trigger, an imminent global) charges the serial
/// penalty so unfold/fold overhead is not paid again immediately.
const MIN_PROFITABLE_WINDOWS: u64 = 16;
/// Serial grace around a global event, in lookahead windows: a global
/// closer than this to the next pending event runs on a serial leg that
/// extends this far past it, absorbing bursts of near-in-time globals.
const GLOBAL_GRACE_WINDOWS: u64 = 64;
/// Serial penalty after an unprofitable stretch, in lookahead windows.
const SERIAL_PENALTY_WINDOWS: u64 = 128;

/// How a [`Machine`] run is sharded.
///
/// `regions` fixes the event-order contract — it is part of the run's
/// identity, like the seed. `workers` only multiplexes regions across OS
/// threads and never affects the result: any worker count replays
/// bit-identically for a fixed region count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of mesh regions (shards). Clamped to the node count; `1`
    /// falls back to the serial engine.
    pub regions: usize,
    /// Worker threads multiplexing the regions; clamped to `[1, regions]`.
    pub workers: usize,
}

impl ShardPlan {
    /// A plan with the given region and worker counts (both at least 1).
    pub fn new(regions: usize, workers: usize) -> Self {
        assert!(regions > 0, "need at least one region");
        assert!(workers > 0, "need at least one worker");
        ShardPlan { regions, workers }
    }
}

/// An extension call captured inside a sharded stretch, replayed on the
/// serial engine at the stretch fold.
#[derive(Clone, Debug)]
enum DeferredCall<X: Extension> {
    /// `Extension::on_trigger`.
    Trigger {
        at: SimTime,
        node: NodeId,
        trig: Trigger,
    },
    /// `Extension::on_recovery_msg`.
    RecoveryMsg {
        at: SimTime,
        node: NodeId,
        from: NodeId,
        msg: X::Msg,
    },
    /// `Extension::on_event`.
    Event { at: SimTime, ev: X::Ev },
}

impl<X: Extension> DeferredCall<X> {
    fn at(&self) -> SimTime {
        match self {
            DeferredCall::Trigger { at, .. }
            | DeferredCall::RecoveryMsg { at, .. }
            | DeferredCall::Event { at, .. } => *at,
        }
    }
}

/// The extension stand-in a region replica runs with: it records every
/// call the dispatch loop would make into the real extension, for serial
/// replay at the fold. The real extension never enters a shard, so its
/// state needs no forking or merging.
///
/// `unnoticed_failure` keeps the default `false`; this is safe because
/// heartbeat events are global and never dispatch inside a shard.
#[derive(Debug)]
struct DeferExt<X: Extension> {
    deferred: Vec<DeferredCall<X>>,
    _ext: std::marker::PhantomData<fn() -> X>,
}

impl<X: Extension> DeferExt<X> {
    fn new() -> Self {
        DeferExt {
            deferred: Vec::new(),
            _ext: std::marker::PhantomData,
        }
    }
}

impl<X: Extension> Extension for DeferExt<X> {
    type Msg = X::Msg;
    type Ev = X::Ev;

    fn on_trigger(
        &mut self,
        _st: &mut MachineState<Self::Msg>,
        node: NodeId,
        trig: Trigger,
        sched: &mut Scheduler<'_, Ev<Self::Ev>>,
    ) {
        self.deferred.push(DeferredCall::Trigger {
            at: sched.now(),
            node,
            trig,
        });
    }

    fn on_event(
        &mut self,
        _st: &mut MachineState<Self::Msg>,
        ev: Self::Ev,
        sched: &mut Scheduler<'_, Ev<Self::Ev>>,
    ) {
        self.deferred.push(DeferredCall::Event {
            at: sched.now(),
            ev,
        });
    }

    fn on_recovery_msg(
        &mut self,
        _st: &mut MachineState<Self::Msg>,
        at: NodeId,
        from: NodeId,
        msg: Self::Msg,
        sched: &mut Scheduler<'_, Ev<Self::Ev>>,
    ) {
        self.deferred.push(DeferredCall::RecoveryMsg {
            at: sched.now(),
            node: at,
            from,
            msg,
        });
    }
}

/// Inert stand-ins for node slots a region replica does not own.
///
/// Shard dispatch only ever touches a region's own nodes, so foreign
/// slots — and the base machine's slots, while its real nodes are out on
/// loan to the shardlets — only need to keep `Vec` indexing by `NodeId`
/// intact. Built over a one-node, one-line memory layout so the
/// directory, cache and firewall allocations are negligible (the
/// layout keeps one page per node — the firewall's alignment floor).
fn placeholder_nodes<R>(n_nodes: usize) -> Vec<NodeCtx<R>> {
    let mut params = MachineParams::tiny();
    params.n_nodes = 1;
    params.l2_mb = 128.0 / (1024.0 * 1024.0); // one cache line
    let layout = MemLayout::new(1, LINES_PER_PAGE);
    (0..n_nodes)
        .map(|n| {
            NodeCtx::new(
                NodeId(n as u16),
                &params,
                layout,
                Box::new(Idle),
                DetRng::new(0),
            )
        })
        .collect()
}

/// One region's slice of the machine: a full [`MachineWorld`] whose
/// fabric is a region replica and whose extension defers. Only events
/// owned by the region are ever dispatched here, so only region-owned
/// node and fabric state diverges from the base machine — exactly the
/// state the fold harvests.
struct Shardlet<X: Extension> {
    world: MachineWorld<DeferExt<X>>,
    /// Events dispatched, for the engine's budget accounting.
    events: u64,
}

impl<X: Extension> ShardWorld for Shardlet<X>
where
    X::Msg: Send,
    X::Ev: Send,
{
    type Ev = Ev<X::Ev>;
    type Handoff = BoundaryHop<Payload<X::Msg>>;

    fn dispatch(&mut self, ev: Self::Ev, ctx: &mut ShardCtx<'_, Self::Ev, Self::Handoff>) {
        self.events += 1;
        // Only fabric events can emit boundary hops (they originate in
        // packet arrival handling).
        let is_net = matches!(ev, Ev::Net(_));
        {
            let mut sched = ctx.scheduler();
            self.world.dispatch(ev, &mut sched);
        }
        if is_net {
            for (dst, hop) in self.world.st.fabric.take_boundary_hops() {
                let at = hop.at();
                ctx.send(usize::from(dst), at, hop);
            }
        }
    }

    fn apply_handoff(
        &mut self,
        _at: SimTime,
        h: Self::Handoff,
        ctx: &mut ShardCtx<'_, Self::Ev, Self::Handoff>,
    ) {
        // Applied at the window barrier: the fabric places the packet as
        // a local arrival at `ctx.now()` (the window end), a skew of at
        // most one lookahead past its nominal transit time.
        let now = ctx.now();
        debug_assert!(self.world.net_out.is_empty() && self.world.deliveries.is_empty());
        let mut net_out = std::mem::take(&mut self.world.net_out);
        let mut deliveries = std::mem::take(&mut self.world.deliveries);
        self.world.st.fabric.apply_boundary_hop(
            h,
            now,
            &mut net_out,
            &mut deliveries,
            &mut self.world.st.obs,
        );
        for (d, e) in net_out.drain(..) {
            ctx.after(d, Ev::Net(e));
        }
        for note in deliveries.drain(..) {
            let n = note.node.0;
            let t = self.world.st.nodes[usize::from(n)]
                .occupancy
                .busy_until()
                .max(now);
            let mut sched = ctx.scheduler();
            self.world.wake_node(n, t, &mut sched);
        }
        self.world.net_out = net_out;
        self.world.deliveries = deliveries;
    }
}

/// The region owning an event, or `None` for the global events that only
/// the serial engine may dispatch.
fn region_of<E>(ev: &Ev<E>, map: &RegionMap) -> Option<usize> {
    match ev {
        Ev::Net(NetEv::TryMove(qr, _) | NetEv::Arrived(qr, _)) => {
            Some(usize::from(map.of_queue(*qr)))
        }
        Ev::NodeWake(n)
        | Ev::ProcNext(n)
        | Ev::Timeout { node: n, .. }
        | Ev::NakRetry { node: n, .. }
        | Ev::Pump { node: n, .. }
        | Ev::TriggerNow { node: n, .. } => Some(usize::from(map.of_node(NodeId(*n)))),
        Ev::Fault(_) | Ev::Heartbeat { .. } | Ev::Ext(_) => None,
    }
}

/// Barrier observer for one stretch: counts windows, enforces the event
/// budget, and stops the stretch at the first barrier where any shard
/// deferred an extension call.
struct StretchHook {
    windows: u64,
    events_scratch: u64,
    event_budget: u64,
    defer_stop: bool,
    budget_stop: bool,
}

impl<X: Extension> ShardHook<Shardlet<X>> for StretchHook {
    fn per_shard(&mut self, _shard: usize, world: &mut Shardlet<X>) {
        self.events_scratch += world.events;
        if !world.world.ext.deferred.is_empty() {
            self.defer_stop = true;
        }
    }

    fn control(&mut self, _window_end: SimTime, _next_event: Option<SimTime>) -> ShardControl {
        self.windows += 1;
        let seen = self.events_scratch;
        self.events_scratch = 0;
        if self.defer_stop {
            return ShardControl::Stop;
        }
        if seen >= self.event_budget {
            self.budget_stop = true;
            return ShardControl::Stop;
        }
        ShardControl::Continue
    }
}

impl<X: Extension> Machine<X>
where
    X::Msg: Send,
    X::Ev: Send,
{
    /// Runs until the horizon passes or the event queue drains, like
    /// [`Machine::run_until`], but advances independent mesh regions in
    /// parallel where the pending work allows it.
    ///
    /// The trace produced is a function of `(machine, plan.regions)`
    /// alone: any `plan.workers` — including 1 — replays bit-identically.
    /// See the [module docs](self) for the synchronization scheme and
    /// the (bounded) ways a sharded trace may differ from the serial
    /// engine's.
    pub fn run_until_sharded(&mut self, horizon: SimTime, plan: ShardPlan) -> RunOutcome {
        let n_nodes = self.world.st.num_nodes();
        if plan.regions.min(n_nodes) <= 1 {
            return self.run_until(horizon);
        }
        let lookahead_ns = self.world.st.fabric.min_region_lookahead_ns().max(1);
        let lookahead = SimDuration::from_nanos(lookahead_ns);
        let grace = SimDuration::from_nanos(lookahead_ns.saturating_mul(GLOBAL_GRACE_WINDOWS));
        let penalty = SimDuration::from_nanos(lookahead_ns.saturating_mul(SERIAL_PENALTY_WINDOWS));
        let map = RegionMap::stripes(self.world.st.fabric.num_routers(), plan.regions);
        let regions = usize::from(map.n_regions());
        // Events earlier than this run serially: charged after a stretch
        // stops too quickly to amortize its unfold/fold cost.
        let mut serial_until = SimTime::ZERO;
        // Consecutive serial legs double their span (capped): during a
        // global-dense period — e.g. the detection phase, where recovery
        // timers keep a global event within every grace window — fixed
        // grace-sized legs would re-drain the whole pending queue once
        // per ~grace of simulated time, an O(pending * period / grace)
        // churn that dwarfs the events actually executed. Escalating
        // legs make such a period cost O(pending * log(period / grace))
        // drains. Leg boundaries never reorder serial execution, so this
        // is pure scheduling policy: workers see the same trace.
        let mut leg_streak: u32 = 0;

        loop {
            if self.engine.pending() == 0 {
                return RunOutcome::Drained;
            }
            self.sample_queue_depth();
            let events = self.engine.drain_pending();
            let t0 = events[0].0;
            if t0 > horizon {
                for (t, ev) in events {
                    self.engine.schedule_at(t, ev);
                }
                return self.engine.run_batched(&mut self.world, horizon);
            }
            // Globals pop in time order, so the first one found is the
            // earliest.
            let global = events
                .iter()
                .find(|(_, ev)| region_of(ev, &map).is_none())
                .map(|&(t, _)| t);
            let global_near = global.is_some_and(|g| g <= t0 + grace);
            if global_near || t0 < serial_until {
                let mut leg_end = SimTime::ZERO;
                if let Some(g) = global {
                    if g <= t0 + grace {
                        let span = SimDuration::from_nanos(
                            lookahead_ns
                                .saturating_mul(GLOBAL_GRACE_WINDOWS)
                                .saturating_mul(1 << leg_streak.min(7)),
                        );
                        leg_end = leg_end.max(g + span);
                    }
                }
                if t0 < serial_until {
                    leg_end = leg_end.max(serial_until);
                }
                let leg_end = leg_end.min(horizon);
                for (t, ev) in events {
                    self.engine.schedule_at(t, ev);
                }
                leg_streak = leg_streak.saturating_add(1);
                match self.engine.run_batched(&mut self.world, leg_end) {
                    RunOutcome::HorizonReached if leg_end < horizon => continue,
                    out => return out,
                }
            }

            // --- Sharded stretch ---
            // Windows end strictly before the first global, so no shard
            // event at or beyond its time ever runs out of order with it.
            leg_streak = 0;
            let stretch_horizon = match global {
                Some(g) => horizon.min(SimTime::from_nanos(g.as_nanos() - 1)),
                None => horizon,
            };
            let mut sim: ShardSim<Ev<X::Ev>, BoundaryHop<Payload<X::Msg>>> =
                ShardSim::new(regions, lookahead);
            for (t, ev) in events {
                match region_of(&ev, &map) {
                    Some(r) => sim.seed(r, t, ev),
                    None => self.engine.schedule_at(t, ev),
                }
            }
            // Replicas are cloned from a hollowed template: cloning the
            // full state per region would copy every node's directory and
            // cache `regions` times per stretch, which dominates the run.
            // Instead the heavy per-node state is *moved* into its owning
            // shardlet (dispatch only ever touches a region's own nodes)
            // and inert placeholders keep the `NodeId -> index` mapping
            // intact in the foreign slots; the fold swaps the owned nodes
            // back into the base machine.
            let real_nodes = std::mem::take(&mut self.world.st.nodes);
            let hollow_obs = self.world.st.obs.like();
            let base_obs = std::mem::replace(&mut self.world.st.obs, hollow_obs);
            let oracle_delta = self.world.st.oracle.fork_delta();
            let base_oracle = std::mem::replace(&mut self.world.st.oracle, oracle_delta);
            let base_counters = std::mem::replace(&mut self.world.st.counters, Counters::new());
            let mut shardlets: Vec<Shardlet<X>> = (0..regions)
                .map(|r| {
                    let mut st = self.world.st.clone();
                    st.fabric.enter_region(map.clone(), r as u16);
                    st.nodes = placeholder_nodes(n_nodes);
                    Shardlet {
                        world: MachineWorld {
                            st,
                            ext: DeferExt::new(),
                            net_out: Vec::new(),
                            deliveries: Vec::new(),
                            wake_at: self.world.wake_at.clone(),
                        },
                        events: 0,
                    }
                })
                .collect();
            self.world.st.nodes = placeholder_nodes(n_nodes);
            for (n, node) in real_nodes.into_iter().enumerate() {
                let r = usize::from(map.of_node(NodeId(n as u16)));
                shardlets[r].world.st.nodes[n] = node;
            }
            self.world.st.obs = base_obs;
            self.world.st.oracle = base_oracle;
            self.world.st.counters = base_counters;
            let mut hook = StretchHook {
                windows: 0,
                events_scratch: 0,
                event_budget: self.engine.remaining_budget(),
                defer_stop: false,
                budget_stop: false,
            };
            let outcome = sim.run(&mut shardlets, stretch_horizon, plan.workers, &mut hook);
            let _ = outcome;

            // --- Fold ---
            self.engine.add_processed(sim.events_processed());
            // Leftover shard events are all at or beyond the last window
            // end, so the clock can jump there before they are re-queued.
            self.engine.skip_to(sim.now());

            let mut fabrics = Vec::with_capacity(regions);
            let mut recorders = Vec::with_capacity(regions);
            let mut deferred: Vec<(SimTime, usize, usize, DeferredCall<X>)> = Vec::new();
            for (r, sl) in shardlets.into_iter().enumerate() {
                let MachineWorld {
                    st,
                    ext,
                    wake_at: part_wake,
                    ..
                } = sl.world;
                let MachineState {
                    fabric,
                    mut nodes,
                    oracle,
                    counters,
                    obs,
                    next_unc_tag,
                    ..
                } = st;
                for n in 0..n_nodes {
                    if usize::from(map.of_node(NodeId(n as u16))) == r {
                        std::mem::swap(&mut self.world.st.nodes[n], &mut nodes[n]);
                        self.world.wake_at[n] = part_wake[n];
                    }
                }
                self.world.st.counters.merge(&counters);
                self.world.st.oracle.merge_delta(&oracle);
                self.world.st.next_unc_tag = self.world.st.next_unc_tag.max(next_unc_tag);
                fabrics.push(fabric);
                recorders.push(obs);
                for (idx, call) in ext.deferred.into_iter().enumerate() {
                    deferred.push((call.at(), r, idx, call));
                }
            }
            self.world.st.fabric.meld_regions(fabrics, &map);
            self.world.st.obs.absorb(&recorders);

            // Re-queue leftovers in the canonical merge order: time, then
            // region, then local pop order (the drain is already in local
            // pop order and the sort is stable).
            let mut leftovers = sim.drain();
            leftovers.sort_by_key(|e| (e.1, e.0));
            for (_, t, ev) in leftovers {
                self.engine.schedule_at(t, ev);
            }

            // Replay deferred extension calls serially, ordered by their
            // capture key. They run at the fold instant (the handlers see
            // `sched.now()` = the stretch's last window end), at most one
            // window after the call would have run serially.
            deferred.sort_by_key(|e| (e.0, e.1, e.2));
            if !deferred.is_empty() {
                let Machine { world, engine } = self;
                engine.with_scheduler(|sched| {
                    for (_, _, _, call) in deferred {
                        match call {
                            DeferredCall::Trigger { node, trig, .. } => {
                                world.ext.on_trigger(&mut world.st, node, trig, sched);
                            }
                            DeferredCall::RecoveryMsg {
                                node, from, msg, ..
                            } => {
                                world
                                    .ext
                                    .on_recovery_msg(&mut world.st, node, from, msg, sched);
                            }
                            DeferredCall::Event { ev, .. } => {
                                world.ext.on_event(&mut world.st, ev, sched);
                            }
                        }
                    }
                });
            }

            if hook.windows < MIN_PROFITABLE_WINDOWS {
                serial_until = self.engine.now() + penalty;
            }
            if hook.budget_stop {
                return RunOutcome::BudgetExhausted;
            }
        }
    }
}
