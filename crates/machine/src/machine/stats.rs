//! Accounting: the post-recovery validation pass against the oracle
//! (Table 5.3). Event tracing lives in [`flash_obs`]; the recorder is the
//! `obs` field of [`MachineState`].

use super::MachineState;
use crate::oracle::ValidationReport;
use crate::payload::Payload;
use flash_coherence::{DirState, LineAddr};

impl<R: Clone + std::fmt::Debug> MachineState<R> {
    /// Post-recovery validation against the oracle (the check of Table 5.3):
    /// no over-marking, no silent corruption. The machine should be
    /// quiescent (no in-flight coherence traffic); a line's effective data
    /// is the exclusive cached copy if one exists, else the home memory
    /// image.
    pub fn validate(&self) -> ValidationReport {
        // Lines whose only valid copy was lost inside the interconnect
        // (dropped writebacks / exclusive grants) may legitimately be
        // marked incoherent even when they postdate the per-home oracle
        // snapshot.
        let mut lost_in_transit: std::collections::HashSet<LineAddr> =
            std::collections::HashSet::new();
        for pkt in self.fabric.dropped_packets() {
            if let Payload::Coh(msg) = &pkt.payload {
                if msg.carries_sole_copy() {
                    lost_in_transit.insert(msg.line());
                }
            }
        }
        // Collect cached copies from all live caches: exclusive (dirty)
        // copies define a line's effective data; any live copy of the
        // latest version proves the data still survives somewhere.
        let mut dirty: std::collections::HashMap<LineAddr, flash_coherence::Version> =
            std::collections::HashMap::new();
        let mut cached: std::collections::HashSet<(LineAddr, flash_coherence::Version)> =
            std::collections::HashSet::new();
        for node in &self.nodes {
            if !node.is_alive() {
                continue;
            }
            for l in node.cache.iter() {
                cached.insert((l.addr, l.version));
                if l.exclusive {
                    dirty.insert(l.addr, l.version);
                }
            }
        }
        let mut report = ValidationReport::default();
        for node in &self.nodes {
            if self.failed_nodes.contains(node.id) {
                report.inaccessible += self.layout.lines_per_node();
                continue;
            }
            for (line, state) in node.dir.iter_states() {
                report.lines_checked += 1;
                match state {
                    DirState::Incoherent => {
                        report.marked_incoherent += 1;
                        // The may-set is a fault-time snapshot, so it can
                        // miss lines endangered *after* every snapshot — an
                        // owner whose flush writeback was lost and that was
                        // then shut down cleanly as part of its doomed cell.
                        // Marking is over-marking only if the latest
                        // committed version actually survives somewhere
                        // (home memory or a live cache); data that exists
                        // nowhere is legitimately incoherent.
                        let expected = self.oracle.expected_version(line);
                        let latest_available = node.dir.mem_version(line) == expected
                            || cached.contains(&(line, expected));
                        if !self.oracle.may_be_incoherent(line)
                            && !lost_in_transit.contains(&line)
                            && latest_available
                        {
                            report.overmarked.push(line);
                        }
                    }
                    _ => {
                        let effective = dirty
                            .get(&line)
                            .copied()
                            .unwrap_or(node.dir.mem_version(line));
                        if effective != self.oracle.expected_version(line) {
                            // A stale line whose sole copy is in the drop
                            // log is detectably lost, not silent: the home
                            // never serves memory while the directory still
                            // names an owner, so the next access NAKs into
                            // recovery and the line gets marked incoherent.
                            // Only directory states that refuse to serve
                            // memory directly qualify — a stale line the
                            // home believes clean is silent corruption
                            // regardless of what the drop log says.
                            // An owner that died holding the sole dirty
                            // copy is the same detectable case: the data is
                            // gone, but the home still names the dead owner
                            // and NAKs the next access into recovery. Only
                            // a machine that halts before that recovery
                            // leaves such entries behind.
                            let owner_dead = match state {
                                DirState::Exclusive(o)
                                | DirState::PendingRecall { owner: o, .. } => {
                                    self.failed_nodes.contains(o)
                                        || !self.nodes[o.index()].is_alive()
                                }
                                _ => false,
                            };
                            let guarded = matches!(
                                state,
                                DirState::Exclusive(_) | DirState::PendingRecall { .. }
                            );
                            if guarded && (owner_dead || lost_in_transit.contains(&line)) {
                                report.lost_in_transit.push(line);
                            } else {
                                report.corrupted.push(line);
                            }
                        }
                    }
                }
            }
        }
        report
    }
}
