use super::{Extension, Machine, NullExtension, ShardPlan};
use crate::fault::FaultSpec;
use crate::node::ProcState;
use crate::params::MachineParams;
use crate::workload::{ProcOp, RandomFill, Script, Workload};
use flash_coherence::{DirState, LineAddr, NodeSet};
use flash_net::NodeId;
use flash_sim::{RunOutcome, SimTime};

fn quiesce<X: Extension>(m: &mut Machine<X>) {
    m.run_until(SimTime::MAX);
}

fn tiny_machine(
    make: impl FnMut(NodeId) -> Box<dyn Workload>,
    seed: u64,
) -> Machine<NullExtension> {
    let mut m = Machine::new(MachineParams::tiny(), make, NullExtension, seed);
    m.start();
    m
}

#[test]
fn read_miss_roundtrip_installs_line() {
    let mut m = tiny_machine(
        |n| {
            if n == NodeId(0) {
                Box::new(Script::new([ProcOp::Read(LineAddr(100))]))
            } else {
                Box::new(Script::new([]))
            }
        },
        1,
    );
    quiesce(&mut m);
    assert!(m.st().nodes[0].cache.lookup(LineAddr(100)).is_some());
    // Home is node 0 (tiny: 8192 lines per node) — line 100 is local.
    assert_eq!(m.st().layout.home_of(LineAddr(100)), NodeId(0));
    assert!(m.now() > SimTime::ZERO);
}

#[test]
fn remote_write_creates_dirty_exclusive() {
    // Node 1 writes a line homed on node 0.
    let mut m = tiny_machine(
        |n| {
            if n == NodeId(1) {
                Box::new(Script::new([ProcOp::Write(LineAddr(200))]))
            } else {
                Box::new(Script::new([]))
            }
        },
        2,
    );
    quiesce(&mut m);
    let line = LineAddr(200);
    let cached = m.st().nodes[1].cache.lookup(line).expect("installed");
    assert!(cached.exclusive);
    assert_eq!(cached.version.0, 1);
    assert_eq!(
        m.st().nodes[0].dir.state(line),
        DirState::Exclusive(NodeId(1))
    );
    assert_eq!(m.st().oracle.expected_version(line).0, 1);
}

#[test]
fn read_write_sharing_transfers_data() {
    // Node 1 writes, node 2 then reads the same line: the recall path
    // must return version 1 to node 2.
    let mut m = tiny_machine(
        |n| match n.0 {
            1 => Box::new(Script::new([ProcOp::Write(LineAddr(300))])),
            2 => Box::new(Script::new([
                ProcOp::Compute(50_000), // let the write land first
                ProcOp::Read(LineAddr(300)),
            ])),
            _ => Box::new(Script::new([])),
        },
        3,
    );
    quiesce(&mut m);
    let line = LineAddr(300);
    let c2 = m.st().nodes[2].cache.lookup(line).expect("read installed");
    assert!(!c2.exclusive);
    assert_eq!(c2.version.0, 1);
    // Home memory was updated by the recall writeback.
    assert_eq!(m.st().nodes[0].dir.mem_version(line).0, 1);
    match m.st().nodes[0].dir.state(line) {
        DirState::Shared(s) => {
            assert!(s.contains(NodeId(1)) && s.contains(NodeId(2)));
        }
        other => panic!("expected shared, got {other:?}"),
    }
}

#[test]
fn write_invalidates_other_sharers() {
    let line = LineAddr(400);
    let mut m = tiny_machine(
        |n| match n.0 {
            1 => Box::new(Script::new([ProcOp::Read(line)])),
            2 => Box::new(Script::new([ProcOp::Read(line)])),
            3 => Box::new(Script::new([ProcOp::Compute(100_000), ProcOp::Write(line)])),
            _ => Box::new(Script::new([])),
        },
        4,
    );
    quiesce(&mut m);
    assert!(
        m.st().nodes[1].cache.lookup(line).is_none(),
        "sharer 1 invalidated"
    );
    assert!(
        m.st().nodes[2].cache.lookup(line).is_none(),
        "sharer 2 invalidated"
    );
    assert_eq!(
        m.st().nodes[0].dir.state(line),
        DirState::Exclusive(NodeId(3))
    );
    assert_eq!(m.st().oracle.expected_version(line).0, 1);
}

#[test]
fn random_fill_has_no_corruption_without_faults() {
    let params = MachineParams::tiny();
    let (layout, prot) = (params.layout(), params.protected_lines);
    let mut m = tiny_machine(
        move |_| Box::new(RandomFill::valid_system_range(200, 0.4, layout, prot)),
        5,
    );
    quiesce(&mut m);
    // Flush everything home via validation of memory versions: without
    // faults, dirty lines still live in caches, so validate() compares
    // memory versions — check instead that no bus errors occurred and
    // all ops completed.
    for node in &m.st().nodes {
        assert_eq!(node.bus_errors, 0);
        assert!(matches!(node.proc, ProcState::Halted));
    }
    assert_eq!(m.st().counters.get("bus_errors"), 0);
}

#[test]
fn uncached_io_roundtrip_is_exactly_once() {
    let mut m = tiny_machine(
        |n| {
            if n == NodeId(2) {
                Box::new(Script::new([
                    ProcOp::UncachedRead { dev: NodeId(0) },
                    ProcOp::UncachedWrite {
                        dev: NodeId(0),
                        value: 55,
                    },
                    ProcOp::UncachedRead { dev: NodeId(0) },
                ]))
            } else {
                Box::new(Script::new([]))
            }
        },
        6,
    );
    quiesce(&mut m);
    let dev = &m.st().nodes[0].io_dev;
    assert_eq!(dev.reads, 2);
    assert_eq!(dev.writes, 1);
    // First read returned 0, then write(55), then read returned 55.
    assert_eq!(dev.register(), 56);
}

#[test]
fn io_guard_denies_foreign_uncached() {
    let mut m = tiny_machine(
        |n| {
            if n == NodeId(3) {
                Box::new(Script::new([ProcOp::UncachedRead { dev: NodeId(0) }]))
            } else {
                Box::new(Script::new([]))
            }
        },
        7,
    );
    // Restrict node 0's device to node 0 only.
    m.st_mut().nodes[0]
        .io_guard
        .set_allowed(NodeSet::singleton(NodeId(0)));
    quiesce(&mut m);
    assert_eq!(m.st().nodes[3].bus_errors, 1);
    assert_eq!(m.st().counters.get("io_guard_denials"), 1);
    assert_eq!(m.st().nodes[0].io_dev.reads, 0, "device untouched");
}

#[test]
fn firewall_denies_unauthorized_exclusive_fetch() {
    let line = LineAddr(500);
    let mut m = tiny_machine(
        |n| {
            if n == NodeId(2) {
                Box::new(Script::new([ProcOp::Write(line)]))
            } else {
                Box::new(Script::new([]))
            }
        },
        8,
    );
    m.st_mut().nodes[0]
        .firewall
        .restrict(line.page(), NodeSet::singleton(NodeId(0)));
    quiesce(&mut m);
    assert_eq!(m.st().nodes[2].bus_errors, 1);
    assert_eq!(m.st().counters.get("firewall_denials"), 1);
    assert!(m.st().nodes[2].cache.lookup(line).is_none());
    // Reads are unaffected by the firewall.
    assert_eq!(m.st().nodes[0].dir.state(line), DirState::Uncached);
}

#[test]
fn range_check_bus_errors_wild_writes() {
    // The protected region is the top `protected_lines` of each node's
    // slice; tiny() => lines-per-node 8192, protected 64 => local index
    // 8191 is protected.
    let protected = LineAddr(8191);
    let mut m = tiny_machine(
        |n| {
            if n == NodeId(0) {
                Box::new(Script::new([
                    ProcOp::Write(protected),
                    ProcOp::Read(protected),
                ]))
            } else {
                Box::new(Script::new([]))
            }
        },
        9,
    );
    quiesce(&mut m);
    assert_eq!(m.st().nodes[0].bus_errors, 1, "write denied, read allowed");
}

#[test]
fn vector_range_accesses_stay_local() {
    // Node 2 reads line 3 (vector range): remapped into node 2's slice.
    let mut m = tiny_machine(
        |n| {
            if n == NodeId(2) {
                Box::new(Script::new([ProcOp::Read(LineAddr(3))]))
            } else {
                Box::new(Script::new([]))
            }
        },
        10,
    );
    quiesce(&mut m);
    let remapped = LineAddr(2 * 8192 + 3);
    assert!(m.st().nodes[2].cache.lookup(remapped).is_some());
    // Node 0's directory never saw the access.
    assert_eq!(m.st().nodes[0].dir.state(LineAddr(3)), DirState::Uncached);
}

#[test]
fn node_map_blocks_requests_to_failed_homes() {
    let line = LineAddr(3 * 8192 + 7); // homed on node 3
    let mut m = tiny_machine(
        |n| {
            if n == NodeId(0) {
                Box::new(Script::new([ProcOp::Read(line)]))
            } else {
                Box::new(Script::new([]))
            }
        },
        11,
    );
    m.st_mut().nodes[0].node_map.set_available(NodeId(3), false);
    quiesce(&mut m);
    assert_eq!(m.st().nodes[0].bus_errors, 1);
    assert_eq!(m.st().counters.get("node_map_bus_errors"), 1);
}

#[test]
fn dead_node_makes_requests_time_out() {
    let line = LineAddr(3 * 8192 + 7);
    let mut m = tiny_machine(
        |n| {
            if n == NodeId(0) {
                Box::new(Script::new([ProcOp::Compute(1_000), ProcOp::Read(line)]))
            } else {
                Box::new(Script::new([]))
            }
        },
        12,
    );
    m.schedule_fault(SimTime::from_nanos(500), FaultSpec::Node(NodeId(3)));
    quiesce(&mut m);
    // NullExtension just counts the trigger.
    assert_eq!(m.st().counters.get("timeout_triggers"), 1);
    assert_eq!(m.st().counters.get("ignored_triggers"), 1);
    assert!(m.st().failed_nodes.contains(NodeId(3)));
}

#[test]
fn infinite_loop_congests_but_triggers_timeout() {
    let line = LineAddr(8192 + 7); // homed on node 1
    let mut m = tiny_machine(
        |n| {
            if n == NodeId(0) {
                Box::new(Script::new([ProcOp::Compute(1_000), ProcOp::Read(line)]))
            } else {
                Box::new(Script::new([]))
            }
        },
        13,
    );
    m.schedule_fault(SimTime::from_nanos(500), FaultSpec::InfiniteLoop(NodeId(1)));
    quiesce(&mut m);
    assert_eq!(m.st().counters.get("timeout_triggers"), 1);
}

fn fill_machine(seed: u64, ops: u64) -> Machine<NullExtension> {
    let params = MachineParams::tiny();
    let (layout, prot) = (params.layout(), params.protected_lines);
    let mut m = Machine::new(
        params,
        move |_| Box::new(RandomFill::valid_system_range(ops, 0.4, layout, prot)),
        NullExtension,
        seed,
    );
    m.start();
    m
}

/// The sharded executor's acceptance contract: for a fixed region count,
/// the worker count never changes anything — clock, event count, merged
/// trace hash and counters are bit-identical between 1 and N workers.
#[test]
fn sharded_worker_count_is_invariant() {
    let run = |workers: usize| {
        let mut m = fill_machine(21, 150);
        let out = m.run_until_sharded(SimTime::MAX, ShardPlan::new(4, workers));
        assert_eq!(out, RunOutcome::Drained);
        (
            m.now(),
            m.events_processed(),
            m.st().obs.merged_hash(),
            m.st().counters.get("bus_errors"),
            m.st().oracle.written_lines(),
        )
    };
    let base = run(1);
    assert_ne!(base.1, 0);
    for workers in [2, 4] {
        assert_eq!(run(workers), base, "workers={workers}");
    }
}

/// A sharded run completes the same workload the serial engine does:
/// every processor halts, no spurious bus errors, and the oracle records
/// the same committed stores (same lines at the same final versions —
/// store counts per line are timing-independent).
#[test]
fn sharded_run_completes_like_serial() {
    let mut serial = fill_machine(22, 150);
    quiesce(&mut serial);
    let mut sharded = fill_machine(22, 150);
    let out = sharded.run_until_sharded(SimTime::MAX, ShardPlan::new(4, 2));
    assert_eq!(out, RunOutcome::Drained);
    for node in &sharded.st().nodes {
        assert_eq!(node.bus_errors, 0);
        assert!(matches!(node.proc, ProcState::Halted));
    }
    assert_eq!(
        sharded.st().oracle.written_lines(),
        serial.st().oracle.written_lines()
    );
}

/// Faults and triggers work under sharding: the fault itself is a global
/// event (serial leg), the resulting timeout trigger fires inside a
/// stretch and is deferred to the fold — and all of it stays worker-count
/// invariant.
#[test]
fn sharded_fault_handling_is_worker_invariant() {
    let run = |workers: usize| {
        let mut m = fill_machine(23, 120);
        m.schedule_fault(SimTime::from_nanos(40_000), FaultSpec::Node(NodeId(3)));
        m.run_until_sharded(SimTime::from_nanos(3_000_000), ShardPlan::new(4, workers));
        (
            m.now(),
            m.events_processed(),
            m.st().obs.merged_hash(),
            m.st().counters.get("timeout_triggers"),
            m.st().counters.get("ignored_triggers"),
        )
    };
    let base = run(1);
    assert!(base.3 > 0, "the dead home must cause timeouts");
    assert_eq!(base.3, base.4, "NullExtension counts every trigger");
    assert_eq!(run(2), base);
    assert_eq!(run(4), base);
}

/// A checkpoint taken between sharded stretches forks into runs that
/// replay bit-identically under any worker count.
#[test]
fn checkpoint_fork_replays_identically_under_sharding() {
    let mut m = fill_machine(24, 200);
    let out = m.run_until_sharded(SimTime::from_nanos(100_000), ShardPlan::new(4, 2));
    assert_eq!(out, RunOutcome::HorizonReached);
    let ck = m.checkpoint();
    let finish = |mut m: Machine<NullExtension>, workers: usize| {
        let out = m.run_until_sharded(SimTime::MAX, ShardPlan::new(4, workers));
        assert_eq!(out, RunOutcome::Drained);
        (m.now(), m.events_processed(), m.st().obs.merged_hash())
    };
    let a = finish(ck.fork(), 1);
    assert_eq!(a, finish(ck.fork(), 2));
    assert_eq!(a, finish(ck.fork(), 4));
    // The original continues identically too: the checkpoint did not
    // perturb it.
    assert_eq!(a, finish(m, 3));
}

/// The engine's event budget covers sharded stretches: the run stops
/// with `BudgetExhausted` near (within one window of) the budget.
#[test]
fn sharded_run_honors_event_budget() {
    let mut m = fill_machine(25, 500);
    m.set_event_budget(2_000);
    let out = m.run_until_sharded(SimTime::MAX, ShardPlan::new(4, 2));
    assert_eq!(out, RunOutcome::BudgetExhausted);
    assert!(m.events_processed() >= 2_000);
}

#[test]
fn deterministic_replay() {
    let run = |seed| {
        let params = MachineParams::tiny();
        let (layout, prot) = (params.layout(), params.protected_lines);
        let mut m = tiny_machine(
            move |_| Box::new(RandomFill::valid_system_range(100, 0.5, layout, prot)),
            seed,
        );
        quiesce(&mut m);
        (
            m.now(),
            m.events_processed(),
            m.st().counters.get("bus_errors"),
        )
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42).1, 0);
}
