//! The event dispatch loop: [`MachineWorld`] plugs the machine into the
//! simulation engine and delegates each event to its subsystem's handler
//! trait ([`NodeHandlers`] here, [`CohHandlers`](super::coh::CohHandlers)
//! and [`ProcHandlers`](super::proc::ProcHandlers) on the state, and
//! [`FaultHandlers`](super::inject::FaultHandlers) for injection).

use super::coh::CohHandlers;
use super::inject::FaultHandlers;
use super::proc::ProcHandlers;
use super::{Ev, Extension, MachineState};
use crate::node::{OutPkt, ProcState};
use crate::payload::Payload;
use flash_coherence::{CohMsg, LineAddr};
use flash_magic::Trigger;
use flash_net::{DeliveryNote, Lane, NetEv, NodeId, Packet, Route, SendError};
use flash_obs::{Domain, TraceEvent};
use flash_sim::{Scheduler, SimDuration, SimTime, World};

/// The [`World`] implementation: machine state + extension.
///
/// Also owns the scratch buffers the hot fabric path drains into, so a net
/// event or a pump burst performs no per-event allocation.
///
/// Cloning (for checkpoint/fork) copies the machine state, the extension
/// and the wake-coalescing table; the scratch buffers are always empty
/// between dispatches, so a clone taken between events is exact.
#[derive(Clone, Debug)]
pub struct MachineWorld<X: Extension> {
    /// Hardware state.
    pub st: MachineState<X::Msg>,
    /// The recovery extension.
    pub ext: X,
    pub(super) net_out: Vec<(SimDuration, NetEv)>,
    pub(super) deliveries: Vec<DeliveryNote>,
    /// Earliest pending [`Ev::NodeWake`] per node, used to coalesce wakes:
    /// a burst of deliveries to a busy controller needs one wake at its
    /// `busy_until`, not one per packet.
    pub(super) wake_at: Vec<Option<SimTime>>,
}

impl<X: Extension> MachineWorld<X> {
    /// Couples machine state to a recovery extension.
    pub fn new(st: MachineState<X::Msg>, ext: X) -> Self {
        let wake_at = vec![None; st.nodes.len()];
        MachineWorld {
            st,
            ext,
            net_out: Vec::new(),
            deliveries: Vec::new(),
            wake_at,
        }
    }

    /// Schedules a controller wake for node `n` at `t` unless an
    /// earlier-or-equal wake is already pending. `node_wake` re-arms itself
    /// while work remains, so one pending wake per node suffices.
    pub(super) fn wake_node(&mut self, n: u16, t: SimTime, sched: &mut Scheduler<'_, Ev<X::Ev>>) {
        match self.wake_at[n as usize] {
            Some(w) if w <= t => {}
            _ => {
                self.wake_at[n as usize] = Some(t);
                sched.at(t, Ev::NodeWake(n));
            }
        }
    }
}

impl<X: Extension> World for MachineWorld<X> {
    type Ev = Ev<X::Ev>;

    fn dispatch(&mut self, ev: Ev<X::Ev>, sched: &mut Scheduler<'_, Ev<X::Ev>>) {
        match ev {
            Ev::Net(e) => {
                debug_assert!(self.net_out.is_empty() && self.deliveries.is_empty());
                self.st.fabric.handle(
                    e,
                    sched.now(),
                    &mut self.net_out,
                    &mut self.deliveries,
                    &mut self.st.obs,
                );
                for (d, e) in self.net_out.drain(..) {
                    sched.after(d, Ev::Net(e));
                }
                let now = sched.now();
                let mut deliveries = std::mem::take(&mut self.deliveries);
                for note in deliveries.drain(..) {
                    let n = note.node.0;
                    // A busy controller can't look at the packet before
                    // `busy_until` anyway; aim the wake there directly.
                    let t = self.st.nodes[n as usize].occupancy.busy_until().max(now);
                    self.wake_node(n, t, sched);
                }
                self.deliveries = deliveries;
            }
            Ev::NodeWake(n) => self.node_wake(n, sched),
            Ev::ProcNext(n) => self.st.proc_next(n, sched),
            Ev::Timeout { node, epoch } => {
                let proc = self.st.nodes[node as usize].proc;
                let alive = self.st.nodes[node as usize].is_alive();
                let fire = match proc {
                    ProcState::WaitMiss { epoch: e, .. } => e == epoch,
                    ProcState::WaitUncached { epoch: e, .. } => e == epoch,
                    _ => false,
                };
                if fire && alive {
                    let line = match proc {
                        ProcState::WaitMiss { line, .. } => line,
                        _ => LineAddr(0),
                    };
                    let trig = Trigger::MemOpTimeout { line };
                    self.st.counters.incr("timeout_triggers");
                    self.st.obs.record(
                        Domain::Machine,
                        sched.now(),
                        TraceEvent::TriggerFired {
                            node,
                            trigger: trig.kind_str(),
                        },
                    );
                    self.ext.on_trigger(&mut self.st, NodeId(node), trig, sched);
                }
            }
            Ev::NakRetry { node, epoch } => {
                let proc = self.st.nodes[node as usize].proc;
                if !self.st.nodes[node as usize].is_alive() {
                    return;
                }
                if let ProcState::WaitMiss {
                    line,
                    write,
                    epoch: e,
                } = proc
                {
                    if e == epoch {
                        self.st.resend_miss(node, line, write, sched);
                    }
                }
            }
            Ev::Pump { node, lane } => self.pump(node, lane, sched),
            Ev::Fault(spec) => self.handle_fault(spec, sched),
            Ev::Heartbeat { victims } => {
                // A victim whose failure every live node's view still misses
                // has gone undetected: a surviving controller's missed-
                // heartbeat counter raises the trigger. The audit re-arms
                // until the extension accounts for every victim (a mid-
                // recovery trigger is absorbed; the next period re-checks).
                let unnoticed = victims.iter().any(|&v| {
                    self.st.failed_nodes.contains(NodeId(v))
                        && self.ext.unnoticed_failure(&self.st, NodeId(v))
                });
                if !unnoticed {
                    return;
                }
                let Some(observer) = self.st.nodes.iter().find(|n| n.is_alive()).map(|n| n.id)
                else {
                    return;
                };
                let trig = Trigger::HeartbeatTimeout;
                self.st.counters.incr("heartbeat_triggers");
                self.st.obs.record(
                    Domain::Machine,
                    sched.now(),
                    TraceEvent::TriggerFired {
                        node: observer.0,
                        trigger: trig.kind_str(),
                    },
                );
                self.ext.on_trigger(&mut self.st, observer, trig, sched);
                let period =
                    SimDuration::from_nanos(self.st.params.magic.heartbeat_timeout_ns.max(1));
                sched.after(period, Ev::Heartbeat { victims });
            }
            Ev::TriggerNow { node, trig } => {
                if self.st.nodes[node as usize].is_alive() {
                    self.st.obs.record(
                        Domain::Machine,
                        sched.now(),
                        TraceEvent::TriggerFired {
                            node,
                            trigger: trig.kind_str(),
                        },
                    );
                    self.ext.on_trigger(&mut self.st, NodeId(node), trig, sched);
                }
            }
            Ev::Ext(e) => self.ext.on_event(&mut self.st, e, sched),
        }
    }
}

/// Node-controller servicing: input-queue wakes, inbound packet dispatch
/// and the outbound pump. Lives on [`MachineWorld`] (not the bare state)
/// because truncated packets and recovery messages reach the extension.
pub(crate) trait NodeHandlers<X: Extension> {
    /// Services one input packet on a node controller, if idle and
    /// available.
    fn node_wake(&mut self, n: u16, sched: &mut Scheduler<'_, Ev<X::Ev>>);

    /// Dispatches one delivered packet to its payload's subsystem.
    fn process_packet(
        &mut self,
        n: u16,
        pkt: Packet<Payload<X::Msg>>,
        sched: &mut Scheduler<'_, Ev<X::Ev>>,
    );

    /// Drains a node's outbound lane queue into the fabric.
    fn pump(&mut self, n: u16, lane_idx: u8, sched: &mut Scheduler<'_, Ev<X::Ev>>);
}

impl<X: Extension> NodeHandlers<X> for MachineWorld<X> {
    fn node_wake(&mut self, n: u16, sched: &mut Scheduler<'_, Ev<X::Ev>>) {
        let now = sched.now();
        if self.wake_at[n as usize] == Some(now) {
            self.wake_at[n as usize] = None;
        }
        let busy_until = {
            let node = &self.st.nodes[n as usize];
            if !node.is_alive() {
                return;
            }
            if node.occupancy.idle_at(now) {
                None
            } else {
                Some(node.occupancy.busy_until())
            }
        };
        if let Some(busy_until) = busy_until {
            self.wake_node(n, busy_until, sched);
            return;
        }
        // Service priority: replies first (always sinkable), then requests,
        // then the recovery lanes.
        const PRIO: [Lane; 4] = [Lane::Reply, Lane::Request, Lane::Recovery0, Lane::Recovery1];
        let (pkt, more) = self.st.fabric.pop_input_prio(NodeId(n), &PRIO);
        let Some(pkt) = pkt else { return };
        self.process_packet(n, pkt, sched);
        // More input is waiting; wake again when the handler completes.
        if more {
            let busy_until = self.st.nodes[n as usize].occupancy.busy_until();
            self.wake_node(n, busy_until.max(now), sched);
        }
    }

    fn process_packet(
        &mut self,
        n: u16,
        pkt: Packet<Payload<X::Msg>>,
        sched: &mut Scheduler<'_, Ev<X::Ev>>,
    ) {
        let st = &mut self.st;
        let now = sched.now();
        let costs = st.params.magic.costs;
        // A truncated packet dispatches the error handler and triggers
        // recovery (paper, Sections 3.1 and 4.2); the payload is not
        // interpreted.
        if pkt.truncated {
            st.nodes[n as usize]
                .occupancy
                .occupy(now, SimDuration::from_nanos(costs.error_ns));
            st.counters.incr("truncated_dispatches");
            st.record_dispatch(n, "error", costs.error_ns, now);
            // A data-carrying coherence packet that was truncated names the
            // line whose data flits were lost; it can be marked directly.
            if let Payload::Coh(CohMsg::Put { line, .. } | CohMsg::Data { line, .. }) = pkt.payload
            {
                st.oracle.allow_incoherent(line);
                st.obs.record(
                    Domain::Coherence,
                    now,
                    TraceEvent::CohTransition {
                        node: n,
                        line: line.0,
                        what: "truncation_incoherent",
                    },
                );
            }
            self.ext
                .on_trigger(st, NodeId(n), Trigger::TruncatedPacket, sched);
            return;
        }
        match pkt.payload {
            Payload::Rec(msg) => {
                st.nodes[n as usize]
                    .occupancy
                    .occupy(now, SimDuration::from_nanos(costs.recovery_msg_ns));
                st.record_dispatch(n, "rec", costs.recovery_msg_ns, now);
                self.ext.on_recovery_msg(st, NodeId(n), pkt.src, msg, sched);
            }
            Payload::Coh(msg) => {
                // The handler's charged cost is only known after dispatch
                // (mode and firewall dependent); the occupancy accumulator
                // delta recovers it without touching the handlers.
                let handler = msg.kind_str();
                let before = st.nodes[n as usize].occupancy.busy_ns();
                st.process_coh(n, pkt.src, msg, sched);
                let cost_ns = st.nodes[n as usize].occupancy.busy_ns() - before;
                st.record_dispatch(n, handler, cost_ns, now);
            }
            Payload::Unc(msg) => {
                let before = st.nodes[n as usize].occupancy.busy_ns();
                st.process_unc(n, pkt.src, msg, sched);
                let cost_ns = st.nodes[n as usize].occupancy.busy_ns() - before;
                st.record_dispatch(n, "unc", cost_ns, now);
            }
        }
    }

    fn pump(&mut self, n: u16, lane_idx: u8, sched: &mut Scheduler<'_, Ev<X::Ev>>) {
        let now = sched.now();
        let lane = Lane::from_index(lane_idx as usize);
        loop {
            let head = {
                let node = &mut self.st.nodes[n as usize];
                if !node.is_alive() {
                    node.outbox[lane_idx as usize].clear();
                    node.pump_scheduled[lane_idx as usize] = false;
                    return;
                }
                match node.outbox[lane_idx as usize].pop_front() {
                    Some(head) => head,
                    None => {
                        node.pump_scheduled[lane_idx as usize] = false;
                        return;
                    }
                }
            };
            // The payload moves into the packet (no clone); on a full
            // injection queue the fabric hands the packet back and the
            // outbound entry is reassembled from it.
            let packet = match head.route {
                Some(hops) => {
                    Packet::source_routed(NodeId(n), head.dst, hops, lane, head.flits, head.payload)
                }
                None => Packet::table_routed(NodeId(n), head.dst, lane, head.flits, head.payload),
            };
            debug_assert!(self.net_out.is_empty());
            match self.st.fabric.try_send(
                NodeId(n),
                packet,
                now,
                &mut self.net_out,
                &mut self.st.obs,
            ) {
                Ok(_) => {
                    for (d, e) in self.net_out.drain(..) {
                        sched.after(d, Ev::Net(e));
                    }
                }
                Err(SendError::Full(pkt)) => {
                    // Injection queue full: put the packet back and retry
                    // later.
                    self.net_out.clear();
                    let route = match pkt.route {
                        Route::Source { hops, .. } => Some(hops),
                        Route::Table => None,
                    };
                    let head = OutPkt {
                        dst: pkt.dst,
                        payload: pkt.payload,
                        flits: pkt.flits,
                        lane,
                        route,
                    };
                    self.st.nodes[n as usize].outbox[lane_idx as usize].push_front(head);
                    sched.after(
                        SimDuration::from_nanos(self.st.params.net.retry_ns),
                        Ev::Pump {
                            node: n,
                            lane: lane_idx,
                        },
                    );
                    return;
                }
            }
        }
    }
}
