//! Per-node state: processor, cache, directory slice, node controller
//! features, I/O device and outbound packet queues.

use crate::params::MachineParams;
use crate::payload::Payload;
use crate::workload::{ProcOp, Workload};
use flash_coherence::{Directory, L2Cache, LineAddr, MemLayout};
use flash_magic::{
    Firewall, IoGuard, MagicMode, NakCounter, NodeMap, Occupancy, RangeCheck, UncachedUnit,
    VectorRemap,
};
use flash_net::{Lane, NodeId, SourceRoute};
use flash_sim::DetRng;
use std::collections::VecDeque;

/// A simple nonidempotent I/O device: each read returns and then increments
/// an internal register, so lost-and-retried operations are detectable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoDevice {
    reg: u64,
    /// Total reads serviced.
    pub reads: u64,
    /// Total writes serviced.
    pub writes: u64,
}

impl IoDevice {
    /// Services an uncached read (nonidempotent: bumps the register).
    pub fn read(&mut self) -> u64 {
        let v = self.reg;
        self.reg += 1;
        self.reads += 1;
        v
    }

    /// Services an uncached write.
    pub fn write(&mut self, value: u64) {
        self.reg = value;
        self.writes += 1;
    }

    /// The current register value (test/oracle access).
    pub fn register(&self) -> u64 {
        self.reg
    }
}

/// The blocking processor's execution state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcState {
    /// Between operations; a `ProcNext` event is (or will be) scheduled.
    Ready,
    /// Blocked on a cacheable miss.
    WaitMiss {
        /// The missing line.
        line: LineAddr,
        /// Whether the access is a store.
        write: bool,
        /// Epoch tag matching timeout/retry events to this very issue.
        epoch: u64,
    },
    /// Blocked on an uncached operation.
    WaitUncached {
        /// Request tag.
        tag: u64,
        /// Device node.
        dev: NodeId,
        /// Whether it is a write.
        write: bool,
        /// Epoch tag for timeout matching.
        epoch: u64,
    },
    /// The workload returned [`ProcOp::Halt`].
    Halted,
    /// Dropped into the recovery algorithm; normal execution suspended.
    InRecovery,
    /// The node is dead.
    Dead,
}

/// An outbound packet waiting in a node's per-lane output queue.
#[derive(Clone, Debug)]
pub struct OutPkt<R> {
    /// Destination node.
    pub dst: NodeId,
    /// Payload.
    pub payload: Payload<R>,
    /// Size in flits.
    pub flits: u32,
    /// Virtual lane.
    pub lane: Lane,
    /// Source route (recovery traffic, hops stored inline), or `None`
    /// for table routing.
    pub route: Option<SourceRoute>,
}

/// Everything living on one node of the machine.
///
/// Cloning a node (for checkpoint/fork) deep-copies the cache, directory,
/// controller units, workload cursor, RNG and outbound queues, so a forked
/// machine resumes from exactly this node's state.
#[derive(Clone, Debug)]
pub struct NodeCtx<R> {
    /// This node's id.
    pub id: NodeId,
    /// The processor's L2 cache.
    pub cache: L2Cache,
    /// The directory (and memory image) for lines homed here.
    pub dir: Directory,
    /// Node-availability table.
    pub node_map: NodeMap,
    /// Per-page write ACLs for memory homed here.
    pub firewall: Firewall,
    /// Protection of the node-controller memory region.
    pub range_check: RangeCheck,
    /// Exception-vector remap unit.
    pub remap: VectorRemap,
    /// Guard on uncached I/O from outside the failure unit.
    pub io_guard: IoGuard,
    /// The node's I/O device.
    pub io_dev: IoDevice,
    /// Hardware NAK counter for the outstanding operation.
    pub naks: NakCounter,
    /// Exactly-once uncached-operation unit.
    pub uncached: UncachedUnit,
    /// Protocol-processor occupancy.
    pub occupancy: Occupancy,
    /// Degraded home-memory range, when a `DegradedMemory` gray fault is
    /// armed on this node.
    pub degraded: Option<DegradedRange>,
    /// Controller operating mode.
    pub mode: MagicMode,
    /// Processor state.
    pub proc: ProcState,
    /// The operation currently being executed (retained for post-recovery
    /// reissue).
    pub current_op: Option<ProcOp>,
    /// Whether the outstanding miss is an incorrectly speculated write
    /// (its grant installs without a store commit; its faults are
    /// discarded by the processor).
    pub current_is_speculative: bool,
    /// Monotone counter tagging blocking issues (timeout/retry matching).
    pub op_epoch: u64,
    /// The workload driving this processor.
    pub workload: Box<dyn Workload>,
    /// Per-node deterministic RNG.
    pub rng: DetRng,
    /// Outbound queues, one per virtual lane.
    pub outbox: [VecDeque<OutPkt<R>>; Lane::COUNT],
    /// Whether a pump event is pending per lane.
    pub pump_scheduled: [bool; Lane::COUNT],
    /// Bus errors raised to this processor.
    pub bus_errors: u64,
    /// Saved uncached-read tag pending emulation at recovery resume.
    pub saved_unc_read: Option<u64>,
    /// Set when hardware recovery completed and the OS has not yet run its
    /// own recovery (the interrupt of paper Section 4.6).
    pub os_interrupt_pending: bool,
    /// Remote interventions (invalidations/recalls) that arrived while the
    /// grant for the same line was still in flight; honored when the data
    /// installs — the MSHR-style race buffer.
    pub pending_remote: std::collections::HashMap<flash_coherence::LineAddr, PendingRemote>,
    /// When the outstanding blocking operation was issued (latency stats).
    pub op_issued_at: flash_sim::SimTime,
    /// Miss-latency statistics: read misses, write misses, uncached ops.
    pub lat_read: flash_sim::LatencyHistogram,
    /// Write (exclusive-fetch) miss latencies.
    pub lat_write: flash_sim::LatencyHistogram,
    /// Uncached (I/O) round-trip latencies.
    pub lat_uncached: flash_sim::LatencyHistogram,
}

/// Gray-failure state of a `DegradedMemory` fault: the first `lines` lines
/// of the node's homed region are served from degraded DRAM — every access
/// costs `extra_ns` more MAGIC occupancy and every fourth request is
/// answered with a transient NAK (reads and ownership requests only, so no
/// writeback data is ever refused).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DegradedRange {
    /// Number of degraded lines at the start of the home region.
    pub lines: u64,
    /// Extra service latency charged per degraded access, ns.
    pub extra_ns: u64,
    /// Deterministic access counter driving the periodic NAKs.
    pub accesses: u64,
}

/// A buffered remote intervention (see [`NodeCtx::pending_remote`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PendingRemote {
    /// The home asked us to invalidate (ack already sent).
    Inval,
    /// The home asked us to write the line back.
    Fetch {
        /// Whether the waiting requester wants exclusivity.
        for_write: bool,
    },
}

impl<R> NodeCtx<R> {
    /// Builds a fresh node.
    pub fn new(
        id: NodeId,
        params: &MachineParams,
        layout: MemLayout,
        workload: Box<dyn Workload>,
        rng: DetRng,
    ) -> Self {
        NodeCtx {
            id,
            cache: L2Cache::new(params.l2_lines()),
            dir: Directory::new(id, layout),
            node_map: NodeMap::new(params.n_nodes),
            firewall: Firewall::new(id, layout, params.magic.firewall_enabled),
            range_check: RangeCheck::new(params.protected_lines, layout),
            remap: VectorRemap::new(id, layout),
            io_guard: IoGuard::permissive(params.n_nodes),
            io_dev: IoDevice::default(),
            naks: NakCounter::default(),
            uncached: UncachedUnit::new(),
            occupancy: Occupancy::new(),
            degraded: None,
            mode: MagicMode::Normal,
            proc: ProcState::Ready,
            current_op: None,
            current_is_speculative: false,
            op_epoch: 0,
            workload,
            rng,
            outbox: std::array::from_fn(|_| VecDeque::new()),
            pump_scheduled: [false; Lane::COUNT],
            bus_errors: 0,
            saved_unc_read: None,
            os_interrupt_pending: false,
            pending_remote: std::collections::HashMap::new(),
            op_issued_at: flash_sim::SimTime::ZERO,
            lat_read: flash_sim::LatencyHistogram::new(),
            lat_write: flash_sim::LatencyHistogram::new(),
            lat_uncached: flash_sim::LatencyHistogram::new(),
        }
    }

    /// Whether the node is operational (not dead and not spinning).
    pub fn is_alive(&self) -> bool {
        !matches!(self.mode, MagicMode::Dead | MagicMode::InfiniteLoop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Idle;

    #[test]
    fn io_device_is_nonidempotent() {
        let mut d = IoDevice::default();
        assert_eq!(d.read(), 0);
        assert_eq!(d.read(), 1);
        assert_eq!(d.reads, 2);
        d.write(100);
        assert_eq!(d.register(), 100);
        assert_eq!(d.read(), 100);
        assert_eq!(d.writes, 1);
    }

    #[test]
    fn node_starts_operational() {
        let params = MachineParams::tiny();
        let layout = params.layout();
        let n: NodeCtx<()> =
            NodeCtx::new(NodeId(1), &params, layout, Box::new(Idle), DetRng::new(1));
        assert!(n.is_alive());
        assert_eq!(n.proc, ProcState::Ready);
        assert_eq!(n.mode, MagicMode::Normal);
        assert_eq!(n.cache.capacity(), params.l2_lines());
        assert_eq!(n.dir.home(), NodeId(1));
    }
}
