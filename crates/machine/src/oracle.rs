//! The incoherence oracle: simulator-side ground truth used by the
//! validation experiments (paper, Section 5.2).
//!
//! The oracle tracks, outside the simulated machine, the latest committed
//! version of every line, and — at fault-injection time — the set of lines
//! that *may* legitimately become incoherent: lines dirty on a failed node,
//! lines in a transitional directory state, and lines whose only valid copy
//! was riding in an in-flight packet. After recovery the validation harness
//! checks that
//!
//! 1. every line the recovery algorithm marked incoherent is in the
//!    may-set (the algorithm "does not mark more lines as incoherent than
//!    necessary"), and
//! 2. every accessible line *not* marked incoherent holds the latest
//!    committed version (no silent data loss or corruption).

use flash_coherence::{LineAddr, Version};
use std::collections::{HashMap, HashSet};

/// The validation oracle. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct Oracle {
    expected: HashMap<LineAddr, Version>,
    may_incoherent: HashSet<LineAddr>,
    snapshotted: bool,
}

impl Oracle {
    /// Creates an oracle with no stores recorded (all lines at
    /// [`Version::INITIAL`]).
    pub fn new() -> Self {
        Oracle::default()
    }

    /// Records a committed store: `line` now has latest version `v`.
    pub fn record_store(&mut self, line: LineAddr, v: Version) {
        self.expected.insert(line, v);
    }

    /// The latest committed version of a line.
    pub fn expected_version(&self, line: LineAddr) -> Version {
        self.expected
            .get(&line)
            .copied()
            .unwrap_or(Version::INITIAL)
    }

    /// Adds a line to the may-become-incoherent set (called while the fault
    /// injector snapshots machine state).
    pub fn allow_incoherent(&mut self, line: LineAddr) {
        self.may_incoherent.insert(line);
    }

    /// Marks the snapshot as taken.
    pub fn finish_snapshot(&mut self) {
        self.snapshotted = true;
    }

    /// Whether a fault-time snapshot was taken.
    pub fn has_snapshot(&self) -> bool {
        self.snapshotted
    }

    /// Whether a line is allowed to be marked incoherent.
    pub fn may_be_incoherent(&self, line: LineAddr) -> bool {
        self.may_incoherent.contains(&line)
    }

    /// Size of the may-set.
    pub fn may_set_len(&self) -> usize {
        self.may_incoherent.len()
    }

    /// Number of lines with at least one committed store.
    pub fn written_lines(&self) -> usize {
        self.expected.len()
    }

    /// Clears the snapshot (for multi-fault experiments that re-snapshot at
    /// a second fault).
    pub fn reset_snapshot(&mut self) {
        self.may_incoherent.clear();
        self.snapshotted = false;
    }

    /// An empty delta oracle for a region replica of the sharded executor:
    /// no recorded stores or may-set entries of its own, but the same
    /// snapshot flag, so replica-side code observes the same phase. The
    /// delta is folded back with [`Oracle::merge_delta`].
    pub fn fork_delta(&self) -> Oracle {
        Oracle {
            expected: HashMap::new(),
            may_incoherent: HashSet::new(),
            snapshotted: self.snapshotted,
        }
    }

    /// Merges a replica's delta: the newest committed version wins per
    /// line (stores to a line all commit on its home node, so at most one
    /// replica writes it per stretch), the may-sets union, and the
    /// snapshot flag ORs.
    pub fn merge_delta(&mut self, delta: &Oracle) {
        for (&line, &v) in &delta.expected {
            let e = self.expected.entry(line).or_insert(v);
            if v > *e {
                *e = v;
            }
        }
        self.may_incoherent
            .extend(delta.may_incoherent.iter().copied());
        self.snapshotted |= delta.snapshotted;
    }
}

/// The outcome of a post-recovery validation check.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Lines marked incoherent although the oracle did not allow it
    /// (over-marking — a recovery bug).
    pub overmarked: Vec<LineAddr>,
    /// Accessible, unmarked lines holding a stale or wrong version
    /// (silent data corruption — the worst failure).
    pub corrupted: Vec<LineAddr>,
    /// Stale lines whose sole valid copy is sitting in the fabric's
    /// dropped-packet log and whose directory entry still names the
    /// (former) owner. Not silent corruption: the home never serves
    /// memory while the line looks exclusive, so the next access NAKs
    /// into recovery and the line is then marked incoherent. Runs ending
    /// before any such access land here instead of `corrupted`.
    pub lost_in_transit: Vec<LineAddr>,
    /// Lines checked in total.
    pub lines_checked: u64,
    /// Lines found marked incoherent.
    pub marked_incoherent: u64,
    /// Lines skipped because their home node failed (inaccessible).
    pub inaccessible: u64,
}

impl ValidationReport {
    /// Whether the run validates cleanly.
    pub fn passed(&self) -> bool {
        self.overmarked.is_empty() && self.corrupted.is_empty()
    }
}

impl std::fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "checked={} marked_incoherent={} inaccessible={} overmarked={} corrupted={} lost_in_transit={} => {}",
            self.lines_checked,
            self.marked_incoherent,
            self.inaccessible,
            self.overmarked.len(),
            self.corrupted.len(),
            self.lost_in_transit.len(),
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_latest_versions() {
        let mut o = Oracle::new();
        assert_eq!(o.expected_version(LineAddr(1)), Version::INITIAL);
        o.record_store(LineAddr(1), Version(3));
        o.record_store(LineAddr(1), Version(4));
        assert_eq!(o.expected_version(LineAddr(1)), Version(4));
        assert_eq!(o.written_lines(), 1);
    }

    #[test]
    fn may_set_membership() {
        let mut o = Oracle::new();
        assert!(!o.has_snapshot());
        o.allow_incoherent(LineAddr(9));
        o.finish_snapshot();
        assert!(o.has_snapshot());
        assert!(o.may_be_incoherent(LineAddr(9)));
        assert!(!o.may_be_incoherent(LineAddr(10)));
        assert_eq!(o.may_set_len(), 1);
        o.reset_snapshot();
        assert!(!o.has_snapshot());
        assert_eq!(o.may_set_len(), 0);
    }

    #[test]
    fn report_passes_only_when_clean() {
        let mut r = ValidationReport::default();
        assert!(r.passed());
        r.overmarked.push(LineAddr(1));
        assert!(!r.passed());
        let mut r = ValidationReport::default();
        r.corrupted.push(LineAddr(2));
        assert!(!r.passed());
        assert!(r.to_string().contains("FAIL"));
    }
}
