//! Machine-wide configuration.

use flash_coherence::MemLayout;
use flash_magic::MagicParams;
use flash_net::NetParams;

/// Which interconnect topology to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyKind {
    /// A roughly square 2D mesh (the paper's simulated configuration).
    Mesh2D,
    /// A binary hypercube (standing in for FLASH's fat hypercube).
    Hypercube,
}

/// Full configuration of a simulated machine, mirroring Table 5.1 of the
/// paper (8 × R4000 @ 200 MHz, 8 × MAGIC @ 100 MHz, 1–16 MB memory per node,
/// 1 MB L2) with every cost constant explicit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineParams {
    /// Number of nodes (one processor + one MAGIC + one router each).
    pub n_nodes: usize,
    /// Interconnect topology.
    pub topology: TopologyKind,
    /// Main memory per node, in megabytes.
    pub mem_mb_per_node: u64,
    /// Second-level cache size, in megabytes.
    pub l2_mb: f64,
    /// Interconnect parameters.
    pub net: NetParams,
    /// Node-controller parameters.
    pub magic: MagicParams,
    /// L2 hit service time, ns.
    pub l2_hit_ns: u64,
    /// Interval between consecutive processor operations (issue overhead), ns.
    pub proc_issue_ns: u64,
    /// Uncached instruction execution time during recovery (~2.5 MIPS on the
    /// R10000; the paper measured 390 ns on the RTL model), ns.
    pub uncached_instr_ns: u64,
    /// Lines at the top of each node's memory reserved for MAGIC code and
    /// protocol state, protected by the range check.
    pub protected_lines: u64,
    /// Whether stores to held shared copies use the 1-flit ownership
    /// upgrade instead of a full data refetch (ablation switch).
    pub upgrades_enabled: bool,
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams {
            n_nodes: 8,
            topology: TopologyKind::Mesh2D,
            mem_mb_per_node: 1,
            l2_mb: 1.0,
            net: NetParams::default(),
            magic: MagicParams::default(),
            l2_hit_ns: 10,
            proc_issue_ns: 5,
            uncached_instr_ns: 400,
            protected_lines: 64,
            upgrades_enabled: true,
        }
    }
}

impl MachineParams {
    /// A small configuration for fast unit/integration tests: 4 nodes, tiny
    /// memory and cache, short timeouts.
    pub fn tiny() -> Self {
        let mut p = MachineParams {
            n_nodes: 4,
            mem_mb_per_node: 1,
            ..MachineParams::default()
        };
        p.l2_mb = 1.0 / 128.0; // 64 lines
        p.magic.mem_op_timeout_ns = 50_000;
        p.magic.nak_threshold = 64;
        p
    }

    /// The paper's validation/end-to-end configuration (Table 5.1): 8 nodes.
    pub fn table_5_1() -> Self {
        MachineParams::default()
    }

    /// The memory layout implied by this configuration.
    pub fn layout(&self) -> MemLayout {
        MemLayout::with_node_mb(self.n_nodes, self.mem_mb_per_node)
    }

    /// L2 capacity in lines.
    pub fn l2_lines(&self) -> usize {
        (self.l2_mb * 1024.0 * 1024.0 / 128.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_5_1() {
        let p = MachineParams::table_5_1();
        assert_eq!(p.n_nodes, 8);
        assert_eq!(p.l2_mb, 1.0);
        assert!(p.mem_mb_per_node >= 1 && p.mem_mb_per_node <= 16);
    }

    #[test]
    fn layout_and_cache_sizes() {
        let p = MachineParams::default();
        assert_eq!(p.layout().num_nodes(), 8);
        assert_eq!(p.layout().lines_per_node(), 8192);
        assert_eq!(p.l2_lines(), 8192);
        assert_eq!(MachineParams::tiny().l2_lines(), 64);
    }
}
