//! Packet payloads: coherence, uncached I/O, and recovery traffic.

use flash_coherence::CohMsg;

/// An uncached (I/O) operation message. Uncached operations have
/// exactly-once semantics: they are never retried by the hardware (paper,
/// Sections 3.3 and 4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UncMsg {
    /// Uncached read of an I/O device register on the destination node.
    ReadReq {
        /// Caller-chosen tag matching the reply to the request.
        tag: u64,
    },
    /// Uncached write to an I/O device register.
    WriteReq {
        /// Matching tag.
        tag: u64,
        /// The written value.
        value: u64,
    },
    /// Reply to [`UncMsg::ReadReq`].
    ReadReply {
        /// Matching tag.
        tag: u64,
        /// The device register's value.
        value: u64,
    },
    /// Acknowledgment of [`UncMsg::WriteReq`].
    WriteAck {
        /// Matching tag.
        tag: u64,
    },
    /// The access was refused: it arrived from outside the device's failure
    /// unit ([`flash_magic::IoGuard`]); the requester takes a bus error.
    IoDenied {
        /// Matching tag.
        tag: u64,
    },
}

impl UncMsg {
    /// Packet size in flits.
    pub fn flits(&self) -> u32 {
        1
    }

    /// The tag correlating request and reply.
    pub fn tag(&self) -> u64 {
        match *self {
            UncMsg::ReadReq { tag }
            | UncMsg::WriteReq { tag, .. }
            | UncMsg::ReadReply { tag, .. }
            | UncMsg::WriteAck { tag }
            | UncMsg::IoDenied { tag } => tag,
        }
    }

    /// Whether this is a reply (travels on the reply lane).
    pub fn is_reply(&self) -> bool {
        matches!(
            self,
            UncMsg::ReadReply { .. } | UncMsg::WriteAck { .. } | UncMsg::IoDenied { .. }
        )
    }
}

/// The payload of every packet in the machine, generic over the recovery
/// message type `R` supplied by the recovery extension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload<R> {
    /// Cache-coherence protocol traffic.
    Coh(CohMsg),
    /// Uncached I/O traffic.
    Unc(UncMsg),
    /// Recovery-algorithm traffic (dedicated virtual lanes, source-routed).
    Rec(R),
}

impl<R> Payload<R> {
    /// Convenience predicate.
    pub fn is_recovery(&self) -> bool {
        matches!(self, Payload::Rec(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_coherence::LineAddr;

    #[test]
    fn tags_correlate() {
        assert_eq!(UncMsg::ReadReq { tag: 9 }.tag(), 9);
        assert_eq!(UncMsg::ReadReply { tag: 9, value: 1 }.tag(), 9);
        assert_eq!(UncMsg::WriteReq { tag: 3, value: 2 }.tag(), 3);
        assert_eq!(UncMsg::WriteAck { tag: 3 }.tag(), 3);
        assert_eq!(UncMsg::IoDenied { tag: 4 }.tag(), 4);
    }

    #[test]
    fn reply_classification() {
        assert!(!UncMsg::ReadReq { tag: 0 }.is_reply());
        assert!(!UncMsg::WriteReq { tag: 0, value: 0 }.is_reply());
        assert!(UncMsg::ReadReply { tag: 0, value: 0 }.is_reply());
        assert!(UncMsg::WriteAck { tag: 0 }.is_reply());
        assert!(UncMsg::IoDenied { tag: 0 }.is_reply());
    }

    #[test]
    fn payload_recovery_predicate() {
        let p: Payload<u8> = Payload::Rec(1);
        assert!(p.is_recovery());
        let p: Payload<u8> = Payload::Coh(CohMsg::Get { line: LineAddr(0) });
        assert!(!p.is_recovery());
        let p: Payload<u8> = Payload::Unc(UncMsg::ReadReq { tag: 0 });
        assert!(!p.is_recovery());
    }
}
