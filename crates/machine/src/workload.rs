//! Processor workloads: the operation streams driven through the machine.

use flash_coherence::LineAddr;
use flash_magic::BusError;
use flash_net::NodeId;
use flash_sim::{DetRng, SimTime};

/// One processor operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcOp {
    /// Cacheable load.
    Read(LineAddr),
    /// Cacheable store.
    Write(LineAddr),
    /// An incorrectly speculated store (paper, Section 3.3): the processor
    /// fetches the line exclusive but never commits data, and discards any
    /// resulting fault. A node failure can destroy data cached exclusive
    /// this way — which is what the firewall contains.
    SpeculativeWrite(LineAddr),
    /// Spin the CPU for the given number of nanoseconds.
    Compute(u64),
    /// Uncached read of an I/O device register on `dev`.
    UncachedRead {
        /// The device's node.
        dev: NodeId,
    },
    /// Uncached write to an I/O device register on `dev`.
    UncachedWrite {
        /// The device's node.
        dev: NodeId,
        /// Value to write.
        value: u64,
    },
    /// No more work.
    Halt,
}

/// How an operation finished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpResult {
    /// Completed normally. For uncached reads, carries the value read.
    Ok(Option<u64>),
    /// Terminated with a bus error.
    BusError(BusError),
}

/// A source of processor operations. Implementations must be deterministic
/// given the per-node RNG handed to [`Workload::next_op`].
///
/// Workloads must be cloneable ([`Workload::clone_box`]) so the machine can
/// be checkpointed: a checkpoint snapshots every workload's cursor (ops
/// remaining, results observed, internal counters) alongside the rest of the
/// machine, and a forked run resumes from exactly that cursor.
///
/// Workloads must be [`Send`] so the sharded executor can move region
/// replicas of the machine onto worker threads.
pub trait Workload: std::fmt::Debug + Send {
    /// Produces the next operation for `node`.
    fn next_op(&mut self, node: NodeId, rng: &mut DetRng) -> ProcOp;

    /// Time-aware variant of [`Workload::next_op`]: the machine calls this,
    /// passing the simulated issue time. The default delegates to
    /// `next_op`, so time-blind workloads implement only that. Open-loop
    /// workloads (request generators with a fixed arrival schedule)
    /// override this to compare `now` against their next arrival.
    fn next_op_at(&mut self, node: NodeId, now: SimTime, rng: &mut DetRng) -> ProcOp {
        let _ = now;
        self.next_op(node, rng)
    }

    /// Deep-copies the workload, cursor included (checkpoint support).
    fn clone_box(&self) -> Box<dyn Workload>;

    /// Observes the completion (or bus-erroring) of the previous operation.
    fn on_result(&mut self, _node: NodeId, _result: OpResult) {}

    /// Time-aware variant of [`Workload::on_result`]: the machine calls
    /// this, passing the simulated completion time. The default delegates
    /// to `on_result`. Latency-measuring workloads override this to
    /// compute `now - scheduled_arrival` per request.
    fn on_result_at(&mut self, node: NodeId, now: SimTime, result: OpResult) {
        let _ = now;
        self.on_result(node, result);
    }

    /// A monotone progress counter (completed operations); experiment
    /// harnesses poll this to decide when to inject faults.
    fn progress(&self) -> u64 {
        0
    }

    /// Downcasting hook so experiment harnesses can inspect concrete
    /// workload state after a run.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Mutable downcasting hook so experiment harnesses can update
    /// concrete workload state mid-run (e.g. installing a new replica
    /// placement into a serving workload after recovery).
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

impl Clone for Box<dyn Workload> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The cache-fill workload of the validation experiments (paper, Section
/// 5.2): every processor issues reads and writes to lines "chosen at random
/// from the range of valid system addresses", randomly shared or exclusive,
/// until it has filled a target number of cache lines; then it halts.
#[derive(Clone, Debug)]
pub struct RandomFill {
    ops_left: u64,
    write_fraction: f64,
    addr_lo: u64,
    addr_hi: u64,
    /// When set to `(lines_per_node, protected)`, addresses whose
    /// within-node index falls in the protected tail are re-drawn — the
    /// paper's "valid system addresses" exclude the MAGIC region.
    avoid_tail: Option<(u64, u64)>,
    /// Fraction of operations issued as incorrectly speculated writes to
    /// uniformly random addresses (models the R10000's wrong-path stores,
    /// Section 3.3).
    speculative_fraction: f64,
    bus_errors: u64,
    completed: u64,
}

impl RandomFill {
    /// Creates a fill of `ops` operations over global lines
    /// `[addr_lo, addr_hi)` with the given write fraction.
    ///
    /// # Panics
    ///
    /// Panics if the address range is empty or the fraction not in `[0,1]`.
    pub fn new(ops: u64, write_fraction: f64, addr_lo: u64, addr_hi: u64) -> Self {
        assert!(addr_lo < addr_hi, "empty address range");
        assert!((0.0..=1.0).contains(&write_fraction));
        RandomFill {
            ops_left: ops,
            write_fraction,
            addr_lo,
            addr_hi,
            avoid_tail: None,
            speculative_fraction: 0.0,
            bus_errors: 0,
            completed: 0,
        }
    }

    /// Enables incorrectly speculated writes at the given rate.
    pub fn with_speculation(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        self.speculative_fraction = fraction;
        self
    }

    /// Creates a fill over all valid system addresses of a machine:
    /// everything except the per-node MAGIC-protected tail.
    pub fn valid_system_range(
        ops: u64,
        write_fraction: f64,
        layout: flash_coherence::MemLayout,
        protected_lines: u64,
    ) -> Self {
        let mut w = RandomFill::new(ops, write_fraction, 0, layout.total_lines());
        w.avoid_tail = Some((layout.lines_per_node(), protected_lines));
        w
    }

    /// Operations completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Bus errors observed so far.
    pub fn bus_errors(&self) -> u64 {
        self.bus_errors
    }
}

impl Workload for RandomFill {
    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn progress(&self) -> u64 {
        self.completed
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn next_op(&mut self, _node: NodeId, rng: &mut DetRng) -> ProcOp {
        if self.ops_left == 0 {
            return ProcOp::Halt;
        }
        self.ops_left -= 1;
        if self.speculative_fraction > 0.0 && rng.chance(self.speculative_fraction) {
            // Wrong-path store to a fully arbitrary address — speculation
            // does not respect the valid-range discipline.
            let cand = rng.range_inclusive(self.addr_lo, self.addr_hi - 1);
            return ProcOp::SpeculativeWrite(LineAddr(cand));
        }
        let line = loop {
            let cand = rng.range_inclusive(self.addr_lo, self.addr_hi - 1);
            match self.avoid_tail {
                Some((lpn, protected)) if cand % lpn >= lpn - protected => continue,
                _ => break LineAddr(cand),
            }
        };
        if rng.chance(self.write_fraction) {
            ProcOp::Write(line)
        } else {
            ProcOp::Read(line)
        }
    }

    fn on_result(&mut self, _node: NodeId, result: OpResult) {
        self.completed += 1;
        if matches!(result, OpResult::BusError(_)) {
            self.bus_errors += 1;
        }
    }
}

/// A fixed, scripted operation sequence (used by tests and by the Hive task
/// model).
#[derive(Clone, Debug)]
pub struct Script {
    ops: std::collections::VecDeque<ProcOp>,
    results: Vec<OpResult>,
}

impl Script {
    /// Creates a script from a list of operations.
    pub fn new(ops: impl IntoIterator<Item = ProcOp>) -> Self {
        Script {
            ops: ops.into_iter().collect(),
            results: Vec::new(),
        }
    }

    /// Results observed so far, in completion order.
    pub fn results(&self) -> &[OpResult] {
        &self.results
    }

    /// Whether every scripted op has been issued.
    pub fn is_drained(&self) -> bool {
        self.ops.is_empty()
    }
}

impl Workload for Script {
    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn progress(&self) -> u64 {
        self.results.len() as u64
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn next_op(&mut self, _node: NodeId, _rng: &mut DetRng) -> ProcOp {
        self.ops.pop_front().unwrap_or(ProcOp::Halt)
    }

    fn on_result(&mut self, _node: NodeId, result: OpResult) {
        self.results.push(result);
    }
}

/// An idle workload: the processor halts immediately.
#[derive(Clone, Copy, Debug, Default)]
pub struct Idle;

impl Workload for Idle {
    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(*self)
    }

    fn next_op(&mut self, _node: NodeId, _rng: &mut DetRng) -> ProcOp {
        ProcOp::Halt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_fill_respects_range_and_count() {
        let mut w = RandomFill::new(100, 0.5, 10, 20);
        let mut rng = DetRng::new(1);
        let mut reads = 0;
        let mut writes = 0;
        for _ in 0..100 {
            match w.next_op(NodeId(0), &mut rng) {
                ProcOp::Read(l) => {
                    assert!((10..20).contains(&l.0));
                    reads += 1;
                }
                ProcOp::Write(l) => {
                    assert!((10..20).contains(&l.0));
                    writes += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(reads + writes, 100);
        assert!(writes > 20 && reads > 20, "roughly mixed");
        assert_eq!(w.next_op(NodeId(0), &mut rng), ProcOp::Halt);
    }

    #[test]
    fn random_fill_counts_results() {
        let mut w = RandomFill::new(1, 0.0, 0, 1);
        w.on_result(NodeId(0), OpResult::Ok(None));
        w.on_result(NodeId(0), OpResult::BusError(BusError::DeadHome));
        assert_eq!(w.completed(), 2);
        assert_eq!(w.bus_errors(), 1);
    }

    #[test]
    fn script_plays_in_order_then_halts() {
        let mut s = Script::new([ProcOp::Read(LineAddr(1)), ProcOp::Compute(50)]);
        let mut rng = DetRng::new(0);
        assert_eq!(s.next_op(NodeId(0), &mut rng), ProcOp::Read(LineAddr(1)));
        assert!(!s.is_drained());
        assert_eq!(s.next_op(NodeId(0), &mut rng), ProcOp::Compute(50));
        assert!(s.is_drained());
        assert_eq!(s.next_op(NodeId(0), &mut rng), ProcOp::Halt);
        s.on_result(NodeId(0), OpResult::Ok(None));
        assert_eq!(s.results().len(), 1);
    }

    #[test]
    fn idle_halts() {
        assert_eq!(Idle.next_op(NodeId(0), &mut DetRng::new(0)), ProcOp::Halt);
    }
}
