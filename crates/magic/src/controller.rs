//! The MAGIC node controller: dispatch, handler occupancy, failure
//! detection and the recovery-mode plumbing.
//!
//! MAGIC contains a statically scheduled dual-issue protocol processor that
//! executes *handlers* to service messages. We model it as a single-server
//! queueing station: each message occupies the controller for a
//! handler-specific number of nanoseconds ([`HandlerCosts`]). The
//! fault-containment checks (node map, incoherent-line check, range check,
//! remap, NAK counters, timeouts) are dedicated logic and add **zero**
//! occupancy, matching the paper's design goal of unaffected normal-mode
//! performance; only the firewall adds a small per-handler cost.

use flash_coherence::LineAddr;
use flash_sim::{SimDuration, SimTime};

/// Per-handler occupancy costs in nanoseconds (MAGIC runs at 100 MHz; the
/// remote-read handler is 24 dual-issue instructions, < 120 ns — paper,
/// Section 3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HandlerCosts {
    /// Home handler for a read request.
    pub get_ns: u64,
    /// Home handler for an exclusive request.
    pub getx_ns: u64,
    /// Extra cost of the firewall ACL check in write handlers, when enabled.
    pub firewall_check_ns: u64,
    /// Home handler for a writeback.
    pub put_ns: u64,
    /// Cache-side handler for an invalidation or recall.
    pub inval_ns: u64,
    /// Home handler for an invalidation acknowledgment.
    pub inval_ack_ns: u64,
    /// Cache-side handler for a data reply (fills the processor's cache).
    pub data_ns: u64,
    /// NAK / terminal-error handlers.
    pub nak_ns: u64,
    /// Uncached read/write service (I/O device access).
    pub uncached_ns: u64,
    /// Error handler dispatched on a truncated packet or node-map miss.
    pub error_ns: u64,
    /// Handler servicing a recovery-lane message (ping, state exchange...).
    pub recovery_msg_ns: u64,
    /// Per-line cost of the MAGIC directory-scan service used in recovery
    /// phase 4 (calibrated to Figure 5.6's memory-size scaling).
    pub dir_scan_per_line_ns: u64,
    /// DRAM access folded into data-carrying handlers.
    pub mem_access_ns: u64,
}

impl Default for HandlerCosts {
    fn default() -> Self {
        HandlerCosts {
            get_ns: 120,
            getx_ns: 120,
            firewall_check_ns: 8,
            put_ns: 100,
            inval_ns: 60,
            inval_ack_ns: 40,
            data_ns: 60,
            nak_ns: 40,
            uncached_ns: 100,
            error_ns: 100,
            recovery_msg_ns: 100,
            dir_scan_per_line_ns: 75,
            mem_access_ns: 140,
        }
    }
}

/// Controller-level parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MagicParams {
    /// Handler cost table.
    pub costs: HandlerCosts,
    /// Retries before a NAK counter overflows and triggers recovery.
    pub nak_threshold: u32,
    /// Memory-operation timeout: a request outstanding longer than this
    /// triggers recovery.
    pub mem_op_timeout_ns: u64,
    /// Delay before a NAK'd request is retried.
    pub nak_retry_ns: u64,
    /// MAGIC-to-MAGIC heartbeat period: a fail-stop failure that no
    /// outstanding memory operation would ever reference is still noticed
    /// within one period by a peer controller's missed-heartbeat counter
    /// (the paper's ping-timeout detection path, Section 4.2). Longer than
    /// `mem_op_timeout_ns` so traffic-driven detection wins when traffic
    /// exists.
    pub heartbeat_timeout_ns: u64,
    /// Whether the firewall is enabled (Table 6.1 ablation).
    pub firewall_enabled: bool,
}

impl Default for MagicParams {
    fn default() -> Self {
        MagicParams {
            costs: HandlerCosts::default(),
            nak_threshold: 4096,
            mem_op_timeout_ns: 100_000,
            nak_retry_ns: 200,
            heartbeat_timeout_ns: 150_000,
            firewall_enabled: true,
        }
    }
}

/// The operating mode of a node controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MagicMode {
    /// Normal operation: full protocol processing.
    Normal,
    /// Interconnect-recovery drain mode: incoming coherence requests are
    /// fielded (consumed) but generate no replies or invalidations (paper,
    /// Section 4.4).
    RecoveryDrain,
    /// Coherence-recovery mode: flush writebacks are absorbed via the
    /// recovery path; normal dispatch is suspended.
    Recovery,
    /// The controller is dead (node failure).
    Dead,
    /// Firmware spin: the controller stops accepting packets entirely (the
    /// "infinite loop in MAGIC handler" fault of Table 5.2).
    InfiniteLoop,
}

/// Why MAGIC raised a bus error to its processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BusError {
    /// The referenced line's home node is marked failed in the node map.
    DeadHome,
    /// The line is marked incoherent after a fault.
    Incoherent,
    /// The firewall denied an exclusive fetch.
    FirewallDenied,
    /// A write violated the node-controller range limit.
    RangeViolation,
    /// An uncached I/O access arrived from outside the local failure unit.
    ForeignUncachedIo,
    /// An uncached read outstanding across a recovery could not be resolved
    /// (neither its saved reply nor the device's failure unit survived).
    UncachedUnresolved,
}

impl BusError {
    /// Stable snake-case label, used by the observability layer.
    pub fn kind_str(&self) -> &'static str {
        match self {
            BusError::DeadHome => "dead_home",
            BusError::Incoherent => "incoherent",
            BusError::FirewallDenied => "firewall_denied",
            BusError::RangeViolation => "range_violation",
            BusError::ForeignUncachedIo => "foreign_uncached_io",
            BusError::UncachedUnresolved => "uncached_unresolved",
        }
    }
}

/// The events that trigger the hardware recovery algorithm (Table 4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// A memory operation timed out.
    MemOpTimeout {
        /// The line whose request timed out.
        line: LineAddr,
    },
    /// A request was NAK'd more times than the hardware counter allows.
    NakOverflow {
        /// The spinning line.
        line: LineAddr,
    },
    /// A MAGIC firmware assertion failed.
    AssertionFailure,
    /// A truncated interconnect packet was received.
    TruncatedPacket,
    /// A recovery ping arrived from a neighboring node (propagating the
    /// trigger wave).
    PingReceived,
    /// Recovery was triggered externally without any fault (the
    /// "false alarm" experiment of Table 5.2).
    FalseAlarm,
    /// A peer controller missed its periodic heartbeat: the detection path
    /// for failures that no outstanding memory operation references
    /// (Section 4.2's ping timeout).
    HeartbeatTimeout,
}

impl Trigger {
    /// Stable snake-case label, used by the observability layer.
    pub fn kind_str(&self) -> &'static str {
        match self {
            Trigger::MemOpTimeout { .. } => "mem_op_timeout",
            Trigger::NakOverflow { .. } => "nak_overflow",
            Trigger::AssertionFailure => "assertion_failure",
            Trigger::TruncatedPacket => "truncated_packet",
            Trigger::PingReceived => "ping_received",
            Trigger::FalseAlarm => "false_alarm",
            Trigger::HeartbeatTimeout => "heartbeat_timeout",
        }
    }
}

/// The hardware NAK counter in the processor interface: counts unsuccessful
/// retries of the current outstanding memory operation; overflow indicates
/// a coherence-protocol deadlock caused by a failure (paper, Section 4.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NakCounter {
    count: u32,
}

impl NakCounter {
    /// Resets the counter (called when a new operation is issued or the
    /// current one completes).
    pub fn reset(&mut self) {
        self.count = 0;
    }

    /// Records one NAK'd retry; returns `true` on overflow.
    pub fn record_nak(&mut self, threshold: u32) -> bool {
        self.count += 1;
        self.count >= threshold
    }

    /// Current retry count.
    pub fn count(&self) -> u32 {
        self.count
    }
}

/// Tracks the single outstanding cacheable operation of a blocking
/// processor, for timeout detection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutstandingOp {
    inner: Option<OpInfo>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct OpInfo {
    line: LineAddr,
    write: bool,
    issued_at: SimTime,
    deadline: SimTime,
    epoch: u64,
}

impl OutstandingOp {
    /// Records a newly issued operation, returning its timeout deadline and
    /// an epoch tag distinguishing it from reissues of the same line.
    pub fn issue(
        &mut self,
        line: LineAddr,
        write: bool,
        now: SimTime,
        timeout_ns: u64,
    ) -> (SimTime, u64) {
        let epoch = self.inner.map(|o| o.epoch + 1).unwrap_or(0);
        let deadline = now + SimDuration::from_nanos(timeout_ns);
        self.inner = Some(OpInfo {
            line,
            write,
            issued_at: now,
            deadline,
            epoch,
        });
        (deadline, epoch)
    }

    /// Completes (or aborts) the outstanding operation.
    pub fn complete(&mut self) {
        if let Some(o) = self.inner {
            // Keep the epoch so stale timeout events can be recognized.
            self.inner = Some(OpInfo {
                deadline: SimTime::MAX,
                ..o
            });
        }
    }

    /// Fully clears the tracker (recovery reissue path).
    pub fn clear(&mut self) {
        self.inner = None;
    }

    /// Whether the operation with tag `epoch` is still outstanding past its
    /// deadline at time `now` — the timeout-trigger test.
    pub fn timed_out(&self, epoch: u64, now: SimTime) -> Option<LineAddr> {
        let o = self.inner?;
        (o.epoch == epoch && now >= o.deadline).then_some(o.line)
    }

    /// The line of the outstanding operation, if any is pending.
    pub fn pending_line(&self) -> Option<(LineAddr, bool)> {
        let o = self.inner?;
        (o.deadline != SimTime::MAX).then_some((o.line, o.write))
    }
}

/// The single-server occupancy model of the protocol processor.
///
/// # Examples
///
/// ```
/// use flash_magic::Occupancy;
/// use flash_sim::{SimTime, SimDuration};
///
/// let mut occ = Occupancy::new();
/// let t0 = SimTime::from_nanos(100);
/// assert!(occ.idle_at(t0));
/// let done = occ.occupy(t0, SimDuration::from_nanos(120));
/// assert_eq!(done, SimTime::from_nanos(220));
/// assert!(!occ.idle_at(SimTime::from_nanos(150)));
/// assert!(occ.idle_at(done));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Occupancy {
    busy_until: SimTime,
    busy_ns: u64,
    services: u64,
    // Fail-slow (gray failure) service-time inflation: 0 or 1 = nominal
    // speed, k > 1 multiplies every handler cost by k.
    slow_factor: u32,
}

impl Occupancy {
    /// Creates an idle controller.
    pub fn new() -> Self {
        Occupancy::default()
    }

    /// Whether the controller is idle at `now`.
    pub fn idle_at(&self, now: SimTime) -> bool {
        now >= self.busy_until
    }

    /// Occupies the controller for `cost` starting at `max(now, busy_until)`
    /// and returns the completion time. Under a fail-slow fault
    /// ([`Occupancy::set_slowdown`]) the charged cost is inflated by the
    /// slowdown factor.
    pub fn occupy(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        let cost = if self.slow_factor > 1 {
            SimDuration::from_nanos(cost.as_nanos() * u64::from(self.slow_factor))
        } else {
            cost
        };
        let start = if now > self.busy_until {
            now
        } else {
            self.busy_until
        };
        self.busy_until = start + cost;
        self.busy_ns += cost.as_nanos();
        self.services += 1;
        self.busy_until
    }

    /// The time the controller becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total nanoseconds of occupancy charged so far (the utilization
    /// numerator reported by the observability layer).
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Number of handler services charged so far.
    pub fn services(&self) -> u64 {
        self.services
    }

    /// Arms (or, with `factor <= 1`, clears) the fail-slow service-time
    /// inflation: every subsequent handler cost is multiplied by `factor`.
    pub fn set_slowdown(&mut self, factor: u32) {
        self.slow_factor = factor;
    }

    /// The effective service-time multiplier (1 = nominal speed).
    pub fn slowdown(&self) -> u32 {
        self.slow_factor.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nak_counter_overflows_at_threshold() {
        let mut c = NakCounter::default();
        for _ in 0..9 {
            assert!(!c.record_nak(10));
        }
        assert!(c.record_nak(10));
        assert_eq!(c.count(), 10);
        c.reset();
        assert_eq!(c.count(), 0);
    }

    #[test]
    fn outstanding_op_times_out_only_if_still_pending() {
        let mut op = OutstandingOp::default();
        let t0 = SimTime::from_nanos(1_000);
        let (deadline, epoch) = op.issue(LineAddr(5), false, t0, 500);
        assert_eq!(deadline, SimTime::from_nanos(1_500));
        assert_eq!(op.pending_line(), Some((LineAddr(5), false)));
        // Not yet expired.
        assert_eq!(op.timed_out(epoch, SimTime::from_nanos(1_400)), None);
        // Expired and still pending: trigger.
        assert_eq!(op.timed_out(epoch, deadline), Some(LineAddr(5)));
        // Completed: stale timeout events are ignored.
        op.complete();
        assert_eq!(op.timed_out(epoch, SimTime::from_nanos(2_000)), None);
        assert_eq!(op.pending_line(), None);
    }

    #[test]
    fn reissued_op_gets_new_epoch() {
        let mut op = OutstandingOp::default();
        let (_, e0) = op.issue(LineAddr(1), true, SimTime::ZERO, 100);
        op.complete();
        let (_, e1) = op.issue(LineAddr(2), false, SimTime::from_nanos(50), 100);
        assert_ne!(e0, e1);
        // Old epoch's timeout no longer fires.
        assert_eq!(op.timed_out(e0, SimTime::from_nanos(10_000)), None);
        assert_eq!(
            op.timed_out(e1, SimTime::from_nanos(10_000)),
            Some(LineAddr(2))
        );
    }

    #[test]
    fn occupancy_serializes_handlers() {
        let mut occ = Occupancy::new();
        let d1 = occ.occupy(SimTime::from_nanos(0), SimDuration::from_nanos(120));
        let d2 = occ.occupy(SimTime::from_nanos(50), SimDuration::from_nanos(100));
        assert_eq!(d1, SimTime::from_nanos(120));
        assert_eq!(
            d2,
            SimTime::from_nanos(220),
            "second handler queues behind first"
        );
        // After going idle, the next handler starts at its arrival time.
        let d3 = occ.occupy(SimTime::from_nanos(500), SimDuration::from_nanos(10));
        assert_eq!(d3, SimTime::from_nanos(510));
        // Accumulated occupancy counts busy time, not idle gaps.
        assert_eq!(occ.busy_ns(), 230);
        assert_eq!(occ.services(), 3);
    }

    #[test]
    fn fail_slow_inflates_every_service() {
        let mut occ = Occupancy::new();
        assert_eq!(occ.slowdown(), 1);
        occ.occupy(SimTime::from_nanos(0), SimDuration::from_nanos(100));
        occ.set_slowdown(4);
        assert_eq!(occ.slowdown(), 4);
        let done = occ.occupy(SimTime::from_nanos(1_000), SimDuration::from_nanos(100));
        assert_eq!(done, SimTime::from_nanos(1_400), "cost multiplied by 4");
        assert_eq!(occ.busy_ns(), 100 + 400);
        // Clearing restores nominal speed.
        occ.set_slowdown(0);
        let done = occ.occupy(SimTime::from_nanos(2_000), SimDuration::from_nanos(100));
        assert_eq!(done, SimTime::from_nanos(2_100));
    }

    #[test]
    fn default_costs_match_paper_scale() {
        let c = HandlerCosts::default();
        assert!(
            c.get_ns <= 120,
            "remote read handler under 120ns (Section 3.1)"
        );
        // Firewall adds less than 7% of an inter-node write miss (~1us).
        assert!(c.firewall_check_ns * 100 < 7 * 1_000);
    }

    #[test]
    fn params_defaults() {
        let p = MagicParams::default();
        assert!(p.firewall_enabled);
        assert!(p.nak_threshold >= 1024);
        assert!(p.mem_op_timeout_ns >= 10_000);
    }
}
