//! The dedicated-logic fault-containment features of the node controller
//! (paper, Sections 3.1–3.3 and Table 6.1).
//!
//! All of these are implemented in MAGIC hardware interfaces or the dispatch
//! mechanism and add **no latency** to handlers during normal operation; the
//! one exception is the [`Firewall`], whose permission check adds a small
//! cost to the handlers servicing inter-cell writes (< 7 % of an inter-node
//! write miss — reproduced by the Table 6.1 bench).

use flash_coherence::{LineAddr, MemLayout, NodeSet, PageAddr, LINES_PER_PAGE};
use flash_net::NodeId;

/// The node map: a configurable hardware table recording the availability
/// of every node in the system. Each node checks its local map before
/// sending a request over the interconnect, so no new traffic is ever sent
/// to failed nodes; the recovery algorithm keeps the map up to date.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeMap {
    available: Vec<bool>,
}

impl NodeMap {
    /// Creates a map with all `n` nodes available.
    pub fn new(n: usize) -> Self {
        NodeMap {
            available: vec![true; n],
        }
    }

    /// Whether `node` is marked available.
    pub fn is_available(&self, node: NodeId) -> bool {
        self.available.get(node.index()).copied().unwrap_or(false)
    }

    /// Updates one node's availability.
    pub fn set_available(&mut self, node: NodeId, avail: bool) {
        self.available[node.index()] = avail;
    }

    /// Bulk-reprograms the map from the set of known-good nodes (the
    /// dissemination phase's `NState`).
    pub fn reprogram(&mut self, good: &NodeSet) {
        for (i, slot) in self.available.iter_mut().enumerate() {
            *slot = good.contains(NodeId(i as u16));
        }
    }

    /// Number of available nodes.
    pub fn available_count(&self) -> usize {
        self.available.iter().filter(|&&a| a).count()
    }
}

/// The firewall: a per-4KB-page access-control list restricting which nodes
/// may fetch lines of that page *exclusive* (i.e. write it). Protects a
/// cell's memory against wild writes and incorrectly speculated writes from
/// other cells (paper, Section 3.3).
#[derive(Clone, Debug)]
pub struct Firewall {
    /// ACLs for the pages homed on this node, indexed by local page number.
    /// `None` means the boot-time default (everyone may write).
    acls: Vec<Option<NodeSet>>,
    /// Base page of this node's memory slice.
    base_page: u64,
    enabled: bool,
}

impl Firewall {
    /// Creates the firewall for `home`'s memory slice. All pages start with
    /// the permissive boot default.
    ///
    /// # Panics
    ///
    /// Panics if the per-node memory is not page-aligned in lines.
    pub fn new(home: NodeId, layout: MemLayout, enabled: bool) -> Self {
        assert_eq!(
            layout.lines_per_node() % LINES_PER_PAGE,
            0,
            "node memory must be page-aligned"
        );
        let pages = (layout.lines_per_node() / LINES_PER_PAGE) as usize;
        let base_page = home.index() as u64 * layout.lines_per_node() / LINES_PER_PAGE;
        Firewall {
            acls: vec![None; pages],
            base_page,
            enabled,
        }
    }

    /// Whether firewall checks are active (the Table 6.1 ablation disables
    /// them to measure the overhead).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables checking.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    fn local(&self, page: PageAddr) -> Option<usize> {
        page.0
            .checked_sub(self.base_page)
            .map(|p| p as usize)
            .filter(|&p| p < self.acls.len())
    }

    /// Restricts write access for a page to the given nodes.
    ///
    /// # Panics
    ///
    /// Panics if the page is not homed on this node.
    pub fn restrict(&mut self, page: PageAddr, writers: NodeSet) {
        let i = self.local(page).expect("page not homed on this node");
        self.acls[i] = Some(writers);
    }

    /// Returns a page to the permissive boot default.
    ///
    /// # Panics
    ///
    /// Panics if the page is not homed on this node.
    pub fn open(&mut self, page: PageAddr) {
        let i = self.local(page).expect("page not homed on this node");
        self.acls[i] = None;
    }

    /// Checks whether `from` may fetch a line of `page` exclusive.
    /// Always true when disabled or when the page has no ACL installed.
    pub fn may_write(&self, page: PageAddr, from: NodeId) -> bool {
        if !self.enabled {
            return true;
        }
        match self.local(page).and_then(|i| self.acls[i].as_ref()) {
            Some(acl) => acl.contains(from),
            None => true,
        }
    }
}

/// The range check: a configurable range limit, implemented in dedicated
/// logic, that protects the region of local memory holding the node
/// controller's code, internal data structures and coherence protocol state.
/// Writes from any processor (including the local one) into the region are
/// terminated with a bus error; only the protocol processor itself may write
/// it (paper, Section 3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeCheck {
    /// Number of protected lines at the top of the node's local memory.
    protected_lines: u64,
    lines_per_node: u64,
}

impl RangeCheck {
    /// Creates a range check protecting the *last* `protected_lines` lines
    /// of each node's slice (where MAGIC's code and state live).
    pub fn new(protected_lines: u64, layout: MemLayout) -> Self {
        RangeCheck {
            protected_lines: protected_lines.min(layout.lines_per_node()),
            lines_per_node: layout.lines_per_node(),
        }
    }

    /// Whether a processor write to the line with this *local* index is
    /// permitted.
    pub fn write_allowed(&self, local_index: u64) -> bool {
        local_index < self.lines_per_node - self.protected_lines
    }

    /// Number of protected lines.
    pub fn protected_lines(&self) -> u64 {
        self.protected_lines
    }
}

/// The exception-vector remap: processor exception vectors live at a fixed
/// low physical address range; to avoid a single point of failure, every
/// node replicates that page and MAGIC remaps vector-range references to the
/// node-local replica (paper, Section 3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VectorRemap {
    node: NodeId,
    layout: MemLayout,
}

impl VectorRemap {
    /// Creates the remap unit for `node`.
    pub fn new(node: NodeId, layout: MemLayout) -> Self {
        VectorRemap { node, layout }
    }

    /// Remaps a reference: vector-range lines go to the node-local replica
    /// (same page offset within this node's own slice); everything else is
    /// unchanged.
    pub fn remap(&self, line: LineAddr) -> LineAddr {
        if self.layout.is_vector_range(line) {
            self.layout.line_of(self.node, line.0)
        } else {
            line
        }
    }
}

/// The per-node guard on uncached I/O accesses: MAGIC terminates with a bus
/// error any uncached access to local I/O devices arriving from outside the
/// local failure unit, forcing cross-cell I/O through the exactly-once RPC
/// path (paper, Section 3.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IoGuard {
    allowed: NodeSet,
}

impl IoGuard {
    /// Creates a guard admitting only the given nodes (typically the nodes
    /// of the local failure unit).
    pub fn new(allowed: NodeSet) -> Self {
        IoGuard { allowed }
    }

    /// Creates a guard admitting everyone (pre-Hive boot state).
    pub fn permissive(n_nodes: usize) -> Self {
        IoGuard {
            allowed: NodeSet::all_below(n_nodes),
        }
    }

    /// Whether `from` may issue uncached I/O here.
    pub fn allows(&self, from: NodeId) -> bool {
        self.allowed.contains(from)
    }

    /// Reconfigures the admitted set.
    pub fn set_allowed(&mut self, allowed: NodeSet) {
        self.allowed = allowed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> MemLayout {
        MemLayout::new(4, 128) // 4 pages per node
    }

    #[test]
    fn node_map_tracks_availability() {
        let mut m = NodeMap::new(4);
        assert!(m.is_available(NodeId(3)));
        assert_eq!(m.available_count(), 4);
        m.set_available(NodeId(3), false);
        assert!(!m.is_available(NodeId(3)));
        let good: NodeSet = [0u16, 1].iter().map(|&i| NodeId(i)).collect();
        m.reprogram(&good);
        assert_eq!(m.available_count(), 2);
        assert!(!m.is_available(NodeId(2)));
        // Out-of-range nodes read unavailable.
        assert!(!m.is_available(NodeId(99)));
    }

    #[test]
    fn firewall_defaults_open_then_restricts() {
        let mut fw = Firewall::new(NodeId(1), layout(), true);
        // Node 1's pages are 4..8.
        let page = PageAddr(5);
        assert!(fw.may_write(page, NodeId(3)));
        fw.restrict(page, NodeSet::singleton(NodeId(1)));
        assert!(fw.may_write(page, NodeId(1)));
        assert!(!fw.may_write(page, NodeId(3)));
        fw.open(page);
        assert!(fw.may_write(page, NodeId(3)));
    }

    #[test]
    fn firewall_disabled_allows_everything() {
        let mut fw = Firewall::new(NodeId(0), layout(), false);
        fw.restrict(PageAddr(0), NodeSet::new());
        assert!(fw.may_write(PageAddr(0), NodeId(3)));
        assert!(!fw.enabled());
        fw.set_enabled(true);
        assert!(!fw.may_write(PageAddr(0), NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "not homed on this node")]
    fn firewall_rejects_foreign_pages() {
        let mut fw = Firewall::new(NodeId(1), layout(), true);
        fw.restrict(PageAddr(0), NodeSet::new()); // page 0 belongs to node 0
    }

    #[test]
    fn range_check_protects_tail() {
        let rc = RangeCheck::new(16, layout());
        assert!(rc.write_allowed(0));
        assert!(rc.write_allowed(111));
        assert!(!rc.write_allowed(112));
        assert!(!rc.write_allowed(127));
        assert_eq!(rc.protected_lines(), 16);
    }

    #[test]
    fn range_check_clamps_to_node_size() {
        let rc = RangeCheck::new(10_000, layout());
        assert_eq!(rc.protected_lines(), 128);
        assert!(!rc.write_allowed(0));
    }

    #[test]
    fn vector_remap_localizes_first_page() {
        let l = layout();
        let r = VectorRemap::new(NodeId(2), l);
        // Line 5 is in the vector range: remapped into node 2's slice.
        assert_eq!(r.remap(LineAddr(5)), LineAddr(2 * 128 + 5));
        // Non-vector lines untouched.
        assert_eq!(r.remap(LineAddr(40)), LineAddr(40));
        // Node 0's remap is the identity on the vector range.
        let r0 = VectorRemap::new(NodeId(0), l);
        assert_eq!(r0.remap(LineAddr(5)), LineAddr(5));
    }

    #[test]
    fn io_guard_filters_foreign_uncached() {
        let mut g = IoGuard::new([NodeId(0), NodeId(1)].into_iter().collect());
        assert!(g.allows(NodeId(0)));
        assert!(!g.allows(NodeId(2)));
        g.set_allowed(NodeSet::singleton(NodeId(2)));
        assert!(g.allows(NodeId(2)));
        assert!(IoGuard::permissive(4).allows(NodeId(3)));
    }
}
