//! # flash-magic — the MAGIC-style programmable node controller
//!
//! Models the node controller of a FLASH-style cc-NUMA node: a protocol
//! processor servicing coherence messages with per-handler occupancy, plus
//! the dedicated-logic fault-containment features of Table 6.1 of the paper:
//!
//! | Feature | Type | Paper |
//! |---|---|---|
//! | node map | [`NodeMap`] | §3.1 |
//! | truncated-message handling | dispatch in `flash-machine` + [`Trigger::TruncatedPacket`] | §3.1 |
//! | exception-vector remap | [`VectorRemap`] | §3.2 |
//! | firewall | [`Firewall`] | §3.3 |
//! | range check | [`RangeCheck`] | §3.3 |
//! | uncached I/O guard | [`IoGuard`] | §3.3 |
//! | memory-operation timeouts | [`OutstandingOp`] | §4.2 |
//! | NAK counter overflow | [`NakCounter`] | §4.2 |
//! | exactly-once uncached ops | [`UncachedUnit`] | §4.2 |
//!
//! All features except the firewall are free at run time (dedicated logic or
//! checks placed in unused protocol-processor instruction slots); the
//! firewall's ACL check adds [`HandlerCosts::firewall_check_ns`] to handlers
//! servicing inter-cell writes, reproduced by the Table 6.1 benchmark.
//!
//! This crate holds the controller's *mechanisms*; the `flash-machine` crate
//! wires them to the interconnect, directory and processor models.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod controller;
mod features;
mod uncached;

pub use controller::{
    BusError, HandlerCosts, MagicMode, MagicParams, NakCounter, Occupancy, OutstandingOp, Trigger,
};
pub use features::{Firewall, IoGuard, NodeMap, RangeCheck, VectorRemap};
pub use uncached::{SavedRead, UncachedUnit};
