//! Exactly-once handling of uncached operations across recovery.
//!
//! Uncached reads and writes (I/O device accesses) are nonidempotent: they
//! must not be retried. When recovery initiation must unstall the processor,
//! a pending uncached read is NAK'd, but MAGIC allocates an internal buffer
//! to save the result when it (possibly) arrives from the network; before
//! resuming normal operation the recovery code emulates the read instruction
//! from the saved value and advances the program counter past it (paper,
//! Section 4.2).

use std::collections::HashMap;

/// State of one saved uncached read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SavedRead {
    /// The reply has not arrived (and never will if the device's failure
    /// unit went down entirely — in that case the whole cell is lost with
    /// it, per Section 3.3).
    Pending,
    /// The reply arrived and was captured.
    Arrived(u64),
}

/// The uncached-operation unit of a node controller.
///
/// # Examples
///
/// ```
/// use flash_magic::{UncachedUnit, SavedRead};
///
/// let mut u = UncachedUnit::new();
/// u.begin_read(7);
/// // Recovery initiates while the read is outstanding:
/// assert_eq!(u.on_recovery_initiation(), Some(7));
/// // The reply arrives late, during recovery:
/// assert!(u.deliver_late(7, 0xAB));
/// assert_eq!(u.take_saved(7), Some(SavedRead::Arrived(0xAB)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct UncachedUnit {
    /// Tag of the uncached read currently outstanding, if any.
    pending_read: Option<u64>,
    /// Reads saved across a recovery initiation.
    saved: HashMap<u64, SavedRead>,
}

impl UncachedUnit {
    /// Creates an idle unit.
    pub fn new() -> Self {
        UncachedUnit::default()
    }

    /// Records that an uncached read with `tag` was issued.
    ///
    /// # Panics
    ///
    /// Panics if another uncached read is already outstanding (the blocking
    /// processor model issues at most one).
    pub fn begin_read(&mut self, tag: u64) {
        assert!(
            self.pending_read.is_none(),
            "uncached read already outstanding"
        );
        self.pending_read = Some(tag);
    }

    /// Completes the outstanding read normally (reply arrived in normal
    /// operation). Returns whether the tag matched.
    pub fn complete_read(&mut self, tag: u64) -> bool {
        if self.pending_read == Some(tag) {
            self.pending_read = None;
            true
        } else {
            false
        }
    }

    /// Whether an uncached read is outstanding.
    pub fn has_pending_read(&self) -> bool {
        self.pending_read.is_some()
    }

    /// Called when recovery initiation unstalls the processor: the pending
    /// read (if any) is terminated toward the processor but a save buffer is
    /// allocated for its result. Returns the saved tag.
    pub fn on_recovery_initiation(&mut self) -> Option<u64> {
        let tag = self.pending_read.take()?;
        self.saved.insert(tag, SavedRead::Pending);
        Some(tag)
    }

    /// Delivers a late uncached-read reply into the save buffer. Returns
    /// `false` if no buffer was allocated for the tag (normal-path reply).
    pub fn deliver_late(&mut self, tag: u64, value: u64) -> bool {
        match self.saved.get_mut(&tag) {
            Some(slot) => {
                *slot = SavedRead::Arrived(value);
                true
            }
            None => false,
        }
    }

    /// Removes and returns the save-buffer state for `tag`, used when the
    /// recovery code emulates the read before resuming the processor.
    pub fn take_saved(&mut self, tag: u64) -> Option<SavedRead> {
        self.saved.remove(&tag)
    }

    /// Number of allocated save buffers.
    pub fn saved_count(&self) -> usize {
        self.saved.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_read_lifecycle() {
        let mut u = UncachedUnit::new();
        assert!(!u.has_pending_read());
        u.begin_read(1);
        assert!(u.has_pending_read());
        assert!(u.complete_read(1));
        assert!(!u.has_pending_read());
        assert!(!u.complete_read(1), "double completion rejected");
    }

    #[test]
    fn recovery_saves_pending_read() {
        let mut u = UncachedUnit::new();
        u.begin_read(42);
        assert_eq!(u.on_recovery_initiation(), Some(42));
        assert!(!u.has_pending_read());
        assert_eq!(u.saved_count(), 1);
        // The reply never arrives: emulation sees Pending.
        assert_eq!(u.take_saved(42), Some(SavedRead::Pending));
        assert_eq!(u.saved_count(), 0);
    }

    #[test]
    fn late_reply_is_captured() {
        let mut u = UncachedUnit::new();
        u.begin_read(9);
        u.on_recovery_initiation();
        assert!(u.deliver_late(9, 123));
        assert_eq!(u.take_saved(9), Some(SavedRead::Arrived(123)));
    }

    #[test]
    fn late_reply_without_buffer_is_flagged() {
        let mut u = UncachedUnit::new();
        assert!(!u.deliver_late(5, 1));
    }

    #[test]
    fn no_pending_read_saves_nothing() {
        let mut u = UncachedUnit::new();
        assert_eq!(u.on_recovery_initiation(), None);
        assert_eq!(u.saved_count(), 0);
    }

    #[test]
    #[should_panic(expected = "already outstanding")]
    fn double_begin_panics() {
        let mut u = UncachedUnit::new();
        u.begin_read(1);
        u.begin_read(2);
    }
}
