//! The interconnect fabric: routers, virtual-lane queues, flow control and
//! failure behaviour.
//!
//! The fabric is an event-driven model of a CrayLink-style network:
//!
//! * **Store-and-forward with reservation** — a packet moves from the head
//!   of one queue to the next only after reserving space downstream, so a
//!   full queue exerts backpressure upstream. A node controller that stops
//!   accepting packets (the "infinite loop" fault) therefore congests the
//!   network exactly as described in Section 3.1 of the paper.
//! * **Virtual lanes** — four lanes with separate queues: coherence requests
//!   and replies plus two lanes dedicated to recovery traffic, so recovery
//!   messages are never stuck behind backed-up coherence traffic.
//! * **Reliability in normal operation** — no packet is ever lost or
//!   corrupted while all components function.
//! * **Failure semantics** — failed links are black holes that silently sink
//!   traffic; a packet caught mid-link at failure time is delivered
//!   *truncated* (header intact, data flits lost); failed routers sink all
//!   buffered and arriving packets; failed (dead) nodes discard deliveries.
//! * **Source routing with stall-discard** — source-routed packets whose
//!   head-of-queue wait exceeds a bound are discarded by the router,
//!   guaranteeing that the recovery lanes cannot clog (Section 4.1).

use crate::graph::UGraph;
use crate::ids::{Lane, LinkId, NodeId, PacketId, RouterId};
use crate::packet::{Packet, Route};
use crate::region::RegionMap;
use crate::routing::{Hop, RoutingTables};
use crate::slab::{PacketMeta, PacketSlab};
use crate::topology::Topology;
use flash_obs::{Domain, Recorder, TraceEvent};
use flash_sim::{Counters, DetRng, SimDuration, SimTime};
use std::collections::VecDeque;

/// Timing and sizing parameters of the interconnect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetParams {
    /// Fixed per-hop router latency, ns.
    pub hop_latency_ns: u64,
    /// Serialization time per 16-byte flit, ns.
    pub flit_ns: u64,
    /// Node-to-router injection latency, ns.
    pub inject_ns: u64,
    /// Polling interval for blocked queue heads, ns.
    pub retry_ns: u64,
    /// Stall bound after which a blocked *source-routed* head packet is
    /// discarded by the router.
    pub stall_timeout_ns: u64,
    /// Capacity of each router output queue, in flits.
    pub out_queue_flits: u32,
    /// Capacity of each node input (ejection) queue, in flits.
    pub node_in_flits: u32,
    /// Capacity of each node output (injection) queue, in flits.
    pub node_out_flits: u32,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            hop_latency_ns: 40,
            flit_ns: 10,
            inject_ns: 10,
            retry_ns: 100,
            stall_timeout_ns: 4_000,
            out_queue_flits: 64,
            node_in_flits: 256,
            node_out_flits: 64,
        }
    }
}

/// Events internal to the fabric; the embedding machine wraps these in its
/// global event type and feeds them back into [`Fabric::handle`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetEv {
    /// Attempt to move the head packet of a queue.
    TryMove(QueueRef, Lane),
    /// A transit (link crossing or injection) completed.
    Arrived(QueueRef, Lane),
}

/// Identifies one packet queue in the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueRef {
    /// Router `router`'s output queue toward its `nbr`-th neighbor.
    Out {
        /// Router index.
        router: u16,
        /// Neighbor (port) index within the router's adjacency list.
        nbr: u8,
    },
    /// Node `node`'s injection queue.
    Inj {
        /// Node index.
        node: u16,
    },
}

/// Notification that a packet has been placed into a node's input queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveryNote {
    /// Receiving node.
    pub node: NodeId,
    /// Lane the packet arrived on.
    pub lane: Lane,
}

/// Result of a link-level probe issued during recovery initiation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkProbe {
    /// Link and far-end router both respond.
    Alive,
    /// The link itself is dead (no response at the physical layer).
    LinkDead,
    /// The link responds but the far-end router is dead.
    RouterDead,
    /// No such neighbor.
    NoSuchLink,
}

/// Error returned when a packet cannot be accepted for injection.
#[derive(Debug, PartialEq, Eq)]
pub enum SendError<P> {
    /// The node's injection queue is full; the packet is handed back so the
    /// caller can retry later (node controllers stall in this case).
    Full(Packet<P>),
}

impl<P: std::fmt::Debug> std::fmt::Display for SendError<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::Full(p) => write!(f, "injection queue full for packet {:?}", p.id),
        }
    }
}

impl<P: std::fmt::Debug> std::error::Error for SendError<P> {}

/// Where a transiting packet will be placed on arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Target {
    /// Into a node's input queue.
    Node(NodeId),
    /// Into a router output queue.
    Queue { router: u16, nbr: u8 },
    /// Dropped (with the given counter name).
    Sink(&'static str),
}

/// A neighbor entry in a router's adjacency list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Nbr {
    /// The neighboring router.
    pub router: RouterId,
    /// The connecting link.
    pub link: LinkId,
}

#[derive(Clone, Debug)]
struct Transit {
    send_time: SimTime,
    target: Target,
}

/// Region-mode configuration of a fabric replica: which region of the
/// [`RegionMap`] this replica owns.
#[derive(Clone, Debug)]
struct RegionCfg {
    map: RegionMap,
    my: u16,
}

/// A packet crossing a region boundary, emitted by the owning replica's
/// [`Fabric::arrived`] and applied by the destination replica via
/// [`Fabric::apply_boundary_hop`] at the next shard barrier.
///
/// The hop carries the packet together with its slab bookkeeping
/// ([`PacketMeta`]): the source replica retires the packet from its slab
/// on emission, and the destination re-interns it under a fresh id, so
/// accumulated link crossings and the injection timestamp survive the
/// handoff.
#[derive(Clone, Debug)]
pub struct BoundaryHop<P> {
    at: SimTime,
    lane: Lane,
    target: Target,
    pkt: Packet<P>,
    meta: PacketMeta,
}

impl<P> BoundaryHop<P> {
    /// The physical arrival time at the boundary router, on the source
    /// region's clock. The destination applies the hop at the shard
    /// barrier that closes the window containing this time, a bounded
    /// skew of at most one lookahead window.
    pub fn at(&self) -> SimTime {
        self.at
    }
}

#[derive(Clone, Debug)]
struct OutQueue<P> {
    q: VecDeque<Packet<P>>,
    flits: u32,
    reserved: u32,
    in_transit: Option<Transit>,
    head_since: SimTime,
}

impl<P> OutQueue<P> {
    fn new() -> Self {
        OutQueue {
            q: VecDeque::new(),
            flits: 0,
            reserved: 0,
            in_transit: None,
            head_since: SimTime::ZERO,
        }
    }

    fn has_space(&self, flits: u32, cap: u32) -> bool {
        self.flits + self.reserved + flits <= cap
    }
}

#[derive(Clone, Debug)]
struct InQueue<P> {
    q: VecDeque<Packet<P>>,
    flits: u32,
    reserved: u32,
    sink: bool,
}

impl<P> InQueue<P> {
    fn new() -> Self {
        InQueue {
            q: VecDeque::new(),
            flits: 0,
            reserved: 0,
            sink: false,
        }
    }
}

/// The interconnect fabric. See the module documentation for the model.
///
/// The fabric does not own an event loop; the embedding machine forwards
/// [`NetEv`]s into [`Fabric::handle`] and schedules the `(delay, NetEv)`
/// pairs the fabric pushes into its `out` argument.
///
/// Cloning a `Fabric` (for checkpoint/fork) deep-copies every queue, the
/// packet slab and all failure state, so a clone evolves identically to
/// the original under the same event sequence.
#[derive(Clone, Debug)]
pub struct Fabric<P> {
    params: NetParams,
    n_routers: usize,
    n_nodes: usize,
    adj: Vec<Vec<Nbr>>,
    link_failed: Vec<Option<SimTime>>,
    // Gray-failure state: per-link drop probability in parts per million
    // (0 = reliable), and the dedicated deterministic RNG that decides
    // per-packet drops. The RNG is consulted only when a crossing is over a
    // lossy link, so fault-free runs draw nothing from it.
    link_loss_ppm: Vec<u32>,
    loss_rng: DetRng,
    router_failed: Vec<Option<SimTime>>,
    tables: RoutingTables,
    out_queues: Vec<Vec<[OutQueue<P>; Lane::COUNT]>>,
    inj_queues: Vec<[OutQueue<P>; Lane::COUNT]>,
    node_in: Vec<[InQueue<P>; Lane::COUNT]>,
    slab: PacketSlab,
    in_flight_coherence: i64,
    last_coherence_delivery: Vec<SimTime>,
    counters: Counters,
    graph: UGraph,
    dropped: Vec<Packet<P>>,
    // Region mode (intra-run sharding): when set, this fabric is one
    // region's replica. Queues owned by other regions are stale clones
    // used only for advisory flow-control checks; packets landing on a
    // foreign router are pushed into `boundary_out` instead of placed.
    region: Option<RegionCfg>,
    boundary_out: Vec<(u16, BoundaryHop<P>)>,
}

impl<P: std::fmt::Debug> Fabric<P> {
    /// Builds a fabric over `topo` with the topology's initial routing
    /// tables installed.
    pub fn new(topo: &dyn Topology, params: NetParams) -> Self {
        let n_routers = topo.num_routers();
        let n_nodes = topo.num_nodes();
        let links = topo.links();
        let mut adj: Vec<Vec<Nbr>> = vec![Vec::new(); n_routers];
        for (i, l) in links.iter().enumerate() {
            adj[l.a.index()].push(Nbr {
                router: l.b,
                link: LinkId(i as u32),
            });
            adj[l.b.index()].push(Nbr {
                router: l.a,
                link: LinkId(i as u32),
            });
        }
        for list in &mut adj {
            list.sort_by_key(|n| n.router);
        }
        let out_queues = (0..n_routers)
            .map(|r| {
                (0..adj[r].len())
                    .map(|_| std::array::from_fn(|_| OutQueue::new()))
                    .collect()
            })
            .collect();
        let graph = UGraph::from_edges(n_routers, links.iter().map(|l| (l.a.0, l.b.0)));
        Fabric {
            params,
            n_routers,
            n_nodes,
            adj,
            link_failed: vec![None; links.len()],
            link_loss_ppm: vec![0; links.len()],
            loss_rng: DetRng::new(0xF055_11AE),
            router_failed: vec![None; n_routers],
            tables: topo.initial_tables(),
            out_queues,
            inj_queues: (0..n_nodes)
                .map(|_| std::array::from_fn(|_| OutQueue::new()))
                .collect(),
            node_in: (0..n_nodes)
                .map(|_| std::array::from_fn(|_| InQueue::new()))
                .collect(),
            slab: PacketSlab::default(),
            in_flight_coherence: 0,
            last_coherence_delivery: vec![SimTime::ZERO; n_nodes],
            counters: Counters::new(),
            graph,
            dropped: Vec::new(),
            region: None,
            boundary_out: Vec::new(),
        }
    }

    /// The network parameters.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.n_routers
    }

    /// The full (design-time) connectivity graph, failures ignored.
    pub fn design_graph(&self) -> &UGraph {
        &self.graph
    }

    /// The neighbor list of a router (ports in ascending neighbor order).
    pub fn neighbors(&self, r: RouterId) -> &[Nbr] {
        &self.adj[r.index()]
    }

    /// Injects a packet, assigning it a fresh id.
    ///
    /// # Errors
    ///
    /// Returns [`SendError::Full`] (handing the packet back) if the node's
    /// injection queue has no space; the caller should retry later.
    pub fn try_send(
        &mut self,
        node: NodeId,
        mut pkt: Packet<P>,
        now: SimTime,
        out: &mut Vec<(SimDuration, NetEv)>,
        obs: &mut Recorder,
    ) -> Result<PacketId, SendError<P>> {
        let lane = pkt.lane;
        let q = &mut self.inj_queues[node.index()][lane.index()];
        if !q.has_space(pkt.flits, self.params.node_out_flits) {
            self.counters.incr("inject_full");
            return Err(SendError::Full(pkt));
        }
        pkt.id = self.slab.alloc(now);
        let id = pkt.id;
        if lane.is_coherence() {
            self.in_flight_coherence += 1;
        }
        q.flits += pkt.flits;
        let newly_head = q.q.is_empty();
        let (dst, flits) = (pkt.dst, pkt.flits);
        q.q.push_back(pkt);
        self.counters.incr("packets_sent");
        obs.record(
            Domain::Net,
            now,
            TraceEvent::PacketSent {
                src: node.0,
                dst: dst.0,
                lane: lane.index() as u8,
                flits,
            },
        );
        // Only an idle queue needs a kick: a non-empty queue already has a
        // TryMove/Arrived chain in flight that will reach this packet.
        if newly_head {
            obs.metrics.incr("net_trymove_kicks");
            q.head_since = now;
            out.push((
                SimDuration::ZERO,
                NetEv::TryMove(QueueRef::Inj { node: node.0 }, lane),
            ));
        } else {
            obs.metrics.incr("net_trymove_coalesced");
        }
        Ok(id)
    }

    /// Handles one fabric event, pushing follow-up events into `out` and
    /// node-delivery notifications into `delivered`.
    pub fn handle(
        &mut self,
        ev: NetEv,
        now: SimTime,
        out: &mut Vec<(SimDuration, NetEv)>,
        delivered: &mut Vec<DeliveryNote>,
        obs: &mut Recorder,
    ) {
        if let Some(cfg) = &self.region {
            let (NetEv::TryMove(qr, _) | NetEv::Arrived(qr, _)) = ev;
            debug_assert_eq!(
                cfg.map.of_queue(qr),
                cfg.my,
                "fabric event {ev:?} routed to the wrong region replica"
            );
        }
        match ev {
            NetEv::TryMove(qr, lane) => self.try_move(qr, lane, now, out, obs),
            NetEv::Arrived(qr, lane) => self.arrived(qr, lane, now, out, delivered, obs),
        }
    }

    /// Pops the next input packet for a node on the given lane, freeing
    /// ejection-queue space. Returns `None` when the queue is empty.
    pub fn pop_input(&mut self, node: NodeId, lane: Lane) -> Option<Packet<P>> {
        let q = &mut self.node_in[node.index()][lane.index()];
        let pkt = q.q.pop_front()?;
        q.flits -= pkt.flits;
        Some(pkt)
    }

    /// Number of packets waiting in a node's input queue on `lane`.
    pub fn input_len(&self, node: NodeId, lane: Lane) -> usize {
        self.node_in[node.index()][lane.index()].q.len()
    }

    /// Pops the next input packet in `prio` order (one pass over the node's
    /// lanes), also reporting whether any input remains afterwards on *any*
    /// lane. Equivalent to a [`Fabric::pop_input`] scan followed by
    /// [`Fabric::input_len`] checks, in a single walk of the lane array.
    pub fn pop_input_prio(&mut self, node: NodeId, prio: &[Lane]) -> (Option<Packet<P>>, bool) {
        let lanes = &mut self.node_in[node.index()];
        let mut pkt = None;
        for &lane in prio {
            let q = &mut lanes[lane.index()];
            if let Some(p) = q.q.pop_front() {
                q.flits -= p.flits;
                pkt = Some(p);
                break;
            }
        }
        let more = lanes.iter().any(|q| !q.q.is_empty());
        (pkt, more)
    }

    /// Marks the link between two routers failed (black hole). Returns
    /// `false` if the routers are not adjacent.
    pub fn fail_link_between(&mut self, a: RouterId, b: RouterId, now: SimTime) -> bool {
        let Some(nbr) = self.adj[a.index()].iter().find(|n| n.router == b) else {
            return false;
        };
        let slot = &mut self.link_failed[nbr.link.index()];
        if slot.is_none() {
            *slot = Some(now);
        }
        true
    }

    /// Marks the link between two adjacent routers *lossy* (gray failure):
    /// each packet that crosses it is dropped with probability `drop_ppm`
    /// per million, decided by the fabric's deterministic loss RNG.
    /// `drop_ppm == 0` restores reliability. Returns `false` if the routers
    /// are not adjacent.
    pub fn set_link_loss_between(&mut self, a: RouterId, b: RouterId, drop_ppm: u32) -> bool {
        let Some(nbr) = self.adj[a.index()].iter().find(|n| n.router == b) else {
            return false;
        };
        self.link_loss_ppm[nbr.link.index()] = drop_ppm;
        true
    }

    /// The armed loss rate (ppm) of the link between two routers; 0 for
    /// reliable links and non-adjacent pairs.
    pub fn link_loss_between(&self, a: RouterId, b: RouterId) -> u32 {
        self.adj[a.index()]
            .iter()
            .find(|n| n.router == b)
            .map(|n| self.link_loss_ppm[n.link.index()])
            .unwrap_or(0)
    }

    /// Seeds the deterministic RNG that decides per-packet drops on lossy
    /// links. The stream is part of checkpoint/fork state (the fabric is
    /// cloned wholesale), so forked runs replay drops bit-identically.
    pub fn seed_loss_rng(&mut self, rng: DetRng) {
        self.loss_rng = rng;
    }

    /// Marks a router failed: buffered and arriving packets are sunk.
    pub fn fail_router(&mut self, r: RouterId, now: SimTime) {
        let slot = &mut self.router_failed[r.index()];
        if slot.is_none() {
            *slot = Some(now);
        }
    }

    /// Marks a node dead (`sink == true`): packets delivered to it are
    /// discarded, modeling "packets sent to the failed node are discarded".
    /// Already-queued input is dropped.
    pub fn set_node_sink(&mut self, node: NodeId, sink: bool) {
        for lane in Lane::ALL {
            let q = &mut self.node_in[node.index()][lane.index()];
            q.sink = sink;
            if sink {
                q.q.clear();
                q.flits = 0;
            }
        }
    }

    /// Whether a router is alive (ground truth; used by probes, the fault
    /// injector and the oracle — never consulted directly by the distributed
    /// recovery algorithm).
    pub fn router_alive(&self, r: RouterId) -> bool {
        self.router_failed[r.index()].is_none()
    }

    /// Whether the link between two adjacent routers is alive. Returns
    /// `false` for non-adjacent pairs.
    pub fn link_alive_between(&self, a: RouterId, b: RouterId) -> bool {
        self.adj[a.index()]
            .iter()
            .find(|n| n.router == b)
            .map(|n| self.link_failed[n.link.index()].is_none())
            .unwrap_or(false)
    }

    /// Link-level probe from `from` across its `nbr`-th port: the physical
    /// interrogation used during recovery initiation (the *time* cost of the
    /// probe is charged by the caller).
    pub fn probe(&self, from: RouterId, nbr: usize) -> LinkProbe {
        let Some(n) = self.adj[from.index()].get(nbr) else {
            return LinkProbe::NoSuchLink;
        };
        if self.link_failed[n.link.index()].is_some() {
            LinkProbe::LinkDead
        } else if self.router_failed[n.router.index()].is_some() {
            LinkProbe::RouterDead
        } else {
            LinkProbe::Alive
        }
    }

    /// Installs new routing tables (the interconnect-recovery step).
    ///
    /// # Panics
    ///
    /// Panics if the table dimensions do not match the fabric.
    pub fn install_tables(&mut self, tables: RoutingTables) {
        assert_eq!(tables.num_routers(), self.n_routers);
        self.tables = tables;
    }

    /// Read access to the installed routing tables.
    pub fn tables(&self) -> &RoutingTables {
        &self.tables
    }

    /// Mutable access to the installed routing tables (used to program
    /// per-destination discards when isolating failed regions).
    pub fn tables_mut(&mut self) -> &mut RoutingTables {
        &mut self.tables
    }

    /// Number of coherence-lane packets inside the fabric (injection queues,
    /// router queues and transits) — an oracle-level drain check.
    pub fn in_flight_coherence(&self) -> u64 {
        self.in_flight_coherence.max(0) as u64
    }

    /// The time of the most recent coherence-lane delivery to `node`
    /// (`SimTime::ZERO` if none). The drain-agreement protocol compares this
    /// against vote times.
    pub fn last_coherence_delivery(&self, node: NodeId) -> SimTime {
        self.last_coherence_delivery[node.index()]
    }

    /// Fabric-level statistics.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// All coherence-lane packets dropped so far (black holes, dead
    /// routers, discards). Consulted by the validation oracle to identify
    /// lines whose only valid copy was lost in transit.
    pub fn dropped_packets(&self) -> &[Packet<P>] {
        &self.dropped
    }

    /// Bookkeeping for a packet still inside the fabric (queued or in
    /// transit); `None` once it has been delivered or dropped.
    pub fn packet_meta(&self, id: PacketId) -> Option<PacketMeta> {
        self.slab.get(id).copied()
    }

    /// Number of packets currently inside the fabric on any lane.
    pub fn in_flight_packets(&self) -> usize {
        self.slab.live()
    }

    // ------------------------------------------------------------------
    // Region mode (intra-run sharding)
    // ------------------------------------------------------------------

    /// Turns this fabric (a full clone of the run's fabric) into the
    /// replica for region `my` of `map`.
    ///
    /// The replica accounts only its own stretch of execution: counters
    /// and the dropped-packet log are reset here and merged back at
    /// [`Fabric::meld_regions`]. The loss RNG is forked with the region
    /// id as tag, so lossy-link draws are deterministic per region and
    /// independent of worker scheduling. Failure state (failed links and
    /// routers, routing tables, loss rates) must stay frozen while the
    /// replica runs — faults are global events, handled serially.
    ///
    /// # Panics
    ///
    /// Panics if the fabric is already a replica, the map does not cover
    /// its routers, or `my` is out of range.
    pub fn enter_region(&mut self, map: RegionMap, my: u16) {
        assert!(self.region.is_none(), "fabric is already a region replica");
        assert_eq!(
            map.n_routers(),
            self.n_routers,
            "region map does not cover this fabric"
        );
        assert!(
            self.n_nodes <= self.n_routers,
            "region mode assumes node i attaches to router i"
        );
        assert!(my < map.n_regions(), "region id out of range");
        self.counters = Counters::new();
        self.dropped.clear();
        self.loss_rng = self.loss_rng.fork(u64::from(my));
        self.region = Some(RegionCfg { map, my });
    }

    /// The region this replica owns, if in region mode.
    pub fn region(&self) -> Option<u16> {
        self.region.as_ref().map(|c| c.my)
    }

    /// The minimum latency of any packet crossing a region boundary:
    /// one router-to-router hop plus the serialization of a single-flit
    /// packet. Node-to-router injection never crosses a boundary (node
    /// `i` attaches to router `i`, which shares its region), so this is
    /// a valid conservative lookahead for the shard windows.
    pub fn min_region_lookahead_ns(&self) -> u64 {
        self.params.hop_latency_ns + self.params.flit_ns
    }

    /// Drains the boundary hops emitted since the last call, each tagged
    /// with its destination region. The embedding machine forwards them
    /// through the shard mailboxes in emission order.
    pub fn take_boundary_hops(&mut self) -> Vec<(u16, BoundaryHop<P>)> {
        std::mem::take(&mut self.boundary_out)
    }

    /// Applies a boundary hop received from another region's replica:
    /// re-interns the packet in this replica's slab and places it
    /// exactly as a local arrival would.
    ///
    /// Called at the shard barrier with `now` equal to the window end —
    /// at or after the hop's physical arrival time, a skew bounded by
    /// one lookahead window.
    pub fn apply_boundary_hop(
        &mut self,
        h: BoundaryHop<P>,
        now: SimTime,
        out: &mut Vec<(SimDuration, NetEv)>,
        delivered: &mut Vec<DeliveryNote>,
        obs: &mut Recorder,
    ) {
        let BoundaryHop {
            lane,
            target,
            mut pkt,
            meta,
            ..
        } = h;
        debug_assert!(
            !self.is_foreign(target),
            "boundary hop delivered to the wrong region replica"
        );
        pkt.id = self.slab.alloc_with_meta(meta);
        self.counters.incr("boundary_hops_in");
        self.place(pkt, lane, target, now, out, delivered, obs);
    }

    /// Melds region replicas back into this fabric (the run's fabric as
    /// it was when the replicas were cloned from it).
    ///
    /// Every queue is taken from its owning replica; the packet slab is
    /// rebuilt by re-interning all live packets in a fixed walk order
    /// (injection queues by node, then router queues), so melded ids
    /// depend only on queue contents; the in-flight coherence count is
    /// recounted from the melded queues; replica counters and dropped
    /// packets are merged in region order. Chassis state (topology,
    /// tables, failure state) is this fabric's own — it was frozen while
    /// the replicas ran.
    ///
    /// # Panics
    ///
    /// Panics if this fabric is itself a replica, `parts` does not hold
    /// exactly one replica per region in region order, or a replica has
    /// undrained boundary hops.
    pub fn meld_regions(&mut self, mut parts: Vec<Fabric<P>>, map: &RegionMap) {
        assert!(self.region.is_none(), "cannot meld into a replica");
        assert_eq!(
            parts.len(),
            usize::from(map.n_regions()),
            "need one replica per region"
        );
        let mut slabs: Vec<PacketSlab> = Vec::with_capacity(parts.len());
        for (r, part) in parts.iter_mut().enumerate() {
            match &part.region {
                Some(cfg) if usize::from(cfg.my) == r => {}
                _ => panic!("meld_regions: part {r} is not the replica of region {r}"),
            }
            assert!(
                part.boundary_out.is_empty(),
                "meld_regions: region {r} has undrained boundary hops"
            );
            slabs.push(std::mem::take(&mut part.slab));
        }
        for r in 0..self.n_routers {
            let owner = usize::from(map.of_router(RouterId(r as u16)));
            self.out_queues[r] = std::mem::take(&mut parts[owner].out_queues[r]);
        }
        for n in 0..self.n_nodes {
            let owner = usize::from(map.of_node(NodeId(n as u16)));
            self.inj_queues[n] = std::mem::replace(
                &mut parts[owner].inj_queues[n],
                std::array::from_fn(|_| OutQueue::new()),
            );
            self.node_in[n] = std::mem::replace(
                &mut parts[owner].node_in[n],
                std::array::from_fn(|_| InQueue::new()),
            );
            self.last_coherence_delivery[n] = parts[owner].last_coherence_delivery[n];
        }
        // Rebuild the slab: live packets are exactly those still in an
        // injection or router queue (delivered and dropped packets have
        // retired their ids), each interned in its owning region's slab.
        let mut fresh = PacketSlab::default();
        let mut coherence = 0i64;
        for n in 0..self.n_nodes {
            let owner = usize::from(map.of_node(NodeId(n as u16)));
            for q in self.inj_queues[n].iter_mut() {
                for pkt in q.q.iter_mut() {
                    let meta = slabs[owner]
                        .release(pkt.id)
                        .expect("invariant: queued packet must be interned in its region's slab");
                    pkt.id = fresh.alloc_with_meta(meta);
                    coherence += i64::from(pkt.lane.is_coherence());
                }
            }
        }
        for r in 0..self.n_routers {
            let owner = usize::from(map.of_router(RouterId(r as u16)));
            for port in self.out_queues[r].iter_mut() {
                for q in port.iter_mut() {
                    for pkt in q.q.iter_mut() {
                        let meta = slabs[owner].release(pkt.id).expect(
                            "invariant: queued packet must be interned in its region's slab",
                        );
                        pkt.id = fresh.alloc_with_meta(meta);
                        coherence += i64::from(pkt.lane.is_coherence());
                    }
                }
            }
        }
        self.slab = fresh;
        self.in_flight_coherence = coherence;
        for part in &mut parts {
            self.counters.merge(&part.counters);
            self.dropped.append(&mut part.dropped);
        }
    }

    /// The region a placement target belongs to (`None` when not in
    /// region mode or for sinks, which are always local).
    fn target_region(&self, target: Target) -> Option<u16> {
        let cfg = self.region.as_ref()?;
        match target {
            Target::Node(nd) => Some(cfg.map.of_node(nd)),
            Target::Queue { router, .. } => Some(cfg.map.of_router(RouterId(router))),
            Target::Sink(_) => None,
        }
    }

    /// Whether a placement target lies in another replica's region.
    fn is_foreign(&self, target: Target) -> bool {
        match (&self.region, self.target_region(target)) {
            (Some(cfg), Some(r)) => r != cfg.my,
            _ => false,
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn queue(&mut self, qr: QueueRef, lane: Lane) -> &mut OutQueue<P> {
        match qr {
            QueueRef::Out { router, nbr } => {
                &mut self.out_queues[router as usize][nbr as usize][lane.index()]
            }
            QueueRef::Inj { node } => &mut self.inj_queues[node as usize][lane.index()],
        }
    }

    /// The router a packet leaving queue `qr` lands on, plus the link it
    /// crosses (`None` for injection).
    fn downstream(&self, qr: QueueRef) -> (RouterId, Option<LinkId>) {
        match qr {
            QueueRef::Out { router, nbr } => {
                let n = self.adj[router as usize][nbr as usize];
                (n.router, Some(n.link))
            }
            QueueRef::Inj { node } => (RouterId(node), None),
        }
    }

    /// Decides where a packet will be placed after landing on `at`.
    /// `consumes_hop` is true when the move crosses a router-to-router link
    /// (source routes consume one hop per link crossing).
    fn decide(&self, at: RouterId, dst: NodeId, route: Route, consumes_hop: bool) -> Target {
        match route {
            Route::Table => match self.tables.hop(at, RouterId(dst.0)) {
                Hop::Local => {
                    if dst.0 == at.0 {
                        Target::Node(dst)
                    } else {
                        Target::Sink("drop_misroute")
                    }
                }
                Hop::Toward(v) => match self.nbr_index(at, v) {
                    Some(j) => Target::Queue {
                        router: at.0,
                        nbr: j,
                    },
                    None => Target::Sink("drop_misroute"),
                },
                Hop::Discard => Target::Sink("drop_discard"),
                Hop::Unreachable => Target::Sink("drop_unreachable"),
            },
            Route::Source { hops, consumed } => {
                let idx = usize::from(consumed) + usize::from(consumes_hop);
                if idx >= hops.len() {
                    Target::Node(NodeId(at.0))
                } else {
                    match self.nbr_index(at, hops[idx]) {
                        Some(j) => Target::Queue {
                            router: at.0,
                            nbr: j,
                        },
                        None => Target::Sink("drop_bad_source_route"),
                    }
                }
            }
        }
    }

    fn nbr_index(&self, at: RouterId, to: RouterId) -> Option<u8> {
        self.adj[at.index()]
            .iter()
            .position(|n| n.router == to)
            .map(|i| i as u8)
    }

    fn drop_packet(
        &mut self,
        pkt: Packet<P>,
        reason: &'static str,
        now: SimTime,
        obs: &mut Recorder,
    ) {
        if let Some(meta) = self.slab.release(pkt.id) {
            self.counters
                .add("links_crossed", u64::from(meta.links_crossed));
        }
        if pkt.lane.is_coherence() {
            self.in_flight_coherence -= 1;
        }
        self.counters.incr(reason);
        self.counters.incr("packets_dropped");
        obs.record(Domain::Net, now, TraceEvent::PacketDropped { reason });
        obs.metrics.incr("net_packets_dropped");
        // Keep a bounded log of dropped packets: the incoherence oracle
        // inspects it for lost sole-copy writebacks and grants.
        if pkt.lane.is_coherence() && self.dropped.len() < 1_000_000 {
            self.dropped.push(pkt);
        }
    }

    fn try_move(
        &mut self,
        qr: QueueRef,
        lane: Lane,
        now: SimTime,
        out: &mut Vec<(SimDuration, NetEv)>,
        obs: &mut Recorder,
    ) {
        // A dead router's buffers are lost: drain everything.
        if let QueueRef::Out { router, .. } = qr {
            if self.router_failed[router as usize].is_some() {
                let drained: Vec<Packet<P>> = {
                    let q = self.queue(qr, lane);
                    q.in_transit = None;
                    q.flits = 0;
                    q.q.drain(..).collect()
                };
                for pkt in drained {
                    self.drop_packet(pkt, "drop_dead_router_buffer", now, obs);
                }
                return;
            }
        }
        // A node attached to a dead router cannot inject.
        if let QueueRef::Inj { node } = qr {
            if self.router_failed[node as usize].is_some() {
                let drained: Vec<Packet<P>> = {
                    let q = self.queue(qr, lane);
                    q.in_transit = None;
                    q.flits = 0;
                    q.q.drain(..).collect()
                };
                for pkt in drained {
                    self.drop_packet(pkt, "drop_dead_router_buffer", now, obs);
                }
                return;
            }
        }

        let (head_flits, is_source, head_since, busy, empty) = {
            let q = self.queue(qr, lane);
            match (&q.in_transit, q.q.front()) {
                (Some(_), _) => (0, false, q.head_since, true, false),
                (None, None) => (0, false, q.head_since, false, true),
                (None, Some(p)) => (p.flits, p.is_source_routed(), q.head_since, false, false),
            }
        };
        if busy || empty {
            return;
        }

        let (land_router, link) = self.downstream(qr);

        // Black-hole semantics: a dead link or dead landing router sinks the
        // packet at forwarding time.
        let link_dead = link
            .map(|l| self.link_failed[l.index()].is_some())
            .unwrap_or(false);
        let router_dead = self.router_failed[land_router.index()].is_some();
        if link_dead || router_dead {
            let (pkt, more) = {
                let q = self.queue(qr, lane);
                let pkt = q.q.pop_front().expect("head checked");
                q.flits -= pkt.flits;
                q.head_since = now;
                let more = !q.q.is_empty();
                (pkt, more)
            };
            let reason = if link_dead {
                "drop_blackhole_link"
            } else {
                "drop_dead_router"
            };
            self.drop_packet(pkt, reason, now, obs);
            if more {
                out.push((SimDuration::ZERO, NetEv::TryMove(qr, lane)));
            }
            return;
        }

        // Decide downstream placement and check space.
        // `Route` is `Copy` (inline source-route hops), so inspecting the
        // head costs no allocation.
        let consumes_hop = matches!(qr, QueueRef::Out { .. });
        let (head_dst, head_route) = {
            let pkt = self.queue(qr, lane).q.front().expect("head checked");
            (pkt.dst, pkt.route)
        };
        let target = self.decide(land_router, head_dst, head_route, consumes_hop);
        let foreign = self.is_foreign(target);

        // A foreign target (region mode) always has space: the replica
        // only holds a stale clone of the downstream queue, frozen at the
        // stretch unfold, so checking it would park the head against
        // phantom congestion that never drains within the stretch —
        // polling every retry for the rest of the stretch and even
        // stall-discarding source-routed packets the serial run would
        // deliver. Flow control across a region boundary is deferred
        // entirely to the owning region, which admits the boundary hop
        // and backpressures its own subsequent traffic — a transient
        // oversubscription bounded by the sender's queue contents per
        // window (see DESIGN.md).
        let space = foreign
            || match target {
                Target::Node(nd) => {
                    let q = &self.node_in[nd.index()][lane.index()];
                    q.sink || q.flits + q.reserved + head_flits <= self.params.node_in_flits
                }
                Target::Queue { router, nbr } => {
                    let q = &self.out_queues[router as usize][nbr as usize][lane.index()];
                    q.flits + q.reserved + head_flits <= self.params.out_queue_flits
                }
                Target::Sink(_) => true,
            };

        if !space {
            // Blocked. Source-routed packets are stall-discarded; others poll.
            let waited = now.since(head_since);
            if is_source && waited.as_nanos() > self.params.stall_timeout_ns {
                let (pkt, more) = {
                    let q = self.queue(qr, lane);
                    let pkt = q.q.pop_front().expect("head checked");
                    q.flits -= pkt.flits;
                    q.head_since = now;
                    let more = !q.q.is_empty();
                    (pkt, more)
                };
                self.drop_packet(pkt, "drop_stall_discard", now, obs);
                if more {
                    out.push((SimDuration::ZERO, NetEv::TryMove(qr, lane)));
                }
            } else {
                out.push((
                    SimDuration::from_nanos(self.params.retry_ns),
                    NetEv::TryMove(qr, lane),
                ));
            }
            return;
        }

        // Immediate sinks don't need transit.
        if let Target::Sink(reason) = target {
            let (pkt, more) = {
                let q = self.queue(qr, lane);
                let pkt = q.q.pop_front().expect("head checked");
                q.flits -= pkt.flits;
                q.head_since = now;
                let more = !q.q.is_empty();
                (pkt, more)
            };
            self.drop_packet(pkt, reason, now, obs);
            if more {
                out.push((SimDuration::ZERO, NetEv::TryMove(qr, lane)));
            }
            return;
        }

        // Lossy-link gray failure: the crossing is committed, so roll the
        // loss RNG exactly once per packet actually traversing the link
        // (injection legs have no router-router link and are never lossy).
        // Recovery-lane traffic is exempt: the recovery protocol rides the
        // hardware's acknowledged transfer service (the paper's reliable
        // dying-gasp discipline), so a lossy link slows recovery down but
        // cannot make it livelock on lost dissemination rounds.
        if let Some(l) = link {
            let lossy_lane = matches!(lane, Lane::Request | Lane::Reply);
            let ppm = self.link_loss_ppm[l.index()];
            if lossy_lane && ppm > 0 && self.loss_rng.below(1_000_000) < u64::from(ppm) {
                let (pkt, more) = {
                    let q = self.queue(qr, lane);
                    let pkt = q.q.pop_front().expect("head checked");
                    q.flits -= pkt.flits;
                    q.head_since = now;
                    let more = !q.q.is_empty();
                    (pkt, more)
                };
                self.drop_packet(pkt, "drop_lossy_link", now, obs);
                if more {
                    out.push((SimDuration::ZERO, NetEv::TryMove(qr, lane)));
                }
                return;
            }
        }

        // Reserve downstream space and start the transit. A foreign
        // target reserves nothing: the replica's copy is stale (the
        // owning region would never see the reservation, so it could
        // never be released) and placement happens in the owning region.
        if !foreign {
            match target {
                Target::Node(nd) => self.node_in[nd.index()][lane.index()].reserved += head_flits,
                Target::Queue { router, nbr } => {
                    self.out_queues[router as usize][nbr as usize][lane.index()].reserved +=
                        head_flits
                }
                Target::Sink(_) => unreachable!(),
            }
        }
        let latency = match qr {
            QueueRef::Out { .. } => {
                self.params.hop_latency_ns + self.params.flit_ns * head_flits as u64
            }
            QueueRef::Inj { .. } => self.params.inject_ns + self.params.flit_ns * head_flits as u64,
        };
        let q = self.queue(qr, lane);
        q.in_transit = Some(Transit {
            send_time: now,
            target,
        });
        out.push((SimDuration::from_nanos(latency), NetEv::Arrived(qr, lane)));
    }

    fn arrived(
        &mut self,
        qr: QueueRef,
        lane: Lane,
        now: SimTime,
        out: &mut Vec<(SimDuration, NetEv)>,
        delivered: &mut Vec<DeliveryNote>,
        obs: &mut Recorder,
    ) {
        let (mut pkt, transit, more) = {
            let q = self.queue(qr, lane);
            let Some(transit) = q.in_transit.take() else {
                // The queue was drained (e.g. router died mid-transit).
                return;
            };
            let Some(pkt) = q.q.pop_front() else {
                return;
            };
            q.flits -= pkt.flits;
            q.head_since = now;
            let more = !q.q.is_empty();
            (pkt, transit, more)
        };
        // The vacated queue may move its next head. An emptied queue needs no
        // event: the next enqueue into it schedules its own TryMove.
        if more {
            out.push((SimDuration::ZERO, NetEv::TryMove(qr, lane)));
        }

        // Unreserve downstream (foreign targets reserved nothing).
        let foreign = self.is_foreign(transit.target);
        if !foreign {
            match transit.target {
                Target::Node(nd) => {
                    let q = &mut self.node_in[nd.index()][lane.index()];
                    q.reserved = q.reserved.saturating_sub(pkt.flits);
                }
                Target::Queue { router, nbr } => {
                    let q = &mut self.out_queues[router as usize][nbr as usize][lane.index()];
                    q.reserved = q.reserved.saturating_sub(pkt.flits);
                }
                Target::Sink(_) => {}
            }
        }

        // Truncation: the link failed while the packet was on the wire.
        let (_, link) = self.downstream(qr);
        if let Some(l) = link {
            if let Some(failed_at) = self.link_failed[l.index()] {
                if failed_at > transit.send_time {
                    pkt.truncated = true;
                    pkt.flits = 1; // Header only; data flits were lost.
                    self.counters.incr("packets_truncated");
                }
            }
        }

        // Source routes consume a hop per link crossing; the slab tracks
        // crossings for every packet.
        if matches!(qr, QueueRef::Out { .. }) {
            if let Route::Source { consumed, .. } = &mut pkt.route {
                *consumed += 1;
            }
            if let Some(meta) = self.slab.get_mut(pkt.id) {
                meta.links_crossed += 1;
            }
        }

        // A packet landing on a router in another region leaves this
        // replica: retire it from the local slab and hand it — with its
        // bookkeeping — to the owning region through the shard mailbox.
        // The local in-flight coherence count is left alone; it is
        // recounted from the melded queues at fold time.
        if foreign {
            let meta = self
                .slab
                .release(pkt.id)
                .expect("invariant: in-transit packet must be interned in the slab");
            let dst = self
                .target_region(transit.target)
                .expect("foreign target always has a region");
            self.counters.incr("boundary_hops_out");
            self.boundary_out.push((
                dst,
                BoundaryHop {
                    at: now,
                    lane,
                    target: transit.target,
                    pkt,
                    meta,
                },
            ));
            return;
        }

        self.place(pkt, lane, transit.target, now, out, delivered, obs);
    }

    /// Places a packet that has completed a transit (or a boundary hop)
    /// into its target: a node input queue, a downstream router queue, or
    /// a sink.
    #[allow(clippy::too_many_arguments)]
    fn place(
        &mut self,
        pkt: Packet<P>,
        lane: Lane,
        target: Target,
        now: SimTime,
        out: &mut Vec<(SimDuration, NetEv)>,
        delivered: &mut Vec<DeliveryNote>,
        obs: &mut Recorder,
    ) {
        match target {
            Target::Node(nd) => {
                let q = &mut self.node_in[nd.index()][lane.index()];
                if q.sink {
                    self.drop_packet(pkt, "drop_dead_node", now, obs);
                    return;
                }
                let mut hops = 0u8;
                if let Some(meta) = self.slab.release(pkt.id) {
                    self.counters
                        .add("links_crossed", u64::from(meta.links_crossed));
                    hops = meta.links_crossed.min(u32::from(u8::MAX)) as u8;
                }
                if lane.is_coherence() {
                    self.in_flight_coherence -= 1;
                    self.last_coherence_delivery[nd.index()] = now;
                }
                q.flits += pkt.flits;
                let truncated = pkt.truncated;
                q.q.push_back(pkt);
                self.counters.incr("packets_delivered");
                obs.record(
                    Domain::Net,
                    now,
                    TraceEvent::PacketDelivered {
                        node: nd.0,
                        lane: lane.index() as u8,
                        hops,
                        truncated,
                    },
                );
                obs.metrics
                    .observe_count("net_packet_hops", u64::from(hops));
                delivered.push(DeliveryNote { node: nd, lane });
            }
            Target::Queue { router, nbr } => {
                if self.router_failed[router as usize].is_some() {
                    self.drop_packet(pkt, "drop_dead_router", now, obs);
                    return;
                }
                let q = &mut self.out_queues[router as usize][nbr as usize][lane.index()];
                q.flits += pkt.flits;
                let newly_head = q.q.is_empty();
                q.q.push_back(pkt);
                // A non-empty downstream queue already has an event chain
                // (in-transit Arrived or a blocked-head retry poll) in flight.
                if newly_head {
                    obs.metrics.incr("net_trymove_kicks");
                    q.head_since = now;
                    out.push((
                        SimDuration::ZERO,
                        NetEv::TryMove(QueueRef::Out { router, nbr }, lane),
                    ));
                } else {
                    obs.metrics.incr("net_trymove_coalesced");
                }
            }
            Target::Sink(reason) => {
                self.drop_packet(pkt, reason, now, obs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Mesh2D;
    use flash_sim::{Engine, Scheduler, World};

    /// Minimal world driving a fabric alone.
    struct NetWorld {
        fabric: Fabric<u32>,
        obs: Recorder,
        notes: Vec<(u64, DeliveryNote)>,
    }

    impl World for NetWorld {
        type Ev = NetEv;
        fn dispatch(&mut self, ev: NetEv, sched: &mut Scheduler<'_, NetEv>) {
            let mut out = Vec::new();
            let mut del = Vec::new();
            self.fabric
                .handle(ev, sched.now(), &mut out, &mut del, &mut self.obs);
            for d in del {
                self.notes.push((sched.now().as_nanos(), d));
            }
            for (delay, e) in out {
                sched.after(delay, e);
            }
        }
    }

    fn net(w: usize, h: usize) -> (NetWorld, Engine<NetEv>) {
        let fabric = Fabric::new(&Mesh2D::new(w, h), NetParams::default());
        (
            NetWorld {
                fabric,
                obs: Recorder::disabled(),
                notes: Vec::new(),
            },
            Engine::new(),
        )
    }

    fn send(
        world: &mut NetWorld,
        engine: &mut Engine<NetEv>,
        pkt: Packet<u32>,
        node: NodeId,
    ) -> PacketId {
        let mut out = Vec::new();
        let id = world
            .fabric
            .try_send(node, pkt, engine.now(), &mut out, &mut world.obs)
            .expect("send ok");
        for (delay, e) in out {
            engine.schedule_after(delay, e);
        }
        id
    }

    fn conservation_ok(f: &Fabric<u32>) -> bool {
        let c = f.counters();
        c.get("packets_sent") >= c.get("packets_delivered") + c.get("packets_dropped")
    }

    #[test]
    fn delivers_across_mesh() {
        let (mut w, mut engine) = net(4, 4);
        let pkt = Packet::table_routed(NodeId(0), NodeId(15), Lane::Request, 9, 0xBEEF);
        send(&mut w, &mut engine, pkt, NodeId(0));
        engine.run(&mut w, flash_sim::SimTime::MAX);
        assert_eq!(w.notes.len(), 1);
        assert_eq!(w.notes[0].1.node, NodeId(15));
        assert!(w.notes[0].0 > 0, "delivery takes time");
        let got = w.fabric.pop_input(NodeId(15), Lane::Request).unwrap();
        assert_eq!(got.payload, 0xBEEF);
        assert!(!got.truncated);
        assert_eq!(w.fabric.in_flight_coherence(), 0);
        assert!(conservation_ok(&w.fabric));
    }

    #[test]
    fn loopback_to_self_is_delivered() {
        let (mut w, mut engine) = net(2, 2);
        let pkt = Packet::table_routed(NodeId(1), NodeId(1), Lane::Reply, 2, 7);
        send(&mut w, &mut engine, pkt, NodeId(1));
        engine.run(&mut w, flash_sim::SimTime::MAX);
        assert_eq!(w.notes.len(), 1);
        assert_eq!(
            w.fabric.pop_input(NodeId(1), Lane::Reply).unwrap().payload,
            7
        );
    }

    #[test]
    fn dead_link_black_holes_table_traffic() {
        let (mut w, mut engine) = net(2, 1);
        w.fabric
            .fail_link_between(RouterId(0), RouterId(1), flash_sim::SimTime::ZERO);
        let pkt = Packet::table_routed(NodeId(0), NodeId(1), Lane::Request, 9, 1);
        send(&mut w, &mut engine, pkt, NodeId(0));
        engine.run(&mut w, flash_sim::SimTime::MAX);
        assert!(w.notes.is_empty());
        assert_eq!(w.fabric.counters().get("drop_blackhole_link"), 1);
        assert_eq!(w.fabric.in_flight_coherence(), 0);
    }

    #[test]
    fn lossy_link_drops_probabilistically_and_conserves_packets() {
        // drop_ppm = 1_000_000: every crossing is dropped.
        let (mut w, mut engine) = net(2, 1);
        assert!(w
            .fabric
            .set_link_loss_between(RouterId(0), RouterId(1), 1_000_000));
        assert_eq!(
            w.fabric.link_loss_between(RouterId(1), RouterId(0)),
            1_000_000,
            "loss is a property of the shared link, both directions"
        );
        let pkt = Packet::table_routed(NodeId(0), NodeId(1), Lane::Request, 9, 1);
        send(&mut w, &mut engine, pkt, NodeId(0));
        engine.run(&mut w, flash_sim::SimTime::MAX);
        assert!(w.notes.is_empty());
        assert_eq!(w.fabric.counters().get("drop_lossy_link"), 1);
        assert_eq!(w.fabric.in_flight_coherence(), 0);
        assert!(conservation_ok(&w.fabric));

        // drop_ppm = 0 after clearing: reliable again.
        assert!(w.fabric.set_link_loss_between(RouterId(0), RouterId(1), 0));
        let pkt = Packet::table_routed(NodeId(0), NodeId(1), Lane::Request, 9, 2);
        send(&mut w, &mut engine, pkt, NodeId(0));
        engine.run(&mut w, flash_sim::SimTime::MAX);
        assert_eq!(w.notes.len(), 1);

        // Half rate: the seeded stream drops a plausible fraction of 100
        // packets, deterministically.
        let (mut w, mut engine) = net(2, 1);
        w.fabric.seed_loss_rng(DetRng::new(77));
        assert!(w
            .fabric
            .set_link_loss_between(RouterId(0), RouterId(1), 500_000));
        for i in 0..100 {
            let pkt = Packet::table_routed(NodeId(0), NodeId(1), Lane::Request, 2, i);
            send(&mut w, &mut engine, pkt, NodeId(0));
            engine.run(&mut w, flash_sim::SimTime::MAX);
            let _ = w.fabric.pop_input(NodeId(1), Lane::Request);
        }
        let dropped = w.fabric.counters().get("drop_lossy_link");
        assert!((25..=75).contains(&dropped), "dropped {dropped} of 100");
        assert!(conservation_ok(&w.fabric));
        // Non-adjacent pairs are rejected.
        assert!(!w
            .fabric
            .set_link_loss_between(RouterId(0), RouterId(0), 1_000));
    }

    #[test]
    fn mid_transit_link_failure_truncates() {
        let (mut w, mut engine) = net(2, 1);
        let pkt = Packet::table_routed(NodeId(0), NodeId(1), Lane::Request, 9, 42);
        send(&mut w, &mut engine, pkt, NodeId(0));
        // Injection completes at 10 + 9*10 = 100ns; the link transit runs
        // from 100 to 100 + 40 + 90 = 230ns. Fail the link at 150ns.
        engine.run(&mut w, flash_sim::SimTime::from_nanos(150));
        w.fabric
            .fail_link_between(RouterId(0), RouterId(1), engine.now());
        engine.run(&mut w, flash_sim::SimTime::MAX);
        assert_eq!(w.notes.len(), 1, "truncated packet is still delivered");
        let got = w.fabric.pop_input(NodeId(1), Lane::Request).unwrap();
        assert!(got.truncated);
        assert_eq!(got.flits, 1);
        assert_eq!(w.fabric.counters().get("packets_truncated"), 1);
    }

    #[test]
    fn dead_router_sinks_traffic() {
        let (mut w, mut engine) = net(3, 1);
        w.fabric.fail_router(RouterId(1), flash_sim::SimTime::ZERO);
        let pkt = Packet::table_routed(NodeId(0), NodeId(2), Lane::Request, 9, 1);
        send(&mut w, &mut engine, pkt, NodeId(0));
        engine.run(&mut w, flash_sim::SimTime::MAX);
        assert!(w.notes.is_empty());
        assert!(w.fabric.counters().get("drop_dead_router") >= 1);
    }

    #[test]
    fn dead_node_discards_deliveries() {
        let (mut w, mut engine) = net(2, 1);
        w.fabric.set_node_sink(NodeId(1), true);
        let pkt = Packet::table_routed(NodeId(0), NodeId(1), Lane::Request, 9, 1);
        send(&mut w, &mut engine, pkt, NodeId(0));
        engine.run(&mut w, flash_sim::SimTime::MAX);
        assert!(w.notes.is_empty());
        assert_eq!(w.fabric.counters().get("drop_dead_node"), 1);
        assert_eq!(w.fabric.in_flight_coherence(), 0);
    }

    #[test]
    fn source_route_detours_around_failed_link() {
        // 2x2 mesh: table route 0 -> 3 goes X-first through router 1.
        let (mut w, mut engine) = net(2, 2);
        w.fabric
            .fail_link_between(RouterId(0), RouterId(1), flash_sim::SimTime::ZERO);
        // Table-routed packet dies in the black hole.
        let pkt = Packet::table_routed(NodeId(0), NodeId(3), Lane::Request, 9, 1);
        send(&mut w, &mut engine, pkt, NodeId(0));
        engine.run(&mut w, flash_sim::SimTime::MAX);
        assert!(w.notes.is_empty());
        // Source-routed packet detours 0 -> 2 -> 3.
        let pkt = Packet::source_routed(
            NodeId(0),
            NodeId(3),
            vec![RouterId(2), RouterId(3)],
            Lane::Recovery0,
            1,
            2,
        );
        send(&mut w, &mut engine, pkt, NodeId(0));
        engine.run(&mut w, flash_sim::SimTime::MAX);
        assert_eq!(w.notes.len(), 1);
        assert_eq!(w.notes[0].1.node, NodeId(3));
        assert_eq!(w.notes[0].1.lane, Lane::Recovery0);
    }

    #[test]
    fn backpressure_fills_and_drains() {
        let (mut w, mut engine) = net(2, 1);
        // node_in capacity 256 flits = 28 packets of 9 flits; out queue 64
        // flits = 7 packets; inject queue 64 flits = 7 packets. Send 14.
        let mut sent = 0;
        for i in 0..14 {
            let pkt = Packet::table_routed(NodeId(0), NodeId(1), Lane::Request, 9, i);
            let mut out = Vec::new();
            if w.fabric
                .try_send(NodeId(0), pkt, engine.now(), &mut out, &mut w.obs)
                .is_ok()
            {
                sent += 1;
            }
            for (d, e) in out {
                engine.schedule_after(d, e);
            }
            // Let the fabric drain the injection queue between sends
            // (injection serialization takes 100ns per 9-flit packet).
            let h = engine.now() + SimDuration::from_nanos(200);
            engine.run(&mut w, h);
        }
        engine.run(&mut w, flash_sim::SimTime::MAX);
        assert_eq!(sent, 14);
        assert_eq!(w.notes.len(), 14, "all packets eventually delivered");
        assert_eq!(w.fabric.input_len(NodeId(1), Lane::Request), 14);
        // Drain.
        for _ in 0..14 {
            assert!(w.fabric.pop_input(NodeId(1), Lane::Request).is_some());
        }
        assert!(w.fabric.pop_input(NodeId(1), Lane::Request).is_none());
    }

    #[test]
    fn full_ejection_queue_blocks_then_recovers() {
        let (mut w, mut engine) = net(2, 1);
        // 29 packets of 9 flits exceed the 256-flit ejection queue (28 fit).
        for i in 0..29 {
            let pkt = Packet::table_routed(NodeId(0), NodeId(1), Lane::Request, 9, i);
            let mut out = Vec::new();
            let _ = w
                .fabric
                .try_send(NodeId(0), pkt, engine.now(), &mut out, &mut w.obs);
            for (d, e) in out {
                engine.schedule_after(d, e);
            }
            let h = engine.now() + SimDuration::from_nanos(200);
            engine.run(&mut w, h);
        }
        // Run for a while: 28 packets delivered, 1 blocked in the network.
        let h = engine.now() + SimDuration::from_micros(50);
        engine.run(&mut w, h);
        assert_eq!(w.fabric.input_len(NodeId(1), Lane::Request), 28);
        assert_eq!(w.fabric.in_flight_coherence(), 1);
        // Popping one frees space; the blocked packet gets through.
        w.fabric.pop_input(NodeId(1), Lane::Request).unwrap();
        let h = engine.now() + SimDuration::from_micros(50);
        engine.run(&mut w, h);
        assert_eq!(w.fabric.input_len(NodeId(1), Lane::Request), 28);
        assert_eq!(w.fabric.in_flight_coherence(), 0);
    }

    #[test]
    fn stall_discard_protects_recovery_lanes() {
        let (mut w, mut engine) = net(2, 1);
        // Fill node 1's Recovery0 ejection queue (256 flits / 1 flit each).
        for i in 0..256 {
            let pkt = Packet::table_routed(NodeId(0), NodeId(1), Lane::Recovery0, 1, i);
            let mut out = Vec::new();
            let _ = w
                .fabric
                .try_send(NodeId(0), pkt, engine.now(), &mut out, &mut w.obs);
            for (d, e) in out {
                engine.schedule_after(d, e);
            }
            let h = engine.now() + SimDuration::from_nanos(100);
            engine.run(&mut w, h);
        }
        engine.run(&mut w, engine.now() + SimDuration::from_micros(100));
        assert_eq!(w.fabric.input_len(NodeId(1), Lane::Recovery0), 256);
        // A source-routed packet now blocks at the head, and is discarded
        // after the stall timeout instead of clogging the lane forever.
        let pkt = Packet::source_routed(
            NodeId(0),
            NodeId(1),
            vec![RouterId(1)],
            Lane::Recovery0,
            1,
            9999,
        );
        send(&mut w, &mut engine, pkt, NodeId(0));
        engine.run(&mut w, engine.now() + SimDuration::from_micros(100));
        assert!(w.fabric.counters().get("drop_stall_discard") >= 1);
    }

    #[test]
    fn probe_reports_component_health() {
        let (mut w, _) = net(3, 1);
        assert_eq!(w.fabric.probe(RouterId(0), 0), LinkProbe::Alive);
        w.fabric.fail_router(RouterId(1), flash_sim::SimTime::ZERO);
        assert_eq!(w.fabric.probe(RouterId(0), 0), LinkProbe::RouterDead);
        w.fabric
            .fail_link_between(RouterId(0), RouterId(1), flash_sim::SimTime::ZERO);
        assert_eq!(w.fabric.probe(RouterId(0), 0), LinkProbe::LinkDead);
        assert_eq!(w.fabric.probe(RouterId(0), 5), LinkProbe::NoSuchLink);
    }

    #[test]
    fn inject_queue_full_returns_packet() {
        let (mut w, engine) = net(2, 1);
        // Inject queue holds 64 flits = 7 packets of 9; do not run events.
        let mut rejected = None;
        for i in 0..8 {
            let pkt = Packet::table_routed(NodeId(0), NodeId(1), Lane::Request, 9, i);
            let mut out = Vec::new();
            match w
                .fabric
                .try_send(NodeId(0), pkt, engine.now(), &mut out, &mut w.obs)
            {
                Ok(_) => {}
                Err(SendError::Full(p)) => rejected = Some(p),
            }
        }
        let p = rejected.expect("eighth packet rejected");
        assert_eq!(p.payload, 7);
        assert_eq!(w.fabric.counters().get("inject_full"), 1);
    }

    #[test]
    fn discard_table_entries_drop_at_first_router() {
        let (mut w, mut engine) = net(3, 1);
        w.fabric.tables_mut().discard_destination(RouterId(2));
        let pkt = Packet::table_routed(NodeId(0), NodeId(2), Lane::Request, 9, 1);
        send(&mut w, &mut engine, pkt, NodeId(0));
        engine.run(&mut w, flash_sim::SimTime::MAX);
        assert!(w.notes.is_empty());
        assert_eq!(w.fabric.counters().get("drop_discard"), 1);
    }

    #[test]
    fn lanes_are_independent() {
        let (mut w, mut engine) = net(2, 1);
        // Fill the Request ejection queue.
        for i in 0..28 {
            let pkt = Packet::table_routed(NodeId(0), NodeId(1), Lane::Request, 9, i);
            let mut out = Vec::new();
            let _ = w
                .fabric
                .try_send(NodeId(0), pkt, engine.now(), &mut out, &mut w.obs);
            for (d, e) in out {
                engine.schedule_after(d, e);
            }
            engine.run(&mut w, engine.now() + SimDuration::from_nanos(200));
        }
        engine.run(&mut w, engine.now() + SimDuration::from_micros(20));
        // Recovery-lane traffic still flows.
        let pkt = Packet::source_routed(
            NodeId(0),
            NodeId(1),
            vec![RouterId(1)],
            Lane::Recovery1,
            1,
            1234,
        );
        send(&mut w, &mut engine, pkt, NodeId(0));
        engine.run(&mut w, engine.now() + SimDuration::from_micros(20));
        assert_eq!(w.fabric.input_len(NodeId(1), Lane::Recovery1), 1);
        assert_eq!(
            w.fabric
                .pop_input(NodeId(1), Lane::Recovery1)
                .unwrap()
                .payload,
            1234
        );
    }
}

#[cfg(test)]
mod conservation_props {
    use super::*;
    use crate::topology::Mesh2D;
    use flash_sim::{DetRng, Engine, Scheduler, SimTime, World};

    struct NetWorld {
        fabric: Fabric<u32>,
        obs: Recorder,
        delivered: u64,
    }

    impl World for NetWorld {
        type Ev = NetEv;
        fn dispatch(&mut self, ev: NetEv, sched: &mut Scheduler<'_, NetEv>) {
            let mut out = Vec::new();
            let mut del = Vec::new();
            self.fabric
                .handle(ev, sched.now(), &mut out, &mut del, &mut self.obs);
            self.delivered += del.len() as u64;
            for (d, e) in out {
                sched.after(d, e);
            }
        }
    }

    /// Packet conservation under random traffic and random failures:
    /// every injected packet is eventually delivered or dropped —
    /// nothing duplicates and nothing lingers once the event queue
    /// drains and receivers consume their input. Seeded-random cases
    /// stand in for the original property-based formulation.
    #[test]
    fn packets_are_conserved() {
        for case in 0..48u64 {
            let mut rng = DetRng::new(0xC017_5EED ^ case);
            let n_sends = 1 + rng.index(79);
            let sends: Vec<(u16, u16)> = (0..n_sends)
                .map(|_| (rng.below(12) as u16, rng.below(12) as u16))
                .collect();
            let dead_router = rng.chance(0.5).then(|| rng.below(12) as u16);
            let dead_link = rng.chance(0.5).then(|| rng.index(17));
            let fail_after = rng.below(30);

            let topo = Mesh2D::new(4, 3);
            let links = topo.links();
            let mut w = NetWorld {
                fabric: Fabric::new(&topo, NetParams::default()),
                obs: {
                    // Trace the net domain here too: the instrumented path
                    // must uphold conservation under random failures.
                    let mut r = Recorder::new();
                    r.set_domain_enabled(Domain::Net, true);
                    r
                },
                delivered: 0,
            };
            let mut engine: Engine<NetEv> = Engine::new();
            engine.set_event_budget(5_000_000);
            let mut sent = 0u64;
            for (i, (src, dst)) in sends.iter().enumerate() {
                // Inject failures part-way through the send sequence.
                if i as u64 == fail_after {
                    if let Some(r) = dead_router {
                        w.fabric.fail_router(RouterId(r), engine.now());
                    }
                    if let Some(l) = dead_link {
                        let spec = links[l];
                        w.fabric.fail_link_between(spec.a, spec.b, engine.now());
                    }
                }
                let lane = Lane::from_index(rng.index(2)); // coherence lanes
                let pkt = Packet::table_routed(NodeId(*src), NodeId(*dst), lane, 9, i as u32);
                let mut out = Vec::new();
                if w.fabric
                    .try_send(NodeId(*src), pkt, engine.now(), &mut out, &mut w.obs)
                    .is_ok()
                {
                    sent += 1;
                }
                for (d, e) in out {
                    engine.schedule_after(d, e);
                }
                // Drain receivers as we go so ejection queues don't fill.
                engine.run(
                    &mut w,
                    engine.now() + flash_sim::SimDuration::from_micros(5),
                );
                for n in 0..12u16 {
                    while w.fabric.pop_input(NodeId(n), Lane::Request).is_some() {}
                    while w.fabric.pop_input(NodeId(n), Lane::Reply).is_some() {}
                }
            }
            // Let everything settle (blocked heads toward dead regions sink).
            engine.run(&mut w, SimTime::MAX);
            for n in 0..12u16 {
                while w.fabric.pop_input(NodeId(n), Lane::Request).is_some() {}
                while w.fabric.pop_input(NodeId(n), Lane::Reply).is_some() {}
            }
            let c = w.fabric.counters();
            assert_eq!(c.get("packets_sent"), sent, "case {case}");
            assert_eq!(
                c.get("packets_delivered") + c.get("packets_dropped"),
                sent,
                "case {case}: delivered {} + dropped {} must equal sent {}",
                c.get("packets_delivered"),
                c.get("packets_dropped"),
                sent
            );
            assert_eq!(w.fabric.in_flight_coherence(), 0, "case {case}");
        }
    }
}
