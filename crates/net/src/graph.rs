//! Graph utilities over the interconnect: BFS, connected components,
//! breadth-first-tree heights and the linear-time diameter upper bound used
//! by the dissemination phase (paper, Section 4.3).
//!
//! These functions are pure and operate on an undirected graph snapshot
//! ([`UGraph`]); the recovery algorithm applies them to the *learned* system
//! state (`LState`/`NState`), never to simulator ground truth.

use crate::ids::RouterId;

/// An undirected graph over routers `0..n`, with sorted adjacency lists.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UGraph {
    adj: Vec<Vec<u16>>,
}

impl UGraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        UGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds a graph from an edge list, ignoring duplicates.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u16, u16)>) -> Self {
        let mut g = UGraph::new(n);
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds an undirected edge (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, a: u16, b: u16) {
        assert!((a as usize) < self.adj.len() && (b as usize) < self.adj.len());
        if a == b {
            return;
        }
        if let Err(pos) = self.adj[a as usize].binary_search(&b) {
            self.adj[a as usize].insert(pos, b);
        }
        if let Err(pos) = self.adj[b as usize].binary_search(&a) {
            self.adj[b as usize].insert(pos, a);
        }
    }

    /// Neighbors of `v`, sorted ascending.
    pub fn neighbors(&self, v: u16) -> &[u16] {
        &self.adj[v as usize]
    }

    /// Total number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(|l| l.len()).sum::<usize>() / 2
    }

    /// BFS distances from `root` over a vertex mask: only vertices with
    /// `alive[v] == true` participate. Unreachable or dead vertices get
    /// `u32::MAX`.
    pub fn bfs_distances(&self, root: u16, alive: &[bool]) -> Vec<u32> {
        let n = self.adj.len();
        let mut dist = vec![u32::MAX; n];
        if (root as usize) >= n || !alive[root as usize] {
            return dist;
        }
        let mut queue = std::collections::VecDeque::new();
        dist[root as usize] = 0;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u as usize] {
                if alive[v as usize] && dist[v as usize] == u32::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Height of the breadth-first tree rooted at `root` over live vertices:
    /// the maximum finite BFS distance. Returns 0 for an isolated root and
    /// `None` if the root itself is dead.
    pub fn bft_height(&self, root: u16, alive: &[bool]) -> Option<u32> {
        if !alive.get(root as usize).copied().unwrap_or(false) {
            return None;
        }
        let dist = self.bfs_distances(root, alive);
        Some(
            dist.iter()
                .filter(|&&d| d != u32::MAX)
                .max()
                .copied()
                .unwrap_or(0),
        )
    }

    /// The round bound used by the dissemination phase: all nodes pick the
    /// same functioning node (the smallest live id), compute the height `h`
    /// of the BFT rooted there, and run `2 h` rounds — `2 h` is an upper
    /// bound on the diameter of the live subgraph (paper, Section 4.3).
    ///
    /// Returns `None` when no vertex is alive. A single live vertex yields
    /// `Some(0)` (knowledge is already complete; the loop still runs at
    /// least one round in practice).
    pub fn dissemination_round_bound(&self, alive: &[bool]) -> Option<u32> {
        let root = alive.iter().position(|&a| a)? as u16;
        let h = self.bft_height(root, alive)?;
        Some(2 * h)
    }

    /// Exact diameter of the live subgraph (max finite eccentricity),
    /// treating disconnected pairs as unreachable. Quadratic; used only by
    /// tests and benchmarks to validate the `2h` bound, mirroring the
    /// paper's remark that computing the diameter precisely is too
    /// expensive for the recovery path.
    pub fn exact_diameter(&self, alive: &[bool]) -> u32 {
        let mut best = 0;
        for v in 0..self.adj.len() {
            if !alive[v] {
                continue;
            }
            let dist = self.bfs_distances(v as u16, alive);
            for &d in &dist {
                if d != u32::MAX {
                    best = best.max(d);
                }
            }
        }
        best
    }

    /// Whether all live vertices form a single connected component.
    /// Vacuously true when fewer than two vertices are alive.
    pub fn live_connected(&self, alive: &[bool]) -> bool {
        let Some(root) = alive.iter().position(|&a| a) else {
            return true;
        };
        let dist = self.bfs_distances(root as u16, alive);
        alive
            .iter()
            .enumerate()
            .all(|(v, &a)| !a || dist[v] != u32::MAX)
    }

    /// Connected components over live vertices; each component is a sorted
    /// vertex list, and components are ordered by smallest member.
    pub fn components(&self, alive: &[bool]) -> Vec<Vec<u16>> {
        let n = self.adj.len();
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        for v in 0..n {
            if !alive[v] || seen[v] {
                continue;
            }
            let dist = self.bfs_distances(v as u16, alive);
            let mut comp = Vec::new();
            for (u, &d) in dist.iter().enumerate() {
                if d != u32::MAX {
                    seen[u] = true;
                    comp.push(u as u16);
                }
            }
            comps.push(comp);
        }
        comps
    }
}

/// Convenience conversion from router ids.
impl FromIterator<(RouterId, RouterId)> for UGraph {
    /// Builds the smallest graph containing all given edges.
    fn from_iter<T: IntoIterator<Item = (RouterId, RouterId)>>(iter: T) -> Self {
        let edges: Vec<(u16, u16)> = iter.into_iter().map(|(a, b)| (a.0, b.0)).collect();
        let n = edges
            .iter()
            .map(|&(a, b)| a.max(b) as usize + 1)
            .max()
            .unwrap_or(0);
        UGraph::from_edges(n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> UGraph {
        UGraph::from_edges(n, (0..n as u16 - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn add_edge_is_idempotent_and_ignores_self_loops() {
        let mut g = UGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert!(g.neighbors(2).is_empty());
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(5);
        let alive = vec![true; 5];
        assert_eq!(g.bfs_distances(0, &alive), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.bfs_distances(2, &alive), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn dead_vertices_block_paths() {
        let g = path_graph(5);
        let mut alive = vec![true; 5];
        alive[2] = false;
        let d = g.bfs_distances(0, &alive);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], u32::MAX);
        assert_eq!(d[3], u32::MAX);
        assert!(!g.live_connected(&alive));
        let comps = g.components(&alive);
        assert_eq!(comps, vec![vec![0, 1], vec![3, 4]]);
    }

    #[test]
    fn bft_height_and_round_bound() {
        let g = path_graph(5);
        let alive = vec![true; 5];
        assert_eq!(g.bft_height(0, &alive), Some(4));
        assert_eq!(g.bft_height(2, &alive), Some(2));
        // Root is the smallest live id (0): h = 4, bound = 8 >= diameter 4.
        assert_eq!(g.dissemination_round_bound(&alive), Some(8));
        assert_eq!(g.exact_diameter(&alive), 4);
    }

    #[test]
    fn round_bound_covers_diameter_on_grid() {
        // 4x4 grid.
        let mut g = UGraph::new(16);
        for y in 0..4u16 {
            for x in 0..4u16 {
                let v = y * 4 + x;
                if x + 1 < 4 {
                    g.add_edge(v, v + 1);
                }
                if y + 1 < 4 {
                    g.add_edge(v, v + 4);
                }
            }
        }
        let alive = vec![true; 16];
        let bound = g.dissemination_round_bound(&alive).unwrap();
        assert!(bound >= g.exact_diameter(&alive));
    }

    #[test]
    fn dead_root_yields_none() {
        let g = path_graph(3);
        let alive = vec![false, true, true];
        assert_eq!(g.bft_height(0, &alive), None);
        // Round bound uses smallest live root (1).
        assert_eq!(g.dissemination_round_bound(&alive), Some(2));
    }

    #[test]
    fn no_live_vertices() {
        let g = path_graph(3);
        let alive = vec![false; 3];
        assert_eq!(g.dissemination_round_bound(&alive), None);
        assert!(g.live_connected(&alive));
        assert!(g.components(&alive).is_empty());
    }

    #[test]
    fn from_iterator_of_router_ids() {
        let g: UGraph = vec![(RouterId(0), RouterId(2)), (RouterId(1), RouterId(2))]
            .into_iter()
            .collect();
        assert_eq!(g.len(), 3);
        assert_eq!(g.num_edges(), 2);
    }
}
