//! Identifier newtypes for interconnect entities.

use core::fmt;

/// Identifies a compute node (endpoint) in the machine.
///
/// In the topologies provided by this crate each node attaches to exactly one
/// router through a dedicated local port.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

/// Identifies a router in the interconnect.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RouterId(pub u16);

/// Identifies a bidirectional router-to-router link.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LinkId(pub u32);

/// Unique identifier for a packet, assigned at injection; used for tracing
/// and by the incoherence oracle.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PacketId(pub u64);

impl NodeId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl RouterId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}
impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}
impl fmt::Debug for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}
impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}
impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}
impl fmt::Debug for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The virtual lane a packet travels on.
///
/// FLASH dedicates two virtual lanes of the CrayLink interconnect to recovery
/// traffic so that the recovery algorithm can assume its lanes are not
/// clogged with backed-up coherence traffic (paper, Section 4.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Lane {
    /// Cache-coherence requests.
    Request,
    /// Cache-coherence replies (always sinkable; avoids protocol deadlock).
    Reply,
    /// Recovery lane 0: probes and pings.
    Recovery0,
    /// Recovery lane 1: dissemination, agreement and barrier traffic.
    Recovery1,
}

impl Lane {
    /// All lanes, in index order.
    pub const ALL: [Lane; 4] = [Lane::Request, Lane::Reply, Lane::Recovery0, Lane::Recovery1];

    /// Number of virtual lanes.
    pub const COUNT: usize = 4;

    /// Dense index of this lane.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Lane::Request => 0,
            Lane::Reply => 1,
            Lane::Recovery0 => 2,
            Lane::Recovery1 => 3,
        }
    }

    /// Whether this lane carries normal coherence traffic (as opposed to
    /// dedicated recovery traffic).
    #[inline]
    pub const fn is_coherence(self) -> bool {
        matches!(self, Lane::Request | Lane::Reply)
    }

    /// Reconstructs a lane from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= Lane::COUNT`.
    #[inline]
    pub fn from_index(i: usize) -> Lane {
        Lane::ALL[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_index_roundtrip() {
        for lane in Lane::ALL {
            assert_eq!(Lane::from_index(lane.index()), lane);
        }
    }

    #[test]
    fn lane_classes() {
        assert!(Lane::Request.is_coherence());
        assert!(Lane::Reply.is_coherence());
        assert!(!Lane::Recovery0.is_coherence());
        assert!(!Lane::Recovery1.is_coherence());
    }

    #[test]
    fn id_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(RouterId(7).to_string(), "r7");
        assert_eq!(format!("{:?}", LinkId(1)), "l1");
        assert_eq!(format!("{:?}", PacketId(9)), "p9");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId(1) < NodeId(2));
        assert!(RouterId(0) < RouterId(5));
    }
}
