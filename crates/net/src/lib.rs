//! # flash-net — CrayLink-style interconnect simulator
//!
//! An event-driven model of the point-to-point interconnect of a scalable
//! shared-memory multiprocessor, reproducing the properties the FLASH
//! fault-containment design depends on (paper, Sections 2, 3.1 and 4.1):
//!
//! * static table routing programmed per router ([`RoutingTables`]);
//! * reliable, flow-controlled delivery in normal operation;
//! * four virtual lanes, two of which are dedicated to recovery traffic;
//! * a source-routing option with a bounded hop count and stall-discard;
//! * failure behaviour: black-hole links, packet truncation, dead routers;
//! * topologies: the 2D [`Mesh2D`] simulated in the paper and a
//!   [`Hypercube`] standing in for FLASH's fat hypercube.
//!
//! The central type is [`Fabric`], which plugs into the workspace's
//! discrete-event engine via the [`NetEv`] event type. Graph utilities used
//! by the recovery algorithm (BFS trees, the `2h` dissemination bound,
//! up*/down* rerouting) live in [`UGraph`] and [`up_down_tables`].
//!
//! # Examples
//!
//! ```
//! use flash_net::{Fabric, NetParams, Mesh2D, Packet, NodeId, Lane};
//! use flash_obs::Recorder;
//! use flash_sim::SimTime;
//!
//! let mut fabric: Fabric<&'static str> = Fabric::new(&Mesh2D::new(4, 2), NetParams::default());
//! let mut out = Vec::new();
//! let mut obs = Recorder::disabled();
//! let pkt = Packet::table_routed(NodeId(0), NodeId(7), Lane::Request, 9, "hello");
//! fabric.try_send(NodeId(0), pkt, SimTime::ZERO, &mut out, &mut obs)?;
//! assert!(!out.is_empty()); // events to feed into the simulation engine
//! # Ok::<(), flash_net::SendError<&'static str>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fabric;
mod graph;
mod ids;
mod packet;
mod region;
mod routing;
mod slab;
mod topology;

pub use fabric::{
    BoundaryHop, DeliveryNote, Fabric, LinkProbe, Nbr, NetEv, NetParams, QueueRef, SendError,
};
pub use graph::UGraph;
pub use ids::{Lane, LinkId, NodeId, PacketId, RouterId};
pub use packet::{Packet, Route, SourceRoute, MAX_SOURCE_HOPS};
pub use region::RegionMap;
pub use routing::{channel_dependencies_acyclic, up_down_tables, Hop, RoutingTables};
pub use slab::PacketMeta;
pub use topology::{Hypercube, LinkSpec, Mesh2D, Topology};
