//! Packets and routing modes.

use crate::ids::{Lane, NodeId, PacketId, RouterId};

/// Maximum number of hops a source-routed packet may specify, mirroring the
/// CrayLink limit that forces the initial recovery phases to use only local
/// communication (paper, Section 4.1).
pub const MAX_SOURCE_HOPS: usize = 16;

/// An inline, fixed-capacity sequence of routers for source routing.
///
/// The hop list lives directly in the packet (capacity
/// [`MAX_SOURCE_HOPS`]), so packets carry and advance their route without
/// heap allocation — the per-hop fabric path never clones a `Vec`.
///
/// Unused tail slots are zero-filled, so the derived equality is equivalent
/// to comparing the active prefix.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SourceRoute {
    hops: [RouterId; MAX_SOURCE_HOPS],
    len: u8,
}

impl SourceRoute {
    /// Builds a route from a hop slice.
    ///
    /// # Panics
    ///
    /// Panics if `hops` is empty or longer than [`MAX_SOURCE_HOPS`].
    pub fn new(hops: &[RouterId]) -> Self {
        assert!(!hops.is_empty(), "source route needs at least one hop");
        assert!(hops.len() <= MAX_SOURCE_HOPS, "source route too long");
        let mut arr = [RouterId::default(); MAX_SOURCE_HOPS];
        arr[..hops.len()].copy_from_slice(hops);
        SourceRoute {
            hops: arr,
            len: hops.len() as u8,
        }
    }

    /// The active hops.
    #[inline]
    pub fn as_slice(&self) -> &[RouterId] {
        &self.hops[..self.len as usize]
    }
}

impl std::ops::Deref for SourceRoute {
    type Target = [RouterId];
    #[inline]
    fn deref(&self) -> &[RouterId] {
        self.as_slice()
    }
}

impl From<&[RouterId]> for SourceRoute {
    fn from(hops: &[RouterId]) -> Self {
        SourceRoute::new(hops)
    }
}

impl From<Vec<RouterId>> for SourceRoute {
    fn from(hops: Vec<RouterId>) -> Self {
        SourceRoute::new(&hops)
    }
}

impl From<&Vec<RouterId>> for SourceRoute {
    fn from(hops: &Vec<RouterId>) -> Self {
        SourceRoute::new(hops)
    }
}

impl<const N: usize> From<[RouterId; N]> for SourceRoute {
    fn from(hops: [RouterId; N]) -> Self {
        SourceRoute::new(&hops)
    }
}

impl std::fmt::Debug for SourceRoute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// How a packet is steered through the interconnect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Follow the routing tables programmed into each router.
    Table,
    /// Source routing: the sender specifies the exact sequence of routers to
    /// traverse, allowing recovery traffic to detour around failed regions
    /// before the tables have been reprogrammed. `consumed` counts hops
    /// already taken.
    Source {
        /// Routers to traverse, in order; the packet is delivered to the
        /// node attached to the last router.
        hops: SourceRoute,
        /// Number of hops already consumed.
        consumed: u8,
    },
}

/// A packet traversing the interconnect, generic over its payload.
///
/// `flits` is the packet's size in 16-byte flow-control units, including one
/// header flit; a cache-line-carrying coherence packet is 9 flits (1 header
/// + 128 B data).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet<P> {
    /// Unique id assigned at injection.
    pub id: PacketId,
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Virtual lane.
    pub lane: Lane,
    /// Size in flits (header included).
    pub flits: u32,
    /// Steering mode.
    pub route: Route,
    /// Set when a link failure severed the packet mid-transit; the header
    /// survived but the data flits are lost (delivered with "parity error
    /// bits set" in FLASH terms).
    pub truncated: bool,
    /// The payload carried (opaque to the interconnect).
    pub payload: P,
}

impl<P> Packet<P> {
    /// Creates a table-routed packet. The id is assigned by the fabric at
    /// injection; callers pass `PacketId::default()`.
    pub fn table_routed(src: NodeId, dst: NodeId, lane: Lane, flits: u32, payload: P) -> Self {
        Packet {
            id: PacketId::default(),
            src,
            dst,
            lane,
            flits: flits.max(1),
            route: Route::Table,
            truncated: false,
            payload,
        }
    }

    /// Creates a source-routed packet delivered to the node attached to the
    /// last router in `hops`.
    ///
    /// # Panics
    ///
    /// Panics if `hops` is empty or longer than [`MAX_SOURCE_HOPS`].
    pub fn source_routed(
        src: NodeId,
        dst: NodeId,
        hops: impl Into<SourceRoute>,
        lane: Lane,
        flits: u32,
        payload: P,
    ) -> Self {
        Packet {
            id: PacketId::default(),
            src,
            dst,
            lane,
            flits: flits.max(1),
            route: Route::Source {
                hops: hops.into(),
                consumed: 0,
            },
            truncated: false,
            payload,
        }
    }

    /// Whether this packet uses source routing.
    pub fn is_source_routed(&self) -> bool {
        matches!(self.route, Route::Source { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_packet_has_min_one_flit() {
        let p = Packet::table_routed(NodeId(0), NodeId(1), Lane::Request, 0, ());
        assert_eq!(p.flits, 1);
        assert!(!p.is_source_routed());
        assert!(!p.truncated);
    }

    #[test]
    fn source_packet_tracks_hops() {
        let p = Packet::source_routed(
            NodeId(0),
            NodeId(2),
            vec![RouterId(1), RouterId(2)],
            Lane::Recovery0,
            1,
            (),
        );
        assert!(p.is_source_routed());
        match &p.route {
            Route::Source { hops, consumed } => {
                assert_eq!(hops.len(), 2);
                assert_eq!(*consumed, 0);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn source_route_is_copy_and_compares_by_prefix() {
        let a = SourceRoute::new(&[RouterId(3), RouterId(4)]);
        let b = a; // Copy
        assert_eq!(a, b);
        assert_eq!(a.as_slice(), &[RouterId(3), RouterId(4)]);
        assert_eq!(a, SourceRoute::from(vec![RouterId(3), RouterId(4)]));
        assert_ne!(a, SourceRoute::new(&[RouterId(3)]));
        // Routes (and thus packets' steering state) are Copy now.
        let r = Route::Source {
            hops: a,
            consumed: 1,
        };
        let r2 = r;
        assert_eq!(r, r2);
    }

    #[test]
    #[should_panic(expected = "source route too long")]
    fn source_route_length_is_bounded() {
        let hops = vec![RouterId(0); MAX_SOURCE_HOPS + 1];
        let _ = Packet::source_routed(NodeId(0), NodeId(0), hops, Lane::Recovery0, 1, ());
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn source_route_must_be_nonempty() {
        let _ = Packet::source_routed(NodeId(0), NodeId(0), vec![], Lane::Recovery0, 1, ());
    }
}
